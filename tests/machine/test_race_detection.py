"""Dynamic intra-epoch race detection (the runtime counterpart of the
static GCD independence test)."""

import pytest

import repro.ir as ir
from repro.machine import Machine, t3d
from repro.ir.arrays import ArrayDecl
from repro.machine.params import MachineParams
from repro.runtime import ExecutionConfig, Interpreter, Version
from repro.workloads import all_workloads


def run_with_race_check(program, n_pes=4):
    params = t3d(n_pes, cache_bytes=1024)
    interp = Interpreter(program, params,
                         ExecutionConfig.for_version(Version.CCDP))
    interp.machine.race_check = True
    result = interp.run()
    return result, interp.machine


class TestMachineLevel:
    def make(self):
        machine = Machine([ArrayDecl("a", (4, 8))], t3d(4, cache_bytes=512))
        machine.race_check = True
        return machine

    def test_write_write_race(self):
        machine = self.make()
        machine.write(0, "a", 5, 1.0)
        machine.write(1, "a", 5, 2.0)
        assert machine.races == 1
        assert "write-after-write" in machine.race_examples[0]

    def test_read_after_remote_write_race(self):
        machine = self.make()
        machine.write(0, "a", 5, 1.0)
        machine.read(1, "a", 5)
        assert machine.races == 1
        assert "read-after-write" in machine.race_examples[0]

    def test_same_pe_rmw_is_fine(self):
        machine = self.make()
        machine.write(2, "a", 5, 1.0)
        machine.read(2, "a", 5)
        machine.write(2, "a", 5, 2.0)
        assert machine.races == 0

    def test_barrier_resets_epoch(self):
        machine = self.make()
        machine.write(0, "a", 5, 1.0)
        machine.barrier()
        machine.read(1, "a", 5)  # different epoch: a dependence, not a race
        assert machine.races == 0

    def test_disabled_by_default(self):
        machine = Machine([ArrayDecl("a", (4, 8))], t3d(4, cache_bytes=512))
        machine.write(0, "a", 5, 1.0)
        machine.write(1, "a", 5, 2.0)
        assert machine.races == 0


class TestProgramLevel:
    def test_workloads_are_race_free(self):
        for spec in all_workloads():
            args = dict(spec.default_args)
            args["n"] = 16 if spec.name == "mxm" else 13
            if "steps" in args:
                args["steps"] = 2
            result, machine = run_with_race_check(spec.build(**args))
            assert machine.races == 0, (spec.name, machine.race_examples)

    def test_racy_doall_is_flagged(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        with b.proc("main"):
            with b.doall("j", 1, 8):
                b.assign(b.ref("a", 1, 1), ir.E("j") * 1.0)  # all tasks hit (1,1)
        _, machine = run_with_race_check(b.finish())
        assert machine.races > 0

    def test_static_checker_agrees_with_dynamic(self):
        """The static GCD test flags the same racy loop the dynamic
        detector catches."""
        from repro.analysis.parcheck import check_doall_independence

        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        with b.proc("main"):
            with b.doall("j", 2, 8):
                b.assign(b.ref("a", 1, "j"), b.ref("a", 1, ir.E("j") - 1))
        program = b.finish()
        static = check_doall_independence(program)
        assert not static.clean
        _, machine = run_with_race_check(program)
        assert machine.races > 0
