"""Torus topology and the global address map."""

import numpy as np
import pytest

from repro.ir.arrays import ArrayDecl, Distribution, DistKind, REPLICATED
from repro.ir.dtypes import REAL4
from repro.machine.addressing import AddressMap
from repro.machine.params import t3d
from repro.machine.topology import Torus, torus_for, torus_shape


class TestTorusShape:
    @pytest.mark.parametrize("n,expect_volume", [(1, 1), (2, 2), (8, 8),
                                                 (12, 12), (64, 64), (100, 100)])
    def test_volume(self, n, expect_volume):
        x, y, z = torus_shape(n)
        assert x * y * z == expect_volume

    def test_near_cubic_for_64(self):
        assert sorted(torus_shape(64)) == [4, 4, 4]

    def test_t3d_32(self):
        assert sorted(torus_shape(32)) == [2, 4, 4]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            torus_shape(0)


class TestHops:
    def test_self_distance_zero(self):
        torus = torus_for(8)
        assert all(torus.hops(p, p) == 0 for p in range(8))

    def test_symmetry(self):
        torus = torus_for(12)
        for a in range(12):
            for b in range(12):
                assert torus.hops(a, b) == torus.hops(b, a)

    def test_wraparound_shortens(self):
        torus = Torus.for_pes(8, (8, 1, 1))
        assert torus.hops(0, 7) == 1  # wraps around the ring

    def test_triangle_inequality(self):
        torus = torus_for(16)
        for a in range(16):
            for b in range(16):
                for c in (0, 5, 11):
                    assert torus.hops(a, c) <= torus.hops(a, b) + torus.hops(b, c)

    def test_hop_matrix_matches_scalar(self):
        torus = torus_for(8)
        matrix = torus.hop_matrix()
        for a in range(8):
            for b in range(8):
                assert matrix[a, b] == torus.hops(a, b)

    def test_mean_hops_positive(self):
        assert torus_for(1).mean_hops() == 0.0
        assert torus_for(16).mean_hops() > 0

    def test_out_of_range_pe(self):
        with pytest.raises(ValueError):
            torus_for(4).coords(4)


class TestAddressMap:
    def make(self, *decls, n_pes=4):
        return AddressMap(decls, t3d(n_pes))

    def test_line_alignment(self):
        params = t3d(4)
        amap = self.make(ArrayDecl("a", (5,)), ArrayDecl("b", (3,)))
        for name in ("a", "b"):
            assert amap.base(name) % params.line_words == 0

    def test_no_overlap(self):
        amap = self.make(ArrayDecl("a", (10, 10)), ArrayDecl("b", (7,)))
        layout = amap.layout()
        for (n1, base1, words1), (n2, base2, _) in zip(layout, layout[1:]):
            assert base1 + words1 <= base2

    def test_addr_arithmetic(self):
        amap = self.make(ArrayDecl("a", (10,)))
        assert amap.addr("a", 3) == amap.base("a") + 3

    def test_array_at_reverse_lookup(self):
        amap = self.make(ArrayDecl("a", (10,)), ArrayDecl("b", (10,)))
        assert amap.array_at(amap.addr("b", 5)) == "b"
        assert amap.array_at(0) is None  # reserved first line

    def test_owner_table_block(self):
        amap = self.make(ArrayDecl("a", (4, 8)))
        owners = amap.owner_table("a")
        # column-major: first 8 elements are column 1 -> PE 0
        assert set(owners[:8].tolist()) == {0}
        assert amap.owner("a", 31) == 3

    def test_owner_table_cyclic(self):
        decl = ArrayDecl("a", (2, 6), dist=Distribution(DistKind.CYCLIC, -1))
        amap = self.make(decl)
        owners = amap.owner_table("a").reshape((2, 6), order="F")
        assert owners[0].tolist() == [0, 1, 2, 3, 0, 1]

    def test_owner_matches_decl(self):
        decl = ArrayDecl("a", (4, 10))
        amap = self.make(decl)
        for j in range(1, 11):
            flat = decl.linear_index((1, j))
            assert amap.owner("a", flat) == decl.owner_of_axis_index(j, 4)

    def test_private_array_ownership_rejected(self):
        decl = ArrayDecl("w", (8,), dist=REPLICATED)
        amap = self.make(decl)
        with pytest.raises(ValueError):
            amap.owner_table("w")
        assert amap.is_local("w", 3, pe=2)

    def test_shared_narrow_elements_rejected(self):
        with pytest.raises(ValueError, match="element size"):
            self.make(ArrayDecl("a", (8,), REAL4))

    def test_private_narrow_elements_allowed(self):
        decl = ArrayDecl("w", (8,), REAL4, REPLICATED)
        amap = self.make(decl)
        assert amap.base("w") > 0
