"""Protocol litmus suite: every state x event transition cell, driven
table-style against the MESI and directory protocols.

Each cell is one registered function asserting three things about one
``(state, event)`` pair: the next state, the bus/directory messages
emitted (as typed tracer events), and the cycle cost charged to the
acting PE.  Completeness tests assert the registries cover 100% of the
transition tables:

* MESI: states {M, E, S, I} x events {PrRd, PrWr, BusRd, BusRdX,
  BusUpgr, Evict}.  Cells whose precondition cannot arise (a BusUpgr
  snooped in M or E would need another sharer while we hold the line
  exclusively) assert the protocol invariant that forbids them.
* Directory: local states {M, S, I} x events {PrRd, PrWr, RemoteRd,
  RemoteWr, Evict}.

Cross-PE interleavings the ISSUE calls out — write-after-read
invalidation, E->M silent upgrade, dirty cache-to-cache supply,
limited-pointer overflow -> broadcast, phase-priority bypass — are the
scenario tests at the bottom.

Topology note: ``a`` is a (4, 8) BLOCK_LAST array at 4 PEs, so flats
0-7 live on PE0 (lines 1-2 of the global line space), 8-15 on PE1,
16-23 on PE2, 24-31 on PE3.  With ``cache_bytes=128`` (4 lines per
cache) lines 1 and 5 conflict in the same set, which the eviction
cells exploit.
"""

import pytest

from repro.ir.arrays import ArrayDecl
from repro.machine.machine import Machine
from repro.machine.params import t3d
from repro.obs import Tracer

PROTO_KINDS = ("bus_tx", "coh_wb", "silent_upgrade", "coh_inval",
               "dir_req", "dir_bcast")


def make(protocol, n_pes=4, cache_bytes=512):
    params = t3d(n_pes, cache_bytes=cache_bytes)
    return Machine([ArrayDecl("a", (4, 8))], params, tracer=Tracer(),
                   protocol=protocol)


def line(m, flat):
    return m.addr_map.addr("a", flat) // m.params.line_words


def msg(m, p, q):
    return m.params.dir_msg_base + m.params.remote_per_hop * m.torus.hops(p, q)


class Probe:
    """Clock/stat/event deltas around one action on one PE."""

    def __init__(self, m, pe):
        self.m, self.pe = m, pe
        self.clock0 = m.pes[pe].clock
        self.mark = len(m.tracer.events)

    @property
    def cost(self):
        return self.m.pes[self.pe].clock - self.clock0

    @property
    def events(self):
        return [e for e in self.m.tracer.events[self.mark:]
                if e[0] in PROTO_KINDS]


# -- state constructors ----------------------------------------------------
def to_E(m, pe, flat):
    m.read(pe, "a", flat)
    assert m.protocol.state(pe, line(m, flat)) == "E"


def to_S(m, pe, other, flat):
    m.read(pe, "a", flat)
    m.read(other, "a", flat)
    assert m.protocol.state(pe, line(m, flat)) == "S"
    assert m.protocol.state(other, line(m, flat)) == "S"


def to_M(m, pe, flat):
    m.write(pe, "a", flat, 1.0)
    assert m.protocol.state(pe, line(m, flat)) == "M"


# -- MESI transition table -------------------------------------------------
MESI_STATES = ("M", "E", "S", "I")
MESI_EVENTS = ("PrRd", "PrWr", "BusRd", "BusRdX", "BusUpgr", "Evict")
MESI_CELLS = {}


def mesi_cell(state, event):
    def deco(fn):
        MESI_CELLS[(state, event)] = fn
        return fn
    return deco


@mesi_cell("I", "PrRd")
def _i_prrd():
    # Cold read with no other holder: BusRd, memory supplies, -> E.
    m = make("mesi")
    p = Probe(m, 0)
    m.read(0, "a", 0)
    assert m.protocol.state(0, line(m, 0)) == "E"
    assert p.events == [("bus_tx", 0, "busrd", line(m, 0), 0)]
    assert p.cost == m.params.bus_cycle + m.params.local_mem
    assert m.pes[0].stats.bus_rd == 1


@mesi_cell("I", "PrWr")
def _i_prwr():
    # Write miss: BusRdX write-allocates the line in M.
    m = make("mesi")
    ln = line(m, 0)
    p = Probe(m, 0)
    m.write(0, "a", 0, 2.5)
    assert m.protocol.state(0, ln) == "M"
    assert m.pes[0].cache.tags[ln % m.pes[0].cache.n_lines] == ln
    assert p.events == [("bus_tx", 0, "busrdx", ln, 0)]
    assert p.cost == (m.params.bus_cycle + m.params.local_mem
                      + m.params.write_local)
    # the installed line holds the just-written value
    assert m.read(0, "a", 0) == 2.5
    assert m.pes[0].stats.cache_hits == 1


@mesi_cell("I", "BusRd")
def _i_busrd():
    # A remote BusRd is no business of a non-holder.
    m = make("mesi")
    ln = line(m, 0)
    m.read(1, "a", 0)
    assert m.protocol.state(0, ln) == "I"


@mesi_cell("I", "BusRdX")
def _i_busrdx():
    # No holders anywhere: BusRdX invalidates nothing (no coh_inval).
    m = make("mesi")
    p = Probe(m, 1)
    m.write(1, "a", 0, 1.0)
    assert m.protocol.state(0, line(m, 0)) == "I"
    assert [e for e in p.events if e[0] == "coh_inval"] == []


@mesi_cell("I", "BusUpgr")
def _i_busupgr():
    # PE2 and PE1 share; PE1 upgrades.  Bystander PE0 stays I.
    m = make("mesi")
    to_S(m, 1, 2, 0)
    m.write(1, "a", 0, 1.0)
    assert m.protocol.state(0, line(m, 0)) == "I"
    assert m.protocol.state(1, line(m, 0)) == "M"


@mesi_cell("I", "Evict")
def _i_evict():
    # Installing over an empty set retires no victim: no coh_wb.
    m = make("mesi", cache_bytes=128)
    p = Probe(m, 0)
    m.read(0, "a", 0)
    assert [e for e in p.events if e[0] == "coh_wb"] == []


@mesi_cell("E", "PrRd")
def _e_prrd():
    m = make("mesi")
    to_E(m, 0, 0)
    p = Probe(m, 0)
    m.read(0, "a", 0)
    assert m.protocol.state(0, line(m, 0)) == "E"
    assert p.events == []
    assert p.cost == m.params.cache_hit


@mesi_cell("E", "PrWr")
def _e_prwr():
    # The paper-perfect silent upgrade: E->M without a bus transaction.
    m = make("mesi")
    to_E(m, 0, 0)
    p = Probe(m, 0)
    m.write(0, "a", 0, 3.0)
    assert m.protocol.state(0, line(m, 0)) == "M"
    assert p.events == [("silent_upgrade", 0, line(m, 0))]
    assert p.cost == m.params.write_local
    assert m.pes[0].stats.silent_upgrades == 1
    assert m.pes[0].stats.bus_upgr == 0


@mesi_cell("E", "BusRd")
def _e_busrd():
    # Clean sharing: both end S, memory (not c2c) supplies.
    m = make("mesi")
    to_E(m, 0, 0)
    p = Probe(m, 1)
    m.read(1, "a", 0)
    assert m.protocol.state(0, line(m, 0)) == "S"
    assert m.protocol.state(1, line(m, 0)) == "S"
    assert p.events == [("bus_tx", 1, "busrd", line(m, 0), 0)]
    assert m.pes[1].stats.c2c_transfers == 0


@mesi_cell("E", "BusRdX")
def _e_busrdx():
    # Clean invalidation: no writeback, one copy killed.
    m = make("mesi")
    ln = line(m, 0)
    to_E(m, 0, 0)
    p = Probe(m, 1)
    m.write(1, "a", 0, 1.0)
    assert m.protocol.state(0, ln) == "I"
    assert m.pes[0].cache.tags[ln % m.pes[0].cache.n_lines] != ln
    assert ("coh_inval", 1, ln, 1) in p.events
    assert [e for e in p.events if e[0] == "coh_wb"] == []


@mesi_cell("E", "BusUpgr")
def _e_busupgr():
    # Invariant cell: E means no other cache holds the line, so no
    # peer can be in S to issue a BusUpgr.
    m = make("mesi")
    to_E(m, 0, 0)
    assert m.protocol._live_others(0, line(m, 0)) == []


@mesi_cell("E", "Evict")
def _e_evict():
    # Clean victim: silently dropped, no writeback.
    m = make("mesi", cache_bytes=128)
    to_E(m, 0, 0)            # line 1
    p = Probe(m, 0)
    m.read(0, "a", 16)       # line 5 conflicts with line 1 (4-line cache)
    assert m.protocol.state(0, line(m, 0)) == "I"
    assert [e for e in p.events if e[0] == "coh_wb"] == []


@mesi_cell("S", "PrRd")
def _s_prrd():
    m = make("mesi")
    to_S(m, 0, 1, 0)
    p = Probe(m, 0)
    m.read(0, "a", 0)
    assert m.protocol.state(0, line(m, 0)) == "S"
    assert p.events == []
    assert p.cost == m.params.cache_hit


@mesi_cell("S", "PrWr")
def _s_prwr():
    # Write-after-read invalidation: BusUpgr kills the other copy.
    m = make("mesi")
    ln = line(m, 0)
    to_S(m, 0, 1, 0)
    p = Probe(m, 0)
    stall0 = m.pes[0].stats.bus_stall_cycles
    m.write(0, "a", 0, 4.0)
    assert m.protocol.state(0, ln) == "M"
    assert m.protocol.state(1, ln) == "I"
    assert p.events == [("bus_tx", 0, "busupgr", ln, 0),
                        ("coh_inval", 0, ln, 1)]
    stall = m.pes[0].stats.bus_stall_cycles - stall0
    assert p.cost == stall + m.params.bus_cycle + m.params.write_local
    assert m.pes[0].stats.bus_upgr == 1
    assert m.pes[0].stats.coh_invalidations == 1


@mesi_cell("S", "BusRd")
def _s_busrd():
    # More sharers: everyone stays S.
    m = make("mesi")
    to_S(m, 0, 1, 0)
    m.read(2, "a", 0)
    for pe in (0, 1, 2):
        assert m.protocol.state(pe, line(m, 0)) == "S"


@mesi_cell("S", "BusRdX")
def _s_busrdx():
    # A non-holder's write miss invalidates every shared copy.
    m = make("mesi")
    ln = line(m, 0)
    to_S(m, 0, 1, 0)
    p = Probe(m, 2)
    m.write(2, "a", 0, 1.0)
    assert m.protocol.state(0, ln) == "I"
    assert m.protocol.state(1, ln) == "I"
    assert m.protocol.state(2, ln) == "M"
    assert ("coh_inval", 2, ln, 2) in p.events


@mesi_cell("S", "BusUpgr")
def _s_busupgr():
    # A peer sharer upgrades; our copy dies with it.
    m = make("mesi")
    ln = line(m, 0)
    to_S(m, 0, 1, 0)
    m.write(1, "a", 0, 1.0)
    assert m.protocol.state(0, ln) == "I"
    assert m.protocol.state(1, ln) == "M"
    assert m.pes[1].stats.bus_upgr == 1


@mesi_cell("S", "Evict")
def _s_evict():
    m = make("mesi", cache_bytes=128)
    to_S(m, 0, 1, 0)
    p = Probe(m, 0)
    m.read(0, "a", 16)  # conflicting set
    assert m.protocol.state(0, line(m, 0)) == "I"
    assert m.protocol.state(1, line(m, 0)) == "S"  # peer copy survives
    assert [e for e in p.events if e[0] == "coh_wb"] == []


@mesi_cell("M", "PrRd")
def _m_prrd():
    m = make("mesi")
    to_M(m, 0, 0)
    p = Probe(m, 0)
    m.read(0, "a", 0)
    assert m.protocol.state(0, line(m, 0)) == "M"
    assert p.events == []
    assert p.cost == m.params.cache_hit


@mesi_cell("M", "PrWr")
def _m_prwr():
    m = make("mesi")
    to_M(m, 0, 0)
    p = Probe(m, 0)
    m.write(0, "a", 0, 5.0)
    assert m.protocol.state(0, line(m, 0)) == "M"
    assert p.events == []
    assert p.cost == m.params.write_local


@mesi_cell("M", "BusRd")
def _m_busrd():
    # Dirty cache-to-cache supply with a sharing writeback: the owner
    # downgrades M->S and the requester pays the flush cost 4N + P + 1.
    m = make("mesi")
    ln = line(m, 0)
    to_M(m, 0, 0)
    p = Probe(m, 1)
    stall0 = m.pes[1].stats.bus_stall_cycles
    m.read(1, "a", 0)
    assert m.protocol.state(0, ln) == "S"
    assert m.protocol.state(1, ln) == "S"
    assert p.events == [("coh_wb", 0, ln, "downgrade"),
                        ("bus_tx", 1, "busrd", ln, 1)]
    stall = m.pes[1].stats.bus_stall_cycles - stall0
    supply = 4 * m.params.line_words + m.params.n_pes + 1
    assert p.cost == stall + m.params.bus_cycle + supply
    assert m.pes[1].stats.c2c_transfers == 1
    assert m.pes[0].stats.writebacks == 1


@mesi_cell("M", "BusRdX")
def _m_busrdx():
    # Write-miss against a dirty remote copy: flush + invalidate.
    m = make("mesi")
    ln = line(m, 0)
    to_M(m, 0, 0)
    p = Probe(m, 1)
    m.write(1, "a", 0, 6.0)
    assert m.protocol.state(0, ln) == "I"
    assert m.protocol.state(1, ln) == "M"
    assert ("bus_tx", 1, "busrdx", ln, 1) in p.events
    assert ("coh_wb", 0, ln, "evict") in p.events
    assert ("coh_inval", 1, ln, 1) in p.events
    assert m.pes[1].stats.c2c_transfers == 1


@mesi_cell("M", "BusUpgr")
def _m_busupgr():
    # Invariant cell: M is exclusive — no peer sharer exists to upgrade.
    m = make("mesi")
    to_M(m, 0, 0)
    assert m.protocol._live_others(0, line(m, 0)) == []


@mesi_cell("M", "Evict")
def _m_evict():
    # Dirty victim: the one eviction that costs a writeback.
    m = make("mesi", cache_bytes=128)
    ln = line(m, 0)
    to_M(m, 0, 0)
    p = Probe(m, 0)
    m.read(0, "a", 16)  # line 5 conflicts
    assert m.protocol.state(0, ln) == "I"
    assert ("coh_wb", 0, ln, "evict") in p.events
    assert m.pes[0].stats.writebacks == 1


def test_mesi_table_complete():
    want = {(s, e) for s in MESI_STATES for e in MESI_EVENTS}
    assert set(MESI_CELLS) == want


@pytest.mark.parametrize("state,event", sorted(MESI_CELLS))
def test_mesi_cell(state, event):
    MESI_CELLS[(state, event)]()


# -- directory transition table --------------------------------------------
DIR_STATES = ("M", "S", "I")
DIR_EVENTS = ("PrRd", "PrWr", "RemoteRd", "RemoteWr", "Evict")
DIR_CELLS = {}


def dir_cell(state, event):
    def deco(fn):
        DIR_CELLS[(state, event)] = fn
        return fn
    return deco


@dir_cell("I", "PrRd")
def _d_i_prrd():
    # Clean read miss: 2 messages (request + data), home memory supplies.
    m = make("dir")
    ln = line(m, 0)
    p = Probe(m, 0)
    m.read(0, "a", 0)  # home == requester == PE0
    assert m.protocol.state(0, ln) == "S"
    assert p.events == [("dir_req", 0, "rd", ln, 0, 2, 0, 0)]
    assert p.cost == (2 * msg(m, 0, 0) + m.params.dir_proc
                      + m.params.local_mem)
    assert m.protocol.entries[ln].sharers == {0}
    assert not m.protocol.entries[ln].dirty


@dir_cell("I", "PrWr")
def _d_i_prwr():
    # Write miss, no sharers: request + data, entry goes dirty/owned.
    m = make("dir")
    ln = line(m, 0)
    p = Probe(m, 0)
    m.write(0, "a", 0, 1.5)
    assert m.protocol.state(0, ln) == "M"
    assert p.events == [("dir_req", 0, "rdx", ln, 0, 2, 0, 0)]
    assert p.cost == (2 * msg(m, 0, 0) + m.params.dir_proc
                      + m.params.local_mem + m.params.write_local)
    entry = m.protocol.entries[ln]
    assert entry.dirty and entry.owner == 0 and entry.sharers == {0}
    assert m.read(0, "a", 0) == 1.5  # write-allocated


@dir_cell("I", "RemoteRd")
def _d_i_remoterd():
    m = make("dir")
    m.read(1, "a", 0)
    assert m.protocol.state(0, line(m, 0)) == "I"


@dir_cell("I", "RemoteWr")
def _d_i_remotewr():
    m = make("dir")
    p = Probe(m, 1)
    m.write(1, "a", 0, 1.0)
    assert m.protocol.state(0, line(m, 0)) == "I"
    assert [e for e in p.events if e[0] == "coh_inval"] == []


@dir_cell("I", "Evict")
def _d_i_evict():
    m = make("dir", cache_bytes=128)
    p = Probe(m, 0)
    m.read(0, "a", 0)
    assert [e for e in p.events if e[0] == "coh_wb"] == []


@dir_cell("S", "PrRd")
def _d_s_prrd():
    m = make("dir")
    to_S(m, 0, 1, 0)
    p = Probe(m, 0)
    m.read(0, "a", 0)
    assert p.events == []
    assert p.cost == m.params.cache_hit


@dir_cell("S", "PrWr")
def _d_s_prwr():
    # Ownership upgrade: invalidation round to the other sharer, then ack.
    m = make("dir")
    ln = line(m, 0)
    to_S(m, 0, 1, 0)
    p = Probe(m, 0)
    stall0 = m.pes[0].stats.dir_stall_cycles
    m.write(0, "a", 0, 2.0)
    assert m.protocol.state(0, ln) == "M"
    assert m.protocol.state(1, ln) == "I"
    # req/ack + (inval + ack) for one sharer = 4 messages
    assert p.events == [("dir_req", 0, "upgr", ln, 0, 4, 0, 0),
                        ("coh_inval", 0, ln, 1)]
    stall = m.pes[0].stats.dir_stall_cycles - stall0
    assert p.cost == (stall + 2 * msg(m, 0, 0) + m.params.dir_proc
                      + msg(m, 0, 1) + msg(m, 1, 0)
                      + m.params.write_local)
    entry = m.protocol.entries[ln]
    assert entry.dirty and entry.owner == 0 and entry.sharers == {0}


@dir_cell("S", "RemoteRd")
def _d_s_remoterd():
    m = make("dir")
    to_S(m, 0, 1, 0)
    m.read(2, "a", 0)
    for pe in (0, 1, 2):
        assert m.protocol.state(pe, line(m, 0)) == "S"
    assert m.protocol.entries[line(m, 0)].sharers == {0, 1, 2}


@dir_cell("S", "RemoteWr")
def _d_s_remotewr():
    m = make("dir")
    ln = line(m, 0)
    to_S(m, 0, 1, 0)
    p = Probe(m, 2)
    m.write(2, "a", 0, 1.0)
    assert m.protocol.state(0, ln) == "I"
    assert m.protocol.state(1, ln) == "I"
    assert m.protocol.state(2, ln) == "M"
    assert ("coh_inval", 2, ln, 2) in p.events


@dir_cell("S", "Evict")
def _d_s_evict():
    # Silent eviction leaves a stale pointer at the directory: the next
    # writer still pays the invalidate message, but no live copy dies.
    m = make("dir", cache_bytes=128)
    ln = line(m, 0)
    to_S(m, 0, 1, 0)
    m.read(0, "a", 16)  # evicts PE0's copy of line 1, directory unaware
    assert m.protocol.state(0, ln) == "I"
    assert m.protocol.entries[ln].sharers == {0, 1}  # stale superset
    p = Probe(m, 1)
    m.write(1, "a", 0, 9.0)
    event = [e for e in p.events if e[0] == "dir_req"][0]
    assert event[5] == 4  # messages still count the dead pointer
    assert ("coh_inval", 1, ln, 0) not in p.events  # but only live copies
    assert [e for e in p.events if e[0] == "coh_inval"] == []


@dir_cell("M", "PrRd")
def _d_m_prrd():
    m = make("dir")
    to_M(m, 0, 0)
    p = Probe(m, 0)
    m.read(0, "a", 0)
    assert p.events == []
    assert p.cost == m.params.cache_hit


@dir_cell("M", "PrWr")
def _d_m_prwr():
    # Owner write: directory-silent.
    m = make("dir")
    to_M(m, 0, 0)
    p = Probe(m, 0)
    m.write(0, "a", 0, 3.0)
    assert p.events == []
    assert p.cost == m.params.write_local


@dir_cell("M", "RemoteRd")
def _d_m_remoterd():
    # 4-hop read of a dirty line: forward, c2c data, sharing writeback.
    m = make("dir")
    ln = line(m, 0)
    to_M(m, 0, 0)
    p = Probe(m, 1)
    stall0 = m.pes[1].stats.dir_stall_cycles
    m.read(1, "a", 0)
    assert m.protocol.state(0, ln) == "S"
    assert m.protocol.state(1, ln) == "S"
    assert p.events == [("coh_wb", 0, ln, "downgrade"),
                        ("dir_req", 1, "rd", ln, 0, 4, 1, 0)]
    stall = m.pes[1].stats.dir_stall_cycles - stall0
    assert p.cost == (stall + msg(m, 1, 0) + m.params.dir_proc
                      + msg(m, 0, 0) + msg(m, 0, 1)
                      + m.params.line_words)
    entry = m.protocol.entries[ln]
    assert not entry.dirty and entry.sharers == {0, 1}
    assert m.pes[1].stats.c2c_transfers == 1


@dir_cell("M", "RemoteWr")
def _d_m_remotewr():
    # Ownership steal: the old owner flushes c2c and is invalidated.
    m = make("dir")
    ln = line(m, 0)
    to_M(m, 0, 0)
    p = Probe(m, 1)
    m.write(1, "a", 0, 7.0)
    assert m.protocol.state(0, ln) == "I"
    assert m.protocol.state(1, ln) == "M"
    assert ("coh_wb", 0, ln, "evict") in p.events
    assert ("coh_inval", 1, ln, 1) in p.events
    event = [e for e in p.events if e[0] == "dir_req"][0]
    assert event[2] == "rdx" and event[6] == 1  # c2c supply
    entry = m.protocol.entries[ln]
    assert entry.dirty and entry.owner == 1
    assert m.pes[1].stats.c2c_transfers == 1


@dir_cell("M", "Evict")
def _d_m_evict():
    # Dirty victim: writeback; the stale dirty bit reconciles on the
    # next request (memory supplies, 2 messages, no forward).
    m = make("dir", cache_bytes=128)
    ln = line(m, 0)
    to_M(m, 0, 0)
    p = Probe(m, 0)
    m.read(0, "a", 16)
    assert m.protocol.state(0, ln) == "I"
    assert ("coh_wb", 0, ln, "evict") in p.events
    p2 = Probe(m, 1)
    m.read(1, "a", 0)
    event = [e for e in p2.events if e[0] == "dir_req"][0]
    assert event[5] == 2 and event[6] == 0  # clean 2-message supply
    assert not m.protocol.entries[ln].dirty


def test_directory_table_complete():
    want = {(s, e) for s in DIR_STATES for e in DIR_EVENTS}
    assert set(DIR_CELLS) == want


@pytest.mark.parametrize("state,event", sorted(DIR_CELLS))
def test_directory_cell(state, event):
    DIR_CELLS[(state, event)]()


# -- cross-PE scenarios ----------------------------------------------------
def test_bus_arbitration_second_requester_stalls():
    """Two transactions from clock 0: the second pays the first one's
    bus occupancy (address phase + line_words data beats) as stall."""
    m = make("mesi")
    m.read(0, "a", 0)   # PE0 clock was 0; bus busy for bus_cycle + lw
    m.read(1, "a", 8)   # PE1 also starts at clock 0
    occupancy = m.params.bus_cycle + m.params.line_words
    assert m.pes[0].stats.bus_stall_cycles == 0
    assert m.pes[1].stats.bus_stall_cycles == occupancy
    assert m.protocol.bus.transactions == 2


def test_mesi_write_after_read_sharing_chain():
    """Reader caches a line, writer invalidates it, reader re-misses to
    fresh data — zero stale reads, by construction."""
    m = make("mesi")
    assert m.read(1, "a", 0) == 0.0
    m.write(0, "a", 0, 42.0)
    misses0 = m.pes[1].stats.cache_misses
    assert m.read(1, "a", 0) == 42.0   # physically invalidated: re-miss
    assert m.pes[1].stats.cache_misses == misses0 + 1
    assert m.stats.stale_reads == 0


def test_dir_lp_pointer_overflow_broadcasts():
    """More sharers than dir_ptr_limit pointers flips the broadcast bit;
    the next write invalidates by broadcast (fanout P-1)."""
    m = make("dir-lp", n_pes=8)
    ln = line(m, 0)
    limit = m.params.dir_ptr_limit
    readers = list(range(1, limit + 3))  # 6 sharers > 4 pointers
    for pe in readers:
        m.read(pe, "a", 0)
    entry = m.protocol.entries[ln]
    assert entry.bcast
    p = Probe(m, 0)
    m.write(0, "a", 0, 1.0)
    assert ("dir_bcast", 0, ln, m.params.n_pes - 1) in p.events
    assert ("coh_inval", 0, ln, len(readers)) in p.events
    event = [e for e in p.events if e[0] == "dir_req"][0]
    assert event[5] == 2 + 2 * (m.params.n_pes - 1)  # bcast message bill
    assert m.pes[0].stats.dir_broadcasts == 1
    for pe in readers:
        assert m.protocol.state(pe, ln) == "I"
    assert not m.protocol.entries[ln].bcast  # reset after the round


def test_dir_pp_priority_bypasses_home_occupancy():
    """Back-to-back requests to one home: the plain directory stalls the
    second requester behind the controller, phase-priority services it
    eagerly and counts the bypass."""
    plain = make("dir")
    plain.read(1, "a", 0)
    plain.read(2, "a", 4)   # same home (PE0), same start clock
    assert plain.pes[2].stats.dir_stall_cycles == plain.params.dir_proc
    assert plain.pes[2].stats.priority_bypasses == 0

    pp = make("dir-pp")
    pp.read(1, "a", 0)
    pp.read(2, "a", 4)
    assert pp.pes[2].stats.dir_stall_cycles == 0
    assert pp.pes[2].stats.priority_bypasses == 1
    assert pp.pes[2].clock < plain.pes[2].clock


def test_dir_pp_phase_counter_tracks_barriers():
    m = make("dir-pp")
    assert m.protocol.phase == 0
    m.barrier()
    m.barrier()
    assert m.protocol.phase == 2


def test_dir_home_assignment_is_sticky():
    """A line's home is fixed at first touch, wherever later requests
    come from."""
    m = make("dir")
    ln = line(m, 8)        # flats 8-11 live on PE1
    m.read(3, "a", 8)
    assert m.protocol.home_of[ln] == 1
    m.write(2, "a", 8, 1.0)
    assert m.protocol.home_of[ln] == 1


def test_protocol_reset_restores_cold_state():
    m = make("mesi")
    m.write(0, "a", 0, 1.0)
    m.read(1, "a", 0)
    m.protocol.reset()
    assert m.protocol.holders == {}
    assert m.protocol.bus.free_at == 0.0 and m.protocol.bus.transactions == 0
    d = make("dir-lp", n_pes=8)
    for pe in range(6):
        d.read(pe, "a", 0)
    d.write(7, "a", 0, 1.0)
    d.protocol.reset()
    assert d.protocol.entries == {} and d.protocol.home_of == {}
    assert d.protocol.free_at == [0.0] * 8


def test_fault_eviction_reconciles_lazily():
    """A line yanked behind the protocol's back (as eviction-storm
    faults do) reads as I and re-misses cleanly."""
    m = make("mesi")
    ln = line(m, 0)
    to_M(m, 0, 0)
    m.pes[0].cache.invalidate_line(ln)   # simulate a fault eviction
    assert m.protocol.state(0, ln) == "I"
    assert m.read(0, "a", 0) == 1.0      # fresh from memory, no stale
    assert m.stats.stale_reads == 0
