"""Vectorised trace-driven cache evaluation: exactness against the
reference cache model, plus the analysis helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.cache import DirectMappedCache
from repro.machine.fastcache import (INSTALL, INVALIDATE, OUT_HIT, OUT_MISS,
                                     OUT_NA, READ, WRITE, classify_read_trace,
                                     classify_trace, conflict_profile,
                                     miss_rate_vs_cache_size)
from repro.machine.params import t3d

PARAMS = t3d(1, cache_bytes=256)  # 8 sets x 4 words


def reference_outcomes(addrs, kinds):
    """Drive the reference DirectMappedCache event by event."""
    cache = DirectMappedCache(PARAMS)
    data = np.zeros(PARAMS.line_words)
    vers = np.zeros(PARAMS.line_words, dtype=np.int64)
    out = []
    for addr, kind in zip(addrs, kinds):
        line = addr // PARAMS.line_words
        if kind == READ:
            if cache.read(addr) is None:
                out.append(OUT_MISS)
                cache.install(line, data, vers)
            else:
                out.append(OUT_HIT)
        elif kind == WRITE:
            cache.write_through_update(addr, 0.0, 0)
            out.append(OUT_NA)
        elif kind == INSTALL:
            cache.install(line, data, vers)
            out.append(OUT_NA)
        else:
            cache.invalidate_line(line)
            out.append(OUT_NA)
    return np.array(out, dtype=np.int8)


class TestExactness:
    def test_simple_reuse(self):
        addrs = np.array([0, 1, 2, 3, 0, 4, 0])
        result = classify_read_trace(addrs, PARAMS)
        # first touch misses, same-line touches hit
        assert result.outcomes.tolist() == [OUT_MISS, OUT_HIT, OUT_HIT,
                                            OUT_HIT, OUT_HIT, OUT_MISS, OUT_HIT]

    def test_conflict_thrash(self):
        # lines 0 and 8 share set 0 (8 sets): alternating reads all miss
        addrs = np.array([0, 32, 0, 32, 0], dtype=np.int64)
        result = classify_read_trace(addrs, PARAMS)
        assert result.hits == 0 and result.misses == 5

    def test_empty_trace(self):
        result = classify_read_trace(np.array([], dtype=np.int64), PARAMS)
        assert result.reads == 0 and result.hit_rate == 0.0

    def test_writes_do_not_allocate(self):
        addrs = np.array([0, 0, 0])
        kinds = np.array([WRITE, READ, READ], dtype=np.int8)
        result = classify_trace(addrs, kinds, PARAMS)
        assert result.outcomes.tolist() == [OUT_NA, OUT_MISS, OUT_HIT]

    def test_invalidate_forces_miss(self):
        addrs = np.array([0, 0, 0, 0])
        kinds = np.array([READ, INVALIDATE, READ, READ], dtype=np.int8)
        result = classify_trace(addrs, kinds, PARAMS)
        assert result.outcomes.tolist() == [OUT_MISS, OUT_NA, OUT_MISS, OUT_HIT]

    def test_invalidate_of_absent_line_is_noop(self):
        addrs = np.array([0, 32, 0], dtype=np.int64)  # set 0 holds line 8
        kinds = np.array([READ, INVALIDATE, READ], dtype=np.int8)
        result = classify_trace(addrs, kinds, PARAMS)
        # the invalidate names line 8 which IS resident... make it absent:
        addrs2 = np.array([0, 33 * 4, 0], dtype=np.int64)  # line 33: set 1
        kinds2 = np.array([READ, INVALIDATE, READ], dtype=np.int8)
        result2 = classify_trace(addrs2, kinds2, PARAMS)
        assert result2.outcomes[2] == OUT_HIT

    def test_install_prefills(self):
        addrs = np.array([0, 0])
        kinds = np.array([INSTALL, READ], dtype=np.int8)
        result = classify_trace(addrs, kinds, PARAMS)
        assert result.outcomes[1] == OUT_HIT

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            classify_trace(np.array([0, 1]), np.array([READ], dtype=np.int8),
                           PARAMS)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 127)),
                    min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_equivalence_with_reference(self, events):
        kinds = np.array([k for k, _ in events], dtype=np.int8)
        addrs = np.array([a for _, a in events], dtype=np.int64)
        fast = classify_trace(addrs, kinds, PARAMS)
        ref = reference_outcomes(addrs, kinds)
        assert fast.outcomes.tolist() == ref.tolist()

    @given(st.lists(st.integers(0, 127), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_pure_read_path_matches_general_path(self, raw):
        addrs = np.array(raw, dtype=np.int64)
        fast = classify_read_trace(addrs, PARAMS)
        general = classify_trace(addrs, None, PARAMS)
        assert fast.outcomes.tolist() == general.outcomes.tolist()
        assert fast.hits == general.hits


class TestMultiPEPlane:
    """``classify_events_multi``: the stacked ``(n_pes, n_lines)``
    classify behind the plane recorder's crosscheck must be bit-exact
    against per-PE classification AND against ``n_pes`` independent
    reference ``DirectMappedCache`` replays."""

    @given(
        n_pes=st.integers(min_value=1, max_value=8),
        events=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 3),
                                  st.integers(0, 31)),
                        min_size=1, max_size=300),
        warm=st.lists(st.integers(0, 31), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_multi_matches_per_pe_and_reference(self, n_pes, events, warm):
        from repro.machine.batchops import (classify_events,
                                            classify_events_multi)

        n_lines = PARAMS.n_lines
        data = np.zeros(PARAMS.line_words)
        vers = np.zeros(PARAMS.line_words, dtype=np.int64)
        # Warm a scattering of sets so initial_tags exercises non-cold rows.
        tags0 = np.full((n_pes, n_lines), -1, dtype=np.int64)
        for i, line in enumerate(warm):
            tags0[i % n_pes, line % n_lines] = line
        pe_of = np.array([p % n_pes for p, _, _ in events], dtype=np.int64)
        kinds = np.array([k for _, k, _ in events], dtype=np.int8)
        lines = np.array([ln for _, _, ln in events], dtype=np.int64)

        multi = classify_events_multi(lines, kinds, pe_of, n_lines, tags0)

        # One single-cache classify per PE must agree element-wise.
        for pe in range(n_pes):
            mask = pe_of == pe
            single = classify_events(lines[mask], kinds[mask], n_lines,
                                     initial_tags=tags0[pe])
            assert multi.outcomes[mask].tolist() == single.outcomes.tolist()
            assert multi.present[mask].tolist() == single.present.tolist()

        # The reference model: n_pes independent DirectMappedCaches
        # driven event by event in trace order.
        caches = []
        for pe in range(n_pes):
            cache = DirectMappedCache(PARAMS)
            for line in tags0[pe][tags0[pe] >= 0].tolist():
                cache.install(line, data, vers)
            caches.append(cache)
        out = []
        for pe, kind, line in zip(pe_of.tolist(), kinds.tolist(),
                                  lines.tolist()):
            cache = caches[pe]
            addr = line * PARAMS.line_words
            if kind == READ:
                if cache.read(addr) is None:
                    out.append(OUT_MISS)
                    cache.install(line, data, vers)
                else:
                    out.append(OUT_HIT)
            elif kind == WRITE:
                cache.write_through_update(addr, 0.0, 0)
                out.append(OUT_NA)
            elif kind == INSTALL:
                cache.install(line, data, vers)
                out.append(OUT_NA)
            else:
                cache.invalidate_line(line)
                out.append(OUT_NA)
        assert multi.outcomes.tolist() == out

        # changed_sets come back in plane coordinates (pe * n_lines + set)
        # and must reconstruct every final tag array exactly.
        final = tags0.copy().reshape(-1)
        final[multi.changed_sets] = multi.changed_lines
        final = final.reshape(n_pes, n_lines)
        for pe in range(n_pes):
            assert final[pe].tolist() == caches[pe].tags.tolist()


class TestAnalysisHelpers:
    def test_miss_rate_decreases_with_cache_size(self):
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 4096, size=4000)
        curve = miss_rate_vs_cache_size(addrs, PARAMS,
                                        (256, 1024, 8192, 65536))
        rates = list(curve.values())
        assert rates == sorted(rates, reverse=True)

    def test_streaming_miss_rate_is_one_per_line(self):
        addrs = np.arange(4096, dtype=np.int64)
        result = classify_read_trace(addrs, PARAMS)
        assert result.misses == 4096 // PARAMS.line_words

    def test_conflict_profile_finds_power_of_two_aliasing(self):
        # two arrays whose columns are exactly one cache apart: every
        # paired access lands in the same set
        stride = PARAMS.cache_words
        pairs = []
        for i in range(64):
            pairs += [i % 4, stride + i % 4]
        addrs = np.array(pairs, dtype=np.int64)
        worst, counts = conflict_profile(addrs, PARAMS, top=3)
        assert counts[0] > 100  # set 0 thrashes on nearly every access

    def test_per_set_misses_sum_to_total(self):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1024, size=500)
        result = classify_read_trace(addrs, PARAMS)
        assert result.per_set_misses(PARAMS.n_lines).sum() == result.misses


class TestVpentaPathology:
    def test_explains_the_aliasing_cliff(self):
        """With 32x32x8B arrays each array is exactly one 8 KB cache, so
        same-(i,j) elements of consecutive arrays collide in one set —
        the fast evaluator shows the cliff directly."""
        params = t3d(1, cache_bytes=8192)
        n = 32
        arrays = 7
        array_words = n * n
        # trace: for each (i, j), touch the 7 arrays' (i, j) elements
        element = np.arange(n * 4)  # a row-walk of 4 columns
        base = np.arange(arrays) * array_words
        addrs32 = (element[:, None] + base[None, :]).ravel()
        bad = classify_read_trace(addrs32, params)

        array_words33 = 33 * 33 + (4 - (33 * 33) % 4) % 4  # line padded
        base33 = np.arange(arrays) * array_words33
        addrs33 = (element[:, None] + base33[None, :]).ravel()
        good = classify_read_trace(addrs33, params)
        assert bad.hit_rate < 0.2
        assert good.hit_rate > 0.7
