"""Machine parameters and statistics plumbing."""

import pytest

from repro.machine.params import MachineParams, sequential_params, t3d
from repro.machine.stats import MachineStats, PEStats


class TestParams:
    def test_derived_geometry(self):
        params = t3d(8)
        assert params.line_words == 4
        assert params.n_lines == 256
        assert params.cache_words == 1024

    def test_line_elems(self):
        params = t3d(1)
        assert params.line_elems(8) == 4
        assert params.line_elems(4) == 8
        assert params.line_elems(64) == 1  # never below one element

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineParams(n_pes=0)
        with pytest.raises(ValueError):
            MachineParams(line_bytes=30)
        with pytest.raises(ValueError):
            MachineParams(cache_bytes=100, line_bytes=32)

    def test_with_override(self):
        params = t3d(4)
        variant = params.with_(remote_base=500)
        assert variant.remote_base == 500
        assert variant.n_pes == 4
        assert params.remote_base != 500  # frozen original untouched

    def test_barrier_cost_scaling(self):
        assert t3d(1).barrier_cost() == 0
        assert t3d(4).barrier_cost() < t3d(64).barrier_cost()

    def test_sequential_params(self):
        seq = sequential_params(t3d(16, remote_base=77))
        assert seq.n_pes == 1
        assert seq.remote_base == 77

    def test_t3d_with_overrides(self):
        params = t3d(8, cache_bytes=1024)
        assert params.cache_bytes == 1024 and params.n_pes == 8


class TestStats:
    def test_merge(self):
        a = PEStats(reads=3, cache_hits=2, busy_cycles=10.0)
        b = PEStats(reads=4, cache_hits=1, busy_cycles=5.0)
        a.merge(b)
        assert a.reads == 7 and a.cache_hits == 3 and a.busy_cycles == 15.0

    def test_merge_rejects_non_pestats(self):
        with pytest.raises(TypeError, match="merge expects PEStats"):
            PEStats().merge({"reads": 3})

    def test_add_bulk(self):
        stats = PEStats(reads=1)
        stats.add_bulk(reads=4, cache_hits=2, idle_cycles=3.5)
        assert stats.reads == 5 and stats.cache_hits == 2
        assert stats.idle_cycles == 3.5

    def test_add_bulk_rejects_unknown_counter(self):
        stats = PEStats()
        with pytest.raises(ValueError, match="unknown PEStats counter"):
            stats.add_bulk(reads=1, cache_hit=1)   # typo: singular
        # a method name must not be silently shadowed by the typo path
        with pytest.raises(ValueError, match="hit_rate"):
            stats.add_bulk(hit_rate=1)
        assert stats.reads == 1  # earlier valid names in the call applied

    def test_hit_rate(self):
        stats = PEStats(cache_hits=3, cache_misses=1)
        assert stats.hit_rate == 0.75
        assert PEStats().hit_rate == 0.0

    def test_machine_total(self):
        machine = MachineStats(per_pe=[PEStats(reads=1), PEStats(reads=2)])
        assert machine.total().reads == 3

    def test_as_dict_includes_machine_fields(self):
        machine = MachineStats(per_pe=[PEStats()], stale_reads=5, epochs=2)
        d = machine.as_dict()
        assert d["stale_reads"] == 5 and d["epochs"] == 2

    def test_summary_text(self):
        machine = MachineStats(per_pe=[PEStats(reads=10, cache_hits=5,
                                               cache_misses=5)])
        text = machine.summary()
        assert "reads=10" in text and "hit_rate=0.500" in text
