"""Machine-level semantics: reads/writes/prefetches, timing, and the
exact stale-read checker."""

import numpy as np
import pytest

from repro.ir.arrays import ArrayDecl, REPLICATED
from repro.machine.machine import Machine, StaleReadError
from repro.machine.params import t3d


def make_machine(n_pes=4, on_stale="record", **over):
    over.setdefault("cache_bytes", 512)
    params = t3d(n_pes, **over)
    decls = [ArrayDecl("a", (4, 8)), ArrayDecl("w", (8,), dist=REPLICATED)]
    return Machine(decls, params, on_stale=on_stale)


class TestReadsAndWrites:
    def test_read_returns_written_value(self):
        m = make_machine()
        m.write(0, "a", 5, 3.25)
        assert m.read(0, "a", 5) == 3.25

    def test_miss_then_hit_timing(self):
        m = make_machine()
        t0 = m.pes[0].clock
        m.read(0, "a", 0)  # miss (local: column 1 owned by PE 0)
        t1 = m.pes[0].clock
        m.read(0, "a", 0)  # hit
        t2 = m.pes[0].clock
        assert t1 - t0 == m.params.local_mem
        assert t2 - t1 == m.params.cache_hit

    def test_spatial_locality_within_line(self):
        m = make_machine()
        m.read(0, "a", 0)
        before = m.pes[0].stats.cache_misses
        m.read(0, "a", 1)  # same 4-word line
        assert m.pes[0].stats.cache_misses == before

    def test_remote_read_charges_network(self):
        m = make_machine()
        m.read(0, "a", 31)  # column 8 owned by PE 3
        assert m.pes[0].clock >= m.params.remote_base
        assert m.pes[0].stats.remote_fills == 1

    def test_uncached_read_does_not_install(self):
        m = make_machine()
        m.read(0, "a", 0, cacheable=False)
        assert m.pes[0].cache.occupancy() == 0
        assert m.pes[0].stats.uncached_local_reads == 1

    def test_bypass_read_is_fresh_and_uncached(self):
        m = make_machine()
        m.read(0, "a", 0)           # install line
        m.write(1, "a", 0, 7.0)     # remote write makes PE0's line stale
        value = m.read(0, "a", 0, bypass=True)
        assert value == 7.0
        assert m.stats.stale_reads == 0

    def test_craft_overhead_added(self):
        m = make_machine()
        m.read(0, "a", 0, cacheable=False, craft=True)
        assert m.pes[0].clock == (m.params.uncached_local_read
                                  + m.params.craft_shared_ref_overhead)

    def test_private_arrays_are_per_pe(self):
        m = make_machine()
        m.write(0, "w", 2, 1.0)
        m.write(1, "w", 2, 2.0)
        assert m.read(0, "w", 2) == 1.0
        assert m.read(1, "w", 2) == 2.0

    def test_write_through_updates_own_cache(self):
        m = make_machine()
        m.read(0, "a", 0)
        m.write(0, "a", 0, 5.5)
        before = m.pes[0].stats.cache_misses
        assert m.read(0, "a", 0) == 5.5
        assert m.pes[0].stats.cache_misses == before  # still a hit
        assert m.stats.stale_reads == 0


class TestStaleness:
    def test_remote_write_leaves_stale_copy(self):
        m = make_machine()
        m.read(0, "a", 16)          # PE0 caches column 5 (owned by PE2)
        m.write(2, "a", 16, 42.0)   # the owner updates it
        value = m.read(0, "a", 16)  # PE0 still sees the old value
        assert value != 42.0
        assert m.stats.stale_reads == 1
        assert m.pes[0].stats.stale_hits == 1
        assert not m.coherent()

    def test_strict_mode_raises(self):
        m = make_machine(on_stale="raise")
        m.read(0, "a", 16)
        m.write(2, "a", 16, 42.0)
        with pytest.raises(StaleReadError):
            m.read(0, "a", 16)

    def test_invalidate_restores_coherence(self):
        m = make_machine()
        m.read(0, "a", 16)
        m.write(2, "a", 16, 42.0)
        m.invalidate(0, "a", 16, 16)
        assert m.read(0, "a", 16) == 42.0
        assert m.coherent()

    def test_stale_examples_recorded(self):
        m = make_machine()
        m.read(0, "a", 16)
        m.write(2, "a", 16, 1.0)
        m.read(0, "a", 16)
        assert "PE0" in m.stats.stale_examples[0]


class TestPrefetchLine:
    def test_prefetch_hides_latency(self):
        m = make_machine()
        assert m.prefetch_line(0, "a", 31)  # remote line
        # burn cycles doing unrelated local work while the line flies
        for _ in range(200):
            m.read(0, "a", 0)
        t_before = m.pes[0].clock
        value = m.read(0, "a", 31)
        cost = m.pes[0].clock - t_before
        assert cost <= m.params.prefetch_extract + m.params.cache_hit
        assert m.pes[0].stats.prefetch_extracted == 1

    def test_prefetch_invalidates_stale_line_first(self):
        m = make_machine()
        m.read(0, "a", 16)
        m.write(2, "a", 16, 9.0)
        m.prefetch_line(0, "a", 16)
        assert m.read(0, "a", 16) == 9.0
        assert m.coherent()

    def test_early_use_waits_for_arrival(self):
        m = make_machine()
        m.prefetch_line(0, "a", 31)
        t0 = m.pes[0].clock
        m.read(0, "a", 31)  # immediately: must stall till arrival
        assert m.pes[0].clock - t0 > m.params.prefetch_extract
        assert m.pes[0].stats.prefetch_late_cycles > 0

    def test_queue_full_drops(self):
        m = make_machine(prefetch_queue_slots=2)
        results = [m.prefetch_line(0, "a", k * 4) for k in (1, 3, 5)]
        assert results == [True, True, False]
        assert m.pes[0].stats.pf_dropped == 1

    def test_dropped_prefetch_still_coherent(self):
        m = make_machine(prefetch_queue_slots=1)
        m.read(0, "a", 16)
        m.write(2, "a", 16, 9.0)
        m.prefetch_line(0, "a", 28)     # fills the only slot
        m.prefetch_line(0, "a", 16)     # dropped, but invalidated first
        assert m.read(0, "a", 16) == 9.0
        assert m.coherent()

    def test_coalesces_same_line(self):
        m = make_machine()
        m.prefetch_line(0, "a", 16)
        m.prefetch_line(0, "a", 17)  # same line
        assert m.pes[0].queue.outstanding == 1

    def test_dtb_setup_charged_on_target_change(self):
        m = make_machine()
        m.prefetch_line(0, "a", 16)  # owner PE2: DTB setup
        setups0 = m.pes[0].stats.dtb_setups
        m.prefetch_line(0, "a", 20)  # column 6, still PE2: no new setup
        m.prefetch_line(0, "a", 31)  # PE3: setup again
        assert setups0 == 1
        assert m.pes[0].stats.dtb_setups == 2


class TestVectorPrefetch:
    def test_vector_installs_fresh_lines(self):
        m = make_machine()
        m.read(0, "a", 16)
        m.write(2, "a", 16, 4.0)
        m.prefetch_vector(0, "a", 16, 8)  # columns 5-6
        # give the transfer time to complete
        m.pes[0].advance(10_000)
        assert m.read(0, "a", 16) == 4.0
        assert m.coherent()

    def test_racing_read_stalls_until_completion(self):
        m = make_machine()
        m.prefetch_vector(0, "a", 16, 8)
        t0 = m.pes[0].clock
        m.read(0, "a", 17)
        stall = m.pes[0].stats.vector_stall_cycles
        assert stall > 0
        assert m.pes[0].clock >= t0 + stall

    def test_strided_vector_counts_touched_lines(self):
        m = make_machine()
        # row access: stride 4 elements = exactly one line per element
        m.prefetch_vector(0, "a", 0, 8, stride=4)
        m.pes[0].advance(10_000)
        hits_before = m.pes[0].stats.cache_hits
        m.read(0, "a", 12)
        assert m.pes[0].stats.cache_hits == hits_before + 1

    def test_out_of_bounds_rejected(self):
        m = make_machine()
        with pytest.raises(IndexError):
            m.prefetch_vector(0, "a", 30, 10)

    def test_oversized_vector_rejected(self):
        m = make_machine(cache_bytes=64)  # 2 lines
        with pytest.raises(ValueError, match="lines"):
            m.prefetch_vector(0, "a", 0, 32)

    def test_outstanding_vector_limit_stalls(self):
        m = make_machine(max_outstanding_vectors=1)
        m.prefetch_vector(0, "a", 0, 8)
        stall_before = m.pes[0].stats.vector_stall_cycles
        m.prefetch_vector(0, "a", 16, 8)
        assert m.pes[0].stats.vector_stall_cycles > stall_before


class TestBarrier:
    def test_barrier_aligns_clocks(self):
        m = make_machine()
        m.pes[2].advance(500)
        m.barrier()
        clocks = {pe.clock for pe in m.pes}
        assert len(clocks) == 1
        assert clocks.pop() == 500 + m.params.barrier_cost()

    def test_single_pe_barrier_free(self):
        m = make_machine(n_pes=1)
        assert m.params.barrier_cost() == 0

    def test_elapsed_is_max_clock(self):
        m = make_machine()
        m.pes[1].advance(123)
        assert m.elapsed() == 123
