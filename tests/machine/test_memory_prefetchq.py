"""Memory versioning and the prefetch queue / vector unit primitives."""

import numpy as np
import pytest

from repro.ir.arrays import ArrayDecl, REPLICATED
from repro.machine.memory import Memory
from repro.machine.params import t3d
from repro.machine.prefetchq import (PrefetchEntry, PrefetchQueue,
                                     VectorTransfer, VectorUnit)

PARAMS = t3d(4, cache_bytes=512)


def make_memory():
    return Memory([ArrayDecl("a", (4, 4)), ArrayDecl("w", (4,), dist=REPLICATED)],
                  PARAMS)


class TestMemory:
    def test_initial_state(self):
        mem = make_memory()
        assert mem.read("a", 0) == 0.0
        assert mem.version("a", 0) == 0

    def test_write_bumps_version(self):
        mem = make_memory()
        v1 = mem.write("a", 3, 1.5)
        v2 = mem.write("a", 3, 2.5)
        assert (v1, v2) == (1, 2)
        assert mem.read_with_version("a", 3) == (2.5, 2)

    def test_versions_are_per_word(self):
        mem = make_memory()
        mem.write("a", 0, 1.0)
        assert mem.version("a", 0) == 1
        assert mem.version("a", 1) == 0

    def test_array_view_is_column_major(self):
        mem = make_memory()
        mem.write("a", 1, 9.0)  # flat 1 = (row 2, col 1)
        view = mem.array_view("a")
        assert view[1, 0] == 9.0

    def test_set_array_bulk(self):
        mem = make_memory()
        data = np.arange(16, dtype=float).reshape(4, 4)
        mem.set_array("a", data)
        assert np.array_equal(mem.array_view("a"), data)
        assert mem.version("a", 5) == 1  # bulk init bumps versions

    def test_private_per_pe(self):
        mem = make_memory()
        mem.write_private("w", 0, 1, 5.0)
        mem.write_private("w", 3, 1, 6.0)
        assert mem.read_private("w", 0, 1) == 5.0
        assert mem.read_private("w", 3, 1) == 6.0
        assert mem.read_private("w", 1, 1) == 0.0

    def test_snapshot_is_a_copy(self):
        mem = make_memory()
        snap = mem.snapshot()
        mem.write("a", 0, 7.0)
        assert snap["a"][0, 0] == 0.0


class TestPrefetchQueue:
    def entry(self, line, arrival=100.0):
        return PrefetchEntry(line_addr=line, array="a", arrival=arrival,
                             issued_at=0.0, home_pe=1)

    def test_fifo_capacity(self):
        queue = PrefetchQueue(t3d(1, prefetch_queue_slots=2))
        assert queue.issue(self.entry(1))
        assert queue.issue(self.entry(2))
        assert not queue.issue(self.entry(3))
        assert queue.dropped == 1 and queue.issued == 2

    def test_coalesce_counts_as_accepted(self):
        queue = PrefetchQueue(PARAMS)
        queue.issue(self.entry(5))
        assert queue.issue(self.entry(5))
        assert queue.outstanding == 1

    def test_match_and_extract(self):
        queue = PrefetchQueue(PARAMS)
        queue.issue(self.entry(5))
        entry = queue.match(5)
        assert entry is not None
        queue.extract(entry)
        assert queue.match(5) is None

    def test_reclaim_arrived(self):
        queue = PrefetchQueue(PARAMS)
        queue.issue(self.entry(1, arrival=10.0))
        queue.issue(self.entry(2, arrival=500.0))
        queue.reclaim_arrived(now=100.0)
        assert queue.match(1) is None
        assert queue.match(2) is not None


class TestVectorUnit:
    def test_covers(self):
        transfer = VectorTransfer("a", 4, 8, completion=100.0)
        assert transfer.covers(4) and transfer.covers(8)
        assert not transfer.covers(9)

    def test_stall_until_slot(self):
        unit = VectorUnit(t3d(1, max_outstanding_vectors=1))
        unit.issue(VectorTransfer("a", 0, 3, completion=50.0))
        assert unit.stall_until_slot(now=10.0) == 50.0
        assert unit.stall_until_slot(now=60.0) == 60.0

    def test_match_prefers_earliest_completion(self):
        unit = VectorUnit(t3d(1, max_outstanding_vectors=4))
        unit.issue(VectorTransfer("a", 0, 10, completion=90.0))
        unit.issue(VectorTransfer("a", 5, 8, completion=40.0))
        match = unit.match(6)
        assert match is not None and match.completion == 40.0

    def test_issue_over_capacity_raises(self):
        unit = VectorUnit(t3d(1, max_outstanding_vectors=1))
        unit.issue(VectorTransfer("a", 0, 1, completion=10.0))
        with pytest.raises(RuntimeError):
            unit.issue(VectorTransfer("a", 2, 3, completion=20.0))
