"""Direct-mapped write-through cache behaviour."""

import numpy as np
import pytest

from repro.machine.cache import DirectMappedCache
from repro.machine.params import t3d


@pytest.fixture
def cache():
    # 512 B cache, 32 B lines -> 16 lines of 4 words
    return DirectMappedCache(t3d(1, cache_bytes=512))


def line_data(value=1.0, version=1, words=4):
    return (np.full(words, value), np.full(words, version, dtype=np.int64))


class TestBasics:
    def test_cold_miss(self, cache):
        assert cache.read(100) is None
        assert not cache.probe(100)

    def test_install_then_hit(self, cache):
        data, vers = line_data(2.5, 7)
        cache.install(25, data, vers)  # line 25 covers addrs 100..103
        assert cache.probe(101)
        value, version = cache.read(102)
        assert value == 2.5 and version == 7

    def test_direct_mapped_conflict_eviction(self, cache):
        data, vers = line_data()
        cache.install(3, data, vers)
        cache.install(3 + 16, data, vers)  # same set (16 lines)
        assert cache.read(3 * 4) is None
        assert cache.read((3 + 16) * 4) is not None

    def test_distinct_sets_coexist(self, cache):
        data, vers = line_data()
        cache.install(3, data, vers)
        cache.install(4, data, vers)
        assert cache.probe(12) and cache.probe(16)

    def test_occupancy(self, cache):
        data, vers = line_data()
        assert cache.occupancy() == 0
        cache.install(1, data, vers)
        cache.install(2, data, vers)
        assert cache.occupancy() == 2


class TestWriteThrough:
    def test_update_present_line(self, cache):
        data, vers = line_data(1.0, 1)
        cache.install(5, data, vers)
        assert cache.write_through_update(21, 9.0, 4)
        value, version = cache.read(21)
        assert value == 9.0 and version == 4
        # neighbouring word untouched
        assert cache.read(20) == (1.0, 1)

    def test_no_allocate_on_miss(self, cache):
        assert not cache.write_through_update(200, 1.0, 1)
        assert cache.read(200) is None


class TestInvalidation:
    def test_invalidate_line(self, cache):
        data, vers = line_data()
        cache.install(7, data, vers)
        assert cache.invalidate_line(7)
        assert cache.read(28) is None
        assert not cache.invalidate_line(7)  # already gone

    def test_invalidate_range_partial(self, cache):
        data, vers = line_data()
        for line in range(3):
            cache.install(line, data, vers)
        dropped = cache.invalidate_range(0, 5)  # lines 0 and 1
        assert dropped == 2
        assert cache.probe(8)  # line 2 still present

    def test_invalidate_huge_range_flushes(self, cache):
        data, vers = line_data()
        for line in range(4):
            cache.install(line, data, vers)
        dropped = cache.invalidate_range(0, 4 * 16 * 10)
        assert dropped == 4
        assert cache.occupancy() == 0

    def test_invalidate_range_skips_aliased_other_tags(self, cache):
        data, vers = line_data()
        cache.install(16, data, vers)  # set 0 holds line 16
        dropped = cache.invalidate_range(0, 3)  # asks for line 0 only
        assert dropped == 0
        assert cache.probe(64)

    def test_flush(self, cache):
        data, vers = line_data()
        cache.install(1, data, vers)
        cache.flush()
        assert cache.occupancy() == 0


class TestStaleData:
    def test_cache_returns_stale_values(self, cache):
        """The cache is oblivious to memory: it returns what it holds.
        (The machine-level checker is what notices version skew.)"""
        data, vers = line_data(1.0, version=1)
        cache.install(2, data, vers)
        # memory has moved to version 5 elsewhere; the cache still says v1
        value, version = cache.read(8)
        assert version == 1 and value == 1.0
