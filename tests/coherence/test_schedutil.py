"""The scheduling helper utilities: hoist blockers, substitutions,
warm-up invalidation construction."""

import pytest

import repro.ir as ir
from repro.analysis.epochs import build_epoch_graph
from repro.analysis.locality import group_spatial_groups
from repro.coherence.config import CCDPConfig
from repro.coherence.schedutil import (clamp_expr, defines_names, hoist_floor,
                                       locate, shifted_ref, sub_with,
                                       subscript_free_vars,
                                       warmup_invalidations)
from repro.ir.visitor import const_int_value
from repro.machine.params import t3d


class TestExprHelpers:
    def test_clamp_expr_folds(self):
        expr = clamp_expr(ir.IntConst(99), 1, 16)
        assert const_int_value(expr) == 16
        expr = clamp_expr(ir.IntConst(-5), 1, 16)
        assert const_int_value(expr) == 1
        expr = clamp_expr(ir.IntConst(7), 1, 16)
        assert const_int_value(expr) == 7

    def test_sub_with(self):
        ref = ir.aref("a", ir.parse_expr("i + 1"), "j")
        out = sub_with(ref, "i", ir.IntConst(4))
        assert const_int_value(out.subscripts[0]) == 5
        assert out.subscripts[1].key() == ("var", "j")

    def test_shifted_ref(self):
        ref = ir.aref("a", "i", "j")
        out = shifted_ref(ref, "i", 3)
        assert out.subscripts[0].key() == ir.parse_expr("i + 3").key()

    def test_shifted_ref_zero_is_clone(self):
        ref = ir.aref("a", "i")
        out = shifted_ref(ref, "i", 0)
        assert out is not ref and out.key() == ref.key()

    def test_subscript_free_vars(self):
        ref = ir.aref("a", ir.parse_expr("i + k"), ir.parse_expr("2 * j"))
        assert subscript_free_vars(ref) == {"i", "j", "k"}


class TestHoisting:
    def body(self):
        return [
            ir.Assign(ir.VarRef("k"), ir.IntConst(3)),
            ir.Assign(ir.aref("a", 1), ir.FloatConst(0.0)),
            ir.Assign(ir.VarRef("m"), ir.IntConst(5)),
            ir.Assign(ir.aref("b", 1), ir.aref("a", ir.VarRef("m"))),
        ]

    def test_locate_finds_nested(self):
        body = self.body()
        target = body[3].rhs
        # locate works on statements, not exprs: find the containing stmt
        assert locate(body, body[3]) == 3

    def test_defines_names(self):
        body = self.body()
        assert defines_names(body[0], {"k"})
        assert not defines_names(body[0], {"m"})
        assert defines_names(ir.CallStmt("p") if False else body[2], {"m"})

    def test_call_defines_everything(self):
        assert defines_names(ir.CallStmt("anything"), {"zz"})

    def test_hoist_stops_at_subscript_definition(self):
        body = self.body()
        ref = body[3].rhs  # a(m)
        pos = hoist_floor(body, 3, ref, floor=0)
        assert pos == 3  # cannot cross the m = 5 at index 2

    def test_hoist_stops_at_aliasing_write(self):
        body = self.body()
        ref = ir.aref("a", 1)
        # body[1] writes a(1) — the very address being prefetched; the
        # hoist must not cross it (the prefetched copy would predate it).
        pos = hoist_floor(body, 3, ref, floor=1)
        assert pos == 2

    def test_hoist_crosses_provably_distinct_write(self):
        b = ir.ProgramBuilder("p")
        decl = b.shared("a", (8,))
        b.shared("b", (8,))
        body = [
            ir.Assign(ir.VarRef("k"), ir.IntConst(3)),
            ir.Assign(ir.aref("a", 2), ir.FloatConst(0.0)),  # distinct cell
            ir.Assign(ir.aref("b", 1), ir.aref("a", 1)),
        ]
        ref = ir.aref("a", 1)
        # with the declaration available the write to a(2) is provably a
        # different address, so the hoist may cross it
        assert hoist_floor(body, 2, ref, floor=1, decl=decl) == 1
        # without the declaration there is no proof: stay conservative
        assert hoist_floor(body, 2, ref, floor=1) == 2

    def test_hoist_stops_at_parallel_epoch_boundary(self):
        b = ir.ProgramBuilder("p")
        decl = b.shared("a", (8, 8))
        b.shared("b", (8, 8))
        with b.proc("main"):
            with b.doall("j", 1, 8):
                b.assign(b.ref("a", 1, "j"), 0.0)
        doall = b.program.entry_proc.body[0]
        body = [
            ir.Assign(ir.VarRef("k"), ir.IntConst(3)),
            doall,
            ir.Assign(ir.aref("b", 1, 1), ir.aref("a", 2, 2)),
        ]
        ref = ir.aref("a", 2, 2)
        # the DOALL writes `a`: an epoch boundary no prefetch of `a` may
        # cross, even though no single write provably aliases a(2,2)
        assert hoist_floor(body, 2, ref, floor=0, decl=decl) == 2


class TestWarmupInvalidations:
    def make_group(self, offsets, n=16):
        b = ir.ProgramBuilder("p")
        b.shared("x", (n, n))
        b.shared("y", (n, n))
        with b.proc("main"):
            with b.doall("q", 1, 4):
                with b.do("i", 4, n - 4):
                    expr = ir.E(0.0)
                    for off in offsets:
                        sub = ir.E("i") + off if off else ir.E("i")
                        expr = expr + b.ref("x", sub, "q")
                    b.assign(b.ref("y", "i", "q"), expr)
        program = b.finish()
        graph = build_epoch_graph(program)
        refs = [r for r in graph.parallel_epochs()[0].reads
                if r.decl.name == "x"]
        groups, _ = group_spatial_groups(refs, "i", 4)
        loop = graph.parallel_epochs()[0].doall.body[0]
        return groups[0], loop

    def test_trailing_members_get_invalidations(self):
        group, loop = self.make_group((-1, 0, 1))
        config = CCDPConfig(machine=t3d(4, cache_bytes=1024))
        stmts, fallbacks = warmup_invalidations(group, loop, config, 4)
        assert not fallbacks
        # two trailing members behind the leading one
        assert len(stmts) == 2
        for stmt in stmts:
            assert stmt.array == "x"

    def test_no_trailing_no_invalidations(self):
        group, loop = self.make_group((0,))
        config = CCDPConfig(machine=t3d(4, cache_bytes=1024))
        stmts, fallbacks = warmup_invalidations(group, loop, config, 4)
        assert not stmts and not fallbacks
