"""Prefetch scheduling (paper Fig. 2): VPG, SP, MBP and the case
dispatch — verified both structurally and by running the transformed
programs coherently."""

import pytest

import repro.ir as ir
from repro.coherence import CCDPConfig, ccdp_transform
from repro.ir.expr import RefMode
from repro.ir.stmt import (InvalidateLines, Loop, LoopKind, PrefetchLine,
                           PrefetchVector, ScheduleKind)
from repro.machine.params import t3d
from repro.runtime import Version, run_program


def config(n_pes=4, **over):
    return CCDPConfig(machine=t3d(n_pes, cache_bytes=1024)).with_(**over)


def serial_writer(b, n):
    """Serial epoch writing all of x — stale for any parallel reader."""
    with b.do("jw", 1, n):
        with b.do("iw", 1, n):
            b.assign(b.ref("x", "iw", "jw"), ir.E("iw") * 1.0)


def parallel_writer(b, n):
    """Aligned parallel write of x — stale for serial (PE 0) readers."""
    with b.doall("jw", 1, n, align="x"):
        with b.do("iw", 1, n):
            b.assign(b.ref("x", "iw", "jw"), ir.E("iw") * 1.0)


def transformed(build_reader, n=16, cfg=None, sym_n=False, writer="serial"):
    b = ir.ProgramBuilder("p")
    b.shared("x", (n, n))
    b.shared("y", (n, n))
    bound = b.sym("nn", n) if sym_n else n
    with b.proc("main"):
        (serial_writer if writer == "serial" else parallel_writer)(b, n)
        build_reader(b, n, bound)
    program = b.finish()
    return ccdp_transform(program, cfg or config())


def stmts_of(program, kind):
    return [s for s in program.walk() if isinstance(s, kind)]


class TestCase1SerialKnownBounds:
    def reader(self, b, n, bound):
        with b.doall("q", 1, 4):
            with b.do("i", 1, n):
                b.assign(b.ref("y", "i", 1), b.ref("x", "i", 2))

    def test_vpg_chosen(self):
        prog, report = transformed(self.reader)
        assert report.schedule.counts()["vpg"] == 1
        vectors = stmts_of(prog, PrefetchVector)
        assert len(vectors) == 1
        assert report.schedule.entries[0].case.startswith("case1")

    def test_runs_coherently(self):
        prog, report = transformed(self.reader)
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0
        assert result.machine.stats.total().vector_prefetches > 0


class TestCase1bSerialUnknownBounds:
    def reader(self, b, n, bound):
        with b.doall("q", 1, 4):
            with b.do("i", 1, bound):
                b.assign(b.ref("y", "i", 1),
                         b.ref("y", "i", 1) + b.ref("x", "i", 2))

    def test_sp_chosen_when_bounds_unknown(self):
        prog, report = transformed(self.reader, sym_n=True)
        entry = report.schedule.entries[0]
        assert entry.case.startswith("case1b")
        assert entry.sp is not None
        assert 1 <= entry.sp.distance <= 8

    def test_pipeline_structure(self):
        prog, report = transformed(self.reader, sym_n=True)
        sp = report.schedule.entries[0].sp
        # prologue prefetches, steady state has prefetch + body, epilogue bare
        assert any(isinstance(s, PrefetchLine) for s in sp.prologue.body)
        assert isinstance(sp.main.body[0], PrefetchLine)
        assert sp.main.body[0].distance == sp.distance
        assert not any(isinstance(s, PrefetchLine) for s in sp.epilogue.walk())

    def test_runs_coherently_and_correctly(self):
        prog, report = transformed(self.reader, sym_n=True)
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0
        # iteration coverage: the 4 parallel tasks each accumulated y
        # column 1 once per row -> exactly 4x the source column
        import numpy as np
        y = result.value_of("y")
        x = result.value_of("x")
        assert np.allclose(y[:, 0], 4 * x[:, 1])

    def test_sp_queue_constraint_reduces_distance(self):
        cfg = config().with_(machine=t3d(4, cache_bytes=1024,
                                         prefetch_queue_slots=2),
                             ahead_min=1, ahead_max=8)
        prog, report = transformed(self.reader, cfg=cfg, sym_n=True)
        sp = report.schedule.entries[0].sp
        if sp is not None:
            assert sp.distance * len(sp.targets) <= 2


class TestCase2DoallStatic:
    def reader(self, b, n, bound):
        with b.doall("i", 2, n - 1, label="elim"):
            b.assign(b.ref("y", "i", 3),
                     b.ref("x", "i", 3) + b.ref("x", ir.E("i") - 1, 3))

    def test_vpg_into_preamble_with_chunk_vars(self):
        prog, report = transformed(self.reader)
        entry = report.schedule.entries[0]
        assert entry.case.startswith("case2")
        doall = next(s for s in prog.walk()
                     if isinstance(s, Loop) and s.is_parallel and s.label == "elim")
        assert doall.preamble
        free = {v for s in doall.preamble for e in s.expressions()
                for v in e.free_vars()}
        assert "__lo_i" in free and "__hi_i" in free

    def test_runs_coherently(self):
        prog, _ = transformed(self.reader)
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0


class TestCase3DoallDynamic:
    def reader(self, b, n, bound):
        with b.doall("i", 2, n - 1, schedule=ScheduleKind.DYNAMIC):
            b.assign(b.ref("y", "i", 3), b.ref("x", "i", 3))

    def test_mbp_or_bypass(self):
        prog, report = transformed(self.reader)
        entry = report.schedule.entries[0]
        assert entry.case.startswith("case3")
        counts = entry.techniques_used()
        assert counts["vpg"] == 0 and counts["sp"] == 0
        assert counts["mbp_moved"] + counts["bypass"] == 1

    def test_runs_coherently(self):
        prog, _ = transformed(self.reader)
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0


class TestCase4SerialSection:
    def reader(self, b, n, bound):
        b.assign(b.ref("y", 1, 1), 2.0)   # fodder so the prefetch can move back
        b.assign(b.ref("y", 2, 1), 3.0)
        b.assign(b.ref("y", 3, 1), b.ref("x", 5, 5))

    def test_serial_section_uses_mbp(self):
        cfg = config().with_(mbp_min_cycles=1.0)
        prog, report = transformed(self.reader, cfg=cfg, writer="parallel")
        entry = report.schedule.entries[0]
        assert entry.case.startswith("case4")
        assert entry.techniques_used()["mbp_moved"] == 1
        # the prefetch sits before the covering statement
        body = prog.entry_proc.body
        pf_index = next(i for i, s in enumerate(body) if isinstance(s, PrefetchLine))
        use_index = next(i for i, s in enumerate(body)
                         if isinstance(s, ir.Assign) and "x(5, 5)" in repr(s))
        assert pf_index < use_index

    def test_too_close_becomes_bypass(self):
        cfg = config().with_(mbp_min_cycles=1e9)
        prog, report = transformed(self.reader, cfg=cfg, writer="parallel")
        assert report.schedule.counts()["bypass"] == 1
        stale_ref = next(r for r in prog.walk_entry() if False) if False else None
        refs = [r for s in prog.entry_proc.body for r in s.array_refs()
                if r.array == "x"]
        assert any(r.mode == RefMode.BYPASS for r in refs)

    def test_runs_coherently_both_ways(self):
        for mbp_min in (1.0, 1e9):
            cfg = config().with_(mbp_min_cycles=mbp_min)
            prog, _ = transformed(self.reader, cfg=cfg, writer="parallel")
            result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                                 on_stale="raise")
            assert result.stats.stale_reads == 0


class TestCase5LoopWithIf:
    def reader(self, b, n, bound):
        with b.doall("q", 1, 4):
            with b.do("i", 2, n - 1):
                with b.if_(ir.E("i") < 8):
                    b.assign(b.ref("y", "i", 1), b.ref("x", "i", 2))

    def test_if_loop_forces_mbp(self):
        prog, report = transformed(self.reader)
        entry = report.schedule.entries[0]
        assert entry.case.startswith("case5")
        assert not entry.vpg and entry.sp is None

    def test_prefetch_stays_inside_branch(self):
        cfg = config().with_(mbp_min_cycles=0.0)
        prog, report = transformed(self.reader, cfg=cfg)
        for stmt in prog.walk():
            if isinstance(stmt, ir.If):
                branch_pf = [s for s in stmt.then_body
                             if isinstance(s, PrefetchLine)]
                if branch_pf:
                    return  # found it inside the branch: pass
        # otherwise everything was bypassed, which is also legal
        assert report.schedule.counts()["bypass"] >= 0

    def test_runs_coherently(self):
        prog, _ = transformed(self.reader)
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0


class TestCase6InsideIfBranch:
    def reader(self, b, n, bound):
        with b.if_(ir.E(1) < 2):
            with b.doall("q", 1, 4):
                with b.do("i", 1, n):
                    b.assign(b.ref("y", "i", 1), b.ref("x", "i", 2))

    def test_case6_annotation(self):
        prog, report = transformed(self.reader)
        assert any("case6" in e.case for e in report.schedule.entries)

    def test_runs_coherently(self):
        prog, _ = transformed(self.reader)
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0


class TestAblationSwitches:
    def reader(self, b, n, bound):
        with b.doall("q", 1, 4):
            with b.do("i", 1, n):
                b.assign(b.ref("y", "i", 1), b.ref("x", "i", 2))

    def test_disable_vpg_falls_through(self):
        cfg = config().with_(enable_vpg=False)
        prog, report = transformed(self.reader, cfg=cfg)
        counts = report.schedule.counts()
        assert counts["vpg"] == 0
        assert counts["sp"] + counts["mbp_moved"] + counts["bypass"] == 1

    def test_disable_all_techniques_means_bypass(self):
        cfg = config().with_(enable_vpg=False, enable_sp=False, enable_mbp=False)
        prog, report = transformed(self.reader, cfg=cfg)
        assert report.schedule.counts()["bypass"] == 1
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0
        assert result.machine.stats.total().bypass_reads > 0
