"""Prefetch target analysis (paper Fig. 1)."""

import pytest

import repro.ir as ir
from repro.analysis.stale import analyse_stale_references
from repro.coherence.config import CCDPConfig
from repro.coherence.target_analysis import prefetch_target_analysis
from repro.machine.params import t3d


def analyse(program, n_pes=4):
    config = CCDPConfig(machine=t3d(n_pes))
    stale = analyse_stale_references(program)
    return prefetch_target_analysis(program, stale, config), stale


def stencil(offsets=(-1, 0, 1), in_inner_loop=True):
    """Serial write epoch then a stencil-read epoch whose reads of x are
    potentially stale."""
    b = ir.ProgramBuilder("p")
    n = 16
    b.shared("x", (n, n))
    b.shared("y", (n, n))
    with b.proc("main"):
        with b.do("j", 1, n):         # serial writer -> staleness source
            with b.do("i0", 1, n):
                b.assign(b.ref("x", "i0", "j"), 1.0)
        with b.doall("j", 1, n, align="x"):
            if in_inner_loop:
                with b.do("i", 4, n - 4):
                    expr = ir.E(0.0)
                    for off in offsets:
                        sub = ir.E("i") + off if off else ir.E("i")
                        expr = expr + b.ref("x", sub, "j")
                    b.assign(b.ref("y", 1, "j"), expr)
            else:
                expr = ir.E(0.0)
                for off in offsets:
                    expr = expr + b.ref("x", 4 + off, "j")
                b.assign(b.ref("y", 1, "j"), expr)
    return b.finish()


class TestFig1:
    def test_group_spatial_keeps_only_leading(self):
        result, stale = analyse(stencil((-1, 0, 1)))
        assert len(result.targets) == 1
        assert len(result.demoted_group) == 2
        leading = result.targets[0]
        # leading reference touches new lines first: largest offset
        assert leading.info.aref.address.const == max(
            info.aref.address.const
            for info in list(stale.stale_reads.values())
            if info.decl.name == "x")

    def test_all_stale_refs_accounted_for(self):
        result, stale = analyse(stencil((-1, 0, 1)))
        covered = ({t.uid for t in result.targets}
                   | {i.uid for i in result.demoted_group}
                   | {i.uid for i in result.demoted_bypass}
                   | {i.uid for i in result.stale_calls})
        assert covered == set(stale.stale_reads)

    def test_refs_outside_inner_loops_demoted_to_bypass(self):
        """A stale ref in straight-line code nested inside a loop (but not
        an innermost loop) leaves the prefetch set."""
        b = ir.ProgramBuilder("p")
        n = 16
        b.shared("x", (n, n))
        b.shared("y", (n, n))
        with b.proc("main"):
            with b.do("j", 1, n):
                b.assign(b.ref("x", 1, "j"), 1.0)
            with b.doall("j", 1, n, align="x"):
                b.assign(b.ref("y", 1, "j"), b.ref("x", 1, "j"))  # no inner loop
                with b.do("i", 1, n):
                    b.assign(b.ref("y", "i", "j"), b.ref("y", "i", "j") + 1.0)
        result, stale = analyse(b.finish())
        assert len(result.demoted_bypass) == 1
        assert result.demoted_bypass[0].decl.name == "x"

    def test_epoch_level_serial_code_kept(self):
        """Stale refs in top-level serial code stay in S (Fig. 2 case 4)."""
        b = ir.ProgramBuilder("p")
        n = 16
        b.shared("x", (n, n))
        b.shared("y", (n, n))
        with b.proc("main"):
            with b.doall("j", 1, n, align="x"):
                b.assign(b.ref("x", 1, "j"), 1.0)
            b.assign(b.ref("y", 1, 1), b.ref("x", 1, 5))  # serial, stale
        result, _ = analyse(b.finish())
        assert len(result.targets) == 1
        assert not result.targets[0].lsc.is_loop

    def test_nonaffine_refs_stay_in_target_set(self):
        b = ir.ProgramBuilder("p")
        n = 16
        b.shared("x", (n,))
        b.shared("idx", (n,))
        b.shared("y", (n,))
        with b.proc("main"):
            with b.do("j", 1, n):
                b.assign(b.ref("x", "j"), 1.0)
            with b.doall("q", 1, 4):
                with b.do("i", 1, n):
                    b.assign(b.ref("y", "i"), b.ref("x", b.ref("idx", "i")))
        result, _ = analyse(b.finish())
        targets = {t.info.decl.name for t in result.targets}
        assert "x" in targets  # conservative: non-affine kept

    def test_stale_serial_call_reads_routed_separately(self):
        b = ir.ProgramBuilder("p")
        n = 8
        b.shared("x", (n, n))
        b.shared("y", (n, n))
        with b.proc("reader"):
            with b.do("i", 1, n):
                b.assign(b.ref("y", "i", 1), b.ref("x", "i", 1))
        with b.proc("main"):
            with b.doall("j", 1, n, align="x"):
                b.assign(b.ref("x", 1, "j"), 1.0)
            b.call("reader")
        result, _ = analyse(b.finish())
        assert result.stale_calls
        assert all(info.summarised_call == "reader" for info in result.stale_calls)

    def test_targets_by_lsc_grouping(self):
        result, _ = analyse(stencil((0, 4)))  # two groups, one LSC
        grouped = result.targets_by_lsc()
        assert len(grouped) == 1
        lsc, targets = grouped[0]
        assert len(targets) == 2 and lsc.is_loop

    def test_summary_text(self):
        result, _ = analyse(stencil())
        assert "prefetch targets" in result.summary()
