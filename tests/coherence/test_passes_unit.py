"""Unit-level tests of the individual CCDP passes: inlining, VPG
internals, SP internals, MBP internals, code generation details."""

import pytest

import repro.ir as ir
from repro.coherence import CCDPConfig, ccdp_transform
from repro.coherence.inline import inline_parallel_calls
from repro.ir.expr import RefMode
from repro.ir.stmt import (CallStmt, InvalidateLines, Loop, PrefetchLine,
                           PrefetchVector)
from repro.machine.params import t3d
from repro.runtime import Version, run_program


def cfg(n_pes=4, **over):
    return CCDPConfig(machine=t3d(n_pes, cache_bytes=1024)).with_(**over)


class TestInlining:
    def build_with_calls(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        with b.proc("serial_helper"):
            b.assign(b.ref("a", 1, 1), 1.0)
        with b.proc("kernel", params=("col",)):
            with b.doall("j", 1, 8):
                b.assign(b.ref("a", "col", "j"), 2.0)
        with b.proc("main"):
            b.call("serial_helper")
            b.call("kernel", 3)
            b.call("kernel", 4)
        return b.finish()

    def test_only_parallel_calls_inlined(self):
        program = self.build_with_calls()
        count = inline_parallel_calls(program)
        assert count == 2
        remaining = [s for s in program.entry_proc.walk()
                     if isinstance(s, CallStmt)]
        assert [c.name for c in remaining] == ["serial_helper"]

    def test_arguments_substituted(self):
        program = self.build_with_calls()
        inline_parallel_calls(program)
        consts = [r.subscripts[0].value
                  for s in program.entry_proc.walk()
                  if isinstance(s, ir.Assign) and isinstance(s.lhs, ir.ArrayRef)
                  and isinstance(r := s.lhs, ir.ArrayRef)
                  and isinstance(r.subscripts[0], ir.IntConst)]
        assert 3 in consts and 4 in consts

    def test_inlined_program_validates_and_runs(self):
        program = self.build_with_calls()
        inline_parallel_calls(program)
        ir.validate_program(program)
        result = run_program(program, t3d(2, cache_bytes=1024), Version.CCDP)
        assert result.value_of("a")[2, :].sum() == 16.0

    def test_recursive_parallel_call_rejected(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        with b.proc("rec"):
            with b.doall("j", 1, 8):
                b.assign(b.ref("a", 1, "j"), 1.0)
        with b.proc("main"):
            b.call("rec")
        program = b.finish()
        program.procedures["rec"].body.append(ir.CallStmt("rec"))
        with pytest.raises(ValueError, match="recursive"):
            inline_parallel_calls(program)

    def test_nested_inlining_converges(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        with b.proc("inner"):
            with b.doall("j", 1, 8):
                b.assign(b.ref("a", 1, "j"), 1.0)
        with b.proc("outer"):
            b.call("inner")
        with b.proc("main"):
            b.call("outer")
        program = b.finish()
        assert inline_parallel_calls(program) == 2


class TestVPGDetails:
    def writer_reader(self, reader, n=16):
        b = ir.ProgramBuilder("p")
        b.shared("x", (n, n))
        b.shared("y", (n, n))
        with b.proc("main"):
            with b.do("jw", 1, n):
                with b.do("iw", 1, n):
                    b.assign(b.ref("x", "iw", "jw"), 1.0)
            reader(b, n)
        return ccdp_transform(b.finish(), cfg())

    def test_vector_clamped_to_array_bounds(self):
        def reader(b, n):
            with b.doall("q", 1, 4):
                with b.do("i", 1, n):  # x(i+1, .) runs off the end at i=n
                    b.assign(b.ref("y", "i", 1),
                             b.ref("x", ir.fmin(ir.E("i") + 1, n), 2))

        # min() makes the ref non-affine -> VPG skipped, but the program
        # must still transform and run coherently.
        prog, report = self.writer_reader(reader)
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0

    def test_vector_too_large_for_cache_falls_through(self):
        def reader(b, n):
            with b.doall("q", 1, 2):
                with b.do("i", 1, n):
                    b.assign(b.ref("y", "i", 1), b.ref("x", "i", 2))

        config = cfg().with_(machine=t3d(4, cache_bytes=64),  # 2 lines!
                             vector_cache_fraction=0.5)
        b = ir.ProgramBuilder("p")
        n = 16
        b.shared("x", (n, n))
        b.shared("y", (n, n))
        with b.proc("main"):
            with b.do("jw", 1, n):
                with b.do("iw", 1, n):
                    b.assign(b.ref("x", "iw", "jw"), 1.0)
            reader(b, n)
        prog, report = ccdp_transform(b.finish(), config)
        assert report.schedule.counts()["vpg"] == 0
        result = run_program(prog, t3d(4, cache_bytes=64), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0

    def test_invariant_target_becomes_hoisted_line_prefetch(self):
        def reader(b, n):
            with b.doall("q", 1, 4):
                with b.do("i", 1, n):
                    b.assign(b.ref("y", "i", 1),
                             b.ref("y", "i", 1) + b.ref("x", 3, 3))

        prog, report = self.writer_reader(reader)
        lines = [s for s in prog.walk() if isinstance(s, PrefetchLine)]
        assert lines, "invariant stale ref should get a line prefetch"
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0

    def test_group_padding_covers_trailing(self):
        def reader(b, n):
            with b.doall("q", 1, 4):
                with b.do("i", 2, n - 1):
                    b.assign(b.ref("y", "i", 1),
                             b.ref("x", ir.E("i") - 1, 2)
                             + b.ref("x", "i", 2)
                             + b.ref("x", ir.E("i") + 1, 2))

        prog, report = self.writer_reader(reader)
        assert len(report.targets.demoted_group) == 2
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0

    def test_no_hoist_past_writer_loop(self):
        """A prefetch must not be pulled out of a loop that rewrites the
        prefetched array (the SWIM boundary-copy hazard)."""
        b = ir.ProgramBuilder("p")
        n = 16
        b.shared("x", (n, n))
        b.shared("y", (n, n))
        with b.proc("main"):
            with b.do("t", 1, 3):
                with b.doall("j", 1, n, align="x"):  # rewrites x every step
                    with b.do("i", 1, n):
                        b.assign(b.ref("x", "i", "j"),
                                 ir.E("i") * 1.0 + ir.E("t"))
                with b.do("jr", 1, n):  # serial reader of x
                    b.assign(b.ref("y", 1, "jr"), b.ref("x", 2, "jr"))
        prog, report = ccdp_transform(b.finish(), cfg())
        # whatever was generated, it must re-execute inside the time loop
        time_loop = prog.entry_proc.body[0]
        assert isinstance(time_loop, Loop)
        inside = [s for s in time_loop.walk()
                  if isinstance(s, (PrefetchLine, PrefetchVector))]
        outside = [s for s in prog.entry_proc.body
                   if isinstance(s, (PrefetchLine, PrefetchVector))]
        assert not outside
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0


class TestCodegenDetails:
    def test_stale_call_gets_pre_call_invalidation(self):
        b = ir.ProgramBuilder("p")
        n = 8
        b.shared("x", (n, n))
        b.shared("y", (n, n))
        with b.proc("reader"):
            with b.do("i", 1, n):
                b.assign(b.ref("y", "i", 1), b.ref("x", "i", 1))
        with b.proc("main"):
            with b.doall("j", 1, n, align="x"):
                b.assign(b.ref("x", 1, "j"), 1.0)
            b.call("reader")
        prog, report = ccdp_transform(b.finish(), cfg())
        body = prog.entry_proc.body
        inv_index = next(i for i, s in enumerate(body)
                         if isinstance(s, InvalidateLines) and s.array == "x")
        call_index = next(i for i, s in enumerate(body)
                          if isinstance(s, CallStmt))
        assert inv_index < call_index
        result = run_program(prog, t3d(4, cache_bytes=1024), Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0

    def test_bypass_modes_survive_round_trip(self):
        b = ir.ProgramBuilder("p")
        n = 8
        b.shared("x", (n, n))
        b.shared("y", (n, n))
        with b.proc("main"):
            with b.doall("j", 1, n, align="x"):
                b.assign(b.ref("x", 1, "j"), 1.0)
            b.assign(b.ref("y", 1, 1), b.ref("x", 1, 5))
        config = cfg().with_(enable_mbp=False)
        prog, _ = ccdp_transform(b.finish(), config)
        text = ir.format_program(prog)
        assert "@bypass" in text
        reparsed = ir.parse_program(text)
        modes = [r.mode for s in reparsed.walk() for r in s.array_refs()
                 if r.array == "x" and r.mode == RefMode.BYPASS]
        assert modes
