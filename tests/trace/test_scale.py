"""Reader scale: the text frontend must stream, not slurp.

A ~1M-access trace is scanned under ``tracemalloc`` to prove the
counts-only pass allocates a bounded working set (the reader is mmap +
one line at a time; the whole-file cost is the OS page cache's, not the
Python heap's), and a medium trace is replayed chunked vs whole to
prove chunk boundaries are invisible: identical stats, identical
clocks, identical event streams.

Addresses are block-partitioned per PE (each PE owns its own quarter of
the array) so the batched backend's coverage assertion is meaningful —
cross-PE sharing would legitimately punt runs to the reference path.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.machine.params import t3d
from repro.obs import Tracer
from repro.trace import TraceProgram, scan_text
from repro.runtime.exec_config import Backend

WORDS_PER_PE = 1024
N_PES = 4

#: tracemalloc peak allowed for the big-scan test.  The scan's real
#: footprint is a few KB; 8 MB (~0.3% of the trace's ~37 MB of text)
#: is generous headroom that still fails instantly on any slurp.
SCAN_PEAK_BUDGET = 8 * 1024 * 1024


def _write_trace(path, epochs, ops_per_pe):
    """Deterministic partitioned trace: every PE walks its own block,
    write every 4th access, one barrier per epoch."""
    with open(path, "w") as fh:
        fh.write(f"%pes {N_PES}\n%array x {N_PES * WORDS_PER_PE}\n")
        for e in range(epochs):
            for pe in range(N_PES):
                base = pe * WORDS_PER_PE
                lines = []
                for k in range(ops_per_pe):
                    addr = base + (e * 17 + k * 5) % WORDS_PER_PE
                    op = "write" if k % 4 == 3 else "read"
                    lines.append(f"x {op} {addr} {pe}\n")
                fh.write("".join(lines))
            fh.write("barrier\n")
    return path


@pytest.fixture(scope="module")
def big_trace(tmp_path_factory):
    """1,000,000 accesses: 250 epochs x 4 PEs x 1000 ops."""
    path = tmp_path_factory.mktemp("scale") / "big.trace"
    return _write_trace(path, epochs=250, ops_per_pe=1000)


def test_million_access_scan(big_trace):
    """The counts-only pass digests a ~1M-access trace quickly and
    exactly (tracemalloc would slow this scan ~10x, so the allocation
    proof runs on the smaller trace below — peak heap is O(1) in trace
    length either way)."""
    info = scan_text(big_trace)
    assert info.n_ops == 1_000_000
    assert info.n_barriers == 250
    assert info.n_pes == N_PES
    assert info.arrays == {"x": N_PES * WORDS_PER_PE}


def test_counts_pass_is_bounded(tmp_path):
    path = _write_trace(tmp_path / "mid.trace", epochs=50,
                        ops_per_pe=1000)
    tracemalloc.start()
    try:
        info = scan_text(path)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert info.n_ops == 200_000
    assert peak < SCAN_PEAK_BUDGET, \
        (f"counts-only scan allocated {peak / 1e6:.1f} MB over a "
         f"{path.stat().st_size / 1e6:.0f} MB trace — the reader "
         f"stopped streaming")


def test_chunked_replay_equals_whole(tmp_path):
    """Chunk boundaries must be invisible: a 512-op chunking and a
    single-chunk read of the same trace replay to identical machines."""
    path = _write_trace(tmp_path / "medium.trace", epochs=12,
                        ops_per_pe=1000)

    def replay(chunk_ops, backend=Backend.REFERENCE, trace=True):
        tracer = Tracer() if trace else None
        program = TraceProgram.from_text(path, chunk_ops=chunk_ops)
        result = program.replay(t3d(N_PES, cache_bytes=2048), "ccdp",
                                backend=backend, tracer=tracer)
        return result, tracer

    chunked, tr_chunked = replay(512)
    whole, tr_whole = replay(1 << 20)
    assert chunked.counters.ops == 48_000
    assert chunked.stats_dict() == whole.stats_dict()
    assert chunked.elapsed == whole.elapsed
    assert chunked.epochs == whole.epochs
    assert tr_chunked.events == tr_whole.events

    # Partitioned addresses leave no cross-PE staleness, so the batched
    # backend must bulk-service everything — and still match bit-exact.
    bulk, _ = replay(4096, backend=Backend.BATCHED, trace=False)
    assert bulk.counters.bulk_ops == bulk.counters.ops
    assert bulk.counters.fallbacks == 0
    assert bulk.stats_dict() == whole.stats_dict()
    assert bulk.elapsed == whole.elapsed
