"""Round-trip property: trace a source run, export it, replay it under
the *same* scheme — every folded counter must match the source events
and the coherence oracle must stay silent.

This is the trace frontend's core contract (DESIGN.md §9): the JSONL
event stream written by :func:`repro.obs.write_jsonl` carries enough of
the machine's decisions (read hints, prefetch outcomes, vector shapes)
that :class:`repro.trace.TraceProgram` can reproduce the source
machine's PEStats and interconnect counters exactly, on both the
reference per-access path and the batched bulk path.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence import CCDPConfig, ccdp_transform
from repro.machine.params import t3d
from repro.obs import (TIMING_DEPENDENT_FIELDS, Tracer, read_jsonl,
                       reconcile, write_jsonl)
from repro.runtime import run_program
from repro.runtime.exec_config import Backend
from repro.trace import TraceProgram
from repro.workloads import workload

#: small-but-real sizes: every workload finishes in well under a second
#: while still spanning multiple epochs and cross-PE sharing.
WORKLOAD_SIZES = {
    "mxm": {"n": 8},
    "vpenta": {"n": 9},
    "tomcatv": {"n": 9, "steps": 2},
    "swim": {"n": 9, "steps": 2},
}

VERSIONS = ("seq", "ccdp", "mesi", "dir")

N_PES = 4
CACHE_BYTES = 2048


def traced_run(name, version, params, sizes=None):
    """Run a workload under ``version`` with a tracer attached; returns
    (program, tracer, run result)."""
    spec = workload(name)
    program = spec.build(**{**spec.default_args, **(sizes or {})})
    if version == "ccdp":
        program, _ = ccdp_transform(program, CCDPConfig(machine=params))
    tracer = Tracer()
    result = run_program(program, params, version, on_stale="record",
                         oracle=True, tracer=tracer)
    return program, tracer, result


def assert_conformant(events, replayed):
    mismatches = reconcile(events, replayed.machine,
                           skip=TIMING_DEPENDENT_FIELDS)
    assert mismatches == [], "\n".join(mismatches)
    # Flagged (confirmed) staleness is legitimate scheme behaviour and
    # is part of the folded-counter comparison above; *silent* staleness
    # or a value violation in the replay is never acceptable.
    oracle = replayed.machine.oracle
    assert oracle is not None
    assert oracle.violations == 0
    assert oracle.silent_stale == 0


@pytest.mark.parametrize("version", VERSIONS)
@pytest.mark.parametrize("name", sorted(WORKLOAD_SIZES))
def test_jsonl_roundtrip_conforms(tmp_path, name, version):
    """workload -> trace -> JSONL on disk -> replay (same scheme):
    counters match the source events exactly and the oracle is silent."""
    params = t3d(N_PES, cache_bytes=CACHE_BYTES)
    program, tracer, _ = traced_run(name, version, params,
                                    WORKLOAD_SIZES[name])
    path = tmp_path / f"{name}_{version}.jsonl"
    write_jsonl(tracer.events, path)

    trace = TraceProgram.from_jsonl(path, program.arrays.values(), N_PES)
    replayed = trace.replay(t3d(N_PES, cache_bytes=CACHE_BYTES), version,
                            oracle=True)
    assert_conformant(read_jsonl(path), replayed)


@pytest.mark.parametrize("version", VERSIONS)
def test_batched_backend_bit_identical(tmp_path, version):
    """The bulk-replay path must be indistinguishable from the reference
    path: same stats dict, same elapsed cycles, same conformance."""
    params = t3d(N_PES, cache_bytes=CACHE_BYTES)
    program, tracer, _ = traced_run("mxm", version, params,
                                    WORKLOAD_SIZES["mxm"])
    path = tmp_path / f"mxm_{version}.jsonl"
    write_jsonl(tracer.events, path)

    trace = TraceProgram.from_jsonl(path, program.arrays.values(), N_PES)
    mach = t3d(N_PES, cache_bytes=CACHE_BYTES)
    ref = trace.replay(mach, version, backend=Backend.REFERENCE,
                       oracle=True)
    bat = trace.replay(mach, version, backend=Backend.BATCHED,
                       oracle=True)
    assert bat.stats_dict() == ref.stats_dict()
    assert bat.elapsed == ref.elapsed
    assert_conformant(read_jsonl(path), bat)


def test_in_memory_events_equal_disk(tmp_path):
    """from_events and from_jsonl are the same trace: identical replay."""
    params = t3d(N_PES, cache_bytes=CACHE_BYTES)
    program, tracer, _ = traced_run("mxm", "ccdp", params,
                                    WORKLOAD_SIZES["mxm"])
    path = tmp_path / "mxm.jsonl"
    write_jsonl(tracer.events, path)
    decls = program.arrays.values()

    mem = TraceProgram.from_events(tracer.events, decls, N_PES) \
        .replay(t3d(N_PES, cache_bytes=CACHE_BYTES), "ccdp")
    disk = TraceProgram.from_jsonl(path, decls, N_PES) \
        .replay(t3d(N_PES, cache_bytes=CACHE_BYTES), "ccdp")
    assert mem.stats_dict() == disk.stats_dict()
    assert mem.elapsed == disk.elapsed


@settings(max_examples=10, deadline=None)
@given(n_pes=st.integers(min_value=2, max_value=4),
       slots=st.integers(min_value=2, max_value=16))
def test_roundtrip_any_geometry(n_pes, slots):
    """Hypothesis: the round-trip contract holds for any PE count and
    prefetch-queue depth — tiny queues force the rule-2 drop/bypass
    hints through the trace and back."""
    params = dataclasses.replace(t3d(n_pes, cache_bytes=512),
                                 prefetch_queue_slots=slots)
    program, tracer, _ = traced_run("mxm", "ccdp", params, {"n": 8})

    trace = TraceProgram.from_events(tracer.events,
                                     program.arrays.values(), n_pes)
    replay_params = dataclasses.replace(t3d(n_pes, cache_bytes=512),
                                        prefetch_queue_slots=slots)
    for backend in (Backend.REFERENCE, Backend.BATCHED):
        replayed = trace.replay(replay_params, "ccdp", backend=backend,
                                oracle=True)
        assert_conformant(tracer.events, replayed)
