"""Trace-conformance battery over the regression corpus.

Every committed corpus seed (``tests/verify/corpus/``) is run under
every hardware-protocol scheme with a tracer attached, exported, and
replayed from its own trace under the same scheme with the coherence
oracle armed.  The replay must fold back to the source events exactly
— including the protocol counters (invalidations, c2c transfers, bus /
directory traffic), which is what makes the trace frontend a usable
protocol-debugging surface and not just a timing toy.

The heaviest-sharing seeds (24, 33) additionally pin their protocol
counter totals as literals: a replay that still *self*-conforms after a
machine change but silently shifts the protocol traffic will trip these
pins and force a deliberate re-baseline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.ir.dsl import parse_program
from repro.machine.params import t3d
from repro.obs import TIMING_DEPENDENT_FIELDS, Tracer, reconcile
from repro.runtime import Version, run_program
from repro.trace import TraceProgram

CORPUS_DIR = Path(__file__).parent.parent / "verify" / "corpus"

SEEDS = (0, 1, 5, 8, 10, 12, 24, 33)

N_PES = 4

#: (seed, counter) -> pinned total, measured at the current machine
#: baseline.  ``dir_broadcasts`` stays 0 at 4 PEs because the
#: limited-pointer capacity never overflows on these programs.
PINS = {
    24: {"coh_invalidations": 110, "c2c_transfers": 141,
         "dir_broadcasts": 0},
    33: {"coh_invalidations": 100, "c2c_transfers": 120,
         "dir_broadcasts": 0},
}
MESI_PINS = {24: {"bus_rd": 142}, 33: {"bus_rd": 118}}
DIR_PINS = {24: {"dir_messages": 1156}, 33: {"dir_messages": 970}}


def _trace_and_replay(seed, version):
    path = CORPUS_DIR / f"seed{seed:03d}.ir"
    program = parse_program(path.read_text())
    tracer = Tracer()
    source = run_program(program, t3d(N_PES), version, on_stale="raise",
                         oracle=True, tracer=tracer)
    trace = TraceProgram.from_events(tracer.events,
                                     program.arrays.values(), N_PES,
                                     name=f"seed{seed}/{version}")
    replayed = trace.replay(t3d(N_PES), version, oracle=True)
    return tracer, source, replayed


@pytest.mark.parametrize("version", Version.PROTOCOL)
@pytest.mark.parametrize("seed", SEEDS)
def test_corpus_trace_conforms(seed, version):
    tracer, source, replayed = _trace_and_replay(seed, version)

    # priority_bypasses (dir-pp) is decided against machine clocks,
    # which replays deliberately do not reproduce — it is the one
    # foldable counter outside the conformance contract.
    mismatches = reconcile(tracer.events, replayed.machine,
                           skip=TIMING_DEPENDENT_FIELDS)
    assert mismatches == [], "\n".join(mismatches)
    oracle = replayed.machine.oracle
    assert oracle.violations == 0
    assert oracle.silent_stale == 0

    src = source.machine.stats.total()
    rep = replayed.machine.stats.total()
    for counter in ("coh_invalidations", "c2c_transfers", "bus_rd",
                    "bus_rdx", "dir_messages", "dir_broadcasts"):
        assert getattr(rep, counter) == getattr(src, counter), counter

    pins = dict(PINS.get(seed, {}))
    if version == "mesi":
        pins.update(MESI_PINS.get(seed, {}))
    else:
        pins.update(DIR_PINS.get(seed, {}))
    for counter, want in pins.items():
        assert getattr(rep, counter) == want, \
            (f"seed {seed} / {version}: replayed {counter}="
             f"{getattr(rep, counter)}, pinned baseline {want} — a "
             f"machine change moved protocol traffic; re-measure and "
             f"re-pin deliberately if intended")
