"""Malformed-trace handling: every parse failure must be one actionable
line carrying ``file:line``, raised as :class:`TraceError` — and the
``ccdp replay`` CLI must surface it as a single stderr line with exit
code 2, never a traceback.

The grammar under test is the one the docs quote —
:data:`repro.trace.TEXT_GRAMMAR` is the single source of truth — so a
grammar change that invalidates these messages must update that
constant too.
"""

from __future__ import annotations

import re

import pytest

from repro.trace import (MAX_ADDR, TEXT_GRAMMAR, TraceError, TraceProgram,
                         read_jsonl_events, read_text_records, scan_text)


def _trace(tmp_path, text, name="bad.trace"):
    path = tmp_path / name
    path.write_text(text)
    return path


def _expect_scan_error(tmp_path, text, lineno, fragment):
    path = _trace(tmp_path, text)
    with pytest.raises(TraceError, match=re.escape(fragment)) as exc:
        scan_text(path)
    assert str(exc.value).startswith(f"{path}:{lineno}: "), \
        f"error lacks file:line prefix: {exc.value}"
    assert "\n" not in str(exc.value), "error must be a single line"


# -- grammar violations, one per error site --------------------------------

def test_truncated_access_line(tmp_path):
    _expect_scan_error(tmp_path, "a read 1 0\na read\n", 2,
                       "truncated access line (got 2 token(s)")


def test_too_many_tokens(tmp_path):
    _expect_scan_error(tmp_path, "a read 1 0 7\n", 1,
                       "too many tokens (5) in access line")


def test_unknown_access_keyword(tmp_path):
    _expect_scan_error(tmp_path, "a fetch 3\n", 1,
                       "unknown access keyword 'fetch'")


def test_unknown_array_label_in_declared_mode(tmp_path):
    _expect_scan_error(tmp_path, "%array a 8\nb read 0\n", 2,
                       "unknown array label 'b'")


def test_negative_address(tmp_path):
    _expect_scan_error(tmp_path, "a read -1\n", 1, "negative address -1")


def test_overflowing_address(tmp_path):
    _expect_scan_error(tmp_path, f"a read {MAX_ADDR + 1}\n", 1,
                       "overflows the 64-bit word-address space")


def test_address_out_of_declared_bounds(tmp_path):
    _expect_scan_error(tmp_path, "%array a 8\na read 8\n", 2,
                       "address 8 out of bounds for a (declared size 8")


def test_pe_out_of_range(tmp_path):
    _expect_scan_error(tmp_path, "%pes 2\na read 0 5\n", 2,
                       "PE 5 out of range")


def test_non_integer_address(tmp_path):
    _expect_scan_error(tmp_path, "a read x\n", 1,
                       "address must be an integer, got 'x'")


def test_unknown_directive(tmp_path):
    _expect_scan_error(tmp_path, "%foo 1\n", 1, "unknown directive '%foo'")


def test_barrier_takes_no_operands(tmp_path):
    _expect_scan_error(tmp_path, "barrier 2\n", 1,
                       "'barrier' takes no operands")


def test_pes_after_first_access(tmp_path):
    _expect_scan_error(tmp_path, "a read 0\n%pes 2\n", 2,
                       "%pes must precede the first access")


def test_duplicate_array_declaration(tmp_path):
    _expect_scan_error(tmp_path, "%array a 8\n%array a 8\n", 2,
                       "array 'a' declared twice")


def test_non_utf8_line(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_bytes(b"a read 0\n\xff\xfe read 1\n")
    with pytest.raises(TraceError, match="not UTF-8 text"):
        scan_text(path)


def test_interleaved_pe_blocks(tmp_path):
    """Within one epoch each PE's accesses must be contiguous; the
    record reader points at the offending line and suggests the fix."""
    path = _trace(tmp_path,
                  "a read 0 0\na read 1 1\na read 2 0\n")
    with pytest.raises(TraceError, match=re.escape(
            "PE 0 accesses interleave with PE 1 in epoch 0")) as exc:
        list(read_text_records(path))
    assert str(exc.value).startswith(f"{path}:3: ")
    assert "insert a 'barrier'" in str(exc.value)


def test_empty_trace_rejected(tmp_path):
    path = _trace(tmp_path, "# nothing but comments\n\n")
    with pytest.raises(TraceError, match="trace contains no accesses"):
        TraceProgram.from_text(path)


# -- JSONL ------------------------------------------------------------------

def test_jsonl_bad_json_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('\n{not json\n')
    with pytest.raises(TraceError, match="not a JSON object") as exc:
        list(read_jsonl_events(path))
    assert str(exc.value).startswith(f"{path}:2: ")


def test_jsonl_unknown_event(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ev": "warp_drive", "pe": 0}\n')
    with pytest.raises(TraceError) as exc:
        list(read_jsonl_events(path))
    assert str(exc.value).startswith(f"{path}:1: ")


# -- CLI surface ------------------------------------------------------------

def test_cli_reports_one_line_and_exit_2(tmp_path, capsys):
    from repro.harness.cli import main
    path = _trace(tmp_path, "a read\n")
    rc = main(["replay", "--trace", str(path), "--version", "ccdp"])
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.err.startswith(f"error: {path}:1: ")
    assert "truncated access line" in captured.err
    assert captured.err.count("\n") == 1, "exactly one stderr line"
    assert "Traceback" not in captured.err


def test_grammar_docs_cover_the_surface():
    """TEXT_GRAMMAR (the docs' single source of truth) names every
    construct the parser accepts or rejects above."""
    for token in ("%pes", "%array", "barrier", "read", "write", "#"):
        assert token in TEXT_GRAMMAR, token
