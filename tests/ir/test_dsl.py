"""The text DSL: parsing, error reporting, printer round trips."""

import pytest

from repro.ir.dsl import ParseError, parse_expr, parse_program, tokenize
from repro.ir.expr import ArrayRef, BinOp, IntConst, RefMode, SymConst
from repro.ir.printer import format_program
from repro.ir.stmt import Loop, LoopKind, ScheduleKind

MINI = """
program demo
  shared real a(8, 8) dist(block, axis=-1)
  real s = 0.5

  procedure main
    doall j = 1, 8 align(a) label(sweep)
      do i = 1, 8
        a(i, j) = a(i, j) * s + 1.0
      end do
    end doall
  end procedure
end program
"""


class TestTokenizer:
    def test_comments_are_skipped(self):
        tokens = tokenize("a = 1 ! a comment\n")
        assert all(t.kind != "comment" for t in tokens)

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n")
        assert tokens[0].line == 1
        assert tokens[2].line == 2

    def test_float_forms(self):
        for text in ("1.5", ".5", "1.", "2e3", "1.5e-2"):
            tokens = tokenize(text)
            assert tokens[0].kind == "float", text

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a = {")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, BinOp) and expr.op == "+"

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert isinstance(expr, BinOp) and expr.op == "*"

    def test_power_right_associative(self):
        expr = parse_expr("2 ** 3 ** 2")
        assert expr.op == "**"
        assert isinstance(expr.right, BinOp) and expr.right.op == "**"

    def test_unary_minus_folds_literal(self):
        expr = parse_expr("-4")
        assert isinstance(expr, IntConst) and expr.value == -4

    def test_sym_const(self):
        expr = parse_expr("$n + 1")
        assert isinstance(expr.left, SymConst) and expr.left.name == "n"

    def test_array_ref_vs_intrinsic(self):
        expr = parse_expr("sqrt(x)")
        assert type(expr).__name__ == "IntrinsicCall"
        ref = parse_expr("data(x)")
        assert isinstance(ref, ArrayRef)

    def test_bypass_annotation(self):
        ref = parse_expr("a(i, j)@bypass")
        assert isinstance(ref, ArrayRef) and ref.mode == RefMode.BYPASS

    def test_comparison(self):
        expr = parse_expr("i <= n - 1")
        assert expr.op == "<="

    def test_logical(self):
        expr = parse_expr("i < 2 or j > 3 and k == 1")
        assert expr.op == "or"


class TestPrograms:
    def test_mini_program_parses(self):
        program = parse_program(MINI)
        assert "a" in program.arrays
        assert program.scalars["s"].init == 0.5
        loop = program.entry_proc.body[0]
        assert isinstance(loop, Loop) and loop.kind == LoopKind.DOALL
        assert loop.align == "a" and loop.label == "sweep"

    def test_round_trip_is_fixpoint(self):
        program = parse_program(MINI)
        text = format_program(program)
        again = format_program(parse_program(text))
        assert text == again

    def test_schedule_annotation(self):
        src = MINI.replace("align(a)", "schedule(dynamic)")
        program = parse_program(src)
        loop = program.entry_proc.body[0]
        assert loop.schedule == ScheduleKind.DYNAMIC

    def test_entry_defaults_to_main(self):
        program = parse_program(MINI)
        assert program.entry == "main"

    def test_private_array(self):
        src = MINI.replace("shared real a(8, 8) dist(block, axis=-1)",
                           "real a(8, 8) private").replace(" align(a)", "")
        program = parse_program(src)
        assert not program.arrays["a"].is_shared

    def test_preamble_round_trip(self):
        src = """
program p
  shared real a(8, 8) dist(block, axis=-1)
  procedure main
    doall j = 1, 8
      preamble
        vprefetch a(1, __lo_j) axis=0 len=8 stride=1
      end preamble
      a(1, j) = 1.0
    end doall
  end procedure
end program
"""
        program = parse_program(src)
        loop = program.entry_proc.body[0]
        assert len(loop.preamble) == 1
        text = format_program(program)
        assert format_program(parse_program(text)) == text


class TestErrors:
    def test_undeclared_array(self):
        src = MINI.replace("a(i, j) = a(i, j) * s + 1.0", "zz(i, j) = 1.0")
        with pytest.raises(Exception, match="zz"):
            parse_program(src)

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse_program("program p\n  procedure main\n  end procedure\n")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError, match="line"):
            parse_expr("1 +")

    def test_bad_ref_mode(self):
        with pytest.raises(ParseError, match="mode"):
            parse_expr("a(i)@turbo")

    def test_unknown_schedule(self):
        src = MINI.replace("align(a)", "schedule(guided)")
        with pytest.raises(ParseError, match="schedule"):
            parse_program(src)
