"""Array declarations: geometry, linearisation, ownership."""

import pytest

from repro.ir.arrays import (ArrayDecl, BLOCK_LAST, DistKind, Distribution,
                             REPLICATED)
from repro.ir.dtypes import REAL


class TestGeometry:
    def test_size_and_bytes(self):
        decl = ArrayDecl("a", (4, 8))
        assert decl.size == 32
        assert decl.nbytes == 32 * 8

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            ArrayDecl("a", ())

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(ValueError):
            ArrayDecl("a", (4, 0))

    def test_column_major_strides(self):
        decl = ArrayDecl("a", (3, 5, 7))
        assert decl.strides() == (1, 3, 15)

    def test_linear_index_first_dim_fastest(self):
        decl = ArrayDecl("a", (4, 4))
        assert decl.linear_index((1, 1)) == 0
        assert decl.linear_index((2, 1)) == 1
        assert decl.linear_index((1, 2)) == 4

    def test_linear_index_bounds_checked(self):
        decl = ArrayDecl("a", (4, 4))
        with pytest.raises(IndexError):
            decl.linear_index((5, 1))
        with pytest.raises(IndexError):
            decl.linear_index((0, 1))

    def test_linear_index_rank_checked(self):
        decl = ArrayDecl("a", (4, 4))
        with pytest.raises(ValueError):
            decl.linear_index((1,))


class TestDistribution:
    def test_default_block_last(self):
        decl = ArrayDecl("a", (8, 8))
        assert decl.is_shared
        assert decl.dist_axis == 1

    def test_replicated_is_private(self):
        decl = ArrayDecl("w", (8,), REAL, REPLICATED)
        assert not decl.is_shared

    def test_unknown_distribution_kind(self):
        with pytest.raises(ValueError):
            Distribution("scatter")

    def test_axis_out_of_range(self):
        with pytest.raises(ValueError):
            ArrayDecl("a", (8, 8), dist=Distribution(DistKind.BLOCK, 5))


class TestOwnership:
    def test_block_size_ceil(self):
        decl = ArrayDecl("a", (4, 10))
        assert decl.block_size(4) == 3  # ceil(10/4)

    def test_block_owner(self):
        decl = ArrayDecl("a", (4, 8))
        owners = [decl.owner_of_axis_index(j, 4) for j in range(1, 9)]
        assert owners == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block_owner_tail_clamps_to_last_pe(self):
        decl = ArrayDecl("a", (4, 10))
        # block size 3: indices 10 -> pe 3
        assert decl.owner_of_axis_index(10, 4) == 3

    def test_cyclic_owner(self):
        decl = ArrayDecl("a", (4, 8), dist=Distribution(DistKind.CYCLIC, -1))
        owners = [decl.owner_of_axis_index(j, 3) for j in range(1, 7)]
        assert owners == [0, 1, 2, 0, 1, 2]

    def test_owner_uses_distributed_axis(self):
        decl = ArrayDecl("a", (8, 8), dist=Distribution(DistKind.BLOCK, 0))
        assert decl.owner((1, 8), 4) == 0
        assert decl.owner((8, 1), 4) == 3

    def test_replicated_has_no_owner(self):
        decl = ArrayDecl("w", (8,), REAL, REPLICATED)
        with pytest.raises(ValueError):
            decl.owner_of_axis_index(1, 4)

    def test_owned_axis_range_partitions_axis(self):
        decl = ArrayDecl("a", (4, 10))
        ranges = [decl.owned_axis_range(p, 4) for p in range(4)]
        covered = []
        for lo, hi in ranges:
            covered.extend(range(lo, hi + 1))
        assert covered == list(range(1, 11))

    def test_owned_axis_range_empty_for_excess_pes(self):
        decl = ArrayDecl("a", (4, 2))
        lo, hi = decl.owned_axis_range(3, 4)
        assert lo > hi  # PE 3 owns nothing when 4 PEs share 2 columns
