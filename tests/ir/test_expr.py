"""Expression node behaviour: identity, keys, cloning, traversal."""

import pytest

from repro.ir.expr import (ArrayRef, BinOp, FloatConst, IntConst,
                           IntrinsicCall, RefMode, SymConst, UnaryOp, VarRef,
                           add, aref, as_expr, div, expr_dtype, mul, sub)
from repro.ir.dtypes import INT, REAL


class TestConstruction:
    def test_int_const(self):
        node = IntConst(7)
        assert node.value == 7
        assert node.key() == ("int", 7)

    def test_float_const(self):
        node = FloatConst(2.5)
        assert node.value == 2.5

    def test_var_ref(self):
        assert VarRef("i").key() == ("var", "i")

    def test_sym_const(self):
        assert SymConst("n").key() == ("sym", "n")

    def test_array_ref(self):
        ref = aref("a", "i", 3)
        assert ref.array == "a"
        assert ref.rank == 2
        assert ref.mode == RefMode.NORMAL

    def test_binop_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            BinOp("@@", IntConst(1), IntConst(2))

    def test_unary_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            UnaryOp("!", IntConst(1))

    def test_intrinsic_arity_check(self):
        with pytest.raises(ValueError):
            IntrinsicCall("sqrt", [IntConst(1), IntConst(2)])

    def test_intrinsic_unknown_name(self):
        with pytest.raises(ValueError):
            IntrinsicCall("frobnicate", [IntConst(1)])


class TestAsExpr:
    def test_coerces_int(self):
        assert isinstance(as_expr(3), IntConst)

    def test_coerces_float(self):
        assert isinstance(as_expr(3.5), FloatConst)

    def test_coerces_str_to_var(self):
        node = as_expr("i")
        assert isinstance(node, VarRef) and node.name == "i"

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            as_expr(True)

    def test_rejects_none(self):
        with pytest.raises(TypeError):
            as_expr(None)

    def test_passthrough(self):
        node = IntConst(1)
        assert as_expr(node) is node


class TestIdentityAndKeys:
    def test_uids_are_unique(self):
        a, b = IntConst(1), IntConst(1)
        assert a.uid != b.uid

    def test_structural_key_equality(self):
        a = add(mul("i", 2), 1)
        b = add(mul("i", 2), 1)
        assert a.key() == b.key()
        assert a is not b

    def test_key_distinguishes_operand_order(self):
        assert sub("i", "j").key() != sub("j", "i").key()

    def test_array_ref_key_includes_subscripts(self):
        assert aref("a", "i").key() != aref("a", "j").key()
        assert aref("a", "i").key() != aref("b", "i").key()


class TestClone:
    def test_clone_is_deep(self):
        ref = aref("a", add("i", 1), "j")
        copy = ref.clone()
        assert copy is not ref
        assert copy.key() == ref.key()
        assert copy.subscripts[0] is not ref.subscripts[0]

    def test_clone_records_origin(self):
        ref = aref("a", "i")
        copy = ref.clone()
        assert copy.origin == ref.uid
        grand = copy.clone()
        assert grand.origin == ref.uid

    def test_clone_preserves_mode(self):
        ref = aref("a", "i")
        ref.mode = RefMode.BYPASS
        assert ref.clone().mode == RefMode.BYPASS


class TestTraversal:
    def test_walk_preorder(self):
        expr = add(mul("i", 2), aref("a", "k"))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds[0] == "BinOp"
        assert "ArrayRef" in kinds and "VarRef" in kinds

    def test_array_refs_nested_in_subscripts(self):
        expr = aref("a", aref("idx", "i"))
        names = [r.array for r in expr.array_refs()]
        assert names == ["a", "idx"]

    def test_free_vars(self):
        expr = add(mul("i", 2), div("j", "k"))
        assert expr.free_vars() == {"i", "j", "k"}


class TestExprDtype:
    def test_float_literal_is_real(self):
        assert expr_dtype(FloatConst(1.0)) is REAL

    def test_int_literal_is_int(self):
        assert expr_dtype(IntConst(1)) is INT

    def test_real_propagates(self):
        assert expr_dtype(add(IntConst(1), FloatConst(2.0))).is_real()

    def test_int_arith_stays_int(self):
        assert expr_dtype(add(IntConst(1), SymConst("n"))).is_integer()
