"""Pretty-printer output details."""

import pytest

import repro.ir as ir
from repro.ir.printer import (format_array_decl, format_expr, format_program,
                              format_stmt)
from repro.ir.stmt import InvalidateLines, PrefetchLine, PrefetchVector


class TestExprFormatting:
    @pytest.mark.parametrize("text", [
        "1 + 2 * 3",
        "(1 + 2) * 3",
        "a(i, j) + b(k)",
        "min(i, j) + max(1, k)",
        "sqrt(x) / 2.0",
        "i <= n - 1",
        "$n + 1",
    ])
    def test_round_trip_stability(self, text):
        expr = ir.parse_expr(text)
        printed = format_expr(expr)
        assert format_expr(ir.parse_expr(printed)) == printed

    def test_parentheses_only_when_needed(self):
        assert format_expr(ir.parse_expr("1 + 2 * 3")) == "1 + 2 * 3"
        assert format_expr(ir.parse_expr("(1 + 2) * 3")) == "(1 + 2) * 3"

    def test_float_always_has_point(self):
        assert format_expr(ir.FloatConst(2.0)) == "2.0"
        assert "." in format_expr(ir.FloatConst(1e20)) or "e" in format_expr(ir.FloatConst(1e20))

    def test_bypass_suffix(self):
        ref = ir.aref("a", "i")
        ref.mode = ir.RefMode.BYPASS
        assert format_expr(ref) == "a(i)@bypass"


class TestStmtFormatting:
    def test_loop_with_step(self):
        loop = ir.Loop("k", 1, 16, 4)
        assert "do k = 1, 16, 4" in format_stmt(loop)

    def test_unit_step_omitted(self):
        assert ", 1\n" not in format_stmt(ir.Loop("k", 1, 16))

    def test_doall_annotations(self):
        loop = ir.Loop("j", 1, 8, kind=ir.LoopKind.DOALL,
                       schedule=ir.ScheduleKind.DYNAMIC, label="sweep",
                       align="a")
        text = format_stmt(loop)
        assert "schedule(dynamic)" in text
        assert "align(a)" in text and "label(sweep)" in text

    def test_prefetch_with_distance(self):
        stmt = PrefetchLine(ir.aref("a", "i"), distance=3)
        assert "ahead(3)" in format_stmt(stmt)

    def test_vector_prefetch(self):
        stmt = PrefetchVector("a", [ir.IntConst(1), ir.VarRef("j")], 0, 16)
        text = format_stmt(stmt)
        assert "vprefetch a(1, j)" in text and "len=16" in text

    def test_invalidate(self):
        stmt = InvalidateLines("a", [ir.IntConst(1), ir.IntConst(1)], 1, 8)
        assert "invalidate a(1, 1)" in format_stmt(stmt)

    def test_indentation_nested(self):
        inner = ir.Assign(ir.aref("a", "i"), ir.IntConst(0))
        loop = ir.Loop("i", 1, 4, body=[inner])
        lines = format_stmt(loop, indent=1).splitlines()
        assert lines[0].startswith("  do")
        assert lines[1].startswith("    a(")


class TestDeclFormatting:
    def test_shared_block(self):
        decl = ir.ArrayDecl("a", (8, 8))
        assert format_array_decl(decl) == \
            "shared real a(8, 8) dist(block, axis=-1)"

    def test_private(self):
        decl = ir.ArrayDecl("w", (8,), dist=ir.REPLICATED)
        assert format_array_decl(decl) == "real w(8) private"

    def test_program_lists_scalars_with_init(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (4,))
        b.scalar("s", ir.REAL, 1.5)
        with b.proc("main"):
            b.assign(b.ref("a", 1), 0.0)
        text = format_program(b.finish())
        assert "real s = 1.5" in text

    def test_helper_procs_printed_before_entry(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (4,))
        with b.proc("helper"):
            b.assign(b.ref("a", 1), 1.0)
        with b.proc("main"):
            b.call("helper")
        text = format_program(b.finish())
        assert text.index("procedure helper") < text.index("procedure main")
