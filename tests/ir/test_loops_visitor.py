"""Loop utilities (LSC partitioning) and the generic visitor helpers."""

import pytest

import repro.ir as ir
from repro.ir.loops import (LSC, collect_lscs, contains_call, contains_if,
                            has_static_bounds, inner_loops, is_innermost,
                            loop_nest_of, static_trip_count)
from repro.ir.visitor import (const_int_value, map_expr, parent_map,
                              rewrite_body, substitute, substitute_in_stmt)


def nest_program():
    b = ir.ProgramBuilder("p")
    b.shared("a", (8, 8))
    b.shared("w", (8,))
    with b.proc("main"):
        b.assign(b.ref("w", 1), 0.0)                # leading serial segment
        with b.do("k", 1, 4):
            with b.doall("j", 1, 8):
                with b.do("i", 1, 8):               # innermost
                    b.assign(b.ref("a", "i", "j"), ir.E("i") * 1.0)
            b.assign(b.ref("w", "k"), 1.0)          # segment inside k loop
        b.assign(b.ref("w", 2), 2.0)                # trailing segment
    return b.finish()


class TestTripCounts:
    def test_constant_bounds(self):
        assert static_trip_count(ir.Loop("i", 1, 10)) == 10

    def test_step(self):
        assert static_trip_count(ir.Loop("i", 1, 10, 3)) == 4

    def test_negative_step(self):
        assert static_trip_count(ir.Loop("i", 10, 1, -1)) == 10

    def test_empty_range(self):
        assert static_trip_count(ir.Loop("i", 5, 1)) == 0

    def test_symbolic_bound_is_unknown(self):
        loop = ir.Loop("i", 1, ir.SymConst("n"))
        assert static_trip_count(loop) is None
        assert not has_static_bounds(loop)

    def test_symbolic_bound_resolvable_with_symbols(self):
        loop = ir.Loop("i", 1, ir.SymConst("n"))
        assert static_trip_count(loop, {"n": 6}) == 6


class TestStructure:
    def test_innermost_detection(self):
        program = nest_program()
        k_loop = program.entry_proc.body[1]
        assert not is_innermost(k_loop)
        i_loop = k_loop.body[0].body[0]
        assert is_innermost(i_loop)

    def test_inner_loops(self):
        program = nest_program()
        loops = inner_loops(program.entry_proc.body)
        assert [l.var for l in loops] == ["i"]

    def test_loop_nest_paths(self):
        program = nest_program()
        paths = loop_nest_of(program.entry_proc.body)
        assert len(paths) == 1
        assert [l.var for l in paths[0]] == ["k", "j", "i"]

    def test_contains_if_and_call(self):
        loop = ir.Loop("i", 1, 4, body=[ir.If(ir.VarRef("c"), [])])
        assert contains_if(loop)
        loop2 = ir.Loop("i", 1, 4, body=[ir.CallStmt("p")])
        assert contains_call(loop2)


class TestLSCPartition:
    def test_partition_shape(self):
        program = nest_program()
        lscs = collect_lscs(program.entry_proc.body)
        kinds = [(lsc.is_loop, len(lsc.enclosing_loops)) for lsc in lscs]
        # leading segment, innermost i loop, segment in k, trailing segment
        assert (False, 0) in kinds          # leading segment at top level
        assert (True, 2) in kinds           # i loop under k, doall j
        assert (False, 1) in kinds          # segment inside k loop

    def test_every_assign_belongs_to_exactly_one_lsc(self):
        program = nest_program()
        lscs = collect_lscs(program.entry_proc.body)
        owned = []
        for lsc in lscs:
            stmts = lsc.loop.walk() if lsc.is_loop else \
                (s for stmt in lsc.stmts for s in stmt.walk())
            owned.extend(s.uid for s in stmts if isinstance(s, ir.Assign))
        assigns = [s.uid for s in program.walk_entry() if isinstance(s, ir.Assign)]
        assert sorted(owned) == sorted(assigns)

    def test_if_branch_lscs_are_marked(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8,))
        with b.proc("main"):
            with b.if_(ir.E(1) < 2):
                with b.do("i", 1, 8):
                    b.assign(b.ref("a", "i"), 0.0)
        program = b.finish()
        lscs = collect_lscs(program.entry_proc.body)
        assert any(lsc.in_if_branch for lsc in lscs)


class TestVisitor:
    def test_substitute_variable(self):
        expr = ir.add(ir.mul("i", 2), "j")
        out = substitute(expr, {"i": ir.add("i", 5)})
        assert out.key() == ir.add(ir.mul(ir.add("i", 5), 2), "j").key()

    def test_substitute_in_stmt_covers_bodies(self):
        loop = ir.Loop("i", 1, ir.VarRef("n"),
                       body=[ir.Assign(ir.aref("a", "t"), ir.VarRef("t"))])
        out = substitute_in_stmt(loop, {"t": ir.IntConst(3), "n": ir.IntConst(9)})
        assert const_int_value(out.upper) == 9
        assert out.body[0].lhs.subscripts[0].key() == ("int", 3)

    def test_map_expr_bottom_up(self):
        expr = ir.add(1, ir.add(2, 3))

        def fold(node):
            if isinstance(node, ir.BinOp):
                lv = const_int_value(node.left)
                rv = const_int_value(node.right)
                if lv is not None and rv is not None and node.op == "+":
                    return ir.IntConst(lv + rv)
            return None

        out = map_expr(expr, fold)
        assert isinstance(out, ir.IntConst) and out.value == 6

    def test_const_int_value_folding(self):
        assert const_int_value(ir.parse_expr("2 * 3 + 4")) == 10
        assert const_int_value(ir.parse_expr("7 / 2")) == 3
        assert const_int_value(ir.parse_expr("min(3, 9)")) == 3
        assert const_int_value(ir.parse_expr("i + 1")) is None

    def test_rewrite_body_deletes_and_expands(self):
        body = [ir.Assign(ir.VarRef("x"), 1), ir.Assign(ir.VarRef("y"), 2)]

        def drop_x(stmt):
            if isinstance(stmt, ir.Assign) and stmt.lhs.name == "x":
                return []
            return None

        out = rewrite_body(body, drop_x)
        assert len(out) == 1 and out[0].lhs.name == "y"

    def test_parent_map(self):
        inner = ir.Assign(ir.VarRef("x"), 1)
        loop = ir.Loop("i", 1, 4, body=[inner])
        parents = parent_map([loop])
        assert parents[inner.uid] is loop
