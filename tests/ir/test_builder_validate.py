"""Builder API and program validation."""

import pytest

import repro.ir as ir
from repro.ir.validate import ValidationError, validate_program


def small_program():
    b = ir.ProgramBuilder("p")
    b.shared("a", (8, 8))
    b.scalar("s")
    with b.proc("main"):
        with b.doall("j", 1, 8):
            with b.do("i", 1, 8):
                b.assign(b.ref("a", "i", "j"), ir.E("i") * 1.0)
    return b


class TestBuilder:
    def test_finish_returns_validated_program(self):
        program = small_program().finish()
        assert program.entry == "main"
        assert "a" in program.arrays

    def test_finish_requires_entry(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (4,))
        with b.proc("helper"):
            b.assign(b.ref("a", 1), 0.0)
        with pytest.raises(ValueError, match="main"):
            b.finish()

    def test_statement_outside_procedure_rejected(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (4,))
        with pytest.raises(RuntimeError):
            b.assign(b.ref("a", 1), 0.0)

    def test_nested_procedures_rejected(self):
        b = ir.ProgramBuilder("p")
        with pytest.raises(RuntimeError):
            with b.proc("one"):
                with b.proc("two"):
                    pass

    def test_duplicate_array_rejected(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (4,))
        with pytest.raises(ValueError):
            b.shared("a", (4,))

    def test_expression_sugar(self):
        b = small_program()
        expr = (b.var("s") + 1) * 2 - b.ref("a", 1, 1)
        assert "s" in ir.unwrap(expr).free_vars()

    def test_if_else_blocks(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (4,))
        with b.proc("main"):
            with b.do("i", 1, 4):
                with b.if_(b.var("i") < 2) as node:
                    b.assign(b.ref("a", "i"), 1.0)
                with b.else_(node):
                    b.assign(b.ref("a", "i"), 2.0)
        program = b.finish()
        if_stmt = program.entry_proc.body[0].body[0]
        assert len(if_stmt.then_body) == 1 and len(if_stmt.else_body) == 1

    def test_sym_binds_value(self):
        b = ir.ProgramBuilder("p")
        n = b.sym("n", 16)
        b.shared("a", (16,))
        with b.proc("main"):
            with b.do("i", 1, n):
                b.assign(b.ref("a", "i"), 0.0)
        program = b.finish()
        assert program.sym_value("n") == 16


class TestValidation:
    def test_undeclared_array(self):
        b = small_program()
        program = b.finish()
        program.entry_proc.body.append(
            ir.Assign(ir.aref("ghost", 1), ir.IntConst(0)))
        with pytest.raises(ValidationError, match="ghost"):
            validate_program(program)

    def test_rank_mismatch(self):
        program = small_program().finish()
        program.entry_proc.body.append(
            ir.Assign(ir.aref("a", 1), ir.IntConst(0)))
        with pytest.raises(ValidationError, match="rank"):
            validate_program(program)

    def test_undefined_scalar_read(self):
        program = small_program().finish()
        program.entry_proc.body.append(
            ir.Assign(ir.aref("a", 1, 1), ir.VarRef("mystery")))
        with pytest.raises(ValidationError, match="mystery"):
            validate_program(program)

    def test_implicit_scalar_definition_allowed(self):
        program = small_program().finish()
        program.entry_proc.body.append(ir.Assign(ir.VarRef("t"), ir.IntConst(1)))
        program.entry_proc.body.append(
            ir.Assign(ir.aref("a", 1, 1), ir.VarRef("t")))
        validate_program(program)  # must not raise

    def test_call_to_undefined_procedure(self):
        program = small_program().finish()
        program.entry_proc.body.append(ir.CallStmt("nowhere"))
        with pytest.raises(ValidationError, match="nowhere"):
            validate_program(program)

    def test_call_arity_checked(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (4,))
        with b.proc("helper", params=("x",)):
            b.assign(b.ref("a", 1), ir.E("x") * 1.0)
        with b.proc("main"):
            b.call("helper", 1, 2)
        with pytest.raises(ValidationError, match="args"):
            b.finish()

    def test_align_target_must_exist(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        with b.proc("main"):
            with b.doall("j", 1, 8, align="nothere"):
                b.assign(b.ref("a", 1, "j"), 0.0)
        with pytest.raises(ValidationError, match="nothere"):
            b.finish()

    def test_array_used_without_subscripts(self):
        program = small_program().finish()
        program.entry_proc.body.append(
            ir.Assign(ir.aref("a", 1, 1), ir.VarRef("a")))
        with pytest.raises(ValidationError, match="subscripts"):
            validate_program(program)


class TestLoopHeaderValidation:
    """Generator-exposed edges: these loop shapes used to validate and
    then crash (zero step raises ``range() arg 3 must not be zero`` in
    ``iteration_values``) or silently corrupt results (a nested duplicate
    loop variable clobbers the outer induction value, so the outer body
    keeps writing through the inner loop's final index)."""

    def test_zero_step_rejected(self):
        program = small_program().finish()
        program.entry_proc.body.append(
            ir.Loop("k", 1, 4, 0,
                    [ir.Assign(ir.aref("a", 1, 1), ir.IntConst(0))]))
        with pytest.raises(ValidationError, match="zero step"):
            validate_program(program)

    def test_zero_trip_constant_bounds_rejected(self):
        program = small_program().finish()
        program.entry_proc.body.append(
            ir.Loop("k", 4, 1, 1,
                    [ir.Assign(ir.aref("a", 1, 1), ir.IntConst(0))]))
        with pytest.raises(ValidationError, match="zero trip"):
            validate_program(program)

    def test_zero_trip_negative_step_rejected(self):
        program = small_program().finish()
        program.entry_proc.body.append(
            ir.Loop("k", 1, 4, -1,
                    [ir.Assign(ir.aref("a", 1, 1), ir.IntConst(0))]))
        with pytest.raises(ValidationError, match="zero trip"):
            validate_program(program)

    def test_countdown_loop_still_allowed(self):
        program = small_program().finish()
        program.entry_proc.body.append(
            ir.Loop("k", 4, 1, -1,
                    [ir.Assign(ir.aref("a", 1, 1), ir.IntConst(0))]))
        validate_program(program)  # must not raise

    def test_symbolic_bounds_still_allowed(self):
        # Unknown trip counts stay a runtime concern; only *constant*
        # zero-trip headers are construction bugs.
        program = small_program().finish()
        program.entry_proc.body.append(
            ir.Loop("k", 1, ir.SymConst("n"), 1,
                    [ir.Assign(ir.aref("a", 1, 1), ir.IntConst(0))]))
        validate_program(program)

    def test_loop_variable_colliding_with_array_rejected(self):
        program = small_program().finish()
        program.entry_proc.body.append(
            ir.Loop("a", 1, 4, 1,
                    [ir.Assign(ir.aref("a", 1, 1), ir.IntConst(0))]))
        with pytest.raises(ValidationError, match="collides with an array"):
            validate_program(program)

    def test_nested_duplicate_loop_variable_rejected(self):
        inner = ir.Loop("i", 1, 2, 1,
                        [ir.Assign(ir.aref("a", ir.VarRef("i"), 1),
                                   ir.IntConst(7))])
        outer = ir.Loop("i", 1, 4, 1,
                        [inner,
                         ir.Assign(ir.aref("a", ir.VarRef("i"), 2),
                                   ir.IntConst(9))])
        program = small_program().finish()
        program.entry_proc.body.append(outer)
        with pytest.raises(ValidationError, match="duplicates an enclosing"):
            validate_program(program)

    def test_sibling_loops_may_share_a_variable(self):
        program = small_program().finish()
        for col in (1, 2):
            program.entry_proc.body.append(
                ir.Loop("k", 1, 4, 1,
                        [ir.Assign(ir.aref("a", ir.VarRef("k"), col),
                                   ir.IntConst(0))]))
        validate_program(program)  # reuse across siblings is fine


class TestProgramClone:
    def test_clone_is_independent(self):
        program = small_program().finish()
        copy = program.clone()
        copy.entry_proc.body.clear()
        assert program.entry_proc.body  # original untouched

    def test_clone_preserves_symbols(self):
        program = small_program().finish()
        program.bind(n=7)
        assert program.clone().sym_value("n") == 7
