"""Statement nodes: construction rules, bodies, cloning, walking."""

import pytest

from repro.ir.expr import ArrayRef, IntConst, VarRef, aref
from repro.ir.stmt import (Assign, CallStmt, If, InvalidateLines, Loop,
                           LoopKind, PrefetchLine, PrefetchVector,
                           ScheduleKind)


class TestAssign:
    def test_scalar_target(self):
        stmt = Assign(VarRef("s"), 1.5)
        assert isinstance(stmt.lhs, VarRef)

    def test_array_target(self):
        stmt = Assign(aref("a", "i"), 0)
        assert isinstance(stmt.lhs, ArrayRef)

    def test_rejects_expression_target(self):
        with pytest.raises(TypeError):
            Assign(IntConst(3), 1)

    def test_expressions_exposes_both_sides(self):
        stmt = Assign(aref("a", "i"), aref("b", "i"))
        assert len(stmt.expressions()) == 2


class TestLoop:
    def test_defaults(self):
        loop = Loop("i", 1, 10)
        assert loop.kind == LoopKind.SERIAL
        assert not loop.is_parallel
        assert loop.schedule == ScheduleKind.STATIC_BLOCK

    def test_doall(self):
        loop = Loop("j", 1, 8, kind=LoopKind.DOALL)
        assert loop.is_parallel

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Loop("i", 1, 2, kind="whileloop")

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ValueError):
            Loop("i", 1, 2, kind=LoopKind.DOALL, schedule="guided")

    def test_preamble_only_on_doall(self):
        with pytest.raises(ValueError):
            Loop("i", 1, 2, preamble=[Assign(VarRef("t"), 0)])

    def test_align_only_on_doall(self):
        with pytest.raises(ValueError):
            Loop("i", 1, 2, align="a")

    def test_chunk_vars(self):
        loop = Loop("j", 1, 8, kind=LoopKind.DOALL)
        assert loop.chunk_vars() == ("__lo_j", "__hi_j", "__cnt_j")

    def test_bodies_includes_preamble(self):
        pre = [PrefetchLine(aref("a", 1))]
        loop = Loop("j", 1, 8, kind=LoopKind.DOALL, preamble=pre)
        assert len(loop.bodies()) == 2

    def test_clone_deep_copies_body_and_preamble(self):
        loop = Loop("j", 1, 8, body=[Assign(aref("a", "j"), 1)],
                    kind=LoopKind.DOALL,
                    preamble=[PrefetchLine(aref("a", 1))], align="a")
        copy = loop.clone()
        assert copy.body[0] is not loop.body[0]
        assert copy.preamble[0] is not loop.preamble[0]
        assert copy.align == "a"
        assert copy.schedule == loop.schedule


class TestIf:
    def test_branches(self):
        stmt = If(VarRef("c"), [Assign(VarRef("x"), 1)], [Assign(VarRef("x"), 2)])
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_walk_covers_both_branches(self):
        stmt = If(VarRef("c"), [Assign(VarRef("x"), 1)], [Assign(VarRef("y"), 2)])
        assert sum(1 for _ in stmt.walk()) == 3


class TestPrefetchStmts:
    def test_prefetch_line_defaults_invalidate(self):
        stmt = PrefetchLine(aref("a", "i"))
        assert stmt.invalidate_first

    def test_prefetch_line_clone_keeps_metadata(self):
        stmt = PrefetchLine(aref("a", "i"), for_uid=42, distance=3)
        copy = stmt.clone()
        assert copy.for_uid == 42 and copy.distance == 3

    def test_prefetch_vector_fields(self):
        stmt = PrefetchVector("a", [IntConst(1), VarRef("j")], axis=0,
                              length=16)
        assert stmt.axis == 0
        assert len(stmt.start_subscripts) == 2

    def test_invalidate_lines_expressions(self):
        stmt = InvalidateLines("a", [IntConst(1), IntConst(1)], 0, 8)
        assert len(stmt.expressions()) == 3


class TestWalk:
    def test_nested_walk_order(self):
        inner = Assign(aref("a", "i", "j"), 0)
        loop_i = Loop("i", 1, 4, body=[inner])
        loop_j = Loop("j", 1, 4, body=[loop_i], kind=LoopKind.DOALL)
        seq = list(loop_j.walk())
        assert seq[0] is loop_j and seq[1] is loop_i and seq[2] is inner

    def test_array_refs_across_statements(self):
        loop = Loop("i", 1, 4, body=[
            Assign(aref("a", "i"), aref("b", "i")),
            CallStmt("p", [aref("c", "i")]),
        ])
        names = sorted({r.array for r in loop.array_refs()})
        assert names == ["a", "b", "c"]
