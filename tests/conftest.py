"""Shared fixtures: small machines and miniature programs."""

from __future__ import annotations

import pytest

import repro.ir as ir
from repro.machine import MachineParams, t3d


@pytest.fixture
def params4() -> MachineParams:
    """A small 4-PE machine with a tiny cache (16 lines) so capacity and
    conflict behaviour is exercised by small programs."""
    return t3d(4, cache_bytes=512)


@pytest.fixture
def params1() -> MachineParams:
    return t3d(1, cache_bytes=512)


def build_mini_mxm(n: int = 8, unroll: int = 1) -> ir.Program:
    """A minimal matrix multiply: init epoch + compute epoch."""
    b = ir.ProgramBuilder("mini_mxm")
    b.shared("a", (n, n))
    b.shared("b", (n, n))
    b.shared("c", (n, n))
    with b.proc("main"):
        with b.doall("j", 1, n, label="init"):
            with b.do("i", 1, n):
                b.assign(b.ref("a", "i", "j"), ir.E("i") * 1.0 + ir.E("j"))
                b.assign(b.ref("b", "i", "j"), ir.E("i") - ir.E("j") * 1.0)
                b.assign(b.ref("c", "i", "j"), 0.0)
        with b.do("k", 1, n, unroll):
            with b.doall("j", 1, n, label="compute"):
                with b.do("i", 1, n):
                    for u in range(unroll):
                        ku = ir.E("k") + u if u else ir.E("k")
                        b.assign(b.ref("c", "i", "j"),
                                 b.ref("c", "i", "j")
                                 + b.ref("a", "i", ku) * b.ref("b", ku, "j"))
    return b.finish()


def build_pingpong(n: int = 16, steps: int = 4) -> ir.Program:
    """Two alternating stencil epochs over one array: the minimal program
    with *genuine* staleness (neighbour columns are rewritten every step
    and re-read with offsets)."""
    b = ir.ProgramBuilder("pingpong")
    b.shared("x", (n, n))
    b.shared("y", (n, n))
    with b.proc("main"):
        with b.doall("j", 1, n, label="init", align="x"):
            with b.do("i", 1, n):
                # curved along j so the smoother keeps changing x: a linear
                # field would be a fixed point and staleness would be
                # numerically invisible
                b.assign(b.ref("x", "i", "j"),
                         ir.E("i") + ir.E("j") * 2.0
                         + ir.E("j") * ir.E("j") * 0.05)
                b.assign(b.ref("y", "i", "j"), 0.0)
        with b.do("t", 1, steps):
            with b.doall("j", 2, n - 1, label="fwd", align="x"):
                with b.do("i", 1, n):
                    b.assign(b.ref("y", "i", "j"),
                             (b.ref("x", "i", ir.E("j") - 1)
                              + b.ref("x", "i", ir.E("j") + 1)) * 0.5)
            with b.doall("j", 2, n - 1, label="bwd", align="x"):
                with b.do("i", 1, n):
                    b.assign(b.ref("x", "i", "j"),
                             b.ref("x", "i", "j") * 0.5 + b.ref("y", "i", "j") * 0.5)
    return b.finish()


@pytest.fixture
def mini_mxm() -> ir.Program:
    return build_mini_mxm()


@pytest.fixture
def pingpong() -> ir.Program:
    return build_pingpong()
