"""Fault-plan specs, the ``--faults`` grammar, config validation and the
determinism contract of the runtime fault state."""

import numpy as np
import pytest

from repro.faults import (EvictionStormFault, FaultPlan, FaultPlanError,
                          FaultState, LatencyJitterFault, PRESETS,
                          PrefetchDropFault, QueueSqueezeFault,
                          RemoteFailFault, make_state, parse_fault_plan)
from repro.harness.cli import main as cli_main
from repro.runtime import ExecutionConfig


class TestModelValidation:
    def test_rate_out_of_range(self):
        with pytest.raises(FaultPlanError, match=r"probability in \[0, 1\]"):
            PrefetchDropFault(rate=1.5)
        with pytest.raises(FaultPlanError):
            LatencyJitterFault(rate=-0.1)

    def test_integer_fields_validated(self):
        with pytest.raises(FaultPlanError, match="min_slots"):
            QueueSqueezeFault(rate=0.1, min_slots=-1)
        with pytest.raises(FaultPlanError, match="max_extra"):
            LatencyJitterFault(rate=0.1, max_extra=0)
        with pytest.raises(FaultPlanError, match="max_retries"):
            RemoteFailFault(rate=0.1, max_retries=-1)
        with pytest.raises(FaultPlanError, match="lines"):
            EvictionStormFault(rate=0.1, lines=0)

    def test_plan_rejects_bad_seed(self):
        model = PrefetchDropFault(rate=0.1)
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan(models=(model,), seed=-1)
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan(models=(model,), seed=True)

    def test_plan_rejects_non_models(self):
        with pytest.raises(FaultPlanError, match="FaultModel"):
            FaultPlan(models=("drop",), seed=0)

    def test_plan_is_hashable_and_describable(self):
        plan = FaultPlan(models=(PrefetchDropFault(rate=0.3),
                                 EvictionStormFault(rate=0.1, lines=2)),
                         seed=7)
        assert hash(plan) == hash(FaultPlan(plan.models, seed=7))
        assert "drop" in plan.describe() and "seed=7" in plan.describe()
        assert plan.active

    def test_empty_plan_is_inactive(self):
        assert not FaultPlan(models=(), seed=0).active
        assert make_state(FaultPlan(models=(), seed=0), 4) is None
        assert make_state(None, 4) is None


class TestParse:
    def test_none_and_empty(self):
        assert parse_fault_plan(None) is None
        assert parse_fault_plan("") is None
        assert parse_fault_plan("none") is None

    def test_full_grammar(self):
        plan = parse_fault_plan(
            "drop=0.3,squeeze=0.2:min_slots=1,jitter:max_extra=40", seed=5)
        assert plan.seed == 5
        kinds = {type(m): m for m in plan.models}
        assert kinds[PrefetchDropFault].rate == 0.3
        assert kinds[QueueSqueezeFault].min_slots == 1
        assert kinds[LatencyJitterFault].max_extra == 40
        # jitter's rate was omitted: the model default applies
        assert kinds[LatencyJitterFault].rate == LatencyJitterFault().rate

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_presets_parse(self, preset):
        plan = parse_fault_plan(preset, seed=1)
        assert plan is not None and plan.active

    def test_unknown_model_is_actionable(self):
        with pytest.raises(FaultPlanError, match="known models"):
            parse_fault_plan("bogus=0.5")

    def test_unknown_option_is_actionable(self):
        with pytest.raises(FaultPlanError, match="valid options"):
            parse_fault_plan("drop=0.5:slots=3")

    def test_bad_number(self):
        with pytest.raises(FaultPlanError, match="rate"):
            parse_fault_plan("drop=fast")
        with pytest.raises(FaultPlanError, match="integer"):
            parse_fault_plan("evict=0.1:lines=2.5")

    def test_out_of_range_rate_caught_at_parse_time(self):
        with pytest.raises(FaultPlanError, match=r"\[0, 1\]"):
            parse_fault_plan("drop=2.0")


class TestExecutionConfigValidation:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="reference"):
            ExecutionConfig(backend="vectorised")

    def test_unknown_version(self):
        with pytest.raises(ValueError, match="seq"):
            ExecutionConfig(version="fast")
        with pytest.raises(ValueError, match="seq"):
            ExecutionConfig.for_version("fast")

    def test_unknown_on_stale(self):
        with pytest.raises(ValueError, match="record"):
            ExecutionConfig(on_stale="ignore")

    def test_fault_plan_type_checked(self):
        with pytest.raises(ValueError, match="FaultPlan"):
            ExecutionConfig(fault_plan="drop=0.5")

    def test_valid_plan_accepted(self):
        plan = parse_fault_plan("light", seed=3)
        cfg = ExecutionConfig.for_version("ccdp", fault_plan=plan, oracle=True)
        assert cfg.fault_plan is plan and cfg.oracle


class TestCLIValidation:
    def test_unknown_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run", "mxm", "--backend", "warp"])
        assert "invalid choice" in capsys.readouterr().err

    def test_negative_fault_seed_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run", "mxm", "--n", "8", "--fault-seed", "-3",
                      "--faults", "light"])
        assert "--fault-seed" in capsys.readouterr().err

    def test_malformed_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run", "mxm", "--n", "8", "--faults", "drop=oops"])
        err = capsys.readouterr().err
        assert "--faults" in err and "drop" in err


class TestDeterminism:
    def _drive(self, state, n=200):
        """A fixed per-PE event script; returns every decision made."""
        out = []
        for pe in range(state.n_pes):
            for _ in range(n):
                out.append(state.force_drop(pe))
                out.append(state.squeeze_capacity(pe, 16))
                out.append(state.remote_penalty(pe, 100.0))
        return out

    def test_same_plan_same_decisions(self):
        plan = parse_fault_plan("chaos", seed=42)
        a = self._drive(FaultState(plan, 4))
        b = self._drive(FaultState(plan, 4))
        assert a == b

    def test_decisions_independent_of_pe_interleaving(self):
        """PE 2's stream is the same whether or not other PEs ran first."""
        plan = parse_fault_plan("chaos", seed=9)
        alone = FaultState(plan, 4)
        lane = [alone.remote_penalty(2, 50.0) for _ in range(100)]
        mixed = FaultState(plan, 4)
        for pe in (0, 1, 3):
            for _ in range(37):
                mixed.remote_penalty(pe, 50.0)
        assert [mixed.remote_penalty(2, 50.0) for _ in range(100)] == lane

    def test_seed_changes_decisions(self):
        spec = "jitter=0.9:max_extra=100"
        a = self._drive(FaultState(parse_fault_plan(spec, seed=1), 2))
        b = self._drive(FaultState(parse_fault_plan(spec, seed=2), 2))
        assert a != b

    def test_eviction_storm_only_invalidates(self):
        from repro.machine import DirectMappedCache, t3d
        params = t3d(2, cache_bytes=512)
        cache = DirectMappedCache(params)
        for line in range(cache.n_lines):
            cache.install(line, np.ones(cache.line_words),
                          np.zeros(cache.line_words, dtype=np.int64))
        state = FaultState(parse_fault_plan("evict=1.0:lines=4", seed=0), 2)
        before = cache.occupancy()
        state.maybe_evict(0, cache)
        assert cache.occupancy() == before - 4
        assert state.stats.storms == 1 and state.stats.evicted_lines == 4
