"""Fault-injection matrix: every workload x scheme x seeded plan.

Three invariants, per cell:

1. **Backends agree.** With a fault plan active the batched backend must
   realise the *identical* fault schedule as the reference interpreter
   (it routes faulted chunks back to the reference path), so
   :func:`compare_backends` must report an exact match — same cycles,
   same stats, same memory, same fault-event counts.
2. **Faults never corrupt coherent schemes.** SEQ/BASE/CCDP final array
   values under any plan are bit-identical to the fault-free run: every
   degradation path (drop -> bypass fetch, squeeze, retry, eviction)
   returns fresh memory values, so faults can only move time.
3. **The oracle stays silent.** With the shadow coherence oracle armed,
   a completed run *is* the proof of zero violations (it raises
   :class:`StaleReadViolation` at the offending read); the counters are
   asserted anyway so the zero is visible in the test, not implied.

NAIVE is the control: deliberately incoherent, it runs with
``on_stale="record"`` and still must produce zero oracle *violations* —
its stale reads are flagged by the version checker, so the oracle counts
them as confirmed, never as silent/unexplained.
"""

import numpy as np
import pytest

from repro.coherence import CCDPConfig, ccdp_transform
from repro.faults import (LatencyJitterFault, RemoteFailFault,
                          parse_fault_plan)
from repro.harness.equivalence import compare_backends
from repro.harness.experiment import ExperimentRunner
from repro.machine import t3d
from repro.runtime import Version, run_program
from repro.workloads import workload

N_PES = 4
CACHE_BYTES = 512
SIZES = {
    "mxm": {"n": 16},
    "vpenta": {"n": 17},
    "tomcatv": {"n": 17, "steps": 2},
    "swim": {"n": 17, "steps": 2},
}
PLAN_SPECS = [("light", 3), ("storm", 7), ("chaos", 11)]
PLAN_IDS = [f"{spec}-s{seed}" for spec, seed in PLAN_SPECS]
#: Every scheme that must stay value-exact under faults: SEQ/BASE/CCDP
#: plus the hardware-protocol versions (mesi, dir, dir-lp, dir-pp),
#: whose reads always reach current memory.  NAIVE is the only version
#: outside this set.
COHERENT = Version.COHERENT


def _params(version):
    n = 1 if version == Version.SEQ else N_PES
    return t3d(n, cache_bytes=CACHE_BYTES)


@pytest.fixture(scope="module")
def programs():
    """{workload: {version: program}} — CCDP sees the transformed code."""
    out = {}
    ccdp_cfg = CCDPConfig(machine=_params(Version.CCDP))
    for name, sizes in SIZES.items():
        plain = workload(name).build(**sizes)
        transformed, _ = ccdp_transform(plain, ccdp_cfg)
        out[name] = {v: (transformed if v == Version.CCDP else plain)
                     for v in Version.ALL}
    return out


@pytest.fixture(scope="module")
def baselines(programs):
    """Fault-free final values of every check array, per coherent cell."""
    out = {}
    for name in SIZES:
        arrays = workload(name).check_arrays
        for version in COHERENT:
            res = run_program(programs[name][version], _params(version),
                              version, on_stale="raise")
            out[(name, version)] = {a: res.value_of(a).copy() for a in arrays}
    return out


@pytest.mark.parametrize("plan_spec,plan_seed", PLAN_SPECS, ids=PLAN_IDS)
@pytest.mark.parametrize("name", sorted(SIZES))
@pytest.mark.parametrize("version", Version.ALL)
def test_fault_matrix_cell(name, version, plan_spec, plan_seed,
                           programs, baselines):
    plan = parse_fault_plan(plan_spec, seed=plan_seed)
    program = programs[name][version]
    params = _params(version)
    on_stale = "record" if version == Version.NAIVE else "raise"

    # Invariant 1: both backends realise the same faulted execution.
    report = compare_backends(program, params, version, on_stale,
                              fault_plan=plan, oracle=True)
    assert report.exact, report.summary()

    # Invariants 2 + 3 on a reference run of the same cell.
    res = run_program(program, params, version, on_stale=on_stale,
                      fault_plan=plan, oracle=True)
    oracle = res.oracle
    assert oracle.violations == 0, oracle.summary()
    assert oracle.checked_reads > 0
    stats = res.fault_stats
    assert stats is not None
    injected = (stats.forced_drops + stats.squeezed_issues
                + stats.jitter_events + stats.remote_failures + stats.storms)
    # BASE keeps shared data uncached and never prefetches, so a plan of
    # cache/queue faults alone has nothing to bite there; network faults
    # need actual remote traffic (>1 PE).
    has_network = any(isinstance(m, (LatencyJitterFault, RemoteFailFault))
                      for m in plan.models)
    if version != Version.BASE or (has_network and params.n_pes > 1):
        assert injected > 0, f"plan {plan.describe()} never fired on {name}"
    if version in COHERENT:
        assert oracle.confirmed_stale == 0 and oracle.silent_stale == 0
        for array, want in baselines[(name, version)].items():
            got = res.value_of(array)
            assert np.array_equal(got, want), \
                f"{name}/{version}: faults changed {array}"
    else:
        # NAIVE's wrong values are all *explained* staleness: flagged by
        # the version checker, so confirmed by the oracle, never silent.
        assert oracle.silent_stale == 0


def test_dropped_prefetches_become_bypass_fetches():
    """Rule 2 observably: forced drops surface in ``pf_dropped`` and are
    replaced by bypass-cache fetches counted in ``pf_drop_bypass`` —
    while the answer stays correct under ``on_stale='raise'``.

    The four workloads' default CCDP schedules use only vector
    prefetches here, so VPG is disabled to force per-line prefetching
    through the queue, where the drop fault can bite.
    """
    runner = ExperimentRunner(workload("mxm"), {"n": 16},
                              param_overrides={"cache_bytes": CACHE_BYTES},
                              ccdp_overrides={"enable_vpg": False})
    clean = runner.run_version(Version.CCDP, N_PES, on_stale="raise")
    assert clean.correct and clean.stats["prefetch_issued"] > 0
    assert clean.stats["pf_dropped"] == 0

    plan = parse_fault_plan("drop=0.5", seed=11)
    faulted = runner.run_version(Version.CCDP, N_PES, on_stale="raise",
                                 fault_plan=plan, oracle=True)
    assert faulted.correct
    assert faulted.stats["pf_dropped"] > 0
    assert faulted.stats["pf_drop_bypass"] > 0
    assert faulted.stats["pf_drop_bypass"] <= faulted.stats["pf_dropped"]
    # The replacement fetches are bypass reads; the run issued fewer
    # prefetches than it attempted (the drops).
    assert faulted.stats["bypass_reads"] >= faulted.stats["pf_drop_bypass"]
    assert faulted.fault_stats["forced_drops"] > 0
    assert "0 violations" in faulted.oracle_summary


def test_queue_squeeze_counts_capacity_drops():
    """A squeezed queue overflows early: capacity drops land in
    ``pf_dropped`` and the squeeze events are themselves counted."""
    runner = ExperimentRunner(workload("mxm"), {"n": 16},
                              param_overrides={"cache_bytes": CACHE_BYTES},
                              ccdp_overrides={"enable_vpg": False})
    plan = parse_fault_plan("squeeze=0.8:min_slots=0", seed=5)
    rec = runner.run_version(Version.CCDP, N_PES, on_stale="raise",
                             fault_plan=plan, oracle=True)
    assert rec.correct
    assert rec.fault_stats["squeezed_issues"] > 0
    assert rec.stats["pf_dropped"] > 0
