"""Property tests: arbitrary fault plans are value-invisible and
deterministic.

The whole fault layer is built on one invariant: every degradation path
returns *fresh memory values* (a dropped prefetch becomes a bypass
fetch, an eviction becomes a refill, a retry re-pays latency), so for a
coherent scheme a fault plan may move time but can never move data.
Hypothesis hammers that with random plans — random model subsets, rates
across [0, 1], random seeds — against the fault-free run's final arrays.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.coherence import CCDPConfig, ccdp_transform
from repro.faults import (EvictionStormFault, FaultPlan, LatencyJitterFault,
                          PrefetchDropFault, QueueSqueezeFault,
                          RemoteFailFault)
from repro.machine import t3d
from repro.runtime import Version, run_program
from repro.workloads import workload

PARAMS = t3d(4, cache_bytes=512)
PROGRAM = workload("mxm").build(n=8)
CCDP_PROGRAM, _ = ccdp_transform(PROGRAM, CCDPConfig(machine=PARAMS))
ARRAYS = workload("mxm").check_arrays

_rate = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_model = st.one_of(
    st.builds(PrefetchDropFault, rate=_rate),
    st.builds(QueueSqueezeFault, rate=_rate,
              min_slots=st.integers(min_value=0, max_value=16)),
    st.builds(LatencyJitterFault, rate=_rate,
              max_extra=st.integers(min_value=1, max_value=200)),
    st.builds(RemoteFailFault, rate=_rate,
              max_retries=st.integers(min_value=0, max_value=4),
              backoff=st.integers(min_value=0, max_value=100)),
    st.builds(EvictionStormFault, rate=_rate,
              lines=st.integers(min_value=1, max_value=16)),
)
_plan = st.builds(
    FaultPlan,
    models=st.lists(_model, min_size=1, max_size=5).map(tuple),
    seed=st.integers(min_value=0, max_value=2**32 - 1))


def _baseline(version, program):
    res = run_program(program, PARAMS, version, on_stale="raise")
    return {a: res.value_of(a).copy() for a in ARRAYS}


CCDP_CLEAN = _baseline(Version.CCDP, CCDP_PROGRAM)
BASE_CLEAN = _baseline(Version.BASE, PROGRAM)


@settings(max_examples=20, deadline=None)
@given(plan=_plan)
def test_random_plans_never_change_ccdp_values(plan):
    res = run_program(CCDP_PROGRAM, PARAMS, Version.CCDP, on_stale="raise",
                      fault_plan=plan, oracle=True)
    assert res.oracle.violations == 0
    for array in ARRAYS:
        assert np.array_equal(res.value_of(array), CCDP_CLEAN[array]), \
            f"plan {plan.describe()} changed {array}"


@settings(max_examples=8, deadline=None)
@given(plan=_plan)
def test_random_plans_never_change_base_values(plan):
    res = run_program(PROGRAM, PARAMS, Version.BASE, on_stale="raise",
                      fault_plan=plan, oracle=True)
    assert res.oracle.violations == 0
    for array in ARRAYS:
        assert np.array_equal(res.value_of(array), BASE_CLEAN[array])


@settings(max_examples=10, deadline=None)
@given(plan=_plan)
def test_same_plan_replays_identically(plan):
    a = run_program(CCDP_PROGRAM, PARAMS, Version.CCDP, fault_plan=plan)
    b = run_program(CCDP_PROGRAM, PARAMS, Version.CCDP, fault_plan=plan)
    assert a.elapsed == b.elapsed
    assert a.fault_stats.as_dict() == b.fault_stats.as_dict()
