"""The scheme registry as single source of truth: every version list,
policy flag and validation error is derived from ``SCHEMES`` — no
hard-coded copies anywhere."""

import pytest

from repro.runtime import (SCHEMES, ExecutionConfig, Version, run_program,
                           scheme_names)


class TestRegistryDerivations:
    def test_version_all_is_the_registry(self):
        assert Version.ALL == tuple(SCHEMES)
        assert len(set(Version.ALL)) == len(Version.ALL)

    def test_coherent_is_everything_but_naive(self):
        assert Version.COHERENT == tuple(n for n in SCHEMES if n != "naive")
        assert Version.NAIVE not in Version.COHERENT

    def test_protocol_versions_carry_a_protocol(self):
        assert Version.PROTOCOL == ("mesi", "dir", "dir-lp", "dir-pp")
        for name in Version.PROTOCOL:
            assert SCHEMES[name].protocol == name

    def test_every_scheme_constructs_a_config(self):
        for name, spec in SCHEMES.items():
            cfg = ExecutionConfig.for_version(name)
            assert cfg.cache_shared == spec.cache_shared
            assert cfg.craft_overheads == spec.craft_overheads
            assert cfg.protocol == spec.protocol

    def test_direct_construction_autofills_protocol(self):
        # ExecutionConfig(version=...) without the factory must agree
        # with the registry about the hardware protocol.
        cfg = ExecutionConfig(version=Version.MESI)
        assert cfg.protocol == "mesi"
        assert ExecutionConfig(version=Version.CCDP).protocol is None

    def test_fuzz_matrix_derives_from_registry(self):
        from repro.verify.fuzz import COHERENT_FUZZ, FUZZ_VERSIONS
        assert FUZZ_VERSIONS == tuple(n for n, s in SCHEMES.items() if s.fuzz)
        assert Version.NAIVE in FUZZ_VERSIONS        # the stale control
        assert Version.MESI in FUZZ_VERSIONS
        assert Version.DIR in FUZZ_VERSIONS
        assert set(COHERENT_FUZZ) == (set(FUZZ_VERSIONS)
                                      & set(Version.COHERENT)) - {"seq"}


class TestValidationErrors:
    def test_config_error_lists_every_registered_scheme(self):
        with pytest.raises(ValueError) as err:
            ExecutionConfig(version="hyperspeed")
        for name in SCHEMES:
            assert name in str(err.value)

    def test_factory_error_lists_every_registered_scheme(self):
        with pytest.raises(ValueError) as err:
            ExecutionConfig.for_version("hyperspeed")
        for name in SCHEMES:
            assert name in str(err.value)

    def test_run_program_rejects_unknown_version(self):
        from repro.ir.dsl import parse_program
        from repro.machine.params import t3d
        prog = parse_program(
            "program tiny\n"
            "  shared real a(4) dist(block, axis=-1)\n"
            "  procedure main\n"
            "    doall i = 1, 4 align(a) label(init)\n"
            "      a(i) = 1.0\n"
            "    end doall\n"
            "  end procedure\n"
            "end program\n")
        with pytest.raises(ValueError, match="hyperspeed"):
            run_program(prog, t3d(2), "hyperspeed")

    def test_cli_verify_error_lists_every_registered_scheme(self, capsys):
        from repro.harness.cli import main
        with pytest.raises(SystemExit):
            main(["verify", "--versions", "ccdp,hyperspeed"])
        err = capsys.readouterr().err
        assert "hyperspeed" in err
        for name in SCHEMES:
            assert name in err

    def test_cli_run_choices_come_from_registry(self, capsys):
        from repro.harness.cli import main
        with pytest.raises(SystemExit):
            main(["run", "mxm", "--version", "hyperspeed"])
        err = capsys.readouterr().err
        for name in SCHEMES:
            assert name in err

    def test_scheme_names_is_presentation_order(self):
        assert scheme_names() == ", ".join(SCHEMES)
