"""BASE-version (CRAFT-style) execution semantics in detail."""

import pytest

import repro.ir as ir
from repro.machine.params import t3d
from repro.runtime import Version, run_program


def two_epoch_program(n=8):
    b = ir.ProgramBuilder("p")
    b.shared("a", (n, n))
    b.private("w", (n,))
    with b.proc("main"):
        with b.doall("j", 1, n, align="a"):
            with b.do("i", 1, n):
                b.assign(b.ref("a", "i", "j"), 1.0)
        with b.doall("j", 1, n, align="a"):
            with b.do("i", 1, n):
                b.assign(b.ref("w", "i"), b.ref("a", "i", "j"))
    return b.finish()


class TestBaseSemantics:
    def test_private_arrays_still_cached(self):
        result = run_program(two_epoch_program(), t3d(2, cache_bytes=512),
                             Version.BASE)
        total = result.machine.stats.total()
        # shared 'a' reads are uncached; private 'w' write-through traffic
        # only — but a read of w would hit the cache. Check shared split:
        assert total.uncached_local_reads > 0
        assert total.cache_hits == 0

    def test_craft_epoch_overhead_charged_per_parallel_epoch(self):
        params_cheap = t3d(2, cache_bytes=512, craft_epoch_overhead=0)
        params_dear = t3d(2, cache_bytes=512, craft_epoch_overhead=50_000)
        cheap = run_program(two_epoch_program(), params_cheap, Version.BASE)
        dear = run_program(two_epoch_program(), params_dear, Version.BASE)
        delta = dear.elapsed - cheap.elapsed
        assert delta == pytest.approx(2 * 50_000, rel=0.01)

    def test_craft_ref_overhead_scales_with_accesses(self):
        p0 = t3d(2, cache_bytes=512, craft_shared_ref_overhead=0)
        p9 = t3d(2, cache_bytes=512, craft_shared_ref_overhead=9)
        base0 = run_program(two_epoch_program(), p0, Version.BASE)
        base9 = run_program(two_epoch_program(), p9, Version.BASE)
        total = base9.machine.stats.total()
        shared_accesses = (total.uncached_local_reads
                           + total.uncached_remote_reads + total.writes
                           - 64)  # w writes are private (one epoch of 64)
        # elapsed difference ~ per-PE critical path, so compare busy cycles
        busy_delta = (base9.machine.stats.total().busy_cycles
                      - base0.machine.stats.total().busy_cycles)
        assert busy_delta == pytest.approx(9 * shared_accesses, rel=0.05)

    def test_seq_version_has_no_craft_costs(self):
        program = two_epoch_program()
        params = t3d(1, cache_bytes=512, craft_epoch_overhead=10**6)
        seq = run_program(program, params, Version.SEQ)
        assert seq.elapsed < 10**6  # the poison overhead was never charged

    def test_base_remote_reads_priced_by_distance(self):
        n = 8
        b = ir.ProgramBuilder("p")
        b.shared("a", (n, n))
        b.shared("out", (n, n))
        with b.proc("main"):
            with b.doall("j", 1, n, align="a"):
                b.assign(b.ref("a", 1, "j"), 1.0)
            with b.doall("j", 1, n, align="a"):
                b.assign(b.ref("out", 1, "j"), b.ref("a", 1, 1))  # col 1: PE0
        fast = t3d(4, cache_bytes=512, remote_base=10)
        slow = t3d(4, cache_bytes=512, remote_base=1000)
        t_fast = run_program(b.finish(), fast, Version.BASE).elapsed
        t_slow = run_program(b.finish(), slow, Version.BASE).elapsed
        assert t_slow > t_fast + 900  # at least one remote read per PE
