"""Cross-PE plane equivalence: epoch replay must be bit-exact.

The batched backend's plane engine records each DOALL epoch once and
replays it for every PE as stacked NumPy scatters (see the "cross-PE
plane epochs" section of ``repro/runtime/batched.py``).  These tests
drive the *replay* machinery hard: a warm interpreter re-runs from the
canonical reset state, so the second run replays epochs via signature
lookup and the third via the positional epoch chain — and every
observable (arrays, versions, per-PE stats, cache contents, prefetch
queues, tracer counts) must match the per-PE batched backend and the
reference interpreter exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence import CCDPConfig, ccdp_transform
from repro.machine.params import t3d
from repro.machine.pe import STAT_FIELDS
from repro.runtime import ExecutionConfig, Version
from repro.runtime import plancache
from repro.runtime.interp import make_interpreter
from repro.workloads import workload

#: Small sizes keep a 64-PE example affordable while still producing
#: multi-chunk epochs, boundary chunks, and PEs with no work at all.
SIZES = {
    "mxm": {"n": 8},
    "vpenta": {"n": 8},
    "tomcatv": {"n": 8, "steps": 2},
    "swim": {"n": 8, "steps": 2},
}


def _build(name, version, params):
    program = workload(name).build(**SIZES[name])
    if version == Version.CCDP:
        program, _ = ccdp_transform(program, CCDPConfig(machine=params))
    return program


def _machine_state(machine):
    """Every observable a backend could corrupt, as comparable values."""
    memory = machine.memory
    state = {
        "values": memory.values_flat.tobytes(),
        "versions": memory.versions_flat.tobytes(),
        "private": {name: arr.tobytes()
                    for name, arr in memory.private_values.items()},
        "stats": machine.stats.as_dict(),
        "stale_examples": list(machine.stats.stale_examples),
    }
    for pe in machine.pes:
        state[f"pe{pe.pe_id}"] = (
            pe.clock, {f: getattr(pe.stats, f) for f in STAT_FIELDS},
            pe.cache.tags.tobytes(), pe.cache.data.tobytes(),
            pe.cache.vers.tobytes(),
            tuple(pe.queue.snapshot()), pe.queue.issued, pe.queue.dropped,
            pe.queue.high_water,
            tuple(pe.vectors.snapshot()), pe.vectors.issued,
            sorted(pe.dropped_lines), pe.last_prefetch_pe)
    return state


def _run(program, params, version, backend, plane, runs=1, tracer=None):
    """Run ``runs`` times from the canonical reset state; return the
    final (RunResult, interpreter)."""
    cfg = ExecutionConfig.for_version(version, backend=backend,
                                      plane_epochs=plane, tracer=tracer)
    interp = make_interpreter(program, params, cfg)
    result = interp.run()
    for _ in range(runs - 1):
        plancache._reset(interp, cfg)
        result = interp.run()
    return result, interp


def _assert_same(ref_machine, got_machine, ref_elapsed, got_elapsed, label):
    assert ref_elapsed == got_elapsed, (
        f"{label}: elapsed {got_elapsed} != {ref_elapsed}")
    ref_state = _machine_state(ref_machine)
    got_state = _machine_state(got_machine)
    for key in ref_state:
        assert got_state[key] == ref_state[key], (
            f"{label}: mismatch in {key}")


@settings(max_examples=12, deadline=None)
@given(
    n_pes=st.integers(min_value=1, max_value=64),
    name=st.sampled_from(sorted(SIZES)),
    version=st.sampled_from([Version.SEQ, Version.BASE, Version.CCDP]),
    queue_slots=st.integers(min_value=1, max_value=12),
)
def test_plane_property_bit_exact(n_pes, name, version, queue_slots):
    """For any (n_pes, workload, version, queue capacity): the plane
    backend — cold, sig-replay warm, and chain-replay warm — must leave
    the machine bit-identical to both the per-PE batched backend and
    the reference interpreter."""
    params = t3d(n_pes=n_pes, cache_bytes=2048,
                 prefetch_queue_slots=queue_slots)
    program = _build(name, version, params)

    ref_res, _ = _run(program, params, version, "reference", False)
    bat_res, _ = _run(program, params, version, "batched", False)
    _assert_same(ref_res.machine, bat_res.machine,
                 ref_res.elapsed, bat_res.elapsed, "per-PE batched")

    # Three runs: record, signature replay, positional chain replay.
    for runs in (1, 2, 3):
        pl_res, pl = _run(program, params, version, "batched", True,
                          runs=runs)
        _assert_same(ref_res.machine, pl_res.machine,
                     ref_res.elapsed, pl_res.elapsed,
                     f"plane run {runs}")
        if runs > 1:
            assert pl.plane_chunks > 0, "plane replay never engaged"
            assert pl_res.plane_coverage > 0.0


def test_plane_tracer_counts_exact():
    """A counts-only tracer must see identical per-kind event totals
    from the reference, per-PE batched, and plane-replay runs."""
    from repro.obs import Tracer

    params = t3d(n_pes=8, cache_bytes=2048)
    program = _build("mxm", Version.CCDP, params)
    counts = {}
    for label, backend, plane, runs in (
            ("reference", "reference", False, 1),
            ("batched", "batched", False, 1),
            ("plane", "batched", True, 3)):
        tracer = Tracer(sample=0)
        cfg = ExecutionConfig.for_version(Version.CCDP, backend=backend,
                                          plane_epochs=plane, tracer=tracer)
        interp = make_interpreter(program, params, cfg)
        interp.run()
        for _ in range(runs - 1):
            # The reset restores machine state but not the tracer, whose
            # counts span runs by design — clear so the final (replay)
            # run's totals are compared on their own.
            plancache._reset(interp, cfg)
            tracer.counts.clear()
            interp.run()
        counts[label] = dict(tracer.counts)
    assert counts["batched"] == counts["reference"]
    assert counts["plane"] == counts["reference"]


def test_plane_chain_survives_tracer_mode_switch():
    """Alternating untraced and traced warm runs on one interpreter:
    the positional epoch chain is kept per tracer mode, so a traced run
    never follows an untraced chain (whose entries embed no count
    deltas — following it would silently drop every plane count)."""
    from repro.obs import Tracer

    params = t3d(n_pes=8, cache_bytes=2048)
    program = _build("mxm", Version.CCDP, params)

    truth = Tracer(sample=0)
    cfg = ExecutionConfig.for_version(Version.CCDP, backend="reference",
                                      tracer=truth)
    make_interpreter(program, params, cfg).run()

    cfg_off = ExecutionConfig.for_version(Version.CCDP, backend="batched",
                                          plane_epochs=True)
    interp = make_interpreter(program, params, cfg_off)
    interp.run()
    plancache._reset(interp, cfg_off)
    interp.run()  # untraced chain recorded and followed
    for _ in range(2):  # traced: first records its own chain, second follows
        tracer = Tracer(sample=0)
        cfg_on = ExecutionConfig.for_version(
            Version.CCDP, backend="batched", plane_epochs=True,
            tracer=tracer)
        plancache._reset(interp, cfg_on)
        result = interp.run()
        assert dict(tracer.counts) == dict(truth.counts)
    assert result.plane_chunks > 0, "traced chain replay never engaged"
    # ... and flipping back must not have cost the untraced chain.
    plancache._reset(interp, cfg_off)
    assert interp.run().plane_chunks > 0


def test_plane_disabled_under_oracle_and_still_exact():
    """The oracle observes per-reference effects, so plane replay must
    stand down under it — and the run must stay exact and oracle-clean."""
    params = t3d(n_pes=4, cache_bytes=2048)
    program = _build("mxm", Version.CCDP, params)
    ref_res, _ = _run(program, params, Version.CCDP, "reference", False)

    cfg = ExecutionConfig.for_version(Version.CCDP, backend="batched",
                                      plane_epochs=True, oracle=True)
    interp = make_interpreter(program, params, cfg)
    result = interp.run()
    plancache._reset(interp, cfg)
    result = interp.run()
    assert result.plane_chunks == 0
    assert result.oracle is not None
    assert not result.oracle.violations, result.oracle.summary()
    _assert_same(ref_res.machine, result.machine,
                 ref_res.elapsed, result.elapsed, "oracle run")


def test_plane_replay_engages_at_64_pes():
    """The headline configuration: a warm 64-PE MXM CCDP run must be
    served overwhelmingly by plane replays."""
    params = t3d(n_pes=64, cache_bytes=2048)
    program = _build("mxm", Version.CCDP, params)
    result, interp = _run(program, params, Version.CCDP, "batched", True,
                          runs=3)
    assert interp.plane_chunks > 0
    assert result.plane_coverage == pytest.approx(1.0, abs=1e-9)
    assert result.batched_coverage == pytest.approx(1.0, abs=1e-9)
