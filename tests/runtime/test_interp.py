"""The reference interpreter: semantics, epochs, versions, register
promotion."""

import numpy as np
import pytest

import repro.ir as ir
from repro.machine.params import t3d
from repro.runtime import (ExecutionConfig, Interpreter, InterpreterError,
                           Version, run_program)


def run(program, n_pes=2, version=Version.CCDP, **params_over):
    params_over.setdefault("cache_bytes", 512)
    return run_program(program, t3d(n_pes, **params_over), version)


def simple_program(body_builder, arrays=(("a", (8, 8)),), scalars=()):
    b = ir.ProgramBuilder("p")
    for name, shape in arrays:
        b.shared(name, shape)
    for name in scalars:
        b.scalar(name)
    with b.proc("main"):
        body_builder(b)
    return b.finish()


class TestExpressionSemantics:
    def check_scalar(self, expr_text, expected, env_setup=()):
        def body(b):
            for name, value in env_setup:
                b.assign(b.var(name), value)
            b.assign(b.var("out"), ir.parse_expr(expr_text))
            b.assign(b.ref("a", 1, 1), ir.E("out") * 1.0)

        program = simple_program(body, scalars=["out"] + [n for n, _ in env_setup])
        result = run(program, n_pes=1, version=Version.SEQ)
        assert result.value_of("a")[0, 0] == pytest.approx(expected)

    def test_arithmetic(self):
        self.check_scalar("2 + 3 * 4", 14)

    def test_division_real(self):
        self.check_scalar("7.0 / 2.0", 3.5)

    def test_division_integer_truncates(self):
        self.check_scalar("7 / 2", 3)

    def test_power(self):
        self.check_scalar("2.0 ** 3", 8.0)

    def test_intrinsics(self):
        self.check_scalar("sqrt(16.0)", 4.0)
        self.check_scalar("abs(0 - 3.5)", 3.5)
        self.check_scalar("min(4, 7) + max(4, 7)", 11)
        self.check_scalar("sign(3.0, 0.0 - 1.0)", -3.0)

    def test_comparison_in_if(self):
        def body(b):
            with b.if_(ir.E(3) < 5):
                b.assign(b.ref("a", 1, 1), 1.0)
            with b.if_(ir.E(3) > 5):
                b.assign(b.ref("a", 2, 1), 1.0)

        program = simple_program(body)
        result = run(program, n_pes=1, version=Version.SEQ)
        assert result.value_of("a")[0, 0] == 1.0
        assert result.value_of("a")[1, 0] == 0.0

    def test_symbolic_constant_needs_binding(self):
        def body(b):
            with b.do("i", 1, ir.E(ir.SymConst("n"))):
                b.assign(b.ref("a", "i", 1), 1.0)

        program = simple_program(body)
        with pytest.raises(KeyError, match="unbound"):
            run(program, n_pes=1, version=Version.SEQ)
        program.bind(n=5)
        result = run(program, n_pes=1, version=Version.SEQ)
        assert result.value_of("a")[:, 0].sum() == 5

    def test_out_of_bounds_read_raises(self):
        def body(b):
            b.assign(b.ref("a", 1, 1), b.ref("a", 9, 1))

        with pytest.raises(IndexError):
            run(simple_program(body), n_pes=1, version=Version.SEQ)


class TestLoopsAndCalls:
    def test_negative_step_loop(self):
        def body(b):
            with b.do("i", 8, 1, -1):
                b.assign(b.ref("a", "i", 1), ir.E("i") * 1.0)

        result = run(simple_program(body), n_pes=1, version=Version.SEQ)
        assert result.value_of("a")[:, 0].tolist() == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_loop_carried_dependence(self):
        def body(b):
            b.assign(b.ref("a", 1, 1), 1.0)
            with b.do("i", 2, 8):
                b.assign(b.ref("a", "i", 1), b.ref("a", ir.E("i") - 1, 1) * 2.0)

        result = run(simple_program(body), n_pes=1, version=Version.SEQ)
        assert result.value_of("a")[7, 0] == 128.0

    def test_procedure_call_with_params(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8,))
        with b.proc("store", params=("where", "what")):
            b.assign(b.ref("a", "where"), ir.E("what") * 1.0)
        with b.proc("main"):
            b.call("store", 3, 42.0)
            b.call("store", 5, 7.0)
        result = run(b.finish(), n_pes=1, version=Version.SEQ)
        assert result.value_of("a")[2] == 42.0
        assert result.value_of("a")[4] == 7.0

    def test_nested_doall_rejected(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        with b.proc("main"):
            with b.doall("j", 1, 8):
                with b.doall("i", 1, 8):
                    b.assign(b.ref("a", "i", "j"), 1.0)
        with pytest.raises(InterpreterError, match="nested DOALL"):
            run(b.finish(), n_pes=2)


class TestEpochExecution:
    def test_epoch_count(self, mini_mxm):
        result = run(mini_mxm, n_pes=2)
        # init epoch + 8 compute epochs (k region loop)
        assert result.stats.epochs == 9

    def test_single_pe_runs_without_barrier_cost(self, mini_mxm):
        result = run(mini_mxm, n_pes=1, version=Version.SEQ)
        assert result.stats.barriers == 0

    def test_multi_pe_barriers(self, mini_mxm):
        result = run(mini_mxm, n_pes=2)
        assert result.stats.barriers >= result.stats.epochs

    def test_doall_work_is_distributed(self, mini_mxm):
        result = run(mini_mxm, n_pes=4)
        reads = [pe.reads for pe in result.machine.stats.per_pe]
        assert all(r > 0 for r in reads)

    def test_dynamic_scheduling_executes_everything(self):
        def body(b):
            with b.doall("j", 1, 8, schedule=ir.ScheduleKind.DYNAMIC):
                with b.do("i", 1, 8):
                    b.assign(b.ref("a", "i", "j"), 1.0)

        result = run(simple_program(body), n_pes=3)
        assert result.value_of("a").sum() == 64

    def test_cyclic_scheduling_executes_everything(self):
        def body(b):
            with b.doall("j", 1, 8, schedule=ir.ScheduleKind.STATIC_CYCLIC):
                with b.do("i", 1, 8):
                    b.assign(b.ref("a", "i", "j"), 2.0)

        result = run(simple_program(body), n_pes=3)
        assert result.value_of("a").sum() == 128

    def test_owner_aligned_partition(self):
        def body(b):
            with b.doall("j", 2, 7, align="a"):
                b.assign(b.ref("a", 1, "j"), 1.0)

        result = run(simple_program(body), n_pes=4)
        # every iteration ran on the owner -> no remote writes at all
        assert result.machine.stats.total().remote_writes == 0

    def test_trace_records_epochs(self, mini_mxm):
        from repro.runtime import Interpreter, ExecutionConfig
        interp = Interpreter(mini_mxm, t3d(2, cache_bytes=512),
                             ExecutionConfig.for_version(Version.CCDP),
                             trace_epochs=True)
        result = interp.run()
        assert len(result.epochs) == result.stats.epochs
        assert all(e.duration >= 0 for e in result.epochs)


class TestVersionPolicies:
    def test_base_never_caches_shared(self, mini_mxm):
        result = run(mini_mxm, n_pes=2, version=Version.BASE)
        total = result.machine.stats.total()
        assert total.cache_hits == 0 and total.cache_misses == 0
        assert total.uncached_local_reads + total.uncached_remote_reads > 0

    def test_ccdp_caches(self, mini_mxm):
        result = run(mini_mxm, n_pes=2, version=Version.CCDP)
        assert result.machine.stats.total().cache_hits > 0

    def test_base_slower_than_naive(self, mini_mxm):
        base = run(mini_mxm, n_pes=2, version=Version.BASE)
        naive = run(mini_mxm, n_pes=2, version=Version.NAIVE)
        assert base.elapsed > naive.elapsed

    def test_versions_all_numerically_correct_when_coherent(self, mini_mxm):
        # mini_mxm has no true staleness (data written once), so even the
        # NAIVE-cached version computes correct values.
        outs = {}
        for version in (Version.SEQ, Version.BASE, Version.NAIVE):
            result = run(mini_mxm, n_pes=2, version=version)
            outs[version] = result.value_of("c").copy()
        assert np.allclose(outs[Version.SEQ], outs[Version.BASE])
        assert np.allclose(outs[Version.SEQ], outs[Version.NAIVE])

    def test_exec_config_factory(self):
        cfg = ExecutionConfig.for_version(Version.BASE)
        assert not cfg.cache_shared and cfg.craft_overheads
        with pytest.raises(ValueError):
            ExecutionConfig.for_version("hyperspeed")


class TestRegisterPromotion:
    def test_repeated_reads_in_statement_counted_once(self):
        def body(b):
            with b.doall("q", 1, 2):
                with b.do("i", 1, 8):
                    # four textual reads of the same element
                    b.assign(b.ref("a", "i", 2),
                             b.ref("a", "i", 1) * b.ref("a", "i", 1)
                             + b.ref("a", "i", 1) * b.ref("a", "i", 1))

        result = run(simple_program(body), n_pes=1, version=Version.SEQ)
        total = result.machine.stats.total()
        # 2 tasks x 8 iterations x 1 real load (plus nothing else)
        assert total.reads == 16

    def test_write_invalidates_promoted_value(self):
        def body(b):
            with b.doall("q", 1, 1):
                with b.do("i", 1, 1):
                    b.assign(b.var("t"), b.ref("a", 1, 1))     # load (0.0)
                    b.assign(b.ref("a", 1, 1), 5.0)            # write same elem
                    b.assign(b.ref("a", 2, 1), b.ref("a", 1, 1))  # must reload

        result = run(simple_program(body, scalars=("t",)), n_pes=1,
                     version=Version.SEQ)
        assert result.value_of("a")[1, 0] == 5.0

    def test_distinct_offsets_keep_registers(self):
        """A write to a(i,j) must not evict the promoted a(i-1,j)."""
        def body(b):
            b.assign(b.ref("a", 1, 1), 3.0)
            with b.doall("q", 1, 1):
                with b.do("i", 2, 8):
                    b.assign(b.ref("a", "i", 1),
                             b.ref("a", ir.E("i") - 1, 1) + 1.0)

        result = run(simple_program(body), n_pes=1, version=Version.SEQ)
        assert result.value_of("a")[7, 0] == 10.0

    def test_scalar_subscripts_not_promoted(self):
        """a(idx) where idx is a mutable scalar must reload when idx
        changes mid-iteration."""
        def body(b):
            b.assign(b.ref("a", 1, 1), 1.0)
            b.assign(b.ref("a", 2, 1), 2.0)
            with b.doall("q", 1, 1):
                with b.do("i", 1, 1):
                    b.assign(b.var("idx"), 1)
                    b.assign(b.var("t1"), b.ref("a", "idx", 1))
                    b.assign(b.var("idx"), 2)
                    b.assign(b.var("t2"), b.ref("a", "idx", 1))
                    b.assign(b.ref("a", 3, 1), ir.E("t1") + ir.E("t2") * 10.0)

        result = run(simple_program(body, scalars=("idx", "t1", "t2")),
                     n_pes=1, version=Version.SEQ)
        assert result.value_of("a")[2, 0] == 21.0
