"""Differential equivalence: the batched backend must be bit-exact.

These tests are the enforcement arm of the batched backend's contract
(see ``repro/runtime/batched.py``): for every workload and program
version, running with ``backend="batched"`` must reproduce the
reference interpreter's elapsed cycles, per-PE statistics, cache state
and array contents *exactly* — no tolerances anywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.ir as ir
from repro.harness.equivalence import check_workload, compare_backends
from repro.machine.params import t3d
from repro.runtime import ExecutionConfig, Version, run_program
from repro.runtime.batched import BatchedInterpreter
from repro.runtime.interp import make_interpreter

SIZES = {"mxm": 12, "vpenta": 8, "tomcatv": 10, "swim": 10}


@pytest.mark.parametrize("name", sorted(SIZES))
@pytest.mark.parametrize("version", [Version.SEQ, Version.BASE, Version.CCDP,
                                     Version.NAIVE])
def test_workload_bit_exact(name, version):
    """Machine state AND the machine-event trace: ``trace=True`` runs
    both backends under an unbounded Tracer and diffs the full event
    streams and metrics timelines element by element."""
    params = t3d(4, cache_bytes=2048)
    report = check_workload(name, params, version, n=SIZES[name], trace=True)
    assert report.exact, report.summary()
    assert report.trace_events > 0


@pytest.mark.parametrize("name", sorted(SIZES))
@pytest.mark.parametrize("version", [Version.SEQ, Version.BASE, Version.CCDP])
def test_transformed_prefetch_replay_bit_exact(name, version):
    """The prefetch *replay* path under real traffic: CCDP-transform every
    workload with the vector-prefetch generator disabled, so the schedule
    leans on line prefetches, and run the transformed program under each
    version's semantics.  SEQ/CCDP must show nonzero prefetch traffic
    (the queue scan/replay machinery is actually exercised); BASE's CRAFT
    semantics no-op prefetches, and must stay exact doing so."""
    params = t3d(4, cache_bytes=2048)
    report = check_workload(name, params, version, n=SIZES[name],
                            transform=True, trace=True,
                            ccdp_overrides={"enable_vpg": False})
    assert report.exact, report.summary()
    assert report.batch_chunks > 0
    issued = report.stats_batched.get("prefetch_issued", 0)
    if version == Version.BASE:
        assert issued == 0  # CRAFT: shared data uncached, prefetches no-op
    else:
        assert issued > 0, "replay path not exercised"


@settings(max_examples=8, deadline=None)
@given(queue_slots=st.integers(min_value=1, max_value=12))
def test_queue_capacity_property(queue_slots):
    """Bit-exactness must hold at *any* prefetch-queue capacity: small
    queues force drops (rule-2 bypass bookkeeping), large ones coalesce —
    both must replay identically to the reference interpreter."""
    params = t3d(4, cache_bytes=2048, prefetch_queue_slots=queue_slots)
    report = check_workload("mxm", params, Version.CCDP, n=8,
                            ccdp_overrides={"enable_vpg": False})
    assert report.exact, report.summary()
    assert report.stats_batched.get("prefetch_issued", 0) > 0


def test_mxm_ccdp_actually_batches():
    """Guard against silent fallback: the flagship workload must be
    serviced through bulk chunks, not the per-reference path."""
    from repro.coherence import CCDPConfig, ccdp_transform
    from repro.workloads import workload

    params = t3d(4, cache_bytes=2048)
    program, _ = ccdp_transform(workload("mxm").build(n=16),
                                CCDPConfig(machine=params))
    interp = make_interpreter(
        program, params,
        ExecutionConfig.for_version(Version.CCDP, backend="batched"))
    assert isinstance(interp, BatchedInterpreter)
    interp.run()
    assert interp.batch_chunks > 0
    assert interp.batch_fallbacks == 0


def test_run_program_backend_keyword():
    """``run_program(..., backend="batched")`` is the public entry."""
    from repro.workloads import workload

    params = t3d(1, cache_bytes=2048)
    program = workload("mxm").build(n=8)
    ref = run_program(program, params, Version.SEQ)
    bat = run_program(program, params, Version.SEQ, backend="batched")
    assert ref.elapsed == bat.elapsed
    assert np.array_equal(ref.value_of("c"), bat.value_of("c"))


def test_non_affine_body_falls_back():
    """A data-dependent subscript defeats slot binding; the batched
    backend must detect this at plan time and defer to the reference
    closures — still producing exact results."""
    b = ir.ProgramBuilder("gather")
    b.shared("idx", (16,))
    b.shared("x", (16,))
    b.shared("y", (16,))
    with b.proc("main"):
        with b.doall("j", 1, 16, label="init", align="x"):
            with b.do("i", 1, 1):
                b.assign(b.ref("idx", "j"), ir.E("j") * 1.0)
                b.assign(b.ref("x", "j"), ir.E("j") * 2.0)
        with b.doall("j", 1, 16, label="gather", align="x"):
            with b.do("i", 1, 1):
                b.assign(b.ref("y", "j"), b.ref("x", b.ref("idx", "j")))
    program = b.finish()
    params = t3d(2, cache_bytes=1024)
    report = compare_backends(program, params, Version.SEQ)
    assert report.exact, report.summary()


def test_stale_reads_preserved_under_naive():
    """NAIVE deliberately produces stale reads; the batched backend must
    not launder them away (its stale-word guard forces the reference
    path whenever a cached line is out of date)."""
    params = t3d(4, cache_bytes=2048)
    report = check_workload("tomcatv", params, Version.NAIVE, n=10)
    assert report.exact, report.summary()


@pytest.mark.parametrize("name", sorted(SIZES))
@pytest.mark.parametrize("version", [Version.SEQ, Version.BASE, Version.CCDP,
                                     Version.NAIVE])
def test_trace_and_oracle_together_bit_exact(name, version):
    """Tracer and coherence oracle on at once: the oracle is defined over
    the reference event order, so every chunk must take the exact
    fallback path — and the two backends' event streams, oracle verdicts
    and machine states must still match to the bit."""
    params = t3d(4, cache_bytes=2048)
    report = check_workload(name, params, version, n=8,
                            trace=True, oracle=True)
    assert report.exact, report.summary()


@pytest.mark.parametrize("name", ["tomcatv", "swim"])
@pytest.mark.parametrize("version", [Version.BASE, Version.CCDP])
def test_fused_time_loop_bit_exact(name, version):
    """The fused serial-outer x doall-inner region time loops, run for
    more steps than the matrix tests: later steps revisit memoised
    chunks and replay stored outcomes, which must stay exact."""
    params = t3d(4, cache_bytes=2048)
    report = check_workload(name, params, version, n=8, steps=4, trace=True)
    assert report.exact, report.summary()
    assert report.batch_chunks > 0


def test_recurrence_chunk_compiles_scalar_pass():
    """A distance-1 loop-carried recurrence defeats the vectorised value
    pass at the aliasing check; the chunk must instead run through the
    generated scalar function (``plan.seq_fn``) and stay bit-exact —
    including the final register residue the next statements observe."""
    b = ir.ProgramBuilder("recur")
    b.shared("a", (64,))
    b.shared("b", (64,))
    with b.proc("main"):
        with b.doall("j", 1, 1, label="init", align="a"):
            with b.do("i", 1, 64):
                b.assign(b.ref("a", "i"), ir.E("i") * 1.5)
                b.assign(b.ref("b", "i"), ir.E("i") + 2.0)
        with b.doall("j", 1, 1, label="scan", align="a"):
            with b.do("i", 2, 64):
                b.assign(b.ref("a", "i"),
                         b.ref("a", ir.E("i") - 1) * 0.5 + b.ref("b", "i"))
    program = b.finish()
    params = t3d(1, cache_bytes=1024)
    report = compare_backends(program, params, Version.SEQ, trace=True)
    assert report.exact, report.summary()
    interp = make_interpreter(
        program, params,
        ExecutionConfig.for_version(Version.SEQ, backend="batched"))
    interp.run()
    plans = [p for entry in interp._serial_plans.values()
             for p in entry[:1] if p is not None]
    assert plans, "no serial plan compiled"
    assert all(p.seq_fn is not None for p in plans), \
        "compiled scalar value pass missing"


def _machine_snapshot(result):
    """Every observable a warm run must reproduce, as bytes."""
    import pickle

    machine = result.machine
    return pickle.dumps((
        result.elapsed,
        result.stats.as_dict(),
        [(pe.clock, pe.cache.tags.tobytes(), pe.cache.data.tobytes(),
          pe.cache.vers.tobytes()) for pe in machine.pes],
        machine.memory.values_flat.tobytes(),
        machine.memory.versions_flat.tobytes(),
        result.batch_chunks, result.batch_fallbacks,
        dict(result.fallback_reasons)))


@settings(max_examples=8, deadline=None)
@given(name=st.sampled_from(sorted(SIZES)),
       version=st.sampled_from([Version.SEQ, Version.BASE, Version.CCDP]))
def test_plan_cache_hit_byte_identical(name, version):
    """Property: a plan-cache hit (warm interpreter, reset in place) runs
    byte-identically to the cold run that populated it."""
    from repro.harness import progcache
    from repro.runtime import plancache
    from repro.workloads import workload

    params = t3d(4, cache_bytes=2048)
    spec = workload(name)
    sizes = {"n": 8}
    program = progcache.get_program(spec, sizes)
    if version == Version.CCDP:
        program, _ = progcache.get_transform(name, sizes, program, params, {})
    plancache.clear()
    cold = _machine_snapshot(
        run_program(program, params, version, backend="batched"))
    hits_before = progcache.COUNTERS.get("plan_hits", 0)
    warm = _machine_snapshot(
        run_program(program, params, version, backend="batched"))
    assert progcache.COUNTERS.get("plan_hits", 0) == hits_before + 1
    assert warm == cold, f"warm run diverged from cold ({name}/{version})"
