"""Runtime execution of the cache-management statements: clamping,
preambles, drops, and version-policy interactions."""

import numpy as np
import pytest

import repro.ir as ir
from repro.ir.stmt import InvalidateLines, PrefetchLine, PrefetchVector
from repro.machine.params import t3d
from repro.runtime import ExecutionConfig, Interpreter, Version, run_program


def program_with(stmts_builder, n=16):
    b = ir.ProgramBuilder("p")
    b.shared("x", (n, n))
    b.shared("y", (n, n))
    with b.proc("main"):
        with b.doall("j", 1, n, align="x"):
            with b.do("i", 1, n):
                b.assign(b.ref("x", "i", "j"), ir.E("i") * 1.0)
        stmts_builder(b, n)
    return b.finish()


def run(program, version=Version.CCDP, n_pes=2, **over):
    over.setdefault("cache_bytes", 1024)
    return run_program(program, t3d(n_pes, **over), version)


class TestPrefetchLineRuntime:
    def test_basic_prefetch_then_use(self):
        def body(b, n):
            b.emit(PrefetchLine(ir.aref("x", 3, 3)))
            b.assign(b.ref("y", 1, 1), b.ref("x", 3, 3))

        result = run(program_with(body))
        total = result.machine.stats.total()
        assert total.prefetch_issued == 1
        assert total.prefetch_extracted == 1

    def test_out_of_bounds_lookahead_is_dropped_harmlessly(self):
        def body(b, n):
            with b.doall("q", 1, 2):
                with b.do("i", 1, n):
                    # i+8 runs past the array edge: the prefetch must be
                    # skipped there, never crash
                    b.emit(PrefetchLine(ir.ArrayRef(
                        "x", [ir.parse_expr("i + 8"), ir.IntConst(1)])))
                    b.assign(b.ref("y", "i", 1),
                             b.ref("y", "i", 1) + b.ref("x", "i", 1))

        result = run(program_with(body))
        assert result.stats.stale_reads == 0

    def test_prefetch_noop_when_cache_disabled(self):
        def body(b, n):
            b.emit(PrefetchLine(ir.aref("x", 3, 3)))
            b.assign(b.ref("y", 1, 1), b.ref("x", 3, 3))

        result = run(program_with(body), version=Version.BASE)
        assert result.machine.stats.total().prefetch_issued == 0


class TestPrefetchVectorRuntime:
    def test_vector_covers_reads(self):
        def body(b, n):
            b.emit(PrefetchVector("x", [ir.IntConst(1), ir.IntConst(2)],
                                  axis=0, length=n))
            with b.do("i", 1, n):
                b.assign(b.ref("y", "i", 1), b.ref("x", "i", 2))

        result = run(program_with(body))
        total = result.machine.stats.total()
        assert total.vector_prefetches == 1
        assert total.vector_words == 16

    def test_vector_length_clamped_at_runtime(self):
        def body(b, n):
            # length larger than the remaining array: runtime clamps
            b.emit(PrefetchVector("x", [ir.IntConst(1), ir.IntConst(16)],
                                  axis=0, length=999))
            b.assign(b.ref("y", 1, 1), b.ref("x", 1, 16))

        result = run(program_with(body))
        assert result.machine.stats.total().vector_words <= 16

    def test_nonpositive_length_is_noop(self):
        def body(b, n):
            b.emit(PrefetchVector("x", [ir.IntConst(1), ir.IntConst(1)],
                                  axis=0, length=0))
            b.assign(b.ref("y", 1, 1), b.ref("x", 1, 1))

        result = run(program_with(body))
        assert result.machine.stats.total().vector_prefetches == 0

    def test_vector_noop_when_cache_disabled(self):
        def body(b, n):
            b.emit(PrefetchVector("x", [ir.IntConst(1), ir.IntConst(1)],
                                  axis=0, length=8))
            b.assign(b.ref("y", 1, 1), b.ref("x", 1, 1))

        result = run(program_with(body), version=Version.BASE)
        assert result.machine.stats.total().vector_prefetches == 0


class TestInvalidateRuntime:
    def test_invalidate_span_semantics(self):
        """InvalidateLines covers length * stride(axis) words from the
        start element."""
        def body(b, n):
            with b.do("i", 1, n):  # warm the cache with column 5
                b.assign(b.ref("y", "i", 1),
                         b.ref("y", "i", 1) + b.ref("x", "i", 5))
            b.emit(InvalidateLines("x", [ir.IntConst(1), ir.IntConst(5)],
                                   axis=0, length=n))
            with b.do("i", 1, n):  # re-read: all misses again
                b.assign(b.ref("y", "i", 2), b.ref("x", "i", 5))

        result = run(program_with(body), n_pes=1, version=Version.SEQ)
        assert result.machine.stats.total().invalidations >= 4

    def test_whole_array_invalidate_via_last_axis(self):
        def body(b, n):
            b.emit(InvalidateLines("x", [ir.IntConst(1), ir.IntConst(1)],
                                   axis=1, length=n))

        result = run(program_with(body))
        assert result.stats.stale_reads == 0


class TestPreambleRuntime:
    def test_chunk_vars_bound_per_pe(self):
        n = 16
        b = ir.ProgramBuilder("p")
        b.shared("x", (n, n))
        b.shared("y", (n, n))
        with b.proc("main"):
            with b.doall("j", 1, n, align="x") as loop:
                with b.do("i", 1, n):
                    b.assign(b.ref("x", "i", "j"), 1.0)
            loop.preamble.append(PrefetchVector(
                "x", [ir.IntConst(1), ir.VarRef("__lo_j")], axis=0, length=n))
        program = b.finish()
        result = run(program, n_pes=4)
        # each of the 4 PEs issued its own preamble vector
        assert result.machine.stats.total().vector_prefetches == 4

    def test_empty_chunk_skips_iterations(self):
        n = 4
        b = ir.ProgramBuilder("p")
        b.shared("x", (n, n))
        with b.proc("main"):
            with b.doall("j", 1, n, align="x"):
                b.assign(b.ref("x", 1, "j"), 1.0)
        result = run(b.finish(), n_pes=8)  # more PEs than columns
        assert result.value_of("x")[0].sum() == n
