"""Iteration partitioning policies."""

import pytest

from repro.ir.arrays import ArrayDecl
from repro.runtime.schedulers import (Chunk, block_partition, cyclic_partition,
                                      dynamic_chunks, iteration_values,
                                      owner_partition)


def flatten_chunks(chunks):
    out = []
    for chunk in chunks:
        out.extend(chunk.iterations())
    return out


class TestBlockPartition:
    def test_exact_division(self):
        chunks = block_partition(1, 8, 1, 4)
        assert [(c.lo, c.hi) for c in chunks] == [(1, 2), (3, 4), (5, 6), (7, 8)]

    def test_covers_all_iterations_once(self):
        values = flatten_chunks(block_partition(3, 20, 2, 3))
        assert sorted(values) == list(range(3, 21, 2))

    def test_uneven_trailing_pe_empty(self):
        chunks = block_partition(1, 5, 1, 4)
        assert sum(c.count for c in chunks) == 5
        assert chunks[-1].count == 0

    def test_single_pe_gets_everything(self):
        chunks = block_partition(1, 7, 1, 1)
        assert chunks[0].count == 7

    def test_negative_step(self):
        values = flatten_chunks(block_partition(10, 1, -1, 2))
        assert sorted(values) == list(range(1, 11))


class TestOwnerPartition:
    def test_matches_array_ownership(self):
        decl = ArrayDecl("a", (4, 16))
        parts = owner_partition(2, 15, 1, 4,
                                lambda v: decl.owner_of_axis_index(v, 4))
        for pe, values in enumerate(parts):
            for v in values:
                assert decl.owner_of_axis_index(v, 4) == pe

    def test_total_coverage(self):
        decl = ArrayDecl("a", (4, 16))
        parts = owner_partition(2, 15, 1, 4,
                                lambda v: decl.owner_of_axis_index(v, 4))
        assert sorted(v for vs in parts for v in vs) == list(range(2, 16))

    def test_block_ownership_contiguous(self):
        decl = ArrayDecl("a", (4, 16))
        parts = owner_partition(1, 16, 1, 4,
                                lambda v: decl.owner_of_axis_index(v, 4))
        for values in parts:
            if values:
                assert values == list(range(values[0], values[-1] + 1))


class TestCyclicPartition:
    def test_round_robin(self):
        parts = cyclic_partition(1, 7, 1, 3)
        assert parts[0] == [1, 4, 7]
        assert parts[1] == [2, 5]
        assert parts[2] == [3, 6]

    def test_coverage(self):
        parts = cyclic_partition(2, 21, 3, 4)
        assert sorted(v for vs in parts for v in vs) == list(range(2, 22, 3))


class TestDynamicChunks:
    def test_chunk_sizes(self):
        chunks = dynamic_chunks(1, 10, 1, 4)
        assert [c.count for c in chunks] == [4, 4, 2]

    def test_coverage(self):
        values = flatten_chunks(dynamic_chunks(1, 13, 2, 3))
        assert sorted(values) == list(range(1, 14, 2))


class TestChunk:
    def test_empty_chunk(self):
        assert Chunk(2, 1).count == 0
        assert list(Chunk(2, 1).iterations()) == []

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            iteration_values(1, 5, 0)
