"""The parallel sweep engine's contract: parallel == serial, byte for
byte, and worker failures surface as one aggregated error (strict mode)
or as quarantined ``Sweep.failed`` entries (farm mode)."""

import pickle

import pytest

from repro.farm import FarmConfig
from repro.harness.experiment import ExperimentRunner
from repro.harness.sweep import (Cell, FailedCell, SweepError, SweepSpec,
                                 cell_fault_seed, cell_key, plan_cells,
                                 sweep_grid)
from repro.runtime import Version
from repro.workloads import workload

SMALL = dict(size_args={"n": 8}, pe_counts=(1, 2), check=True)


def _pickled(sweeps):
    """Canonical bytes of every record, in deterministic cell order."""
    out = []
    for sweep in sweeps:
        out.append(pickle.dumps(sweep.seq, protocol=4))
        for key in sorted(sweep.runs):
            out.append(pickle.dumps(sweep.runs[key], protocol=4))
    return out


def test_parallel_matches_serial_byte_exact():
    specs = [SweepSpec.create("mxm", **SMALL),
             SweepSpec.create("vpenta", **SMALL)]
    serial = sweep_grid(specs, jobs=1)
    parallel = sweep_grid(specs, jobs=2)
    assert _pickled(serial) == _pickled(parallel)


def test_parallel_matches_serial_with_faults():
    """Seeded fault schedules are per-cell deterministic, so a faulted
    sweep must also be byte-identical at any job count."""
    specs = [SweepSpec.create("mxm", fault_spec="light", fault_seed=7,
                              **SMALL)]
    serial = sweep_grid(specs, jobs=1)
    parallel = sweep_grid(specs, jobs=2)
    assert _pickled(serial) == _pickled(parallel)
    assert serial[0].seq.fault_stats is not None


def test_matches_experiment_runner_sweep():
    """sweep_grid is a drop-in for ExperimentRunner.sweep (modulo the
    stripped CCDPReport, which travels separately)."""
    spec = SweepSpec.create("mxm", **SMALL)
    [grid] = sweep_grid([spec], jobs=1)
    legacy = ExperimentRunner(workload("mxm"), {"n": 8}).sweep((1, 2))
    assert grid.seq.elapsed == legacy.seq.elapsed
    assert sorted(grid.runs) == sorted(legacy.runs)
    for key, record in grid.runs.items():
        assert record.elapsed == legacy.runs[key].elapsed
        assert record.stats == legacy.runs[key].stats
        assert record.correct and legacy.runs[key].correct


def test_batched_backend_sweep():
    """A batched sweep carries its coverage/fallback accounting through
    the records."""
    specs = [SweepSpec.create("mxm", backend="batched",
                              versions=(Version.CCDP,), **SMALL)]
    [sweep] = sweep_grid(specs, jobs=2)
    record = sweep.record(Version.CCDP, 2)
    assert record.backend == "batched"
    assert record.batch_chunks > 0
    assert record.batched_coverage > 0.0
    assert sweep.all_correct()


def test_cell_order_is_serial_sweep_order():
    specs = [SweepSpec.create("mxm", versions=(Version.BASE, Version.CCDP),
                              **SMALL)]
    cells = [cell for _, cell in plan_cells(specs)]
    assert [(c.version, c.n_pes) for c in cells] == [
        (Version.SEQ, 1), (Version.BASE, 1), (Version.CCDP, 1),
        (Version.BASE, 2), (Version.CCDP, 2)]
    assert [c.index for c in cells] == list(range(5))


def test_cell_fault_seeds_stable_and_distinct():
    a = Cell(0, "mxm", Version.CCDP, 4)
    assert cell_fault_seed(7, a) == cell_fault_seed(7, a)
    others = [Cell(1, "mxm", Version.BASE, 4), Cell(2, "mxm", Version.CCDP, 8),
              Cell(3, "swim", Version.CCDP, 4)]
    seeds = {cell_fault_seed(7, c) for c in [a] + others}
    assert len(seeds) == 4


@pytest.mark.parametrize("jobs", [1, 2])
def test_worker_failure_surfaces_as_sweep_error(jobs):
    specs = [SweepSpec.create("mxm", **SMALL),
             SweepSpec.create("no-such-workload", **SMALL)]
    with pytest.raises(SweepError) as excinfo:
        sweep_grid(specs, jobs=jobs)
    message = str(excinfo.value)
    assert "no-such-workload" in message
    assert "Traceback" in message
    assert len(excinfo.value.failures) == 5  # every cell of the bad spec
    # every failure carries a paste-ready standalone repro line
    for failure in excinfo.value.failures:
        assert failure.repro_command().startswith(
            "python -m repro.harness run no-such-workload")
        assert failure.key[:16] in message  # content key named per cell
    assert "repro: python -m repro.harness run" in message


def test_failed_cell_repro_command_round_trips_options():
    spec = SweepSpec.create("mxm", size_args={"n": 8}, pe_counts=(4,),
                            backend="batched", check=False,
                            fault_spec="light", fault_seed=7)
    cell = Cell(2, "mxm", Version.CCDP, 4)
    failed = FailedCell(cell=cell, spec=spec, key=cell_key(spec, cell),
                        attempts=3, reason="timeout", error="slow")
    command = failed.repro_command()
    assert "run mxm" in command and "--version ccdp" in command
    assert "--pes 4" in command and "--n 8" in command
    assert "--backend batched" in command and "--no-check" in command
    # the derived per-cell seed, not the base seed, so the standalone
    # run realises the exact fault schedule the sweep cell saw
    assert f"--fault-seed {cell_fault_seed(7, cell)}" in command
    assert "FAILED after 3 attempt(s) [timeout]" in failed.describe()


def test_cell_key_stable_and_sensitive():
    spec = SweepSpec.create("mxm", **SMALL)
    cell = Cell(1, "mxm", Version.CCDP, 2)
    assert cell_key(spec, cell) == cell_key(spec, cell)
    # resolved sizes: explicit default spelling == default spelling
    explicit = SweepSpec.create(
        "mxm", size_args={"n": workload("mxm").default_args["n"]},
        pe_counts=(1, 2), check=True)
    implicit = SweepSpec.create("mxm", size_args={}, pe_counts=(1, 2),
                                check=True)
    assert cell_key(explicit, cell) == cell_key(implicit, cell)
    # any result-affecting input changes the key
    assert cell_key(spec, cell) != cell_key(spec, Cell(1, "mxm",
                                                       Version.BASE, 2))
    assert cell_key(spec, cell) != \
        cell_key(SweepSpec.create("mxm", size_args={"n": 12},
                                  pe_counts=(1, 2), check=True), cell)


@pytest.mark.parametrize("jobs", [1, 2])
def test_farm_mode_quarantines_instead_of_raising(tmp_path, jobs):
    specs = [SweepSpec.create("mxm", **SMALL),
             SweepSpec.create("no-such-workload", **SMALL)]
    farm = FarmConfig(jobs=jobs, farm_dir=str(tmp_path), max_retries=0)
    good, bad = sweep_grid(specs, farm=farm)
    assert good.all_correct() and not good.failed
    assert len(bad.failed) == 5 and not bad.all_correct()
    assert bad.runs == {} and bad.seq is None
    for failed in bad.failed.values():
        assert failed.reason == "error"
        assert "Traceback" in failed.error


def test_farm_dedup_yields_identical_sweeps(tmp_path):
    specs = [SweepSpec.create("mxm", **SMALL)]
    farm = FarmConfig(jobs=1, farm_dir=str(tmp_path))
    first = sweep_grid(specs, farm=farm)
    collect = {}
    second = sweep_grid(specs, farm=farm, collect=collect)
    assert collect["farm"].executed == 0
    assert collect["farm"].cached == 5
    assert _pickled(first) == _pickled(second)
    # and both match the ephemeral strict path byte for byte
    assert _pickled(first) == _pickled(sweep_grid(specs))
