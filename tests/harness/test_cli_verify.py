"""The ``ccdp verify`` and ``ccdp fuzz`` subcommands."""

import pytest

from repro.harness.cli import main
from repro.verify import fuzz
from repro.verify.fuzz import FuzzResult


class TestVerifyCommand:
    def test_verify_single_workload_clean(self, capsys):
        assert main(["verify", "--workloads", "mxm",
                     "--versions", "ccdp,naive"]) == 0
        captured = capsys.readouterr()
        assert "mxm/ccdp" in captured.out
        assert "0 violation(s)" in captured.out
        assert "all clean" in captured.err

    def test_verify_rejects_unknown_version(self):
        with pytest.raises(SystemExit):
            main(["verify", "--versions", "bogus"])


class TestFuzzCommand:
    def test_fuzz_clean_seeds(self, capsys):
        assert main(["fuzz", "--seeds", "2", "--pes", "2"]) == 0
        captured = capsys.readouterr()
        assert "[2/2]" in captured.err
        assert "2/2 seeds ok" in captured.err

    def test_fuzz_failure_shrinks_to_repro_file(self, tmp_path, capsys,
                                                monkeypatch):
        # force one failing cell so the shrink-and-report path runs
        def fake_cell(payload):
            seed, n_pes = payload
            return FuzzResult(seed=seed, n_pes=n_pes, choices=f"seed {seed}",
                              failures=("values[ccdp]: u differs",))

        monkeypatch.setattr(fuzz, "run_fuzz_cell", fake_cell)
        monkeypatch.setattr(
            fuzz, "check_program",
            lambda p, n_pes=4, collect=None: ["values[ccdp]: u differs"])
        assert main(["fuzz", "--seeds", "1", "--start", "3", "--shrink",
                     "--out", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "values[ccdp]: u differs" in captured.out
        repro = tmp_path / "fuzz-seed-3.ir"
        assert repro.exists()
        assert "program fuzz3" in repro.read_text()
