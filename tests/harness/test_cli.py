"""The ``ccdp`` command-line interface."""

import pytest

from repro.harness.cli import main


class TestInfo:
    def test_info_lists_workloads(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in ("mxm", "vpenta", "tomcatv", "swim"):
            assert name in out
        assert "machine defaults" in out


class TestCompile:
    def test_compile_prints_reports(self, capsys):
        assert main(["compile", "mxm", "--n", "16", "--pes", "4"]) == 0
        out = capsys.readouterr().out
        assert "stale analysis" in out
        assert "case1-serial-known" in out

    def test_compile_program_flag(self, capsys):
        assert main(["compile", "mxm", "--n", "16", "--pes", "4",
                     "--program"]) == 0
        out = capsys.readouterr().out
        assert "vprefetch" in out


class TestRun:
    def test_run_ccdp(self, capsys):
        assert main(["run", "mxm", "--version", "ccdp", "--pes", "2",
                     "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "mxm/ccdp" in out and "ok" in out

    def test_run_base(self, capsys):
        assert main(["run", "vpenta", "--version", "base", "--pes", "2",
                     "--n", "17"]) == 0
        out = capsys.readouterr().out
        assert "stale_reads" in out


class TestTables:
    def test_table2_single_workload(self, capsys):
        code = main(["table2", "--workloads", "mxm", "--pes", "1,2",
                     "--n", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_table3_cross_scheme(self, capsys):
        code = main(["table3", "--workloads", "mxm", "--pes", "1,2",
                     "--n", "8", "--versions", "ccdp,mesi,dir"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        for scheme in ("ccdp", "mesi", "dir"):
            assert scheme in out
        assert "WRONG" not in out

    def test_table3_rejects_unknown_scheme(self, capsys):
        with pytest.raises(SystemExit):
            main(["table3", "--workloads", "mxm", "--pes", "1",
                  "--n", "8", "--versions", "ccdp,hyperspeed"])
        assert "registered schemes" in capsys.readouterr().err

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "exp.md"
        code = main(["report", "--workloads", "mxm", "--pes", "1,2",
                     "--n", "16", "--out", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert "# EXPERIMENTS" in text


class TestErrors:
    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["run", "linpack"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCompileFile:
    def test_compile_and_run_dsl_file(self, capsys):
        assert main(["compile-file", "examples/programs/redblack.ccdp",
                     "--pes", "2", "--run"]) == 0
        out = capsys.readouterr().out
        assert "stale analysis" in out
        assert "0 stale reads" in out

    def test_write_transformed_output(self, tmp_path, capsys):
        out_file = tmp_path / "out.ccdp"
        assert main(["compile-file", "examples/programs/redblack.ccdp",
                     "--pes", "2", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "vprefetch" in text
        # the emitted DSL must be re-parseable
        from repro.ir.dsl import parse_program
        parse_program(text)


class TestProfile:
    def test_profile_prints_curves(self, capsys):
        assert main(["profile", "vpenta", "--n", "17", "--pes", "2"]) == 0
        out = capsys.readouterr().out
        assert "miss rate vs cache size" in out
        assert "most-conflicted cache sets" in out
