"""Experiment harness: sweeps, table formatting, report generation."""

import pytest

from repro.harness import (ExperimentRunner, PAPER_IMPROVEMENT_RANGES,
                           band_verdict, format_table1, format_table2,
                           generate_report, paper_improvement, run_sweep,
                           table1_rows, table2_rows)
from repro.runtime import Version
from repro.workloads import workload

PES = (1, 2, 4)
SIZE = {"n": 16}


@pytest.fixture(scope="module")
def mxm_sweep():
    return run_sweep(workload("mxm"), pe_counts=PES, size_args=SIZE)


class TestRunner:
    def test_sweep_runs_all_versions(self, mxm_sweep):
        assert mxm_sweep.seq.version == Version.SEQ
        for n_pes in PES:
            assert (Version.BASE, n_pes) in mxm_sweep.runs
            assert (Version.CCDP, n_pes) in mxm_sweep.runs

    def test_all_runs_validated(self, mxm_sweep):
        assert mxm_sweep.all_correct()
        for (version, _), record in mxm_sweep.runs.items():
            if version == Version.CCDP:
                assert record.stale_reads == 0

    def test_speedup_and_improvement(self, mxm_sweep):
        for n_pes in PES:
            base = mxm_sweep.speedup(Version.BASE, n_pes)
            ccdp = mxm_sweep.speedup(Version.CCDP, n_pes)
            assert ccdp > base > 0
            assert 0 < mxm_sweep.improvement(n_pes) < 100

    def test_runner_caches_ccdp_transform(self):
        runner = ExperimentRunner(workload("mxm"), SIZE)
        first = runner.ccdp_program(2)
        second = runner.ccdp_program(2)
        assert first is second
        other = runner.ccdp_program(4)
        assert other is not first

    def test_scaled_cache_default_applied(self):
        runner = ExperimentRunner(workload("mxm"), SIZE)
        assert runner.params_for(2).cache_bytes == 2048

    def test_param_overrides_respected(self):
        runner = ExperimentRunner(workload("mxm"), SIZE,
                                  param_overrides={"cache_bytes": 4096})
        assert runner.params_for(2).cache_bytes == 4096

    def test_irrelevant_size_keys_ignored(self):
        runner = ExperimentRunner(workload("mxm"), {"n": 16, "steps": 9})
        assert runner.size_args == {"n": 16}

    def test_ccdp_report_attached(self, mxm_sweep):
        record = mxm_sweep.record(Version.CCDP, 2)
        assert record.ccdp_report is not None
        assert record.ccdp_report.targets.targets


class TestTables:
    def test_table1_rows_structure(self, mxm_sweep):
        rows = table1_rows([mxm_sweep])
        assert [r["n_pes"] for r in rows] == list(PES)
        assert "mxm/base" in rows[0] and "mxm/ccdp" in rows[0]

    def test_table1_formatting(self, mxm_sweep):
        text = format_table1([mxm_sweep])
        assert "Table 1" in text and "MXM" in text
        assert len(text.splitlines()) == 4 + len(PES)

    def test_table2_includes_paper_cells(self, mxm_sweep):
        text = format_table2([mxm_sweep])
        assert "Table 2" in text and "(paper)" in text

    def test_table2_rows_have_measured_values(self, mxm_sweep):
        rows = table2_rows([mxm_sweep])
        assert all(isinstance(r["mxm"], float) for r in rows)


class TestPaperData:
    def test_known_cells(self):
        assert paper_improvement("tomcatv", 1) == pytest.approx(44.83)
        assert paper_improvement("vpenta", 64) == pytest.approx(23.90)

    def test_unrecoverable_cells_are_none(self):
        assert paper_improvement("mxm", 8) is None
        assert paper_improvement("swim", 1) is None

    def test_unknown_lookups_are_none(self):
        assert paper_improvement("linpack", 8) is None
        assert paper_improvement("mxm", 3) is None

    def test_ranges_cover_table_cells(self):
        from repro.harness import PAPER_TABLE2
        for name, cells in PAPER_TABLE2.items():
            lo, hi = PAPER_IMPROVEMENT_RANGES[name]
            for cell in cells:
                if cell is not None:
                    assert lo - 0.2 <= cell <= hi + 0.2

    def test_band_verdict(self):
        assert "matches" in band_verdict("vpenta", [10.0, 12.0, 15.0])
        assert "outside" in band_verdict("vpenta", [80.0, 90.0, 95.0])


class TestReport:
    def test_report_contains_sections(self, mxm_sweep):
        text = generate_report([mxm_sweep])
        assert "# EXPERIMENTS" in text
        assert "Table 1" in text and "Table 2" in text
        assert "all correct" in text

    def test_report_with_runner_includes_algorithms(self, mxm_sweep):
        runner = ExperimentRunner(workload("mxm"), SIZE)
        text = generate_report([mxm_sweep], {"mxm": runner})
        assert "Fig. 1 / Fig. 2" in text
        assert "| mxm |" in text
