"""Mutation testing of the static safety verifier: every seeded
coherence bug in real transformed workload IR must be flagged with an
IR-located Violation, and the clean 4-workload x 4-version matrix must
verify clean.

Each mutant breaks exactly one of the paper's safety rules:

* drop the fused invalidate from a prefetch (rule: invalidate before
  prefetch);
* re-add the invalidation *after* the prefetch (ordering, not
  presence, is what the rule demands);
* delete the invalidation guarding a stale summarised call;
* un-convert a bypass read back to a cached read (rule 2's demotion);
* hoist a prefetch above the parallel epoch that writes its array;
* leave a prefetch in front of a write that definitely aliases it;
* inflate a look-ahead distance beyond the prefetch queue capacity.
"""

import pytest

import repro.ir as ir
from repro.coherence import CCDPConfig, ccdp_transform
from repro.harness.experiment import SCALED_CACHE_BYTES
from repro.machine.params import t3d
from repro.runtime import Version
from repro.verify import verify_program, verify_transform
from repro.workloads import all_workloads, workload

WORKLOADS = [spec.name for spec in all_workloads()]


def _transformed(name, pes=8):
    spec = workload(name)
    program = spec.build(**spec.default_args)
    config = CCDPConfig(machine=t3d(pes, cache_bytes=SCALED_CACHE_BYTES))
    transformed, _ = ccdp_transform(program, config)
    return program, transformed, config


def _kinds(report):
    return [v.kind for v in report.violations]


def _located(report, kind):
    """The violations of ``kind``, asserting each carries an IR location."""
    found = [v for v in report.violations if v.kind == kind]
    assert found, f"no {kind!r} violation in: {_kinds(report)}"
    for violation in found:
        assert violation.proc, violation
        assert violation.location, violation
        assert violation.stmt_uid != 0, violation
    return found


def _find(program, kind):
    for proc in program.procedures.values():
        for stmt in proc.walk():
            if isinstance(stmt, kind):
                return stmt
    return None


def _remove(program, target):
    """Delete ``target`` from whatever statement list holds it."""
    def scrub(body):
        for i, stmt in enumerate(body):
            if stmt is target:
                del body[i]
                return True
            for sub in stmt.bodies():
                if scrub(sub):
                    return True
        return False

    for proc in program.procedures.values():
        if scrub(proc.body):
            return True
    return False


class TestCleanMatrix:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("version", Version.ALL)
    def test_workload_verifies_clean(self, name, version):
        spec = workload(name)
        program = spec.build(**spec.default_args)
        config = CCDPConfig(machine=t3d(8, cache_bytes=SCALED_CACHE_BYTES))
        report = verify_program(program, version, config=config)
        assert report.ok, report.summary()
        if version == Version.CCDP:
            assert report.obligations > 0
            assert sum(report.covered.values()) >= report.obligations


class TestMutants:
    def test_dropped_fused_invalidate_flagged(self):
        original, transformed, config = _transformed("vpenta")
        pf = _find(transformed, ir.PrefetchLine)
        assert pf is not None and pf.invalidate_first
        pf.invalidate_first = False
        report = verify_transform(original, transformed, config=config)
        bad = _located(report, "prefetch-missing-invalidate")
        assert any(v.stmt_uid == pf.uid for v in bad)

    def test_invalidate_reordered_after_prefetch_still_flagged(self):
        original, transformed, config = _transformed("vpenta")
        pf = _find(transformed, ir.PrefetchLine)
        pf.invalidate_first = False

        # put the invalidation back — but *after* the prefetch, which
        # leaves the stale line cached while the prefetch issues
        def insert_after(body):
            for i, stmt in enumerate(body):
                if stmt is pf:
                    body.insert(i + 1, ir.InvalidateLines(
                        pf.ref.array, [s.clone() for s in pf.ref.subscripts],
                        0, 1))
                    return True
                for sub in stmt.bodies():
                    if insert_after(sub):
                        return True
            return False

        assert insert_after(transformed.entry_proc.body)
        report = verify_transform(original, transformed, config=config)
        _located(report, "prefetch-missing-invalidate")

    def test_deleted_call_invalidate_flagged(self):
        # the workloads inline their parallel callees, so build the
        # interprocedural shape directly: a parallel epoch writes `a`,
        # then a *serial* callee re-reads it across columns
        n = 8
        b = ir.ProgramBuilder("callinv")
        b.shared("a", (n, n))
        b.shared("b", (n, n))
        with b.proc("summarise"):
            with b.do("i", 2, n - 1):
                with b.do("j", 2, n - 1):
                    b.assign(b.ref("b", 1, 1),
                             b.ref("b", 1, 1) + b.ref("a", "i", "j") * 0.5)
        with b.proc("main"):
            with b.doall("j", 1, n, align="a"):
                with b.do("i", 1, n):
                    b.assign(b.ref("a", "i", "j"), ir.E("i") + ir.E("j"))
            b.call("summarise")
        program = b.finish()
        config = CCDPConfig(machine=t3d(4))
        transformed, _ = ccdp_transform(program, config)
        clean = verify_transform(program, transformed, config=config)
        assert clean.ok, clean.summary()
        assert clean.covered.get("invalidate", 0) >= 1

        inv = _find(transformed, ir.InvalidateLines)
        assert inv is not None
        assert _remove(transformed, inv)
        report = verify_transform(program, transformed, config=config)
        bad = _located(report, "call-missing-invalidate")
        assert bad[0].array == "a"

    def test_skipped_bypass_conversion_flagged(self):
        # at 16 PEs tomcatv demotes several reads to bypass with no
        # other mechanism covering them (verified clean by the matrix
        # above); un-converting them must leave uncovered stale reads
        original, transformed, config = _transformed("tomcatv", pes=16)
        baseline = verify_transform(original, transformed, config=config)
        assert baseline.ok and baseline.covered.get("bypass", 0) > 0
        flipped = []
        for proc in transformed.procedures.values():
            for stmt in proc.walk():
                for expr in stmt.expressions():
                    for node in expr.walk():
                        if isinstance(node, ir.ArrayRef) and \
                                node.mode == ir.RefMode.BYPASS:
                            node.mode = ir.RefMode.NORMAL
                            flipped.append(node.uid)
        assert flipped
        report = verify_transform(original, transformed, config=config)
        bad = _located(report, "uncovered-stale-read")
        assert {v.ref_uid for v in bad} <= set(flipped)

    def test_overhoisted_prefetch_crosses_barrier(self):
        original, transformed, config = _transformed("mxm")
        pv = _find(transformed, ir.PrefetchVector)
        assert pv is not None
        assert _remove(transformed, pv)
        # hoist it to the very top of main — above the initialisation
        # DOALL that writes its array
        transformed.entry_proc.body.insert(0, pv)
        report = verify_transform(original, transformed, config=config)
        bad = _located(report, "prefetch-crosses-barrier")
        assert any(v.stmt_uid == pv.uid for v in bad)

    def test_prefetch_left_above_dependent_write_flagged(self):
        original, transformed, config = _transformed("vpenta")
        pf = _find(transformed, ir.PrefetchLine)
        assert pf is not None

        # plant a write of the exact prefetched address between the
        # prefetch and its use — the relative order MBP must never create
        def insert_write(body):
            for i, stmt in enumerate(body):
                if stmt is pf:
                    lhs = pf.ref.clone()
                    lhs.mode = ir.RefMode.NORMAL
                    body.insert(i + 1, ir.Assign(lhs, ir.FloatConst(0.0)))
                    return True
                for sub in stmt.bodies():
                    if insert_write(sub):
                        return True
            return False

        assert insert_write(transformed.entry_proc.body)
        report = verify_transform(original, transformed, config=config)
        bad = _located(report, "prefetch-past-dependent-write")
        assert bad[0].array == pf.ref.array

    def test_inflated_distance_overflows_queue(self):
        original, transformed, config = _transformed("vpenta")
        pf = None
        for stmt in transformed.entry_proc.walk():
            if isinstance(stmt, ir.PrefetchLine) and stmt.distance > 0:
                pf = stmt
        assert pf is not None
        pf.distance = config.machine.prefetch_queue_slots + 100
        report = verify_transform(original, transformed, config=config)
        # the violation anchors to its loop body's prefetch group (the
        # whole footprint overflows, not one statement in isolation)
        bad = _located(report, "queue-overflow")
        assert bad[0].proc == "main"
