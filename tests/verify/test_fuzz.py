"""The differential fuzz harness itself: cell anatomy, pool fan-out
determinism, and crash containment."""

import pytest

from repro.verify import fuzz
from repro.verify.fuzz import FuzzResult, fuzz_seeds, run_fuzz_cell


def test_single_cell_runs_the_whole_battery():
    result = run_fuzz_cell((0, 4))
    assert result.ok, result.failures
    assert result.seed == 0
    assert result.choices.startswith("seed 0")
    assert result.trace_events > 0
    assert "ok" in result.describe()


def test_naive_stale_hits_are_observed():
    # seed 5 is known to make the naive version consume stale values
    # (pinned by the corpus); the cell reports but does not fail on it
    result = run_fuzz_cell((5, 4))
    assert result.ok, result.failures
    assert result.naive_stale > 0


def test_parallel_results_match_serial():
    seeds = [0, 1, 2]
    serial = fuzz_seeds(seeds, jobs=1)
    parallel = fuzz_seeds(seeds, jobs=2)
    assert serial == parallel
    assert [r.seed for r in serial] == seeds


def test_progress_callback_sees_every_cell():
    seen = []
    fuzz_seeds([0, 1], jobs=1,
               progress=lambda done, total, r: seen.append((done, total,
                                                            r.seed)))
    assert seen == [(1, 2, 0), (2, 2, 1)]


def test_crashing_cell_ships_its_traceback(monkeypatch):
    def boom(seed):
        raise RuntimeError("generator exploded")

    monkeypatch.setattr(fuzz, "generate_with_choices", boom)
    result = run_fuzz_cell((9, 4))
    assert not result.ok
    assert "generator exploded" in result.error
    assert "crashed" in result.describe()


def test_failures_render_in_describe():
    result = FuzzResult(seed=3, n_pes=4, failures=("values[ccdp]: u differs",))
    assert not result.ok
    assert "FAIL" in result.describe()
    assert "1 failure(s)" in result.describe()
