"""Unit tests for the static safety verifier's building blocks:
statement-address dominance, the structural rules, and the
version-aware entry points."""

import pytest

import repro.ir as ir
from repro.coherence.config import CCDPConfig
from repro.machine.params import t3d
from repro.verify.safety import (_dominates, _precedes, verify_program,
                                 verify_structural, verify_transform)


class TestChainOrder:
    def test_precedes_within_body(self):
        assert _precedes((("body", 0),), (("body", 1),))
        assert not _precedes((("body", 1),), (("body", 0),))

    def test_preamble_precedes_body(self):
        assert _precedes((("body", 2), ("preamble", 0)),
                         (("body", 2), ("body", 0)))
        assert not _precedes((("body", 2), ("body", 0)),
                             (("body", 2), ("preamble", 0)))

    def test_branch_arms_incomparable(self):
        a = (("body", 0), ("then", 0))
        b = (("body", 0), ("else", 0))
        assert not _precedes(a, b) and not _precedes(b, a)

    def test_ancestor_does_not_precede_descendant(self):
        assert not _precedes((("body", 1),), (("body", 1), ("body", 0)))

    def test_dominates_requires_unconditional_path(self):
        # a statement inside a then-arm does not dominate a later sibling
        a = (("body", 0), ("then", 0))
        b = (("body", 1),)
        assert _precedes(a, b) and not _dominates(a, b)
        # but an unconditional earlier statement does
        assert _dominates((("body", 0),), (("body", 1),))

    def test_loop_body_dominates_later_statement(self):
        # loop bodies run >= 1 time (the validator rejects zero-trip
        # headers), so a statement in an earlier loop dominates
        a = (("body", 0), ("body", 0))
        b = (("body", 1),)
        assert _dominates(a, b)


def _stale_pair(n=8):
    """A program with one parallel epoch writing ``a`` and a second one
    reading it across columns — the canonical stale-read shape."""
    b = ir.ProgramBuilder("pair")
    b.shared("a", (n, n))
    b.shared("b", (n, n))
    with b.proc("main"):
        with b.doall("j", 1, n, align="a"):
            with b.do("i", 1, n):
                b.assign(b.ref("a", "i", "j"), ir.E("i") * 0.5 + ir.E("j"))
        with b.doall("j", 2, n - 1):
            with b.do("i", 1, n):
                b.assign(b.ref("b", "i", "j"),
                         b.ref("a", "i", ir.E("j") + 1) * 0.25)
    return b.finish()


class TestEntryPoints:
    def test_ccdp_transform_verifies_clean(self):
        program = _stale_pair()
        config = CCDPConfig(machine=t3d(4))
        report = verify_program(program, "ccdp", config=config)
        assert report.ok
        assert report.obligations > 0
        assert sum(report.covered.values()) > 0

    @pytest.mark.parametrize("version", ["seq", "base"])
    def test_untransformed_versions_vacuously_clean(self, version):
        report = verify_program(_stale_pair(), version)
        assert report.ok
        assert report.obligations == 0
        assert "vacuous" in report.notes

    def test_naive_reports_unprotected_stale(self):
        report = verify_program(_stale_pair(), "naive")
        assert report.ok  # naive promises nothing — informational only
        assert report.unprotected_stale > 0


class TestStructuralRules:
    def _with_prefetch(self, invalidate_first, with_invalidate_before=False,
                       with_invalidate_after=False):
        program = _stale_pair()
        main = program.entry_proc
        # prefetch a(1, 1) ahead of the second (reading) epoch
        pf = ir.PrefetchLine(ir.aref("a", 1, 1),
                             invalidate_first=invalidate_first)
        inv = ir.InvalidateLines("a", [ir.IntConst(1), ir.IntConst(1)], 0, 8)
        main.body.insert(1, pf)
        if with_invalidate_before:
            main.body.insert(1, inv)
        if with_invalidate_after:
            main.body.insert(2, inv)
        return program

    def test_fused_invalidate_is_clean(self):
        report = verify_structural(self._with_prefetch(True), "ccdp")
        assert report.ok

    def test_missing_invalidate_flagged(self):
        report = verify_structural(self._with_prefetch(False), "ccdp")
        kinds = [v.kind for v in report.violations]
        assert "prefetch-missing-invalidate" in kinds

    def test_dominating_explicit_invalidate_is_clean(self):
        program = self._with_prefetch(False, with_invalidate_before=True)
        assert verify_structural(program, "ccdp").ok

    def test_invalidate_after_prefetch_does_not_count(self):
        program = self._with_prefetch(False, with_invalidate_after=True)
        kinds = [v.kind for v in verify_structural(program, "ccdp").violations]
        assert "prefetch-missing-invalidate" in kinds

    def test_prefetch_above_epoch_boundary_flagged(self):
        program = _stale_pair()
        main = program.entry_proc
        # find the read of a(i, j+1) in the second epoch and plant a
        # prefetch for it at the very top — above the DOALL writing `a`
        use = None
        for stmt in main.walk():
            for expr in stmt.expressions():
                for node in expr.walk():
                    if isinstance(node, ir.ArrayRef) and node.array == "a" \
                            and node is not getattr(stmt, "lhs", None):
                        use = node
        assert use is not None
        pf = ir.PrefetchLine(use.clone(), invalidate_first=True,
                             for_uid=use.uid)
        main.body.insert(0, pf)
        report = verify_structural(program, "ccdp")
        kinds = [v.kind for v in report.violations]
        assert "prefetch-crosses-barrier" in kinds
        bad = next(v for v in report.violations
                   if v.kind == "prefetch-crosses-barrier")
        assert bad.proc == "main"
        assert bad.stmt_uid == pf.uid
        assert bad.location  # IR-located


class TestTransformChecks:
    def test_queue_overflow_flagged(self):
        program = _stale_pair()
        config = CCDPConfig(machine=t3d(4))
        from repro.coherence import ccdp_transform
        transformed, _ = ccdp_transform(program, config)
        # plant a look-ahead footprint far beyond the queue capacity
        inner = None
        for stmt in transformed.entry_proc.walk():
            if isinstance(stmt, ir.Loop) and stmt.kind == ir.LoopKind.SERIAL:
                inner = stmt
        assert inner is not None
        pf = ir.PrefetchLine(ir.aref("a", "i", 1), invalidate_first=True,
                             distance=10_000)
        inner.body.insert(0, pf)
        report = verify_transform(program, transformed, config=config)
        kinds = [v.kind for v in report.violations]
        assert "queue-overflow" in kinds
