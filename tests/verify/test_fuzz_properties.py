"""Property-based conformance: Hypothesis drives the seeded generator
through the full differential battery.

The strategy space is the generator's seed space — Hypothesis explores
and shrinks over *seeds*, while :mod:`repro.verify.minimize` shrinks the
failing seed's *program* to a minimal reproducer for the failure
message.  Example counts are kept small here (tier-1 runs on every
commit); the CI ``fuzz-smoke`` job and ``ccdp fuzz --seeds N`` sweep a
much wider range.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir.dsl import parse_program
from repro.ir.printer import format_program
from repro.ir.validate import validate_program
from repro.verify.fuzz import check_program, shrink_failure
from repro.verify.gen import generate_with_choices

seeds = st.integers(min_value=0, max_value=100_000)

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=25, **COMMON)
@given(seed=seeds)
def test_generated_programs_validate_and_round_trip(seed):
    program, choices = generate_with_choices(seed)
    validate_program(program)
    text = format_program(program)
    assert format_program(parse_program(text)) == text, choices.describe()


@settings(max_examples=6, **COMMON)
@given(seed=seeds)
def test_versions_and_backends_agree(seed):
    """The load-bearing property: every version x backend x oracle x
    trace-fold cross-check holds for any generated program.  On failure
    the seed is delta-debugged to a minimal program for the report."""
    program, choices = generate_with_choices(seed)
    failures = check_program(program, n_pes=4)
    if failures:
        _, repro_text = shrink_failure(seed, n_pes=4)
        pytest.fail(f"{choices.describe()} failed:\n"
                    + "\n".join(f"  {f}" for f in failures)
                    + f"\nminimal reproducer:\n{repro_text}")
