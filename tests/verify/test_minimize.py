"""The delta-debugging shrinker: candidates stay valid, the predicate
is preserved, crashes and budget exhaustion are contained."""

import repro.ir as ir
from repro.ir.dsl import parse_program
from repro.ir.printer import format_program
from repro.ir.validate import validate_program
from repro.verify import fuzz
from repro.verify.gen import generate_program
from repro.verify.minimize import minimize_program


def _writes(program, array):
    for proc in program.procedures.values():
        for stmt in proc.walk():
            if isinstance(stmt, ir.Assign) and \
                    isinstance(stmt.lhs, ir.ArrayRef) and \
                    stmt.lhs.array == array:
                return True
    return False


def _stmt_count(program):
    return sum(1 for proc in program.procedures.values()
               for _ in proc.walk())


def test_shrinks_while_preserving_predicate():
    program = generate_program(3)
    before = _stmt_count(program)
    small = minimize_program(program, lambda p: _writes(p, "v"))
    assert _writes(small, "v")
    assert _stmt_count(small) < before
    validate_program(small)


def test_result_round_trips_through_printer():
    small = minimize_program(generate_program(3), lambda p: _writes(p, "v"))
    text = format_program(small)
    assert format_program(parse_program(text)) == text


def test_input_is_never_mutated():
    program = generate_program(3)
    text = format_program(program)
    minimize_program(program, lambda p: _writes(p, "v"))
    assert format_program(program) == text


def test_unused_arrays_are_dropped():
    small = minimize_program(generate_program(3), lambda p: _writes(p, "v"))
    used = set()
    for proc in small.procedures.values():
        for stmt in proc.walk():
            for expr in stmt.expressions():
                for node in expr.walk():
                    if isinstance(node, ir.ArrayRef):
                        used.add(node.array)
    assert set(small.arrays) <= used | {"v"}


def test_predicate_crash_is_not_a_repro():
    # a predicate that *crashes* when `v` is gone must not let the
    # shrinker drop `v` — crashing is not "the failure reproduces"
    def brittle(program):
        if not _writes(program, "v"):
            raise KeyError("v is gone")
        return True

    small = minimize_program(generate_program(3), brittle)
    assert _writes(small, "v")


def test_zero_budget_returns_input_unchanged():
    program = generate_program(5)
    small = minimize_program(program, lambda p: True, max_trials=0)
    assert format_program(small) == format_program(program)


def test_shrink_failure_drives_the_battery(monkeypatch):
    # substitute a cheap structural "battery" so the shrink path is
    # exercised without needing a real pipeline bug
    monkeypatch.setattr(
        fuzz, "check_program",
        lambda p, n_pes=4, collect=None:
            ["writes v"] if _writes(p, "v") else [])
    small, text = fuzz.shrink_failure(3)
    assert _writes(small, "v")
    assert format_program(parse_program(text)) == text
    assert len(text.splitlines()) < \
        len(format_program(generate_program(3)).splitlines())
