"""Regression corpus: pinned generator programs replayed through the
full differential battery on every tier-1 run.

The ``.ir`` files under ``tests/verify/corpus/`` are the printed form
of specific generator seeds, chosen for the machinery they exercise
(see ``CORPUS``).  They are committed so that future generator changes
cannot silently retire a regression: the drift test proves disk ==
generator, and the replay test re-runs the battery on the parsed file.
To regenerate after an *intentional* generator change::

    REPRO_UPDATE_CORPUS=1 PYTHONPATH=src python -m pytest tests/verify/test_corpus.py

then review the corpus diffs like any other code change.
"""

import dataclasses
import os
from pathlib import Path

import numpy as np
import pytest

from repro.coherence import CCDPConfig, ccdp_transform
from repro.ir.dsl import parse_program
from repro.ir.printer import format_program
from repro.machine.params import t3d
from repro.runtime import Version, run_program
from repro.verify.fuzz import check_program
from repro.verify.gen import generate_program, generate_with_choices

CORPUS_DIR = Path(__file__).parent / "corpus"
UPDATE = os.environ.get("REPRO_UPDATE_CORPUS") == "1"

#: seed -> why it is pinned
CORPUS = {
    0: "copy_reverse + region: negative coefficients and back edges",
    1: "stencil/sweep/segment; overflows a 2-slot prefetch queue",
    5: "four epochs incl. reduction + region on three arrays",
    8: "stencil/reduction/stencil with branchy stencil bodies",
    10: "multi-epoch reduction (reduction, region, reduction)",
    12: "queue-capacity-forced bypass under a squeezed queue",
    24: "heaviest cross-PE sharing found <45: 171 naive-stale hits over "
        "3 arrays (stencil/copy_reverse/stencil/region) — exercises the "
        "mesi/dir invalidation and c2c paths hard",
    33: "heavy 2-array sharing (126 naive-stale hits): stencil/region/"
        "stencil/copy_reverse ping-pongs lines between writers",
}

#: seeds pinned for their cross-PE sharing intensity; the hardware
#: protocols must invalidate their way to seq-exact finals here
SHARING_SEEDS = (24, 33)

#: seeds whose prefetch footprint overflows a 2-slot queue, forcing the
#: rule-2 dynamic demotion (dropped prefetch -> bypass fetch at use)
QUEUE_PRESSURE_SEEDS = (1, 12)


def _path(seed):
    return CORPUS_DIR / f"seed{seed:03d}.ir"


@pytest.mark.parametrize("seed", sorted(CORPUS))
def test_corpus_matches_generator(seed):
    text = format_program(generate_program(seed))
    path = _path(seed)
    if UPDATE:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), \
        f"missing corpus file {path}; generate with REPRO_UPDATE_CORPUS=1"
    assert path.read_text() == text, \
        (f"{path.name} no longer matches the generator; if the generator "
         f"change is intentional, regenerate with REPRO_UPDATE_CORPUS=1 "
         f"and review the diff")


@pytest.mark.parametrize("seed", sorted(CORPUS))
def test_corpus_replays_clean(seed):
    program = parse_program(_path(seed).read_text())
    failures = check_program(program, n_pes=4)
    assert not failures, "\n".join(failures)


def test_multi_epoch_reduction_is_pinned():
    _, choices = generate_with_choices(10)
    assert choices.epochs.count("reduction") >= 2


@pytest.mark.parametrize("version", ("mesi", "dir"))
@pytest.mark.parametrize("seed", SHARING_SEEDS)
def test_sharing_corpus_exercises_protocols(seed, version):
    """The pinned heavy-sharing programs must drive real invalidation
    and cache-to-cache traffic through the hardware protocols — and
    still land bit-exactly on the sequential answer with the oracle
    armed, their event traces folding back to the live counters."""
    from repro.obs import Tracer
    from repro.obs.fold import reconcile

    program = parse_program(_path(seed).read_text())
    tracer = Tracer()
    result = run_program(program, t3d(4), version, on_stale="raise",
                         oracle=True, tracer=tracer)
    total = result.machine.stats.total()
    assert total.coh_invalidations > 0
    assert total.c2c_transfers > 0
    if version == "mesi":
        assert total.bus_rd > 0 and total.bus_rdx > 0
    else:
        assert total.dir_requests > 0 and total.dir_messages > 0
    assert result.machine.oracle.violations == 0
    assert reconcile(tracer.events, result.machine) == []
    seq = run_program(program, t3d(1), Version.SEQ)
    for name, expected in seq.machine.memory.values.items():
        assert np.array_equal(expected, result.machine.memory.values[name])


@pytest.mark.parametrize("seed", QUEUE_PRESSURE_SEEDS)
def test_squeezed_queue_forces_bypass_and_stays_correct(seed):
    """Rule 2 end to end: with a 2-slot queue the look-ahead prefetches
    provably overflow, the machine drops them, and the dropped lines are
    re-fetched around the cache — values stay bit-identical to seq."""
    program = parse_program(_path(seed).read_text())
    params = dataclasses.replace(t3d(4), prefetch_queue_slots=2)
    transformed, _ = ccdp_transform(program, CCDPConfig(machine=params))
    result = run_program(transformed, params, Version.CCDP)
    total = result.machine.stats.total()
    assert total.pf_dropped > 0
    assert total.pf_drop_bypass > 0
    assert total.stale_hits == 0
    seq = run_program(program, t3d(1), Version.SEQ)
    for name, expected in seq.machine.memory.values.items():
        assert np.array_equal(expected, result.machine.memory.values[name])
