"""The random program generator's stated invariants: determinism,
validity, printer round-trips, and honest DOALL independence."""

from repro.analysis.parcheck import check_doall_independence
from repro.ir.dsl import parse_program
from repro.ir.printer import format_program
from repro.ir.validate import validate_program
from repro.verify.gen import generate_program, generate_with_choices

SEEDS = range(30)


def test_deterministic_per_seed():
    assert format_program(generate_program(7)) == \
        format_program(generate_program(7))


def test_distinct_seeds_draw_distinct_programs():
    texts = {format_program(generate_program(s)) for s in SEEDS}
    assert len(texts) > len(SEEDS) // 2


def test_every_seed_validates():
    for seed in SEEDS:
        validate_program(generate_program(seed))  # raises on failure


def test_printer_round_trip_is_total():
    for seed in SEEDS:
        text = format_program(generate_program(seed))
        assert format_program(parse_program(text)) == text


def test_doalls_are_independent():
    for seed in SEEDS:
        result = check_doall_independence(generate_program(seed))
        assert result.clean, f"seed {seed}: {result.summary()}"
        assert result.loops_checked >= 1


def test_choices_record_the_draw():
    program, choices = generate_with_choices(11)
    assert choices.seed == 11
    assert set(choices.arrays) <= set(program.arrays)
    assert 2 <= len(choices.epochs) <= 4
    assert "seed 11" in choices.describe()


def test_menu_reachable_within_few_seeds():
    kinds = set()
    for seed in range(60):
        kinds.update(generate_with_choices(seed)[1].epochs)
    assert kinds == {"stencil", "copy_reverse", "reduction", "sweep",
                     "segment", "region"}
