"""Property-based tests (hypothesis) on the core data structures and the
headline system invariant: *any* generated program, transformed by CCDP,
runs coherently and computes exactly the sequential result.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

import repro.ir as ir
from repro.analysis.affine import AffineForm, affine_of
from repro.analysis.sections import Section, SectionSet, Triplet
from repro.coherence import CCDPConfig, ccdp_transform
from repro.ir.dsl import parse_expr
from repro.ir.printer import format_expr
from repro.machine import Machine, t3d
from repro.machine.topology import torus_for
from repro.ir.arrays import ArrayDecl
from repro.runtime import Version, run_program
from repro.runtime.schedulers import (block_partition, cyclic_partition,
                                      dynamic_chunks, owner_partition)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

triplets = st.builds(
    lambda lo, span, step: Triplet(lo, lo + span, step),
    st.integers(1, 40), st.integers(-3, 40), st.integers(1, 5))

sections2d = st.builds(lambda t1, t2: Section("a", (t1, t2)), triplets, triplets)


def affine_exprs():
    atoms = st.sampled_from(["i", "j", "k", "1", "2", "3", "7"])

    def combine(children):
        return st.builds(lambda a, op, b: f"({a} {op} {b})",
                         children, st.sampled_from(["+", "-"]), children) | \
            st.builds(lambda c, a: f"({c} * {a})",
                      st.sampled_from(["2", "3", "-1", "0"]), children)

    return st.recursive(atoms, combine, max_leaves=8)


# ---------------------------------------------------------------------------
# triplet / section algebra
# ---------------------------------------------------------------------------

class TestTripletProperties:
    @given(triplets, triplets)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(triplets)
    def test_self_overlap(self, t):
        assert t.empty or t.overlaps(t)

    @given(triplets, triplets)
    def test_hull_contains_members(self, a, b):
        h = a.hull(b)
        for t in (a, b):
            for v in list(range(t.lo, t.hi + 1, t.step))[:10]:
                assert h.lo <= v <= h.hi
                assert h.contains(v) or h.step == 1 or True  # hull is a cover

    @given(triplets, triplets)
    def test_exact_overlap_never_missed(self, a, b):
        """overlaps() may be conservative (claim overlap where none is)
        but must never miss a real shared point."""
        pts_a = set(range(a.lo, a.hi + 1, a.step)) if not a.empty else set()
        pts_b = set(range(b.lo, b.hi + 1, b.step)) if not b.empty else set()
        if pts_a & pts_b:
            assert a.overlaps(b)


class TestSectionSetProperties:
    @given(st.lists(sections2d, min_size=1, max_size=14))
    def test_union_is_sound(self, sections):
        """Every section ever added must still be reported as overlapping
        (over-approximation is allowed, dropping facts is not)."""
        ss = SectionSet("a")
        for section in sections:
            ss.add(section)
        for section in sections:
            if not section.empty:
                assert ss.overlaps(section)

    @given(st.lists(sections2d, min_size=1, max_size=10))
    def test_union_idempotent(self, sections):
        ss = SectionSet("a")
        for section in sections:
            ss.add(section)
        again = SectionSet("a")
        for section in ss.sections:
            again.add(section)
        assert not again.union(ss) or True  # no exception; bounded size
        assert len(ss.sections) <= SectionSet.MAX_DISJUNCTS


# ---------------------------------------------------------------------------
# affine forms
# ---------------------------------------------------------------------------

class TestAffineProperties:
    @given(affine_exprs(), affine_exprs(),
           st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5))
    @settings(max_examples=60)
    def test_affine_evaluation_matches_python(self, ta, tb, i, j, k):
        env = {"i": i, "j": j, "k": k}
        fa = affine_of(parse_expr(ta))
        fb = affine_of(parse_expr(tb))
        assume(fa is not None and fb is not None)
        expected_a = eval(ta, {}, env)
        expected_b = eval(tb, {}, env)
        assert fa.evaluate(env) == expected_a
        assert (fa + fb).evaluate(env) == expected_a + expected_b
        assert (fa - fb).evaluate(env) == expected_a - expected_b
        assert fa.scale(3).evaluate(env) == 3 * expected_a

    @given(affine_exprs())
    @settings(max_examples=40)
    def test_same_shape_is_reflexive(self, text):
        f = affine_of(parse_expr(text))
        assume(f is not None)
        assert f.same_shape(f)


# ---------------------------------------------------------------------------
# DSL round trip
# ---------------------------------------------------------------------------

class TestDslRoundTrip:
    @given(affine_exprs())
    @settings(max_examples=60)
    def test_expression_print_parse_fixpoint(self, text):
        expr = parse_expr(text)
        printed = format_expr(expr)
        reparsed = parse_expr(printed)
        assert format_expr(reparsed) == printed
        # structural equality too
        assert reparsed.key() == expr.key()


# ---------------------------------------------------------------------------
# torus metric
# ---------------------------------------------------------------------------

class TestTorusProperties:
    @given(st.integers(1, 48), st.data())
    @settings(max_examples=40)
    def test_metric_axioms(self, n, data):
        torus = torus_for(n)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        c = data.draw(st.integers(0, n - 1))
        assert torus.hops(a, a) == 0
        assert torus.hops(a, b) == torus.hops(b, a)
        assert torus.hops(a, c) <= torus.hops(a, b) + torus.hops(b, c)
        if a != b:
            assert torus.hops(a, b) >= 1


# ---------------------------------------------------------------------------
# iteration partitioning
# ---------------------------------------------------------------------------

class TestPartitionProperties:
    ranges = st.tuples(st.integers(1, 30), st.integers(0, 40),
                       st.integers(1, 3), st.integers(1, 8))

    @given(ranges)
    def test_block_partition_exact_cover(self, r):
        lo, span, step, pes = r
        hi = lo + span
        expected = list(range(lo, hi + 1, step))
        got = [v for c in block_partition(lo, hi, step, pes)
               for v in c.iterations()]
        assert sorted(got) == expected
        assert len(got) == len(expected)  # no duplicates

    @given(ranges)
    def test_cyclic_partition_exact_cover(self, r):
        lo, span, step, pes = r
        hi = lo + span
        expected = sorted(range(lo, hi + 1, step))
        got = sorted(v for vs in cyclic_partition(lo, hi, step, pes) for v in vs)
        assert got == expected

    @given(ranges, st.integers(1, 6))
    def test_dynamic_chunks_exact_cover(self, r, chunk):
        lo, span, step, _ = r
        hi = lo + span
        expected = sorted(range(lo, hi + 1, step))
        got = sorted(v for c in dynamic_chunks(lo, hi, step, chunk)
                     for v in c.iterations())
        assert got == expected

    @given(st.integers(1, 8), st.integers(2, 24))
    def test_owner_partition_matches_ownership(self, pes, extent):
        decl = ArrayDecl("a", (2, extent))
        parts = owner_partition(1, extent, 1, pes,
                                lambda v: decl.owner_of_axis_index(v, pes))
        for pe, values in enumerate(parts):
            assert all(decl.owner_of_axis_index(v, pes) == pe for v in values)
        assert sorted(v for vs in parts for v in vs) == list(range(1, extent + 1))


# ---------------------------------------------------------------------------
# cache model vs. an independent reference implementation
# ---------------------------------------------------------------------------

class ReferenceCache:
    """Dict-based direct-mapped cache used as an independent oracle."""

    def __init__(self, n_lines, line_words):
        self.n_lines = n_lines
        self.line_words = line_words
        self.lines = {}  # set -> (line_addr, [values], [versions])

    def read(self, addr):
        line = addr // self.line_words
        entry = self.lines.get(line % self.n_lines)
        if entry is None or entry[0] != line:
            return None
        off = addr - line * self.line_words
        return entry[1][off], entry[2][off]

    def install(self, line, values, versions):
        self.lines[line % self.n_lines] = (line, list(values), list(versions))

    def write_update(self, addr, value, version):
        line = addr // self.line_words
        entry = self.lines.get(line % self.n_lines)
        if entry is None or entry[0] != line:
            return False
        off = addr - line * self.line_words
        entry[1][off] = value
        entry[2][off] = version
        return True

    def invalidate(self, line):
        entry = self.lines.get(line % self.n_lines)
        if entry is not None and entry[0] == line:
            del self.lines[line % self.n_lines]
            return True
        return False


ops = st.lists(
    st.tuples(st.sampled_from(["read", "install", "write", "invalidate"]),
              st.integers(0, 255)),
    min_size=1, max_size=80)


class TestCacheAgainstReference:
    @given(ops)
    @settings(max_examples=60)
    def test_equivalence(self, sequence):
        from repro.machine.cache import DirectMappedCache
        params = t3d(1, cache_bytes=256)  # 8 lines x 4 words
        dut = DirectMappedCache(params)
        ref = ReferenceCache(params.n_lines, params.line_words)
        version = 0
        for op, addr in sequence:
            line = addr // params.line_words
            if op == "read":
                assert dut.read(addr) == ref.read(addr)
            elif op == "install":
                version += 1
                values = np.arange(4, dtype=float) + version
                versions = np.full(4, version, dtype=np.int64)
                dut.install(line, values, versions)
                ref.install(line, values, versions)
            elif op == "write":
                version += 1
                assert dut.write_through_update(addr, float(version), version) \
                    == ref.write_update(addr, float(version), version)
            else:
                assert dut.invalidate_line(line) == ref.invalidate(line)


# ---------------------------------------------------------------------------
# vectorised trace classification vs. the reference cache
# ---------------------------------------------------------------------------

from repro.machine import fastcache

event_kinds = st.sampled_from([fastcache.READ, fastcache.WRITE,
                               fastcache.INSTALL, fastcache.INVALIDATE])

#: 8 lines x 4 words of cache, addresses over 64 lines -> every set sees
#: up to 8 aliasing lines, so conflict evictions are routine.
fast_traces = st.lists(st.tuples(event_kinds, st.integers(0, 255)),
                       min_size=1, max_size=100)


class TestClassifyTraceAgainstReference:
    """``fastcache.classify_trace`` (the batched backend's kernel) must
    reproduce the reference ``DirectMappedCache`` outcome for *any*
    interleaving of READ/WRITE/INSTALL/INVALIDATE events."""

    def _check(self, events, params):
        from repro.machine.cache import DirectMappedCache

        addrs = np.array([addr for _, addr in events], dtype=np.int64)
        kinds = np.array([kind for kind, _ in events], dtype=np.int8)
        result = fastcache.classify_trace(addrs, kinds, params)

        dut = DirectMappedCache(params)
        zeros = np.zeros(params.line_words)
        zvers = np.zeros(params.line_words, dtype=np.int64)
        for i, (kind, addr) in enumerate(events):
            line = addr // params.line_words
            if kind == fastcache.READ:
                hit = dut.read(addr) is not None
                expected = fastcache.OUT_HIT if hit else fastcache.OUT_MISS
                assert result.outcomes[i] == expected, \
                    f"event {i}: {'hit' if hit else 'miss'} expected"
                if not hit:
                    dut.install(line, zeros, zvers)  # read allocates
            else:
                assert result.outcomes[i] == fastcache.OUT_NA
                if kind == fastcache.WRITE:
                    dut.write_through_update(addr, 0.0, 0)  # no-allocate
                elif kind == fastcache.INSTALL:
                    dut.install(line, zeros, zvers)
                else:
                    dut.invalidate_line(line)

    @given(fast_traces)
    @settings(max_examples=80)
    def test_mixed_trace_equivalence(self, events):
        self._check(events, t3d(1, cache_bytes=256))

    @given(st.integers(0, 7),
           st.lists(st.tuples(event_kinds, st.integers(0, 7),
                              st.integers(0, 3)),
                    min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_single_set_aliasing(self, set_index, picks):
        """Adversarial conflict traffic: every event lands in one cache
        set, cycling through its 8 aliasing lines."""
        params = t3d(1, cache_bytes=256)
        events = [(kind, (set_index + params.n_lines * alias)
                   * params.line_words + off)
                  for kind, alias, off in picks]
        self._check(events, params)


# ---------------------------------------------------------------------------
# machine-level coherence invariant under random operations
# ---------------------------------------------------------------------------

machine_ops = st.lists(
    st.tuples(st.sampled_from(["read", "write", "prefetch", "invalidate", "vector"]),
              st.integers(0, 3),    # pe
              st.integers(0, 63)),  # flat element of a (4,16) array
    min_size=1, max_size=60)


class TestMachineCoherenceInvariant:
    @given(machine_ops)
    @settings(max_examples=40, deadline=None)
    def test_unflagged_reads_are_always_fresh(self, sequence):
        """Every read either returns the current memory value or is
        flagged as stale — silent incoherence must be impossible."""
        machine = Machine([ArrayDecl("a", (4, 16))], t3d(4, cache_bytes=256))
        counter = 0.0
        for op, pe, flat in sequence:
            if op == "read":
                before = machine.stats.stale_reads
                value = machine.read(pe, "a", flat)
                flagged = machine.stats.stale_reads > before
                if not flagged:
                    assert value == machine.memory.read("a", flat)
            elif op == "write":
                counter += 1.0
                machine.write(pe, "a", flat, counter)
            elif op == "prefetch":
                machine.prefetch_line(pe, "a", flat)
            elif op == "invalidate":
                machine.invalidate(pe, "a", flat, min(flat + 7, 63))
            else:
                machine.prefetch_vector(pe, "a", min(flat, 55), 8)

    @given(machine_ops)
    @settings(max_examples=25, deadline=None)
    def test_invalidate_before_read_is_always_coherent(self, sequence):
        """The CCDP correctness rule in miniature: if every read is
        preceded by an invalidation of its line, no read is ever stale."""
        machine = Machine([ArrayDecl("a", (4, 16))], t3d(4, cache_bytes=256))
        counter = 0.0
        for op, pe, flat in sequence:
            if op == "read":
                machine.invalidate(pe, "a", flat, flat)
                value = machine.read(pe, "a", flat)
                assert value == machine.memory.read("a", flat)
            elif op == "write":
                counter += 1.0
                machine.write(pe, "a", flat, counter)
            elif op == "prefetch":
                machine.prefetch_line(pe, "a", flat)
            elif op == "vector":
                machine.prefetch_vector(pe, "a", min(flat, 55), 8)
        assert machine.stats.stale_reads == 0


# ---------------------------------------------------------------------------
# whole-system property: CCDP == SEQ for generated stencil programs
# ---------------------------------------------------------------------------

def build_random_stencil(n, offsets, steps, serial_bc):
    b = ir.ProgramBuilder("gen")
    b.shared("x", (n, n))
    b.shared("y", (n, n))
    with b.proc("main"):
        with b.doall("j", 1, n, label="init", align="x"):
            with b.do("i", 1, n):
                b.assign(b.ref("x", "i", "j"),
                         ir.E("i") * 0.5 + ir.E("j") * ir.E("j") * 0.03)
                b.assign(b.ref("y", "i", "j"), 0.0)
        with b.do("t", 1, steps):
            if serial_bc:
                with b.do("jb", 1, n):
                    b.assign(b.ref("x", 1, "jb"), b.ref("x", 2, "jb") * 0.5)
            with b.doall("j", 1 + max(0, -min(offsets)),
                         n - max(0, max(offsets)), label="sweep", align="x"):
                with b.do("i", 1, n):
                    expr = ir.E(0.0)
                    for off in offsets:
                        sub = ir.E("j") + off if off else ir.E("j")
                        expr = expr + b.ref("x", "i", sub)
                    b.assign(b.ref("y", "i", "j"), expr * (1.0 / len(offsets)))
            with b.doall("j", 2, n - 1, label="update", align="x"):
                with b.do("i", 1, n):
                    b.assign(b.ref("x", "i", "j"),
                             b.ref("x", "i", "j") * 0.6 + b.ref("y", "i", "j") * 0.4)
    return b.finish()


class TestSystemProperty:
    @given(st.integers(9, 14),
           st.lists(st.integers(-2, 2), min_size=1, max_size=3, unique=True),
           st.integers(1, 3), st.booleans(), st.integers(2, 5))
    @settings(max_examples=12, deadline=None)
    def test_ccdp_equals_sequential(self, n, offsets, steps, serial_bc, n_pes):
        program = build_random_stencil(n, offsets, steps, serial_bc)
        params = t3d(n_pes, cache_bytes=512)
        seq = run_program(program, t3d(1, cache_bytes=512), Version.SEQ)
        transformed, _ = ccdp_transform(program, CCDPConfig(machine=params))
        ccdp = run_program(transformed, params, Version.CCDP, on_stale="raise")
        assert ccdp.stats.stale_reads == 0
        assert np.allclose(ccdp.value_of("x"), seq.value_of("x"))
        assert np.allclose(ccdp.value_of("y"), seq.value_of("y"))


class TestProgramRoundTrip:
    @given(st.integers(9, 14),
           st.lists(st.integers(-2, 2), min_size=1, max_size=3, unique=True),
           st.integers(1, 2), st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_generated_programs_round_trip_through_dsl(self, n, offsets,
                                                       steps, serial_bc):
        from repro.ir.dsl import parse_program
        from repro.ir.printer import format_program

        program = build_random_stencil(n, offsets, steps, serial_bc)
        text = format_program(program)
        assert format_program(parse_program(text)) == text

    @given(st.integers(9, 12),
           st.lists(st.integers(-2, 2), min_size=1, max_size=2, unique=True))
    @settings(max_examples=10, deadline=None)
    def test_transformed_programs_round_trip_through_dsl(self, n, offsets):
        from repro.ir.dsl import parse_program
        from repro.ir.printer import format_program

        program = build_random_stencil(n, offsets, 2, True)
        transformed, _ = ccdp_transform(
            program, CCDPConfig(machine=t3d(3, cache_bytes=512)))
        text = format_program(transformed)
        assert format_program(parse_program(text)) == text

    @given(st.integers(9, 12),
           st.lists(st.integers(-1, 1), min_size=1, max_size=2, unique=True))
    @settings(max_examples=10, deadline=None)
    def test_clone_is_structurally_identical(self, n, offsets):
        from repro.ir.printer import format_program

        program = build_random_stencil(n, offsets, 1, False)
        assert format_program(program.clone()) == format_program(program)


class TestIndependenceSoundness:
    """Static DOALL-independence (GCD test) vs the dynamic race detector:
    whenever the static checker proves a random affine loop independent,
    executing it must produce zero intra-epoch races."""

    @given(st.integers(8, 16),                 # array extent
           st.integers(-3, 3),                 # write offset coefficient c
           st.sampled_from([0, 1, 2]),         # write coeff a on the par index
           st.integers(-3, 3),                 # read offset
           st.sampled_from([0, 1, 2]),         # read coeff b
           st.integers(1, 2))                  # loop step
    @settings(max_examples=40, deadline=None)
    def test_static_clean_implies_dynamic_race_free(self, n, wc, wa, rc, rb,
                                                    step):
        from repro.analysis.parcheck import check_doall_independence
        from repro.runtime import ExecutionConfig, Interpreter

        import math

        def valid_range(coeff, const):
            if coeff == 0:
                assume(1 <= const <= n)
                return (1, n)
            lo_v = math.ceil((1 - const) / coeff)
            hi_v = math.floor((n - const) / coeff)
            return (lo_v, hi_v)

        wlo, whi = valid_range(wa, wc)
        rlo, rhi = valid_range(rb, rc)
        lo = max(1, wlo, rlo)
        hi_limit = min(n, whi, rhi)
        assume(lo + 2 <= hi_limit)

        def sub(coeff, const):
            base = ir.mul("j", coeff) if coeff else ir.IntConst(0)
            expr = ir.add(base, const) if const or not coeff else base
            return expr

        b = ir.ProgramBuilder("gen")
        b.shared("a", (4, n))
        with b.proc("main"):
            with b.doall("j", lo, hi_limit, step):
                b.assign(ir.ArrayRef("a", [ir.IntConst(1), sub(wa, wc)]),
                         ir.ArrayRef("a", [ir.IntConst(2), sub(rb, rc)]))
        program = b.finish()

        static = check_doall_independence(program)
        interp = Interpreter(program, t3d(4, cache_bytes=512),
                             ExecutionConfig.for_version(Version.CCDP))
        interp.machine.race_check = True
        interp.run()
        if static.clean:
            assert interp.machine.races == 0, \
                f"static said clean but races={interp.machine.race_examples}"
