"""Farm supervisor contract: serial == pool, retry/backoff/quarantine,
timeout and crash supervision, dedup/resume, event hygiene."""

import os
import pickle

import pytest

from repro.farm import (FarmConfig, FarmError, Job, backoff_delay, run_farm)
from repro.obs.events import validate_event

from . import workers


def _jobs(payloads, prefix="job"):
    return [Job(index=i, key=f"{prefix}-{i}", payload=p, desc=f"{prefix} {i}")
            for i, p in enumerate(payloads)]


def test_serial_and_pool_results_byte_identical():
    jobs = _jobs(list(range(8)))
    serial = run_farm(workers.square, jobs, FarmConfig(jobs=1))
    pooled = run_farm(workers.square, jobs, FarmConfig(jobs=3))
    assert [pickle.dumps(o.result) for o in serial.outcomes] == \
        [pickle.dumps(o.result) for o in pooled.outcomes]
    assert [o.result for o in serial.outcomes] == [i * i for i in range(8)]
    assert serial.executed == pooled.executed == 8


@pytest.mark.parametrize("jobs", [1, 2])
def test_retry_then_succeed(tmp_path, jobs):
    payload = (str(tmp_path), "wobbly", 2, 42)  # fail twice, then succeed
    config = FarmConfig(jobs=jobs, max_retries=3, backoff_base=0.01)
    result = run_farm(workers.flaky, _jobs([payload]), config)
    [outcome] = result.outcomes
    assert outcome.result == 42 and not outcome.quarantined
    assert outcome.attempts == 3
    assert result.retries == 2 and result.executed == 1


@pytest.mark.parametrize("jobs", [1, 2])
def test_quarantine_after_retry_budget(tmp_path, jobs):
    payload = (str(tmp_path), "doomed", 99, 0)  # never succeeds
    config = FarmConfig(jobs=jobs, max_retries=1, backoff_base=0.01)
    result = run_farm(workers.flaky, _jobs([payload]), config)
    [outcome] = result.outcomes
    assert outcome.quarantined and outcome.reason == "error"
    assert outcome.attempts == 2  # first try + 1 retry
    assert "induced failure" in outcome.error
    assert result.quarantined == 1 and result.failed == [outcome]


def test_quarantine_does_not_block_other_jobs(tmp_path):
    payloads = [(str(tmp_path), "dead", 99, 0)] + \
        [(str(tmp_path), f"fine-{i}", 0, i) for i in range(4)]
    config = FarmConfig(jobs=2, max_retries=1, backoff_base=0.01)
    result = run_farm(workers.flaky, _jobs(payloads), config)
    assert result.outcomes[0].quarantined
    assert [o.result for o in result.outcomes[1:]] == [0, 1, 2, 3]


def test_failure_of_hook_retries_returned_failures(tmp_path):
    def failure_of(result):
        return result[1]

    jobs = _jobs([1, 2, 3])
    result = run_farm(workers.pair, jobs, FarmConfig(jobs=1),
                      failure_of=failure_of)
    assert all(not o.quarantined for o in result.outcomes)
    assert result.outcomes[1].result == ({"value": 2, "tag": "ok"}, None)


def test_worker_exception_carries_traceback():
    result = run_farm(workers.boom, _jobs(["x"]),
                      FarmConfig(jobs=1, max_retries=0))
    [outcome] = result.outcomes
    assert outcome.quarantined
    assert "ValueError" in outcome.error and "Traceback" in outcome.error


def test_timeout_kills_and_quarantines(tmp_path):
    config = FarmConfig(jobs=1, cell_timeout=0.3, max_retries=0)
    result = run_farm(workers.hang_forever, _jobs(["h"]), config)
    [outcome] = result.outcomes
    assert outcome.quarantined and outcome.reason == "timeout"
    assert "cell-timeout" in outcome.error or "wall clock" in outcome.error


def test_crashed_worker_detected_and_job_retried(tmp_path):
    payload = (str(tmp_path), "segv", 1, 7)  # dies once, then succeeds
    config = FarmConfig(jobs=2, max_retries=2, backoff_base=0.01)
    result = run_farm(workers.crashy, _jobs([payload]), config)
    [outcome] = result.outcomes
    assert outcome.result == 7 and not outcome.quarantined
    assert result.retries == 1
    retry_events = [e for e in result.events if e[0] == "farm_retry"]
    assert retry_events and retry_events[0][-1] == "crash"


def test_crashed_worker_quarantines_with_crash_reason(tmp_path):
    payload = (str(tmp_path), "always", 99, 0)
    config = FarmConfig(jobs=2, max_retries=1, backoff_base=0.01)
    result = run_farm(workers.crashy, _jobs([payload]), config)
    [outcome] = result.outcomes
    assert outcome.quarantined and outcome.reason == "crash"
    assert "exitcode" in outcome.error


def test_backoff_delay_deterministic_monotone_capped():
    delays = [backoff_delay("some-key", attempt, base=0.25, cap=30.0, seed=3)
              for attempt in range(1, 10)]
    assert delays == [backoff_delay("some-key", a, base=0.25, cap=30.0,
                                    seed=3) for a in range(1, 10)]
    # jitter band [0.75, 1.25) is narrower than the doubling, so the
    # schedule strictly increases until it hits the cap
    uncapped = [d for d in delays if d < 30.0]
    assert all(b > a for a, b in zip(uncapped, uncapped[1:]))
    assert delays[-1] <= 30.0
    assert backoff_delay("k", 1) != backoff_delay("k2", 1)  # per-key jitter
    assert backoff_delay("k", 1, seed=0) != backoff_delay("k", 1, seed=1)


def test_dedup_second_run_served_from_journal(tmp_path):
    jobs = _jobs(list(range(5)), prefix="cell")
    config = FarmConfig(jobs=1, farm_dir=str(tmp_path))
    first = run_farm(workers.square, jobs, config)
    second = run_farm(workers.square, jobs, config)
    assert first.executed == 5 and first.cached == 0
    assert second.executed == 0 and second.cached == 5
    assert [pickle.dumps(o.result) for o in first.outcomes] == \
        [pickle.dumps(o.result) for o in second.outcomes]
    assert all(o.cached for o in second.outcomes)


def test_dedup_across_different_grids_sharing_keys(tmp_path):
    config = FarmConfig(jobs=1, farm_dir=str(tmp_path))
    run_farm(workers.square, _jobs([3], prefix="shared"), config)
    # a different grid whose only job has the same content key
    other = [Job(index=0, key="shared-0", payload=3, desc="other grid")]
    result = run_farm(workers.square, other, config)
    assert result.cached == 1 and result.executed == 0
    assert result.outcomes[0].result == 9


def test_corrupt_result_file_is_recomputed(tmp_path, caplog):
    import logging

    jobs = _jobs([4], prefix="cell")
    config = FarmConfig(jobs=1, farm_dir=str(tmp_path))
    run_farm(workers.square, jobs, config)
    [result_file] = list((tmp_path / "results").iterdir())
    result_file.write_bytes(b"truncated garbage")
    with caplog.at_level(logging.WARNING):
        again = run_farm(workers.square, jobs, config)
    assert again.executed == 1 and again.cached == 0  # digest check failed
    assert again.outcomes[0].result == 16
    assert any("digest mismatch" in r.message for r in caplog.records)
    # the store healed: a third run is served from the journal again
    third = run_farm(workers.square, jobs, config)
    assert third.cached == 1


def test_requeue_quarantined_re_executes(tmp_path):
    counter = tmp_path / "counters"
    counter.mkdir()
    payload = (str(counter), "flappy", 1, 11)  # fails once, then ok
    jobs = _jobs([payload])
    farm_dir = str(tmp_path / "farm")
    first = run_farm(workers.flaky, jobs,
                     FarmConfig(jobs=1, farm_dir=farm_dir, max_retries=0))
    assert first.quarantined == 1
    # without requeue, the quarantine is replayed, not re-run
    replay = run_farm(workers.flaky, jobs,
                      FarmConfig(jobs=1, farm_dir=farm_dir, max_retries=0))
    assert replay.quarantined == 1 and replay.executed == 0
    assert replay.outcomes[0].cached
    # requeue clears it; the second real attempt succeeds
    requeued = run_farm(workers.flaky, jobs,
                        FarmConfig(jobs=1, farm_dir=farm_dir, max_retries=0,
                                   requeue_quarantined=True))
    assert requeued.executed == 1 and requeued.quarantined == 0
    assert requeued.outcomes[0].result == 11


def test_events_are_schema_valid_and_exported(tmp_path):
    counter = tmp_path / "counters"
    counter.mkdir()
    payloads = [(str(counter), "a", 1, 1), (str(counter), "b", 0, 2)]
    farm_dir = tmp_path / "farm"
    config = FarmConfig(jobs=1, farm_dir=str(farm_dir), max_retries=1,
                        backoff_base=0.01)
    result = run_farm(workers.flaky, _jobs(payloads), config)
    kinds = [e[0] for e in result.events]
    assert "farm_lease" in kinds and "farm_retry" in kinds \
        and "farm_done" in kinds
    for event in result.events:
        validate_event(event)  # raises on any malformed tuple
    exported = (farm_dir / "events.jsonl").read_text().strip().splitlines()
    assert len(exported) == len(result.events)


def test_progress_reports_every_outcome(tmp_path):
    seen = []
    config = FarmConfig(jobs=1, farm_dir=str(tmp_path))
    run_farm(workers.square, _jobs([1, 2]),  config,
             progress=lambda done, total, o: seen.append((done, total)))
    assert seen == [(1, 2), (2, 2)]
    seen.clear()
    run_farm(workers.square, _jobs([1, 2]), config,
             progress=lambda done, total, o: seen.append(o.cached))
    assert seen == [True, True]  # journal-served jobs still report


def test_config_validation_and_misuse():
    with pytest.raises(FarmError):
        FarmConfig(resume=True).validate()
    with pytest.raises(FarmError):
        FarmConfig(cell_timeout=0).validate()
    with pytest.raises(FarmError):
        FarmConfig(max_retries=-1).validate()
    with pytest.raises(FarmError):
        run_farm(workers.square,
                 [Job(0, "a", 1), Job(0, "b", 2)], FarmConfig())


def test_resume_requires_existing_journal(tmp_path):
    config = FarmConfig(jobs=1, farm_dir=str(tmp_path / "fresh"),
                        resume=True)
    with pytest.raises(FarmError, match="no journal"):
        run_farm(workers.square, _jobs([1]), config)
