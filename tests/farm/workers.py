"""Module-level worker functions for farm tests.

Farm workers cross the process boundary by reference, so they must be
importable module-level callables — lambdas and closures would fail to
pickle under the pool executor.  Workers that need cross-attempt or
cross-process state (``flaky``, ``crashy``) count attempts in a file:
retries can land in freshly respawned worker processes, so in-memory
counters would reset.
"""

from __future__ import annotations

import os
import time


def square(payload):
    return payload * payload


def pair(payload):
    """Returns a (result, error) pair like the sweep's cell worker."""
    return {"value": payload, "tag": "ok"}, None


def boom(payload):
    raise ValueError(f"boom on {payload!r}")


def _attempt_number(counter_dir: str, name: str) -> int:
    """Crash-proof attempt counter: one appended byte per call."""
    path = os.path.join(counter_dir, f"{name}.attempts")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, b".")
        return os.fstat(fd).st_size
    finally:
        os.close(fd)


def flaky(payload):
    """Fails (raises) the first ``fail_times`` attempts, then succeeds.
    ``payload = (counter_dir, name, fail_times, value)``."""
    counter_dir, name, fail_times, value = payload
    attempt = _attempt_number(counter_dir, name)
    if attempt <= fail_times:
        raise RuntimeError(f"flaky {name}: induced failure {attempt}")
    return value


def crashy(payload):
    """Dies without reporting on the first ``crash_times`` attempts.
    ``payload = (counter_dir, name, crash_times, value)``."""
    counter_dir, name, crash_times, value = payload
    attempt = _attempt_number(counter_dir, name)
    if attempt <= crash_times:
        os._exit(9)
    return value


def hang_forever(payload):
    time.sleep(3600)
    return payload
