"""Crash-recovery determinism (the farm's headline guarantee).

A ``kill -9``'d ``--jobs 2`` sweep, resumed from its journal, must
produce byte-identical RunRecords to an uninterrupted serial run — and
must re-execute only the cells the journal has no committed result for.
The Hypothesis property generalises the kill point: *any* byte prefix of
a finished journal (including torn mid-line cuts) resumes to the same
final state.
"""

import os
import pickle
import shutil
import signal
import subprocess
import sys
import time

from hypothesis import given, settings, strategies as st

from repro.farm import FarmConfig, Job, run_farm
from repro.farm.journal import Journal
from repro.harness.sweep import SweepSpec, sweep_grid

from . import workers

SPEC_KW = dict(size_args={"n": 8}, pe_counts=(1, 2, 4), check=True)
N_CELLS = 7  # seq + (base, ccdp) x (1, 2, 4)

DRIVER = """\
import sys
from repro.farm import FarmConfig
from repro.harness.sweep import SweepSpec, sweep_grid

specs = [SweepSpec.create("mxm", size_args={"n": 8}, pe_counts=(1, 2, 4),
                          check=True)]
sweep_grid(specs, farm=FarmConfig(jobs=2, farm_dir=sys.argv[1]))
"""


def _pickled(sweeps):
    out = []
    for sweep in sweeps:
        out.append(pickle.dumps(sweep.seq, protocol=4))
        for key in sorted(sweep.runs):
            out.append(pickle.dumps(sweep.runs[key], protocol=4))
    return out


def test_sigkill_then_resume_is_byte_identical(tmp_path):
    farm_dir = tmp_path / "farm"
    driver = tmp_path / "driver.py"
    driver.write_text(DRIVER)
    env = {**os.environ,
           "PYTHONPATH": os.pathsep.join(
               [str(p) for p in sys.path if p] or [""])}

    proc = subprocess.Popen([sys.executable, str(driver), str(farm_dir)],
                            env=env, start_new_session=True,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        # Wait until the grid is demonstrably mid-flight (>= 2 committed
        # cells), then kill -9 the whole process group.
        deadline = time.time() + 120
        while time.time() < deadline:
            done = sum(1 for s in Journal(farm_dir).replay().values()
                       if s.done)
            if done >= 2:
                break
            time.sleep(0.01)
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)

    committed = sum(1 for s in Journal(farm_dir).replay().values()
                    if s.done)
    assert committed >= 2  # we really did interrupt a running grid

    specs = [SweepSpec.create("mxm", **SPEC_KW)]
    collect = {}
    resumed = sweep_grid(specs, farm=FarmConfig(
        jobs=2, farm_dir=str(farm_dir), resume=True), collect=collect)
    farm = collect["farm"]
    # only the unfinished cells ran; every committed cell was replayed
    assert farm.cached == committed
    assert farm.executed == N_CELLS - committed
    assert farm.quarantined == 0 and not resumed[0].failed

    uninterrupted = sweep_grid(specs)  # serial, ephemeral: the reference
    assert _pickled(resumed) == _pickled(uninterrupted)

    # a second resume replays everything (zero re-executed cells)
    collect2 = {}
    again = sweep_grid(specs, farm=FarmConfig(
        jobs=1, farm_dir=str(farm_dir), resume=True), collect=collect2)
    assert collect2["farm"].executed == 0
    assert collect2["farm"].cached == N_CELLS
    assert _pickled(again) == _pickled(uninterrupted)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_any_journal_prefix_resumes_to_same_state(tmp_path_factory, data):
    """Property: truncating a finished journal at ANY byte — simulating a
    kill at any instant after the result files landed — and resuming
    yields the exact outcomes of the uninterrupted run, executing only
    the jobs the surviving prefix has no committed record for."""
    base = tmp_path_factory.mktemp("prefix")
    full_dir = base / "full"
    jobs = [Job(index=i, key=f"cell-{i}", payload=i, desc=f"cell {i}")
            for i in range(6)]
    full = run_farm(workers.square, jobs,
                    FarmConfig(jobs=1, farm_dir=str(full_dir)))
    journal_bytes = (full_dir / "journal.jsonl").read_bytes()

    # Draw a fixed-range fraction and scale it: the journal's byte length
    # varies run to run (timestamp widths), and Hypothesis requires
    # stable strategy bounds across examples.
    frac = data.draw(st.integers(min_value=0, max_value=10_000))
    cut = frac * len(journal_bytes) // 10_000
    part_dir = base / f"cut-{cut}"
    part_dir.mkdir()
    (part_dir / "journal.jsonl").write_bytes(journal_bytes[:cut])
    # result files are written (atomically) BEFORE their done record is
    # committed, so every prefix may legitimately see all of them
    shutil.copytree(full_dir / "results", part_dir / "results")

    committed = sum(1 for s in Journal(part_dir).replay().values()
                    if s.done)
    resumed = run_farm(workers.square, jobs,
                       FarmConfig(jobs=1, farm_dir=str(part_dir)))
    assert [o.result for o in resumed.outcomes] == \
        [o.result for o in full.outcomes]
    assert resumed.cached == committed
    assert resumed.executed == len(jobs) - committed
    # and the healed journal now resumes fully cached
    final = run_farm(workers.square, jobs,
                     FarmConfig(jobs=1, farm_dir=str(part_dir),
                                resume=True))
    assert final.executed == 0 and final.cached == len(jobs)
