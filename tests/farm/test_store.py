"""DiskStore hardening (satellite of the farm PR): corrupt or truncated
cache entries must warn, evict, and force a recompute — never crash or
return wrong data."""

import logging
import pickle

from repro.harness.progcache import DiskStore, result_digest


def test_put_get_roundtrip(tmp_path):
    store = DiskStore(tmp_path)
    digest, data = store.put("k1", {"answer": 42})
    assert digest == result_digest(data)
    assert store.get("k1") == {"answer": 42}
    assert store.get("k1", expect_digest=digest) == {"answer": 42}
    assert store.get_bytes("k1", expect_digest=digest) == data


def test_missing_key_returns_none_silently(tmp_path, caplog):
    store = DiskStore(tmp_path)
    with caplog.at_level(logging.WARNING):
        assert store.get("ghost") is None
    assert not caplog.records


def test_truncated_entry_warns_evicts_recomputes(tmp_path, caplog):
    store = DiskStore(tmp_path)
    digest, data = store.put("k", list(range(100)))
    # truncate the file mid-pickle, as a crash or full disk would
    store.path_for("k").write_bytes(data[: len(data) // 2])
    with caplog.at_level(logging.WARNING):
        assert store.get("k", expect_digest=digest) is None
    assert any("digest mismatch" in r.message for r in caplog.records)
    assert not store.path_for("k").exists()  # evicted
    # recompute path: a fresh put fully heals the entry
    digest2, _ = store.put("k", list(range(100)))
    assert digest2 == digest
    assert store.get("k", expect_digest=digest2) == list(range(100))


def test_unpicklable_entry_warns_and_evicts(tmp_path, caplog):
    store = DiskStore(tmp_path)
    garbage = b"\x80\x04 definitely not a pickle"
    store.put_bytes("k", garbage)
    with caplog.at_level(logging.WARNING):
        # digest matches (we stored the garbage), so only unpickling trips
        assert store.get("k", expect_digest=result_digest(garbage)) is None
    assert any("bad pickle" in r.message for r in caplog.records)
    assert not store.path_for("k").exists()


def test_digest_check_optional(tmp_path):
    store = DiskStore(tmp_path)
    store.put("k", "value")
    store.path_for("k").write_bytes(pickle.dumps("tampered"))
    # without an expected digest the store trusts the bytes…
    assert store.get("k") == "tampered"
    # …with one, tampering is detected and the entry evicted
    assert store.get("k", expect_digest=result_digest(b"other")) is None
    assert not store.path_for("k").exists()


def test_atomic_replace_leaves_no_temp_files(tmp_path):
    store = DiskStore(tmp_path)
    for i in range(5):
        store.put("k", i)
    assert store.get("k") == 4
    assert [p.name for p in tmp_path.iterdir()] == ["k.pkl"]
