"""Journal contract: append/replay roundtrip, crash-artifact tolerance,
and the quarantine/requeue state machine."""

import json
import logging

import pytest

from repro.farm.journal import ERROR_TEXT_LIMIT, JobState, Journal


def test_append_replay_roundtrip(tmp_path):
    with Journal(tmp_path) as journal:
        journal.append({"ev": "lease", "key": "k1", "attempt": 1})
        journal.append({"ev": "fail", "key": "k1", "attempt": 1,
                        "reason": "error", "error": "tb"})
        journal.append({"ev": "retry", "key": "k1", "attempt": 2,
                        "delay_ms": 250})
        journal.append({"ev": "lease", "key": "k1", "attempt": 2})
        journal.append({"ev": "done", "key": "k1", "attempt": 2,
                        "digest": "d" * 64}, sync=True)
        journal.append({"ev": "lease", "key": "k2", "attempt": 1})

    states = Journal(tmp_path).replay()
    assert states["k1"].done
    assert states["k1"].digest == "d" * 64
    assert states["k1"].attempts == 2
    assert states["k1"].last_reason == "error"
    assert not states["k2"].done
    assert states["k2"].attempts == 1


def test_records_carry_timestamps_and_canonical_json(tmp_path):
    with Journal(tmp_path) as journal:
        journal.append({"ev": "lease", "key": "k", "attempt": 1})
    line = (tmp_path / "journal.jsonl").read_text().strip()
    record = json.loads(line)
    assert record["ts"] > 0
    assert line == json.dumps(record, sort_keys=True,
                              separators=(",", ":"))


def test_torn_final_line_is_ignored(tmp_path, caplog):
    with Journal(tmp_path) as journal:
        journal.append({"ev": "done", "key": "k1", "attempt": 1,
                        "digest": "a" * 64}, sync=True)
    # kill -9 artifact: the process died mid-append.
    with open(tmp_path / "journal.jsonl", "a") as fh:
        fh.write('{"ev": "done", "key": "k2", "dig')
    with caplog.at_level(logging.WARNING, logger="repro.farm"):
        states = Journal(tmp_path).replay()
    assert set(states) == {"k1"}
    assert not caplog.records  # torn tail is expected, not warned about


def test_malformed_middle_line_warns_and_skips(tmp_path, caplog):
    with Journal(tmp_path) as journal:
        journal.append({"ev": "done", "key": "k1", "attempt": 1,
                        "digest": "a" * 64})
    with open(tmp_path / "journal.jsonl", "a") as fh:
        fh.write("NOT JSON AT ALL\n")
        fh.write('{"ev": "weird", "key": "k3"}\n')
    with Journal(tmp_path) as journal:
        journal.append({"ev": "done", "key": "k2", "attempt": 1,
                        "digest": "b" * 64})
    with caplog.at_level(logging.WARNING, logger="repro.farm"):
        states = Journal(tmp_path).replay()
    # both damaged lines dropped, both good records kept
    assert set(states) == {"k1", "k2"}
    assert len([r for r in caplog.records if "skipping" in r.message]) == 2


def test_quarantine_requeue_state_machine(tmp_path):
    with Journal(tmp_path) as journal:
        journal.append({"ev": "lease", "key": "k", "attempt": 3})
        journal.append({"ev": "quarantine", "key": "k", "attempts": 3,
                        "reason": "crash", "error": "died"}, sync=True)
    states = Journal(tmp_path).replay()
    assert states["k"].quarantined is not None
    assert states["k"].quarantined["reason"] == "crash"
    assert not states["k"].done

    with Journal(tmp_path) as journal:
        journal.append({"ev": "requeue", "key": "k"}, sync=True)
    states = Journal(tmp_path).replay()
    assert states["k"].quarantined is None
    assert states["k"].attempts == 0  # runs fresh

    # a later done supersedes any standing quarantine
    with Journal(tmp_path) as journal:
        journal.append({"ev": "quarantine", "key": "k", "attempts": 1,
                        "reason": "error", "error": "x"})
        journal.append({"ev": "done", "key": "k", "attempt": 1,
                        "digest": "c" * 64})
    states = Journal(tmp_path).replay()
    assert states["k"].done and states["k"].quarantined is None


def test_unknown_record_ev_rejected(tmp_path):
    with pytest.raises(ValueError):
        Journal(tmp_path).append({"ev": "banana", "key": "k"})


def test_error_text_is_bounded(tmp_path):
    with Journal(tmp_path) as journal:
        journal.append({"ev": "fail", "key": "k", "attempt": 1,
                        "reason": "error", "error": "x" * 100_000})
    [record] = Journal(tmp_path).records()
    assert len(record["error"]) == ERROR_TEXT_LIMIT


def test_empty_and_missing_journal(tmp_path):
    journal = Journal(tmp_path / "nowhere")
    assert not journal.exists()
    assert journal.records() == []
    assert journal.replay() == {}
    assert JobState().done is False
