"""Every example script must run clean end to end (they are the user's
first contact with the library)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "improvement over BASE" in proc.stdout
        assert "result is wrong      : True" in proc.stdout  # naive breaks
        assert "guaranteed 0" in proc.stdout

    def test_mxm_case_study(self):
        proc = run_example("mxm_case_study.py", "16", "1,2,4")
        assert proc.returncode == 0, proc.stderr
        assert "Table 1" in proc.stdout and "Table 2" in proc.stdout
        assert "vector prefetches" in proc.stdout

    def test_compiler_tour(self):
        proc = run_example("compiler_tour.py")
        assert proc.returncode == 0, proc.stderr
        assert "Epoch flow graph" in proc.stdout
        assert "vprefetch" in proc.stdout

    def test_heat_dsl(self):
        proc = run_example("heat_dsl.py")
        assert proc.returncode == 0, proc.stderr
        assert "correct=True" in proc.stdout
        assert "0 stale reads" in proc.stdout

    @pytest.mark.slow
    def test_ablation_study(self):
        proc = run_example("ablation_study.py", timeout=420)
        assert proc.returncode == 0, proc.stderr
        assert "full scheme" in proc.stdout
        assert "bypass reads only" in proc.stdout
