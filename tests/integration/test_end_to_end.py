"""End-to-end coherence: the headline claims of the paper, proven on the
simulator.

1. NAIVE caching on a non-coherent machine reads stale data and computes
   wrong answers (the problem).
2. The CCDP transformation makes the same cached execution coherent and
   numerically correct at every PE count (the solution).
3. CCDP is *faster* than the safe BASE scheme (the payoff).
"""

import numpy as np
import pytest

import repro.ir as ir
from repro.coherence import CCDPConfig, ccdp_transform
from repro.machine import StaleReadError, t3d
from repro.runtime import Version, run_program
from tests.conftest import build_pingpong


def oracle_pingpong(n=16, steps=4):
    i = np.arange(1, n + 1, dtype=np.float64)[:, None]
    j = np.arange(1, n + 1, dtype=np.float64)[None, :]
    x = np.broadcast_to(i + j * 2.0 + j * j * 0.05, (n, n)).copy()
    y = np.zeros((n, n))
    for _ in range(steps):
        y[:, 1:n - 1] = (x[:, 0:n - 2] + x[:, 2:n]) * 0.5
        x[:, 1:n - 1] = x[:, 1:n - 1] * 0.5 + y[:, 1:n - 1] * 0.5
    return x, y


PARAMS = dict(cache_bytes=2048)


class TestTheProblem:
    def test_naive_caching_reads_stale_data(self):
        program = build_pingpong()
        result = run_program(program, t3d(4, **PARAMS), Version.NAIVE)
        assert result.stats.stale_reads > 0

    def test_naive_caching_computes_wrong_values(self):
        program = build_pingpong()
        result = run_program(program, t3d(4, **PARAMS), Version.NAIVE)
        x, _ = oracle_pingpong()
        assert not np.allclose(result.value_of("x"), x)

    def test_base_is_safe_but_uncached(self):
        program = build_pingpong()
        result = run_program(program, t3d(4, **PARAMS), Version.BASE)
        x, _ = oracle_pingpong()
        assert result.stats.stale_reads == 0
        assert np.allclose(result.value_of("x"), x)


class TestTheSolution:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 8])
    def test_ccdp_is_coherent_and_correct(self, n_pes):
        program = build_pingpong()
        transformed, report = ccdp_transform(
            program, CCDPConfig(machine=t3d(n_pes, **PARAMS)))
        result = run_program(transformed, t3d(n_pes, **PARAMS), Version.CCDP,
                             on_stale="raise")
        x, y = oracle_pingpong()
        assert result.stats.stale_reads == 0
        assert np.allclose(result.value_of("x"), x)
        assert np.allclose(result.value_of("y"), y)

    def test_ccdp_transform_is_pure(self):
        program = build_pingpong()
        before = ir.format_program(program)
        ccdp_transform(program, CCDPConfig(machine=t3d(4, **PARAMS)))
        assert ir.format_program(program) == before

    def test_transform_report_is_consistent(self):
        program = build_pingpong()
        _, report = ccdp_transform(program, CCDPConfig(machine=t3d(4, **PARAMS)))
        assert report.stale.stale_reads
        assert report.targets.targets
        assert report.schedule.entries

    def test_transformed_program_revalidates(self):
        program = build_pingpong()
        transformed, _ = ccdp_transform(program,
                                        CCDPConfig(machine=t3d(4, **PARAMS)))
        ir.validate_program(transformed)

    def test_transformed_program_round_trips_through_dsl(self):
        program = build_pingpong()
        transformed, _ = ccdp_transform(program,
                                        CCDPConfig(machine=t3d(4, **PARAMS)))
        text = ir.format_program(transformed)
        reparsed = ir.parse_program(text)
        assert ir.format_program(reparsed) == text


class TestThePayoff:
    def test_ccdp_beats_base(self):
        program = build_pingpong(n=24, steps=4)
        params = t3d(4, **PARAMS)
        base = run_program(program, params, Version.BASE)
        transformed, _ = ccdp_transform(program, CCDPConfig(machine=params))
        ccdp = run_program(transformed, params, Version.CCDP)
        assert ccdp.elapsed < base.elapsed

    def test_ccdp_close_to_or_better_than_naive(self):
        """CCDP's coherence machinery must not cost much more than the
        (incorrect) naive caching it replaces."""
        program = build_pingpong(n=24, steps=4)
        params = t3d(4, **PARAMS)
        naive = run_program(program, params, Version.NAIVE)
        transformed, _ = ccdp_transform(program, CCDPConfig(machine=params))
        ccdp = run_program(transformed, params, Version.CCDP)
        assert ccdp.elapsed < naive.elapsed * 1.6

    def test_parallel_faster_than_sequential(self):
        program = build_pingpong(n=24, steps=4)
        seq = run_program(program, t3d(1, **PARAMS), Version.SEQ)
        transformed, _ = ccdp_transform(program,
                                        CCDPConfig(machine=t3d(8, **PARAMS)))
        ccdp = run_program(transformed, t3d(8, **PARAMS), Version.CCDP)
        assert ccdp.elapsed < seq.elapsed


class TestNonStaleExtension:
    def test_extension_adds_targets_and_stays_correct(self):
        program = build_pingpong()
        params = t3d(4, **PARAMS)
        plain, rep1 = ccdp_transform(program, CCDPConfig(machine=params))
        extended, rep2 = ccdp_transform(
            program, CCDPConfig(machine=params).with_(prefetch_nonstale=True))
        assert rep2.nonstale_targets >= 0
        result = run_program(extended, params, Version.CCDP, on_stale="raise")
        x, _ = oracle_pingpong()
        assert np.allclose(result.value_of("x"), x)
