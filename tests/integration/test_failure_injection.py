"""Failure injection: CCDP's coherence guarantee must survive hostile
hardware configurations — starved prefetch queues, tiny caches, byzantine
latencies — because every degradation path ends in invalidate-first
misses or bypass reads, never in a stale hit."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence import CCDPConfig, ccdp_transform
from repro.machine import t3d
from repro.runtime import Version, run_program
from repro.workloads import workload
from tests.conftest import build_pingpong
from tests.integration.test_end_to_end import oracle_pingpong


def run_hostile(program, oracle_arrays, check, **hardware):
    params = t3d(hardware.pop("n_pes", 4), **hardware)
    transformed, _ = ccdp_transform(program, CCDPConfig(machine=params))
    result = run_program(transformed, params, Version.CCDP, on_stale="raise")
    assert result.stats.stale_reads == 0
    for name in check:
        assert np.allclose(result.value_of(name), oracle_arrays[name]), name
    return result


class TestHostileHardware:
    def setup_method(self):
        self.program = build_pingpong()
        x, y = oracle_pingpong()
        self.oracle = {"x": x, "y": y}

    def test_one_slot_queue(self):
        result = run_hostile(self.program, self.oracle, ("x", "y"),
                             cache_bytes=512, prefetch_queue_slots=1)
        # heavy dropping is fine; wrong answers are not
        assert result.machine.stats.total().pf_dropped >= 0

    def test_two_line_cache(self):
        run_hostile(self.program, self.oracle, ("x", "y"), cache_bytes=64)

    def test_single_outstanding_vector(self):
        run_hostile(self.program, self.oracle, ("x", "y"),
                    cache_bytes=512, max_outstanding_vectors=1)

    def test_zero_cost_network(self):
        run_hostile(self.program, self.oracle, ("x", "y"), cache_bytes=512,
                    remote_base=1, remote_per_hop=0)

    def test_glacial_network(self):
        run_hostile(self.program, self.oracle, ("x", "y"), cache_bytes=512,
                    remote_base=5000, remote_per_hop=100)

    def test_many_pes_tiny_problem(self):
        run_hostile(self.program, self.oracle, ("x", "y"), n_pes=16,
                    cache_bytes=512)

    @given(st.integers(1, 4), st.sampled_from([64, 128, 512, 2048]),
           st.integers(1, 16))
    @settings(max_examples=10, deadline=None)
    def test_random_hardware_combinations(self, vectors, cache, slots):
        program = build_pingpong(n=12, steps=2)
        i = np.arange(1, 13, dtype=np.float64)[:, None]
        j = np.arange(1, 13, dtype=np.float64)[None, :]
        x = np.broadcast_to(i + j * 2.0 + j * j * 0.05, (12, 12)).copy()
        y = np.zeros((12, 12))
        for _ in range(2):
            y[:, 1:11] = (x[:, 0:10] + x[:, 2:12]) * 0.5
            x[:, 1:11] = x[:, 1:11] * 0.5 + y[:, 1:11] * 0.5
        run_hostile(program, {"x": x, "y": y}, ("x", "y"),
                    cache_bytes=cache, prefetch_queue_slots=slots,
                    max_outstanding_vectors=vectors)


class TestHostileWorkloads:
    @pytest.mark.parametrize("name,args", [
        ("tomcatv", {"n": 13, "steps": 2}),
        ("swim", {"n": 13, "steps": 2}),
    ])
    def test_stencil_apps_on_starved_hardware(self, name, args):
        spec = workload(name)
        program = spec.build(**args)
        oracle = spec.oracle(**args)
        params = t3d(4, cache_bytes=128, prefetch_queue_slots=2,
                     max_outstanding_vectors=1)
        transformed, _ = ccdp_transform(program, CCDPConfig(machine=params))
        result = run_program(transformed, params, Version.CCDP,
                             on_stale="raise")
        assert result.stats.stale_reads == 0
        for array in spec.check_arrays:
            assert np.allclose(result.value_of(array), oracle[array]), array
