"""Locality (group-spatial) analysis and the static cost model."""

import pytest

import repro.ir as ir
from repro.analysis.costmodel import (average_remote_latency, expr_cost,
                                      loop_body_cost, segment_cost, stmt_cost)
from repro.analysis.epochs import build_epoch_graph
from repro.analysis.locality import (classify_self_reuse,
                                     group_spatial_groups, innermost_stride)
from repro.machine.params import t3d


def refs_in_inner_loop(program):
    """Collect the RefInfos of reads inside the (single) compute epoch."""
    graph = build_epoch_graph(program)
    epoch = graph.parallel_epochs()[-1]
    return [r for r in epoch.reads if r.decl.is_shared]


def stencil_program(*offsets):
    """doall j { do i { out(i,j) = sum(a(i+off, j)) } }."""
    b = ir.ProgramBuilder("p")
    n = 16
    b.shared("a", (n, n))
    b.shared("out", (n, n))
    with b.proc("main"):
        with b.doall("j", 1, n):
            with b.do("i", 4, n - 4):
                expr = ir.E(0.0)
                for off in offsets:
                    sub = ir.E("i") + off if off else ir.E("i")
                    expr = expr + b.ref("a", sub, "j")
                b.assign(b.ref("out", "i", "j"), expr)
    return b.finish()


class TestGroupSpatial:
    def test_adjacent_offsets_form_one_group(self):
        refs = refs_in_inner_loop(stencil_program(-1, 0, 1))
        a_refs = [r for r in refs if r.decl.name == "a"]
        groups, nonaffine = group_spatial_groups(a_refs, "i", line_elems=4)
        assert not nonaffine
        assert len(groups) == 1
        group = groups[0]
        assert len(group.trailing) == 2
        # leading = largest constant for a positive stride
        assert group.leading.aref.address.const == max(
            m.aref.address.const for m in group.members)
        assert group.span_elems == 2

    def test_far_offsets_split_groups(self):
        refs = refs_in_inner_loop(stencil_program(0, 4))  # 4 elems = 1 line apart
        a_refs = [r for r in refs if r.decl.name == "a"]
        groups, _ = group_spatial_groups(a_refs, "i", line_elems=4)
        assert len(groups) == 2

    def test_chain_clustering(self):
        # offsets 0,2,4: 0-2 share, 2-4 share -> one chained cluster
        refs = refs_in_inner_loop(stencil_program(0, 2, 4))
        a_refs = [r for r in refs if r.decl.name == "a"]
        groups, _ = group_spatial_groups(a_refs, "i", line_elems=4)
        assert len(groups) == 1 and len(groups[0].members) == 3

    def test_different_arrays_never_group(self):
        refs = refs_in_inner_loop(stencil_program(0))
        groups, _ = group_spatial_groups(refs, "i", line_elems=4)
        arrays = sorted(g.leading.decl.name for g in groups)
        assert arrays == ["a"]

    def test_large_stride_disables_grouping(self):
        b = ir.ProgramBuilder("p")
        n = 64
        b.shared("a", (n,))
        b.shared("out", (n,))
        with b.proc("main"):
            with b.doall("q", 1, 6):
                with b.do("i", 1, 6):
                    b.assign(b.ref("out", "i"),
                             b.ref("a", ir.E("i") * 8) + b.ref("a", ir.E("i") * 8 + 1))
        refs = refs_in_inner_loop(b.finish())
        a_refs = [r for r in refs if r.decl.name == "a"]
        groups, _ = group_spatial_groups(a_refs, "i", line_elems=4)
        # stride 8 >= line 4: every ref is its own group
        assert all(not g.trailing for g in groups)

    def test_nonaffine_kept_separately(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (16,))
        b.shared("idx", (16,))
        b.shared("out", (16,))
        with b.proc("main"):
            with b.doall("q", 1, 4):
                with b.do("i", 1, 16):
                    b.assign(b.ref("out", "i"), b.ref("a", b.ref("idx", "i")))
        refs = refs_in_inner_loop(b.finish())
        a_refs = [r for r in refs if r.decl.name == "a"]
        groups, nonaffine = group_spatial_groups(a_refs, "i", line_elems=4)
        assert len(nonaffine) == 1 and not groups


class TestSelfReuse:
    def test_unit_stride_is_self_spatial(self):
        refs = refs_in_inner_loop(stencil_program(0))
        info = [r for r in refs if r.decl.name == "a"][0]
        reuse = classify_self_reuse(info, "i", line_elems=4)
        assert reuse.self_spatial and not reuse.self_temporal

    def test_invariant_is_self_temporal(self, mini_mxm):
        refs = refs_in_inner_loop(mini_mxm)
        b_ref = [r for r in refs if r.decl.name == "b"][0]
        reuse = classify_self_reuse(b_ref, "i", line_elems=4)
        assert reuse.self_temporal
        assert innermost_stride(b_ref, "i") == 0


class TestCostModel:
    params = t3d(4)

    def test_add_vs_div_costs(self):
        cheap = expr_cost(ir.parse_expr("a + b"), self.params)
        pricey = expr_cost(ir.parse_expr("a / b"), self.params)
        assert pricey > cheap

    def test_load_costs_charged(self):
        bare = expr_cost(ir.parse_expr("x + y"), self.params)
        loads = expr_cost(ir.parse_expr("u(i) + v(i)"), self.params)
        assert loads >= bare + 2 * self.params.cache_hit

    def test_loop_cost_scales_with_trip(self):
        body = [ir.Assign(ir.aref("a", "i"), ir.parse_expr("a(i) * 2.0"))]
        small = ir.Loop("i", 1, 10, body=body)
        big = ir.Loop("i", 1, 100, body=[s.clone() for s in body])
        assert stmt_cost(big, self.params) > 5 * stmt_cost(small, self.params)

    def test_if_averages_branches(self):
        stmt = ir.If(ir.parse_expr("i < 2"),
                     [ir.Assign(ir.VarRef("x"), ir.parse_expr("1.0 / y"))],
                     [])
        full = stmt_cost(stmt, self.params)
        assert 0 < full < stmt_cost(stmt.then_body[0], self.params) + 10

    def test_unknown_bounds_use_default_trip(self):
        loop = ir.Loop("i", 1, ir.SymConst("n"),
                       body=[ir.Assign(ir.VarRef("x"), 1.0)])
        assert stmt_cost(loop, self.params) > 0

    def test_loop_body_cost_includes_overhead(self):
        loop = ir.Loop("i", 1, 10, body=[ir.Assign(ir.VarRef("x"), 1.0)])
        assert loop_body_cost(loop, self.params) >= self.params.loop_overhead

    def test_segment_cost_sums(self):
        stmts = [ir.Assign(ir.VarRef("x"), 1.0), ir.Assign(ir.VarRef("y"), 2.0)]
        assert segment_cost(stmts, self.params) == \
            sum(stmt_cost(s, self.params) for s in stmts)

    def test_average_remote_latency_grows_with_machine(self):
        small = average_remote_latency(t3d(2))
        large = average_remote_latency(t3d(64))
        assert large > small > self.params.local_mem
