"""Loop volume estimation and its use in non-stale prefetch pruning."""

import pytest

import repro.ir as ir
from repro.analysis.volume import (UNKNOWN_TRIP, VolumeEstimate, loop_volume,
                                   reuse_stays_resident)
from repro.machine.params import t3d

PARAMS = t3d(4, cache_bytes=512)  # 16 lines


def inner_loop(program):
    from repro.ir.loops import inner_loops
    return inner_loops(program.entry_proc.body)[0]


def build(n, body_builder):
    b = ir.ProgramBuilder("p")
    b.shared("a", (n, n))
    b.shared("out", (n, n))
    with b.proc("main"):
        with b.doall("j", 1, n):
            with b.do("i", 1, n):
                body_builder(b)
    return b.finish()


class TestLoopVolume:
    def test_unit_stride_quarter_line_per_iter(self):
        program = build(32, lambda b: b.assign(
            b.ref("out", "i", "j"), b.ref("a", "i", "j")))
        est = loop_volume(inner_loop(program), program.arrays, PARAMS)
        # two unit-stride streams, 4 words/line -> 0.5 lines per iteration
        assert est.lines_per_iteration == pytest.approx(0.5)
        assert est.trip == 32
        assert est.total_lines == pytest.approx(16)

    def test_group_spatial_counted_once(self):
        program = build(32, lambda b: b.assign(
            b.ref("out", "i", "j"),
            b.ref("a", "i", "j") + b.ref("a", ir.E("i") + 1, "j")))
        est = loop_volume(inner_loop(program), program.arrays, PARAMS)
        # the two a-refs share lines: still ~0.5 lines/iter total
        assert est.lines_per_iteration == pytest.approx(0.5)

    def test_large_stride_full_line_per_iter(self):
        program = build(32, lambda b: b.assign(
            b.ref("out", 1, "j"),
            b.ref("out", 1, "j") + b.ref("a", 1, "i")))  # row walk: stride 32
        est = loop_volume(inner_loop(program), program.arrays, PARAMS)
        assert est.lines_per_iteration == pytest.approx(1.0)

    def test_invariant_ref_is_free(self):
        program = build(32, lambda b: b.assign(
            b.ref("out", 1, "j"), b.ref("out", 1, "j") + b.ref("a", 2, 2)))
        est = loop_volume(inner_loop(program), program.arrays, PARAMS)
        # out(1,j) is invariant in i too -> zero marginal lines
        assert est.lines_per_iteration == pytest.approx(0.0)

    def test_nonaffine_rounds_up(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (32,))
        b.shared("idx", (32,))
        b.shared("out", (32,))
        with b.proc("main"):
            with b.doall("q", 1, 2):
                with b.do("i", 1, 32):
                    b.assign(b.ref("out", "i"), b.ref("a", b.ref("idx", "i")))
        program = b.finish()
        est = loop_volume(inner_loop(program), program.arrays, PARAMS)
        assert est.nonaffine_refs == 1
        assert est.lines_per_iteration >= 1.0

    def test_unknown_trip_never_fits(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (32, 32))
        b.sym("nn", 8)
        with b.proc("main"):
            with b.doall("j", 1, 32):
                with b.do("i", 1, ir.E(ir.SymConst("nn"))):
                    b.assign(b.ref("a", "i", "j"), 1.0)
        program = b.finish()
        est = loop_volume(inner_loop(program), program.arrays, PARAMS)
        assert est.trip == UNKNOWN_TRIP
        assert not est.fits_in(PARAMS)


class TestResidencyPruning:
    def test_small_loop_fits(self):
        program = build(8, lambda b: b.assign(
            b.ref("out", "i", "j"), b.ref("a", "i", "j")))
        assert reuse_stays_resident(inner_loop(program), program.arrays, PARAMS)

    def test_large_loop_does_not_fit(self):
        program = build(128, lambda b: b.assign(
            b.ref("out", "i", "j"), b.ref("a", "i", "j")))
        assert not reuse_stays_resident(inner_loop(program), program.arrays,
                                        PARAMS)

    def test_nonstale_extension_prunes_resident_loops(self):
        """With a cache big enough to hold the whole footprint, the
        extension adds no latency-only targets; with a tiny cache it
        does."""
        from repro.coherence import CCDPConfig, ccdp_transform

        def make(n):
            return build(n, lambda b: b.assign(
                b.ref("out", "i", "j"),
                b.ref("out", "i", "j") + b.ref("a", "i", 3)))

        big_cache = CCDPConfig(machine=t3d(4, cache_bytes=8192)).with_(
            prefetch_nonstale=True)
        _, rep_big = ccdp_transform(make(16), big_cache)

        tiny_cache = CCDPConfig(machine=t3d(4, cache_bytes=128)).with_(
            prefetch_nonstale=True)
        _, rep_tiny = ccdp_transform(make(16), tiny_cache)

        assert rep_big.nonstale_targets == 0
        assert rep_tiny.nonstale_targets > 0
