"""Bounded regular sections: triplets, sections, section sets."""

import pytest

from repro.analysis.affine import affine_ref
from repro.analysis.sections import (Section, SectionSet, Triplet,
                                     full_section, section_of_ref)
from repro.ir.arrays import ArrayDecl
from repro.ir.dsl import parse_expr
from repro.ir.expr import aref


class TestTriplet:
    def test_count(self):
        assert Triplet(1, 10).count() == 10
        assert Triplet(1, 10, 3).count() == 4
        assert Triplet(5, 4).count() == 0

    def test_contains_respects_step(self):
        t = Triplet(2, 10, 2)
        assert t.contains(4)
        assert not t.contains(5)
        assert not t.contains(12)

    def test_overlap_basic(self):
        assert Triplet(1, 5).overlaps(Triplet(5, 9))
        assert not Triplet(1, 4).overlaps(Triplet(5, 9))

    def test_overlap_strided_disjoint_residues(self):
        evens = Triplet(2, 20, 2)
        odds = Triplet(1, 19, 2)
        assert not evens.overlaps(odds)

    def test_overlap_empty(self):
        assert not Triplet(5, 1).overlaps(Triplet(1, 10))

    def test_hull(self):
        h = Triplet(1, 4).hull(Triplet(8, 10))
        assert h.lo == 1 and h.hi == 10

    def test_hull_keeps_common_step(self):
        h = Triplet(1, 9, 2).hull(Triplet(11, 15, 2))
        assert h.step == 2

    def test_positive_step_required(self):
        with pytest.raises(ValueError):
            Triplet(1, 10, 0)


class TestSection:
    def make(self, *triplets):
        return Section("a", tuple(Triplet(*t) for t in triplets))

    def test_count(self):
        s = self.make((1, 4), (1, 3))
        assert s.count() == 12

    def test_overlap_needs_all_dims(self):
        a = self.make((1, 4), (1, 2))
        b = self.make((2, 6), (3, 4))
        assert not a.overlaps(b)  # second dim disjoint
        c = self.make((2, 6), (2, 5))
        assert a.overlaps(c)

    def test_different_arrays_never_overlap(self):
        a = Section("a", (Triplet(1, 4),))
        b = Section("b", (Triplet(1, 4),))
        assert not a.overlaps(b)

    def test_contains_point(self):
        s = self.make((1, 4), (2, 8, 2))
        assert s.contains_point((2, 4))
        assert not s.contains_point((2, 5))


class TestSectionOfRef:
    def test_loop_range_sweep(self):
        decl = ArrayDecl("a", (10, 10))
        ref = aref("a", "i", parse_expr("j + 1"))
        ar = affine_ref(ref, decl)
        section = section_of_ref(ar, decl, {"i": (2, 5), "j": (1, 4)})
        assert section.triplets[0].lo == 2 and section.triplets[0].hi == 5
        assert section.triplets[1].lo == 2 and section.triplets[1].hi == 5

    def test_unknown_var_widens_to_extent(self):
        decl = ArrayDecl("a", (10, 10))
        ar = affine_ref(aref("a", "i", "j"), decl)
        section = section_of_ref(ar, decl, {"i": (1, 3), "j": None})
        assert section.triplets[1].lo == 1 and section.triplets[1].hi == 10

    def test_negative_coefficient(self):
        decl = ArrayDecl("a", (10,))
        ar = affine_ref(aref("a", parse_expr("11 - i")), decl)
        section = section_of_ref(ar, decl, {"i": (1, 10)})
        assert (section.triplets[0].lo, section.triplets[0].hi) == (1, 10)

    def test_clamps_into_extent(self):
        decl = ArrayDecl("a", (10,))
        ar = affine_ref(aref("a", parse_expr("i + 5")), decl)
        section = section_of_ref(ar, decl, {"i": (1, 10)})
        assert section.triplets[0].hi == 10

    def test_strided_access_records_step(self):
        decl = ArrayDecl("a", (32,))
        ar = affine_ref(aref("a", parse_expr("2 * i")), decl)
        section = section_of_ref(ar, decl, {"i": (1, 8)})
        assert section.triplets[0].step == 2

    def test_symbolic_coefficient_widens(self):
        decl = ArrayDecl("a", (10,))
        ar = affine_ref(aref("a", parse_expr("i + $n")), decl)
        section = section_of_ref(ar, decl, {"i": (1, 2)})
        assert section.triplets[0].hi == 10


class TestSectionSet:
    def seg(self, lo, hi):
        return Section("a", (Triplet(lo, hi),))

    def test_add_and_overlap(self):
        ss = SectionSet("a")
        assert ss.add(self.seg(1, 4))
        assert ss.overlaps(self.seg(3, 8))
        assert not ss.overlaps(self.seg(6, 8))

    def test_subsumed_add_reports_unchanged(self):
        ss = SectionSet("a", [self.seg(1, 10)])
        assert not ss.add(self.seg(2, 5))

    def test_add_replaces_covered_sections(self):
        ss = SectionSet("a", [self.seg(2, 3), self.seg(5, 6)])
        ss.add(self.seg(1, 10))
        assert len(ss.sections) == 1

    def test_overflow_merges_to_hull(self):
        ss = SectionSet("a")
        for k in range(SectionSet.MAX_DISJUNCTS + 3):
            ss.add(self.seg(10 * k + 1, 10 * k + 2))
        assert len(ss.sections) <= SectionSet.MAX_DISJUNCTS
        # hull keeps soundness: everything added still overlaps
        assert ss.overlaps(self.seg(1, 1))
        assert ss.overlaps(self.seg(101, 101))

    def test_union_reports_change(self):
        a = SectionSet("a", [self.seg(1, 2)])
        b = SectionSet("a", [self.seg(5, 6)])
        assert a.union(b)
        assert not a.union(b)

    def test_empty_section_ignored(self):
        ss = SectionSet("a")
        assert not ss.add(self.seg(5, 1))
        assert ss.empty

    def test_array_mismatch_rejected(self):
        ss = SectionSet("a")
        with pytest.raises(ValueError):
            ss.add(Section("b", (Triplet(1, 2),)))

    def test_full_section(self):
        decl = ArrayDecl("a", (4, 6))
        s = full_section(decl)
        assert s.count() == 24
