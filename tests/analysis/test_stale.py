"""Stale reference analysis: the writer-class/reader-class matrix and
the fixpoint over region-loop back edges."""

import pytest

import repro.ir as ir
from repro.analysis.stale import analyse_stale_references


def _stale_arrays(result):
    return sorted({info.decl.name for info in result.stale_reads.values()})


def _stale_map(result):
    """array -> list of formatted stale refs (for targeted assertions)."""
    out = {}
    for info in result.stale_reads.values():
        out.setdefault(info.decl.name, []).append(repr(info.ref))
    return out


class TestWriterReaderMatrix:
    def build(self, writer, reader):
        """One write epoch then one read epoch with selectable classes."""
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        b.shared("out", (8, 8))
        with b.proc("main"):
            if writer == "serial":
                with b.do("j", 1, 8):
                    b.assign(b.ref("a", 1, "j"), 1.0)
            elif writer == "aligned":
                with b.doall("j", 1, 8):
                    b.assign(b.ref("a", 1, "j"), 1.0)
            else:  # other
                with b.doall("j", 1, 8):
                    b.assign(b.ref("a", 1, 3), 1.0)
            if reader == "serial":
                with b.do("j", 1, 8):
                    b.assign(b.ref("out", 1, "j"), b.ref("a", 1, "j"))
            elif reader == "aligned":
                with b.doall("j", 1, 8):
                    b.assign(b.ref("out", 1, "j"), b.ref("a", 1, "j"))
            else:  # unaligned reader
                with b.doall("j", 1, 8):
                    b.assign(b.ref("out", 1, "j"), b.ref("a", 1, 3))
        return b.finish()

    @pytest.mark.parametrize("writer,reader,expect_stale", [
        ("serial", "serial", False),    # same PE (PE 0)
        ("serial", "aligned", True),    # PE 0 wrote, owner reads
        ("serial", "other", True),
        ("aligned", "serial", True),    # owner wrote, PE 0 reads
        ("aligned", "aligned", False),  # owner wrote, owner reads
        ("aligned", "other", True),
        ("other", "serial", True),
        ("other", "aligned", True),
        ("other", "other", True),
    ])
    def test_matrix(self, writer, reader, expect_stale):
        result = analyse_stale_references(self.build(writer, reader))
        stale_a = "a" in _stale_arrays(result)
        assert stale_a == expect_stale, _stale_map(result)


class TestFootprints:
    def test_disjoint_sections_not_stale(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        b.shared("out", (8, 8))
        with b.proc("main"):
            with b.do("j", 1, 4):          # serial writes rows 1..4? no: row 1, cols 1..4
                b.assign(b.ref("a", 1, "j"), 1.0)
            with b.doall("j", 5, 8, align="a"):   # reads columns 5..8 only
                b.assign(b.ref("out", 1, "j"), b.ref("a", 1, "j"))
        result = analyse_stale_references(b.finish())
        assert "a" not in _stale_arrays(result)

    def test_first_touch_reads_never_stale(self, mini_mxm):
        result = analyse_stale_references(mini_mxm)
        # b and c are written aligned and read aligned; a is read invariant
        assert _stale_arrays(result) == ["a"]

    def test_reads_before_any_write_are_fresh(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        b.shared("out", (8, 8))
        with b.proc("main"):
            with b.doall("j", 1, 8):
                b.assign(b.ref("out", 1, "j"), b.ref("a", 1, 3))
        result = analyse_stale_references(b.finish())
        assert not result.stale_reads


class TestBackEdges:
    def test_time_loop_makes_earlier_epoch_reads_stale(self, pingpong):
        """In the ping-pong stencil, `fwd` reads x written by `bwd` of the
        *previous* time step: only the back edge reveals that."""
        result = analyse_stale_references(pingpong)
        stale = _stale_map(result)
        assert "x" in stale
        # The shifted neighbour reads of x must be flagged.
        assert any("j - 1" in s or "j + 1" in s for s in stale["x"])

    def test_without_time_loop_first_sweep_is_fresh(self):
        b = ir.ProgramBuilder("p")
        b.shared("x", (8, 8))
        b.shared("y", (8, 8))
        with b.proc("main"):
            with b.doall("j", 1, 8, align="x"):
                b.assign(b.ref("x", 1, "j"), 1.0)
            with b.doall("j", 2, 7, align="x"):
                b.assign(b.ref("y", 1, "j"),
                         b.ref("x", 1, ir.E("j") - 1) + b.ref("x", 1, ir.E("j") + 1))
        result = analyse_stale_references(b.finish())
        # shifted reads of x after an aligned write: stale (different PE)
        assert "x" in _stale_arrays(result)

    def test_fixpoint_terminates_on_nested_regions(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        with b.proc("main"):
            with b.do("t", 1, 3):
                with b.do("u", 1, 2):
                    with b.doall("j", 1, 8):
                        b.assign(b.ref("a", 1, "j"), b.ref("a", 1, 1) + 1.0)
        result = analyse_stale_references(b.finish())
        assert result.iterations < 500
        assert "a" in _stale_arrays(result)


class TestResultAPI:
    def test_partition_is_total(self, pingpong):
        result = analyse_stale_references(pingpong)
        stale = set(result.stale_reads)
        fresh = set(result.fresh_reads)
        assert not (stale & fresh)
        graph = result.graph
        shared_reads = {r.uid for e in graph.epochs for r in e.reads
                        if r.decl.is_shared}
        assert stale | fresh == shared_reads

    def test_summary_mentions_counts(self, pingpong):
        result = analyse_stale_references(pingpong)
        assert "potentially stale" in result.summary()

    def test_stale_in_epoch_filter(self, pingpong):
        result = analyse_stale_references(pingpong)
        for info in result.stale_reads.values():
            assert info in result.stale_in_epoch(info.epoch_id)
