"""Call graph construction and interprocedural queries."""

import pytest

import repro.ir as ir
from repro.analysis.callgraph import CallGraph


def chain_program(recursive=False):
    b = ir.ProgramBuilder("p")
    b.shared("a", (8, 8))
    with b.proc("leaf"):
        b.assign(b.ref("a", 1, 1), 0.0)
    with b.proc("mid"):
        b.call("leaf")
    with b.proc("par"):
        with b.doall("j", 1, 8):
            b.assign(b.ref("a", 1, "j"), 1.0)
    with b.proc("main"):
        b.call("mid")
        b.call("par")
    program = b.finish()
    if recursive:
        program.procedures["leaf"].body.append(ir.CallStmt("mid"))
    return program


class TestCallGraph:
    def test_edges(self):
        graph = CallGraph.build(chain_program())
        assert graph.callees["main"] == ["mid", "par"]
        assert graph.callers["leaf"] == ["mid"]

    def test_reachability(self):
        graph = CallGraph.build(chain_program())
        assert graph.reachable_from("main") == {"main", "mid", "leaf", "par"}
        assert graph.reachable_from("mid") == {"mid", "leaf"}

    def test_contains_parallelism_transitive(self):
        graph = CallGraph.build(chain_program())
        assert graph.contains_parallelism("par")
        assert graph.contains_parallelism("main")
        assert not graph.contains_parallelism("mid")

    def test_recursion_detection(self):
        graph = CallGraph.build(chain_program(recursive=True))
        assert graph.is_recursive("mid")
        assert graph.is_recursive("leaf")
        assert not graph.is_recursive("par")
        assert graph.any_recursion()

    def test_topological_order(self):
        graph = CallGraph.build(chain_program())
        order = graph.topological_order()
        assert order.index("leaf") < order.index("mid") < order.index("main")

    def test_topological_order_rejects_recursion(self):
        graph = CallGraph.build(chain_program(recursive=True))
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_undefined_callee_raises(self):
        program = chain_program()
        program.procedures["main"].body.append(ir.CallStmt("ghost"))
        # validation would normally catch this; CallGraph double-checks
        program.procedures["main"].body[-1].name = "ghost"
        with pytest.raises(KeyError):
            CallGraph.build(program)
