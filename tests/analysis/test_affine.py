"""Affine subscript analysis."""

import pytest

from repro.analysis.affine import AffineForm, affine_of, affine_ref
from repro.ir.arrays import ArrayDecl
from repro.ir.dsl import parse_expr
from repro.ir.expr import ArrayRef, aref


def form(text: str):
    return affine_of(parse_expr(text))


class TestAffineOf:
    def test_constant(self):
        f = form("7")
        assert f.is_constant() and f.const == 7

    def test_variable(self):
        f = form("i")
        assert f.coeff("i") == 1 and f.const == 0

    def test_linear_combination(self):
        f = form("2 * i + 3 * j - 4")
        assert f.coeff("i") == 2 and f.coeff("j") == 3 and f.const == -4

    def test_coefficient_cancellation(self):
        f = form("i - i + 5")
        assert f.is_constant() and f.const == 5

    def test_nested_scaling(self):
        f = form("3 * (i + 2)")
        assert f.coeff("i") == 3 and f.const == 6

    def test_negation(self):
        f = form("-(i - 1)")
        assert f.coeff("i") == -1 and f.const == 1

    def test_symbolic_constant(self):
        f = form("$n + i")
        assert f.sym_coeffs == (("n", 1),)
        assert f.is_symbolic()

    def test_product_of_variables_is_not_affine(self):
        assert form("i * j") is None

    def test_division_is_not_affine(self):
        assert form("i / 2") is None

    def test_intrinsic_is_not_affine(self):
        assert form("min(i, 4)") is None


class TestAlgebra:
    def test_add_sub_roundtrip(self):
        a = form("2 * i + 1")
        b = form("i - 3")
        assert (a + b).coeff("i") == 3
        assert (a - b).const == 4

    def test_scale_zero_clears(self):
        assert form("5 * i + 2").scale(0).is_constant()

    def test_same_shape_ignores_constant(self):
        assert form("i + 1").same_shape(form("i + 9"))
        assert not form("i + 1").same_shape(form("2 * i + 1"))

    def test_evaluate(self):
        f = form("2 * i + 3 * j - 4")
        assert f.evaluate({"i": 5, "j": 1}) == 9

    def test_drop_var(self):
        f = form("2 * i + j")
        assert f.drop_var("i").coeff("i") == 0
        assert f.drop_var("i").coeff("j") == 1


class TestAffineRef:
    def test_column_major_address(self):
        decl = ArrayDecl("a", (10, 10))
        ref = aref("a", "i", "j")
        ar = affine_ref(ref, decl)
        # address = (i-1) + 10*(j-1)
        assert ar.address.coeff("i") == 1
        assert ar.address.coeff("j") == 10
        assert ar.address.const == -11

    def test_innermost_stride(self):
        decl = ArrayDecl("a", (10, 10))
        ar = affine_ref(aref("a", "k", "j"), decl)
        assert ar.innermost_stride("k") == 1
        assert ar.innermost_stride("j") == 10
        assert ar.innermost_stride("z") == 0

    def test_uniformly_generated(self):
        decl = ArrayDecl("a", (10, 10))
        r1 = affine_ref(aref("a", "i", "j"), decl)
        r2 = affine_ref(aref("a", parse_expr("i + 1"), "j"), decl)
        r3 = affine_ref(aref("a", parse_expr("2 * i"), "j"), decl)
        assert r1.uniformly_generated_with(r2)
        assert not r1.uniformly_generated_with(r3)

    def test_non_affine_subscript_gives_none(self):
        decl = ArrayDecl("a", (10, 10))
        assert affine_ref(aref("a", parse_expr("i * j"), 1), decl) is None

    def test_address_evaluation_matches_linear_index(self):
        decl = ArrayDecl("a", (7, 9))
        ar = affine_ref(aref("a", "i", "j"), decl)
        for i in (1, 3, 7):
            for j in (1, 5, 9):
                assert ar.address.evaluate({"i": i, "j": j}) == \
                    decl.linear_index((i, j))
