"""Ownership alignment classification and the epoch flow graph."""

import pytest

import repro.ir as ir
from repro.analysis.alignment import AccessClass, classify
from repro.analysis.affine import affine_ref
from repro.analysis.epochs import EpochKind, build_epoch_graph
from repro.ir.arrays import ArrayDecl
from repro.ir.dsl import parse_expr
from repro.ir.expr import aref
from repro.ir.stmt import Loop, LoopKind, ScheduleKind


def doall(var="j", lo=1, hi=8, schedule=ScheduleKind.STATIC_BLOCK, align=""):
    return Loop(var, lo, hi, kind=LoopKind.DOALL, schedule=schedule, align=align)


class TestClassify:
    decl = ArrayDecl("a", (8, 8))

    def ar(self, *subs):
        return affine_ref(ir.ArrayRef("a", [parse_expr(s) if isinstance(s, str)
                                            else ir.as_expr(s) for s in subs]),
                          self.decl)

    def test_aligned_full_range(self):
        out = classify(self.ar("i", "j"), self.decl, doall())
        assert out.klass == AccessClass.ALIGNED
        assert not out.possibly_remote

    def test_shifted(self):
        out = classify(self.ar("i", "j + 1"), self.decl, doall())
        assert out.klass == AccessClass.SHIFTED and out.shift == 1

    def test_invariant(self):
        out = classify(self.ar("i", "k"), self.decl, doall())
        assert out.klass == AccessClass.INVARIANT

    def test_constant_subscript_is_invariant(self):
        out = classify(self.ar("i", 3), self.decl, doall())
        assert out.klass == AccessClass.INVARIANT

    def test_scaled_subscript_is_other(self):
        out = classify(self.ar("i", "2 * j"), self.decl, doall())
        assert out.klass == AccessClass.OTHER

    def test_subrange_without_align_is_other(self):
        out = classify(self.ar("i", "j"), self.decl, doall(lo=2, hi=7))
        assert out.klass == AccessClass.OTHER

    def test_subrange_with_align_is_aligned(self):
        out = classify(self.ar("i", "j"), self.decl,
                       doall(lo=2, hi=7, align="a"), align_decl=self.decl)
        assert out.klass == AccessClass.ALIGNED

    def test_align_geometry_mismatch_is_other(self):
        other = ArrayDecl("b", (8, 16))
        out = classify(self.ar("i", "j"), self.decl,
                       doall(align="b"), align_decl=other)
        assert out.klass == AccessClass.OTHER

    def test_serial_epoch(self):
        out = classify(self.ar("i", "j"), self.decl, None)
        assert out.klass == AccessClass.SERIAL

    def test_nonaffine_is_other(self):
        out = classify(None, self.decl, doall())
        assert out.klass == AccessClass.OTHER

    def test_cyclic_needs_cyclic_schedule(self):
        from repro.ir.arrays import Distribution, DistKind
        cyc = ArrayDecl("c", (8, 8), dist=Distribution(DistKind.CYCLIC, -1))
        ar = affine_ref(aref("c", "i", "j"), cyc)
        assert classify(ar, cyc, doall()).klass == AccessClass.OTHER
        assert classify(ar, cyc, doall(schedule=ScheduleKind.STATIC_CYCLIC)
                        ).klass == AccessClass.ALIGNED


class TestEpochGraph:
    def test_mini_mxm_epochs(self, mini_mxm):
        graph = build_epoch_graph(mini_mxm)
        parallel = graph.parallel_epochs()
        assert len(parallel) == 2
        # region loop (k) adds a self back edge on the compute epoch
        compute = parallel[1]
        assert compute.id in graph.succs[compute.id]
        assert graph.back_edges

    def test_serial_epoch_created_between_doalls(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        with b.proc("main"):
            with b.doall("j", 1, 8):
                b.assign(b.ref("a", 1, "j"), 1.0)
            b.assign(b.ref("a", 1, 1), 2.0)
            with b.doall("j", 1, 8):
                b.assign(b.ref("a", 2, "j"), 3.0)
        graph = build_epoch_graph(b.finish())
        kinds = [e.kind for e in graph.epochs]
        assert kinds.count(EpochKind.SERIAL) == 1
        assert kinds.count(EpochKind.PARALLEL) == 2

    def test_refs_collected_with_classes(self, mini_mxm):
        graph = build_epoch_graph(mini_mxm)
        compute = graph.parallel_epochs()[1]
        classes = {r.ref.array: r.alignment.klass for r in compute.reads}
        assert classes["a"] == AccessClass.INVARIANT
        assert classes["b"] == AccessClass.ALIGNED
        assert classes["c"] == AccessClass.ALIGNED

    def test_writes_collected(self, mini_mxm):
        graph = build_epoch_graph(mini_mxm)
        init = graph.parallel_epochs()[0]
        assert sorted({w.ref.array for w in init.writes}) == ["a", "b", "c"]

    def test_if_with_doall_branches(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        b.scalar("flag", ir.INT, 1)
        with b.proc("main"):
            with b.doall("j", 1, 8):
                b.assign(b.ref("a", 1, "j"), 0.0)
            with b.if_(ir.E("flag") > 0):
                with b.doall("j", 1, 8):
                    b.assign(b.ref("a", 2, "j"), 1.0)
        graph = build_epoch_graph(b.finish())
        first = graph.parallel_epochs()[0]
        assert len(graph.succs[first.id]) >= 1

    def test_parallel_call_inlined_into_graph(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        with b.proc("kernel"):
            with b.doall("j", 1, 8):
                b.assign(b.ref("a", 1, "j"), 1.0)
        with b.proc("main"):
            with b.do("t", 1, 3):
                b.call("kernel")
        program = b.finish()
        graph = build_epoch_graph(program)
        assert len(graph.parallel_epochs()) == 1
        assert graph.back_edges  # time loop around the inlined epoch

    def test_serial_call_summarised(self):
        b = ir.ProgramBuilder("p")
        b.shared("a", (8, 8))
        with b.proc("touch"):
            with b.do("i", 1, 8):
                b.assign(b.ref("a", "i", 1), b.ref("a", "i", 2))
        with b.proc("main"):
            b.call("touch")
            with b.doall("j", 1, 8):
                b.assign(b.ref("a", 1, "j"), 0.0)
        graph = build_epoch_graph(b.finish())
        serial = [e for e in graph.epochs if e.kind == EpochKind.SERIAL][0]
        assert any(r.summarised_call == "touch" for r in serial.reads)
        assert any(w.summarised_call == "touch" for w in serial.writes)
