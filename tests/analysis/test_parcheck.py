"""Static DOALL-independence verification (GCD/bounds test)."""

import pytest

import repro.ir as ir
from repro.analysis.parcheck import check_doall_independence
from repro.workloads import all_workloads


def program_with_doall(body_builder, n=16, arrays=("a", "b")):
    b = ir.ProgramBuilder("p")
    for name in arrays:
        b.shared(name, (n, n))
    with b.proc("main"):
        with b.doall("j", 2, n - 1):
            body_builder(b, n)
    return b.finish()


class TestIndependentLoops:
    def test_elementwise_writes(self):
        program = program_with_doall(lambda b, n: b.assign(
            b.ref("a", 1, "j"), 1.0))
        result = check_doall_independence(program)
        assert result.clean, [c.describe() for c in result.conflicts]

    def test_read_neighbours_write_own(self):
        """Jacobi pattern: reads of j±1 with writes to a DIFFERENT array
        are independent."""
        program = program_with_doall(lambda b, n: b.assign(
            b.ref("b", 1, "j"),
            b.ref("a", 1, ir.E("j") - 1) + b.ref("a", 1, ir.E("j") + 1)))
        result = check_doall_independence(program)
        assert result.clean

    def test_inner_loop_full_column(self):
        def body(b, n):
            with b.do("i", 1, n):
                b.assign(b.ref("a", "i", "j"), ir.E("i") * 1.0)

        result = check_doall_independence(program_with_doall(body))
        assert result.clean

    def test_strided_disjoint_writes(self):
        """Red sweep: iterations 2,4,6,... never collide."""
        b = ir.ProgramBuilder("p")
        b.shared("a", (16, 16))
        with b.proc("main"):
            with b.doall("j", 2, 15, 2):
                b.assign(b.ref("a", 1, "j"),
                         b.ref("a", 1, ir.E("j") - 1) + b.ref("a", 1, ir.E("j") + 1))
        result = check_doall_independence(b.finish())
        assert result.clean

    def test_workloads_pass_the_checker(self):
        for spec in all_workloads():
            program = spec.build_default()
            result = check_doall_independence(program)
            assert result.clean, (spec.name,
                                  [c.describe() for c in result.conflicts])


class TestDependentLoops:
    def test_loop_carried_write_read(self):
        """a(1, j) = a(1, j-1): classic carried dependence."""
        program = program_with_doall(lambda b, n: b.assign(
            b.ref("a", 1, "j"), b.ref("a", 1, ir.E("j") - 1) + 1.0))
        result = check_doall_independence(program)
        assert not result.clean
        assert "distance 1" in result.conflicts[0].reason

    def test_parallel_invariant_write(self):
        """Every iteration writes a(1, 1): a write-write race."""
        program = program_with_doall(lambda b, n: b.assign(
            b.ref("a", 1, 1), ir.E("j") * 1.0))
        result = check_doall_independence(program)
        assert not result.clean
        assert "invariant" in result.conflicts[0].reason

    def test_nonaffine_write_flagged(self):
        def body(b, n):
            b.assign(b.ref("a", 1, b.ref("b", 1, "j")), 1.0)

        result = check_doall_independence(program_with_doall(body))
        assert not result.clean
        assert "non-affine" in result.conflicts[0].reason

    def test_scaled_collision(self):
        """a(1, 2j) written, a(1, j) read: iterations j and 2j collide."""
        program = program_with_doall(lambda b, n: b.assign(
            b.ref("a", 1, ir.parse_expr("2 * j - 2")), b.ref("a", 1, "j")),
            n=32)
        result = check_doall_independence(program)
        assert not result.clean

    def test_far_distance_beyond_trip_is_clean(self):
        """a(1, j) = a(1, j - 100) with a 14-iteration loop: the carried
        distance exceeds the trip count, so no two live iterations
        collide."""
        b = ir.ProgramBuilder("p")
        b.shared("a", (16, 128))
        with b.proc("main"):
            with b.doall("j", 101, 114):
                b.assign(b.ref("a", 1, "j"),
                         b.ref("a", 1, ir.parse_expr("j - 100")) + 1.0)
        result = check_doall_independence(b.finish())
        assert result.clean

    def test_summary_counts(self):
        program = program_with_doall(lambda b, n: b.assign(
            b.ref("a", 1, "j"), b.ref("a", 1, ir.E("j") - 1)))
        result = check_doall_independence(program)
        assert "dependences" in result.summary()
        assert result.loops_checked == 1
