"""The four application case studies: oracle correctness in every
version, CCDP coherence, and the structural properties the paper
describes for each."""

import numpy as np
import pytest

from repro.coherence import CCDPConfig, ccdp_transform
from repro.harness.experiment import SCALED_CACHE_BYTES
from repro.machine import t3d
from repro.runtime import Version, run_program
from repro.workloads import all_workloads, workload
from repro.workloads.base import check_result

SMALL = {"mxm": {"n": 16}, "vpenta": {"n": 17},
         "tomcatv": {"n": 17, "steps": 2}, "swim": {"n": 17, "steps": 2}}


def params(n_pes):
    return t3d(n_pes, cache_bytes=SCALED_CACHE_BYTES)


@pytest.fixture(params=[spec.name for spec in all_workloads()])
def spec(request):
    return workload(request.param)


class TestOracles:
    def test_sequential_matches_oracle(self, spec):
        args = SMALL[spec.name]
        program = spec.build(**args)
        oracle = spec.oracle(**args)
        result = run_program(program, params(1), Version.SEQ)
        err = check_result({a: result.value_of(a) for a in spec.check_arrays},
                           oracle, spec.check_arrays)
        assert err is None, err

    @pytest.mark.parametrize("n_pes", [2, 5, 8])
    def test_base_matches_oracle(self, spec, n_pes):
        args = SMALL[spec.name]
        program = spec.build(**args)
        oracle = spec.oracle(**args)
        result = run_program(program, params(n_pes), Version.BASE)
        err = check_result({a: result.value_of(a) for a in spec.check_arrays},
                           oracle, spec.check_arrays)
        assert err is None, err
        assert result.stats.stale_reads == 0  # uncached: trivially coherent

    @pytest.mark.parametrize("n_pes", [2, 5, 8])
    def test_ccdp_matches_oracle_and_is_coherent(self, spec, n_pes):
        args = SMALL[spec.name]
        program = spec.build(**args)
        oracle = spec.oracle(**args)
        transformed, _ = ccdp_transform(program,
                                        CCDPConfig(machine=params(n_pes)))
        result = run_program(transformed, params(n_pes), Version.CCDP,
                             on_stale="raise")
        err = check_result({a: result.value_of(a) for a in spec.check_arrays},
                           oracle, spec.check_arrays)
        assert err is None, err
        assert result.stats.stale_reads == 0


class TestPaperStructure:
    def test_mxm_prefetches_a_columns_as_vectors(self):
        program = workload("mxm").build(n=16)
        _, report = ccdp_transform(program, CCDPConfig(machine=params(8)))
        # stale analysis flags exactly the A references
        arrays = {i.decl.name for i in report.stale.stale_reads.values()}
        assert arrays == {"a"}
        # the four unrolled A columns become vector prefetches (VPG)
        assert report.schedule.counts()["vpg"] == 4

    def test_mxm_vectors_live_in_doall_preamble(self):
        program = workload("mxm").build(n=16)
        transformed, _ = ccdp_transform(program, CCDPConfig(machine=params(8)))
        from repro.ir.stmt import Loop
        doalls = [s for s in transformed.walk()
                  if isinstance(s, Loop) and s.is_parallel and s.label == "compute"]
        assert doalls and len(doalls[0].preamble) == 4

    def test_vpenta_stale_refs_are_local(self):
        """Paper: VPENTA's potentially-stale references access local
        data — owner-ALIGNED reads made stale by the serial boundary
        epoch (plus PE 0's own serial reads of aligned-written rows)."""
        from repro.analysis.alignment import AccessClass
        program = workload("vpenta").build(n=17)
        _, report = ccdp_transform(program, CCDPConfig(machine=params(4)))
        classes = {i.alignment.klass for i in report.stale.stale_reads.values()}
        assert classes <= {AccessClass.ALIGNED, AccessClass.SERIAL}
        assert AccessClass.ALIGNED in classes

    def test_tomcatv_solver_reads_are_remote_class(self):
        from repro.analysis.alignment import AccessClass
        program = workload("tomcatv").build(n=17, steps=1)
        _, report = ccdp_transform(program, CCDPConfig(machine=params(4)))
        invariant = [i for i in report.stale.stale_reads.values()
                     if i.alignment.klass == AccessClass.INVARIANT]
        assert invariant  # the column j-1 / j+1 reads of loops 100/120

    def test_tomcatv_naive_is_incoherent_and_wrong(self):
        spec = workload("tomcatv")
        args = SMALL["tomcatv"]
        program = spec.build(**args)
        oracle = spec.oracle(**args)
        result = run_program(program, params(4), Version.NAIVE)
        assert result.stats.stale_reads > 0
        err = check_result({a: result.value_of(a) for a in spec.check_arrays},
                           oracle, spec.check_arrays)
        assert err is not None

    def test_swim_uses_interprocedural_inlining(self):
        program = workload("swim").build(n=17, steps=1)
        _, report = ccdp_transform(program, CCDPConfig(machine=params(4)))
        assert report.inlined_calls >= 3  # calc1..calc3

    def test_swim_source_program_not_mutated(self):
        program = workload("swim").build(n=17, steps=1)
        n_calls_before = sum(1 for s in program.walk()
                             if type(s).__name__ == "CallStmt")
        ccdp_transform(program, CCDPConfig(machine=params(4)))
        n_calls_after = sum(1 for s in program.walk()
                            if type(s).__name__ == "CallStmt")
        assert n_calls_before == n_calls_after == 3


class TestPerformanceShape:
    """The coarse performance claims, at miniature sizes (the full-shape
    comparison lives in the benchmark harness)."""

    def test_mxm_ccdp_beats_base_heavily(self):
        spec = workload("mxm")
        program = spec.build(n=16)
        p = params(4)
        base = run_program(program, p, Version.BASE)
        transformed, _ = ccdp_transform(program, CCDPConfig(machine=p))
        ccdp = run_program(transformed, p, Version.CCDP)
        improvement = (base.elapsed - ccdp.elapsed) / base.elapsed
        assert improvement > 0.4

    def test_vpenta_ccdp_beats_base_modestly(self):
        spec = workload("vpenta")
        program = spec.build(n=17)
        p = params(4)
        base = run_program(program, p, Version.BASE)
        transformed, _ = ccdp_transform(program, CCDPConfig(machine=p))
        ccdp = run_program(transformed, p, Version.CCDP)
        improvement = (base.elapsed - ccdp.elapsed) / base.elapsed
        assert 0.0 < improvement < 0.5

    def test_ordering_mxm_tomcatv_above_vpenta(self):
        improvements = {}
        for name in ("mxm", "tomcatv", "vpenta"):
            spec = workload(name)
            program = spec.build(**SMALL[name])
            p = params(4)
            base = run_program(program, p, Version.BASE)
            transformed, _ = ccdp_transform(program, CCDPConfig(machine=p))
            ccdp = run_program(transformed, p, Version.CCDP)
            improvements[name] = (base.elapsed - ccdp.elapsed) / base.elapsed
        assert improvements["mxm"] > improvements["vpenta"]
        assert improvements["tomcatv"] > improvements["vpenta"]


class TestRegistry:
    def test_all_four_registered(self):
        assert sorted(s.name for s in all_workloads()) == \
            ["mxm", "swim", "tomcatv", "vpenta"]

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload("linpack")

    def test_paper_sizes_recorded(self):
        assert workload("mxm").paper_args == {"n": 256}
        assert workload("tomcatv").paper_args["n"] == 513

    def test_mxm_requires_multiple_of_unroll(self):
        with pytest.raises(ValueError):
            workload("mxm").build(n=18)
