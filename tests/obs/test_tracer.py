"""Tracer unit behaviour: ring buffer, sampling, allow-lists, counters."""

import pytest

from repro.obs import Tracer


def _emit_reads(tr, n, pe=0):
    for i in range(n):
        tr.emit(("read_hit", pe, "a", i, 0))


def test_unbounded_keeps_everything():
    tr = Tracer()
    _emit_reads(tr, 5)
    assert len(tr.events) == 5
    assert tr.evicted == 0
    assert tr.kept == 5
    assert tr.counts == {"read_hit": 5}
    assert tr.total == 5


def test_events_returns_fresh_list():
    tr = Tracer()
    _emit_reads(tr, 2)
    got = tr.events
    got.clear()
    assert len(tr.events) == 2


def test_ring_buffer_evicts_oldest_counters_stay_exact():
    tr = Tracer(capacity=3)
    _emit_reads(tr, 10)
    events = tr.events
    assert len(events) == 3
    assert [e[3] for e in events] == [7, 8, 9]   # most recent survive
    assert tr.evicted == 7
    assert tr.kept == 10
    assert tr.counts["read_hit"] == 10           # counting ignores capacity


def test_sample_stride_records_first_of_every_k():
    tr = Tracer(sample=3)
    _emit_reads(tr, 10)
    assert [e[3] for e in tr.events] == [0, 3, 6, 9]
    assert tr.counts["read_hit"] == 10


def test_sample_zero_counts_without_recording():
    tr = Tracer(sample=0)
    _emit_reads(tr, 10)
    tr.emit(("barrier", 5.0))
    assert tr.events == []
    assert tr.kept == 0
    assert tr.counts == {"read_hit": 10, "barrier": 1}
    assert tr.counts_only(["read_hit", "barrier"])


def test_sample_dict_is_per_kind():
    tr = Tracer(sample={"read_hit": 0, "barrier": 2})
    _emit_reads(tr, 4)
    for t in range(5):
        tr.emit(("barrier", float(t)))
    tr.emit(("write", 0, "a", 1, 1, 0))          # default stride 1
    kinds = [e[0] for e in tr.events]
    assert kinds == ["barrier", "barrier", "barrier", "write"]
    assert [e[1] for e in tr.events[:3]] == [0.0, 2.0, 4.0]
    assert tr.stride("read_hit") == 0
    assert tr.stride("barrier") == 2
    assert tr.stride("write") == 1


def test_kinds_allowlist_counts_the_rest():
    tr = Tracer(kinds=["barrier"])
    _emit_reads(tr, 3)
    tr.emit(("barrier", 1.0))
    assert [e[0] for e in tr.events] == ["barrier"]
    assert tr.counts == {"read_hit": 3, "barrier": 1}
    assert tr.counts_only(["read_hit"])
    assert not tr.counts_only(["read_hit", "barrier"])


def test_add_counts_bulk_tally():
    tr = Tracer(sample=0)
    tr.add_counts("read_hit", 40)
    tr.add_counts("read_hit", 2)
    tr.add_counts("write", 0)                    # no-op, no key created
    assert tr.counts == {"read_hit": 42}
    assert tr.events == []


@pytest.mark.parametrize("kwargs", [
    {"capacity": 0},
    {"capacity": -1},
    {"sample": -1},
    {"sample": 1.5},
    {"sample": {"warp_core_breach": 1}},
    {"sample": {"read_hit": -2}},
    {"sample": {"read_hit": "all"}},
    {"kinds": ["read_hit", "warp_core_breach"]},
])
def test_constructor_rejects(kwargs):
    with pytest.raises(ValueError):
        Tracer(**kwargs)


def test_epoch_end_without_begin_raises():
    tr = Tracer()
    with pytest.raises(RuntimeError):
        tr.epoch_end("init", machine=None)
