"""Trace <-> stats reconciliation: the event stream is an audit log.

Every count-class PEStats field must be a pure fold over the event
stream (see ``repro.obs.fold``).  The property test runs miniature
programs across versions, backends and machine shapes and requires the
fold to reproduce the live counters exactly — a missing or duplicated
emission point anywhere in ``machine/`` or the batched synthesiser
fails it.  A second property pins the other half of the Tracer
contract: per-kind *counters* are exact under any sampling/capacity.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machine import t3d
from repro.obs import Tracer, fold_events, reconcile
from repro.runtime import Backend, ExecutionConfig, Version
from repro.runtime.interp import make_interpreter
from tests.conftest import build_mini_mxm, build_pingpong

PROGRAMS = {
    "mini_mxm": lambda: build_mini_mxm(n=6),
    "pingpong": lambda: build_pingpong(n=8, steps=2),
}

RELAXED = settings(max_examples=12, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def _run_traced(build, version, backend, n_pes, tracer):
    params = t3d(n_pes, cache_bytes=512)
    program = build()
    if version == Version.CCDP:
        from repro.coherence import CCDPConfig, ccdp_transform
        program, _ = ccdp_transform(program, CCDPConfig(machine=params))
    interp = make_interpreter(
        program, params,
        ExecutionConfig.for_version(version, backend=backend, tracer=tracer))
    interp.run()
    return interp.machine


@RELAXED
@given(name=st.sampled_from(sorted(PROGRAMS)),
       version=st.sampled_from(Version.ALL),
       backend=st.sampled_from(Backend.ALL),
       n_pes=st.sampled_from([1, 2, 4]))
def test_fold_reconciles_with_live_stats(name, version, backend, n_pes):
    tracer = Tracer()
    machine = _run_traced(PROGRAMS[name], version, backend, n_pes, tracer)
    mismatches = reconcile(tracer.events, machine)
    assert not mismatches, "\n".join(mismatches)
    assert tracer.counts.get("barrier", 0) == machine.stats.barriers


@RELAXED
@given(version=st.sampled_from([Version.BASE, Version.CCDP]),
       backend=st.sampled_from(Backend.ALL),
       sample=st.one_of(st.sampled_from([0, 2, 7]),
                        st.just({"read_hit": 0, "write": 3})),
       capacity=st.sampled_from([None, 16]))
def test_counters_exact_under_sampling(version, backend, sample, capacity):
    """Sampling and capacity shed *tuples*, never counts: any knob
    setting must leave per-kind counters identical to a full trace (the
    batched backend's counts-only fast path included)."""
    full = Tracer()
    _run_traced(PROGRAMS["mini_mxm"], version, backend, 2, full)
    lossy = Tracer(capacity=capacity, sample=sample)
    _run_traced(PROGRAMS["mini_mxm"], version, backend, 2, lossy)
    assert lossy.counts == full.counts
    assert lossy.kept <= full.kept


def test_fold_matches_both_backends_identically():
    """Folding the reference stream and the batched stream gives the
    same table — a compact restatement of trace equivalence."""
    folds = []
    for backend in Backend.ALL:
        tracer = Tracer()
        machine = _run_traced(PROGRAMS["pingpong"], Version.CCDP, backend,
                              4, tracer)
        folds.append(fold_events(tracer.events, len(machine.pes)))
    assert folds[0] == folds[1]
