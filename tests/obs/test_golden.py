"""Golden-trace snapshots: MXM n=8 under every program version.

The committed JSONL files under ``tests/obs/golden/`` pin the exact
machine-event stream — any change to interpreter scheduling, cache
behaviour, prefetch timing or the event taxonomy shows up as a diff
here.  To regenerate after an *intentional* behaviour change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_golden.py

then review the golden diffs like any other code change.
"""

import difflib
import os
from pathlib import Path

import pytest

from repro.machine import t3d
from repro.obs import Tracer, events_to_jsonl, read_jsonl
from repro.obs.validate import validate_file
from repro.runtime import Version, run_program

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"

#: golden configuration: the flagship workload, sized so each trace
#: stays a few thousand events, on the equivalence tests' machine.
N = 8
N_PES = 4
CACHE_BYTES = 2048


def _trace_mxm(version: str) -> Tracer:
    from repro.coherence import CCDPConfig, ccdp_transform
    from repro.workloads import workload

    params = t3d(N_PES, cache_bytes=CACHE_BYTES)
    program = workload("mxm").build(n=N)
    if version == Version.CCDP:
        program, _ = ccdp_transform(program, CCDPConfig(machine=params))
    tracer = Tracer()
    run_program(program, params, version, tracer=tracer)
    return tracer


def _golden_path(version: str) -> Path:
    return GOLDEN_DIR / f"mxm_n{N}_{version}.jsonl"


@pytest.mark.parametrize("version", Version.ALL)
def test_golden_trace(version):
    text = events_to_jsonl(_trace_mxm(version).events)
    path = _golden_path(version)
    if UPDATE:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path.name} ({text.count(chr(10))} events)")
    if not path.exists():
        pytest.fail(f"missing golden {path}; generate it with "
                    "REPRO_UPDATE_GOLDEN=1")
    want = path.read_text()
    if text == want:
        return
    diff = list(difflib.unified_diff(
        want.splitlines(), text.splitlines(),
        fromfile=f"golden/{path.name}", tofile="current", lineterm="", n=2))
    shown = "\n".join(diff[:40])
    omitted = max(0, len(diff) - 40)
    pytest.fail(
        f"trace diverged from golden ({len(want.splitlines())} -> "
        f"{len(text.splitlines())} events). If intentional, regenerate "
        f"with REPRO_UPDATE_GOLDEN=1 and review the diff.\n{shown}"
        + (f"\n... {omitted} more diff lines" if omitted else ""))


@pytest.mark.parametrize("version", Version.ALL)
def test_golden_is_schema_valid(version):
    """Every committed golden parses against the event schema (so the
    snapshots double as validator fixtures)."""
    path = _golden_path(version)
    if not path.exists():
        pytest.skip("golden not generated yet")
    n, counts = validate_file(path)
    assert n > 0
    assert counts["epoch_begin"] == counts["epoch_end"]
    assert read_jsonl(path)[0][0] == "epoch_begin"


def test_trace_is_stable_across_runs():
    """Two identical runs serialise byte-identically — the property that
    makes golden snapshots (and cross-run diffing) meaningful at all."""
    first = events_to_jsonl(_trace_mxm(Version.CCDP).events)
    second = events_to_jsonl(_trace_mxm(Version.CCDP).events)
    assert first == second
