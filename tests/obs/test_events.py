"""Event schema: validation, dict/tuple round-trips."""

import pytest

from repro.obs import (BYPASS_KINDS, EVENT_FIELDS, EVENT_KINDS,
                       INVALIDATE_REASONS, event_from_dict, event_to_dict,
                       validate_event)
from repro.obs.events import BUS_OPS, DIR_OPS, WB_REASONS

#: one well-formed example of every kind, in schema order.
EXAMPLES = {
    "read_hit": ("read_hit", 0, "a", 12, 0),
    "read_miss": ("read_miss", 1, "b", 3, 1),
    "bypass_fetch": ("bypass_fetch", 2, "c", 7, "pf_drop"),
    "write": ("write", 3, "a", 9, 1, 0),
    "pf_issue": ("pf_issue", 0, "a", 2, 1),
    "pf_coalesce": ("pf_coalesce", 1, "b", 4, 0),
    "pf_drop": ("pf_drop", 2, "c", 5, 1),
    "pf_complete": ("pf_complete", 3, "a", 16),
    "invalidate": ("invalidate", 0, "b", 2, "prefetch", -1, -1),
    "vector_transfer": ("vector_transfer", 1, "c", 0, 3, 16, 0, 1),
    "bus_tx": ("bus_tx", 0, "busrdx", 40, 1),
    "coh_wb": ("coh_wb", 1, 40, "downgrade"),
    "silent_upgrade": ("silent_upgrade", 2, 41),
    "coh_inval": ("coh_inval", 0, 40, 3),
    "dir_req": ("dir_req", 1, "rd", 40, 2, 4, 1, 0),
    "dir_bcast": ("dir_bcast", 3, 40, 7),
    "barrier": ("barrier", 128.0),
    "epoch_begin": ("epoch_begin", 0, "init", 0),
    "epoch_end": ("epoch_end", 0, "init", 96.5),
    "fault_activation": ("fault_activation", 2, "drop_storm", "line 4"),
    "farm_lease": ("farm_lease", "5c1bd63fae67aac7", 1),
    "farm_retry": ("farm_retry", "5c1bd63fae67aac7", 2, 250, "crash"),
    "farm_quarantine": ("farm_quarantine", "5c1bd63fae67aac7", 3, "timeout"),
    "farm_resume": ("farm_resume", "5c1bd63fae67aac7", "a" * 64),
    "farm_done": ("farm_done", "5c1bd63fae67aac7", 1, 0),
}


def test_examples_cover_every_kind():
    assert set(EXAMPLES) == set(EVENT_KINDS) == set(EVENT_FIELDS)


@pytest.mark.parametrize("kind", sorted(EXAMPLES))
def test_validate_accepts_wellformed(kind):
    validate_event(EXAMPLES[kind])


@pytest.mark.parametrize("bad", [
    None,                                   # not a tuple
    (),                                     # empty
    ["read_hit", 0, "a", 1, 0],             # list, not tuple
    ("warp_core_breach", 0),                # unknown kind
    ("read_hit", 0, "a", 1),                # arity too small
    ("read_hit", 0, "a", 1, 0, 0),          # arity too large
    ("read_hit", "0", "a", 1, 0),           # int field as str
    ("read_hit", 0, 7, 1, 0),               # str field as int
    ("read_hit", 0, "a", 1, True),          # bool is not an int here
    ("barrier", "12"),                      # time must be numeric
    ("barrier", True),                      # ... and not bool
    ("bypass_fetch", 0, "a", 1, "teleport"),  # kind outside BYPASS_KINDS
    ("invalidate", 0, "a", 1, "boredom", -1, -1),  # reason outside the enum
    ("farm_retry", "k", 2, 250, "gremlins"),  # reason outside FAIL_REASONS
    ("farm_quarantine", "k", 3, "gremlins"),  # ditto
    ("farm_lease", 7, 1),                   # key must be a str
    ("bus_tx", 0, "busflush", 40, 0),       # op outside BUS_OPS
    ("bus_tx", 0, 2, 40, 0),                # op must be a str
    ("coh_wb", 1, 40, "laziness"),          # reason outside WB_REASONS
    ("dir_req", 1, "own", 40, 2, 4, 0, 0),  # op outside DIR_OPS
    ("dir_req", 1, "rd", 40, 2, 4, 0),      # arity too small
])
def test_validate_rejects_malformed(bad):
    with pytest.raises(ValueError):
        validate_event(bad)


def test_enum_values_validate():
    for why in BYPASS_KINDS:
        validate_event(("bypass_fetch", 0, "a", 1, why))
    for reason in INVALIDATE_REASONS:
        validate_event(("invalidate", 0, "a", 1, reason, -1, -1))
    for op in BUS_OPS:
        validate_event(("bus_tx", 0, op, 40, 0))
    for reason in WB_REASONS:
        validate_event(("coh_wb", 0, 40, reason))
    for op in DIR_OPS:
        validate_event(("dir_req", 0, op, 40, 1, 2, 0, 0))


@pytest.mark.parametrize("kind", sorted(EXAMPLES))
def test_dict_roundtrip(kind):
    event = EXAMPLES[kind]
    record = event_to_dict(event)
    assert record["ev"] == kind
    assert list(record) == ["ev"] + list(EVENT_FIELDS[kind])
    assert event_from_dict(record) == event


@pytest.mark.parametrize("record", [
    {},                                          # no ev key
    {"ev": "warp_core_breach"},                  # unknown kind
    {"ev": "barrier"},                           # missing field
    {"ev": "barrier", "time": 1, "pe": 0},       # extra field
])
def test_from_dict_rejects(record):
    with pytest.raises(ValueError):
        event_from_dict(record)
