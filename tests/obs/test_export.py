"""Exporters and the validate CLI: JSONL round-trips, Chrome trace,
normalisation guarantees the golden snapshots depend on."""

import json

import numpy as np
import pytest

from repro.obs import (EpochPEMetrics, EpochRow, chrome_trace, event_to_json,
                       events_to_jsonl, read_jsonl, write_jsonl)
from repro.obs.export import normalize_value
from repro.obs.validate import main as validate_main
from repro.obs.validate import validate_file

EVENTS = [
    ("epoch_begin", 0, "init", 0),
    ("read_miss", 1, "a", 3, 1),
    ("barrier", 96.0),
    ("epoch_end", 0, "init", 96.0),
]


@pytest.mark.parametrize("value,expect", [
    (12.0, 12), (12.5, 12.5), (7, 7), ("a", "a"), (True, True),
    (np.int64(4), 4), (np.float64(8.0), 8),
])
def test_normalize_value(value, expect):
    got = normalize_value(value)
    assert got == expect and type(got) is type(expect)


def test_event_to_json_is_sorted_and_compact():
    line = event_to_json(("read_miss", np.int64(1), "a", 3, np.int64(0)))
    assert line == '{"array":"a","ev":"read_miss","flat":3,"local":0,"pe":1}'


def test_events_to_jsonl_trailing_newline():
    assert events_to_jsonl([]) == ""
    text = events_to_jsonl(EVENTS)
    assert text.endswith("\n") and not text.endswith("\n\n")
    assert len(text.splitlines()) == len(EVENTS)


def test_jsonl_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    assert write_jsonl(EVENTS, path) == len(EVENTS)
    assert read_jsonl(path) == EVENTS


def test_read_jsonl_reports_line_number(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(event_to_json(EVENTS[0]) + "\n"
                    + '{"ev":"warp_core_breach"}\n')
    with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
        read_jsonl(path)


def _timeline():
    row = EpochRow(index=0, label="init", start=0.0, end=96.0)
    row.per_pe.append(EpochPEMetrics(
        pe=0, reads=10, hits=8, misses=2, prefetch_issued=3, pf_dropped=1,
        stall_cycles=4.0, queue_high_water=2, cache_lines=5))
    return [row]


def test_chrome_trace_structure():
    doc = chrome_trace(_timeline(), EVENTS, metadata={"workload": "mxm"})
    assert doc["otherData"] == {"workload": "mxm"}
    by_ph = {}
    for ev in doc["traceEvents"]:
        by_ph.setdefault(ev["ph"], []).append(ev)
    assert len(by_ph["M"]) == 2                       # process + track names
    (span,) = by_ph["X"]
    assert (span["name"], span["ts"], span["dur"]) == ("init", 0, 96)
    assert {c["name"] for c in by_ph["C"]} == {
        "pe0 hit_rate", "pe0 queue_hw", "pe0 stall_cycles"}
    (instant,) = by_ph["i"]
    assert instant["ts"] == 96 and instant["s"] == "g"
    json.dumps(doc)                                   # serialisable as-is


def test_validate_file_census(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(EVENTS, path)
    n, counts = validate_file(path)
    assert n == len(EVENTS)
    assert counts["epoch_begin"] == counts["epoch_end"] == 1


def test_validate_main_exit_codes(tmp_path, capsys):
    good = tmp_path / "good.jsonl"
    write_jsonl(EVENTS, good)
    assert validate_main([str(good)]) == 0
    assert "OK" in capsys.readouterr().out

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ev":"barrier","time":"noon"}\n')
    assert validate_main([str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err

    notjson = tmp_path / "notjson.jsonl"
    notjson.write_text("{nope\n")
    assert validate_main([str(notjson)]) == 1

    assert validate_main([]) == 2
