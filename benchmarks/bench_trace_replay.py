"""Trace-replay throughput: recorded references replayed per second.

An engineering benchmark for the trace frontend (DESIGN.md §9).  A
block-partitioned synthetic text trace — each PE walking its own slice,
so the batched bulk path can service every run — is replayed on both
backends, and the golden MXM CCDP trace (prefetch-heavy, so largely
reference-path) gives the mixed-stream number.  Results land next to
the interpreter's own throughput numbers in ``BENCH_throughput.json``.

``REPRO_BENCH_QUICK=1`` shrinks the synthetic trace from 1M to 100k
accesses for CI perf smoke.
"""

import json
import os
import time
from pathlib import Path

from repro.machine.params import t3d
from repro.runtime.exec_config import Backend
from repro.trace import TraceProgram

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
GOLDEN = (Path(__file__).resolve().parent.parent / "tests" / "obs"
          / "golden" / "mxm_n8_ccdp.jsonl")

N_PES = 4
WORDS_PER_PE = 1024

#: Floor for batched-over-reference replay speedup on the fully
#: bulk-eligible synthetic trace.  Measured ~1.6x; 1.2x leaves noise
#: margin while still catching a collapse of the bulk path.
BULK_SPEEDUP_FLOOR = 1.2
BULK_COVERAGE_FLOOR = 0.99


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark result into the repo-root JSON ledger."""
    results = {}
    if RESULTS_PATH.exists():
        try:
            results = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            results = {}
    results[key] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                            + "\n")


def _synthetic_ops() -> int:
    return 100_000 if os.environ.get("REPRO_BENCH_QUICK") else 1_000_000


def _write_partitioned_trace(path, n_ops: int) -> None:
    ops_per_pe = 1000
    epochs = n_ops // (N_PES * ops_per_pe)
    with open(path, "w") as fh:
        fh.write(f"%pes {N_PES}\n%array x {N_PES * WORDS_PER_PE}\n")
        for e in range(epochs):
            for pe in range(N_PES):
                base = pe * WORDS_PER_PE
                lines = []
                for k in range(ops_per_pe):
                    addr = base + (e * 17 + k * 5) % WORDS_PER_PE
                    op = "write" if k % 4 == 3 else "read"
                    lines.append(f"x {op} {addr} {pe}\n")
                fh.write("".join(lines))
            fh.write("barrier\n")


def _best_of(fn, reps=3):
    best, result = float("inf"), None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_trace_replay_throughput(tmp_path, capsys):
    n_ops = _synthetic_ops()
    trace_path = tmp_path / "partitioned.trace"
    _write_partitioned_trace(trace_path, n_ops)
    program = TraceProgram.from_text(trace_path)
    reps = 2 if n_ops >= 1_000_000 else 3

    rates = {}
    results = {}
    for backend in (Backend.REFERENCE, Backend.BATCHED):
        seconds, result = _best_of(
            lambda b=backend: program.replay(
                t3d(N_PES, cache_bytes=2048), "ccdp", backend=b),
            reps=reps)
        refs = result.counters.ops
        rates[backend] = refs / seconds
        results[backend] = result
        _record(f"trace_replay_text_{n_ops // 1000}k_ccdp_{backend}", {
            "trace": "synthetic partitioned text", "ops": refs,
            "version": "ccdp", "backend": backend,
            "seconds_per_run": seconds,
            "refs_per_sec": refs / seconds,
            "bulk_ops": result.counters.bulk_ops,
            "fallbacks": result.counters.fallbacks,
        })
        with capsys.disabled():
            print(f"\n[trace-replay] text {n_ops // 1000}k ccdp "
                  f"{backend:9s} {refs / seconds:,.0f} refs/sec")

    bulk = results[Backend.BATCHED]
    coverage = bulk.counters.bulk_ops / bulk.counters.ops
    assert coverage >= BULK_COVERAGE_FLOOR, (
        f"bulk coverage {coverage:.3f} on a fully partitioned trace — "
        f"runs are falling back to the per-access path")
    assert (results[Backend.BATCHED].stats_dict()
            == results[Backend.REFERENCE].stats_dict())
    speedup = rates[Backend.BATCHED] / rates[Backend.REFERENCE]
    _record(f"trace_replay_text_{n_ops // 1000}k_ccdp_speedup",
            {"speedup": speedup, "coverage": coverage})
    assert speedup >= BULK_SPEEDUP_FLOOR, (
        f"batched replay speedup {speedup:.2f}x fell below the floor "
        f"{BULK_SPEEDUP_FLOOR}x")


def test_golden_trace_replay_throughput(capsys):
    """Mixed recorded stream (prefetches, hints, barriers): the golden
    MXM CCDP trace replayed end-to-end, geometry from the workload."""
    from repro.workloads import workload

    spec = workload("mxm")
    decls = spec.build(**{**spec.default_args, "n": 8}).arrays.values()
    program = TraceProgram.from_jsonl(GOLDEN, decls, N_PES)
    seconds, result = _best_of(
        lambda: program.replay(t3d(N_PES, cache_bytes=2048), "ccdp"))
    refs = result.counters.ops
    _record("trace_replay_golden_mxm_n8_ccdp", {
        "trace": GOLDEN.name, "ops": refs, "version": "ccdp",
        "backend": Backend.REFERENCE,
        "seconds_per_run": seconds,
        "refs_per_sec": refs / seconds,
    })
    with capsys.disabled():
        print(f"\n[trace-replay] golden mxm_n8_ccdp "
              f"{refs / seconds:,.0f} refs/sec ({refs} refs)")
    assert refs > 0
