"""Engineering benchmark: the vectorised trace evaluator vs. the
event-by-event reference cache, plus a real profile of a workload trace
(the VPENTA power-of-two aliasing diagnosis)."""

import numpy as np
import pytest

from repro.machine.cache import DirectMappedCache
from repro.machine.fastcache import classify_read_trace, conflict_profile
from repro.machine.params import t3d

PARAMS = t3d(1, cache_bytes=2048)
RNG = np.random.default_rng(42)
TRACE = RNG.integers(0, 8192, size=200_000).astype(np.int64)


def reference_hits(addrs):
    cache = DirectMappedCache(PARAMS)
    data = np.zeros(PARAMS.line_words)
    vers = np.zeros(PARAMS.line_words, dtype=np.int64)
    hits = 0
    for addr in addrs:
        if cache.read(addr) is None:
            cache.install(addr // PARAMS.line_words, data, vers)
        else:
            hits += 1
    return hits


def test_vectorised_classification(benchmark):
    result = benchmark(lambda: classify_read_trace(TRACE, PARAMS))
    assert result.reads == len(TRACE)


def test_reference_classification(benchmark):
    hits = benchmark.pedantic(lambda: reference_hits(TRACE[:20_000]),
                              rounds=1, iterations=1)
    fast = classify_read_trace(TRACE[:20_000], PARAMS)
    assert hits == fast.hits  # exactness at benchmark scale too


def test_profile_real_workload_trace(benchmark, capsys):
    """Capture a CCDP VPENTA trace and diagnose the n=32 aliasing."""
    from repro.coherence import CCDPConfig, ccdp_transform
    from repro.runtime import ExecutionConfig, Interpreter, Version
    from repro.workloads import workload

    params = t3d(4, cache_bytes=2048)
    program, _ = ccdp_transform(workload("vpenta").build(n=32),
                                CCDPConfig(machine=params))
    interp = Interpreter(program, params,
                         ExecutionConfig.for_version(Version.CCDP),
                         trace_reads=True)
    interp.run()
    trace = np.array(interp.machine.read_trace[0], dtype=np.int64)

    result = benchmark(lambda: classify_read_trace(trace, params))
    worst, counts = conflict_profile(trace, params, top=4)
    with capsys.disabled():
        print(f"\n[profile] vpenta n=32 PE0: {len(trace):,} reads, "
              f"hit={result.hit_rate:.3f}, hottest sets={worst.tolist()}")
    # the power-of-two layout makes the trace thrash
    assert result.hit_rate < 0.5
