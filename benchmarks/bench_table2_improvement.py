"""Regenerates **Table 2** of the paper: percentage improvement in
execution time of the CCDP codes over the BASE codes, per application
per PE count, printed next to every recoverable paper cell.

Shape assertions (not absolute numbers — see EXPERIMENTS.md):

* CCDP improves on BASE for every application at every PE count;
* MXM and TOMCATV improve by a large factor, VPENTA and SWIM modestly;
* the measured ordering keeps MXM/TOMCATV above VPENTA.
"""

import pytest

from repro.harness.paper_data import PAPER_IMPROVEMENT_RANGES
from repro.harness.tables import format_table2
from repro.runtime import Version


@pytest.mark.parametrize("workload", ["mxm", "vpenta", "tomcatv", "swim"])
def test_table2_improvement(workload, sweeps, runners, benchmark, capsys):
    sweep = sweeps[workload]
    pes = max(sweep.pe_counts())

    # Timed unit: one BASE run at the largest PE count.
    runner = runners[workload]
    record = benchmark.pedantic(
        lambda: runner.run_version(Version.BASE, pes), rounds=1, iterations=1)
    assert record.correct, record.error

    improvements = {n: sweep.improvement(n) for n in sweep.pe_counts()}
    lo, hi = PAPER_IMPROVEMENT_RANGES[workload]

    # CCDP wins everywhere (multi-PE; at 1 PE the gain is caching alone).
    for n, imp in improvements.items():
        assert imp > 0, f"{workload}@{n}: CCDP slower than BASE ({imp:.1f}%)"

    # Coarse banding: the big winners stay big, the modest ones modest.
    top = max(improvements.values())
    if workload in ("mxm", "tomcatv"):
        assert top > 40, f"{workload} should be a large-improvement app"
    else:
        assert top < 65, f"{workload} should be a modest-improvement app"

    with capsys.disabled():
        if workload == "swim":
            print()
            print(format_table2(list(sweeps.values())))
            order = sorted(sweeps.values(),
                           key=lambda s: -max(s.improvement(n)
                                              for n in s.pe_counts()))
            print("measured ordering:",
                  " > ".join(s.workload for s in order))


def test_table2_ordering(sweeps):
    """MXM and TOMCATV must both improve more than VPENTA (the paper's
    strongest cross-application statement)."""
    tops = {name: max(s.improvement(n) for n in s.pe_counts())
            for name, s in sweeps.items()}
    assert tops["mxm"] > tops["vpenta"]
    assert tops["tomcatv"] > tops["vpenta"]
