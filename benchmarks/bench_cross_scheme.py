"""Cross-scheme race: CCDP vs the hardware coherence baselines.

The Table-3-style experiment the paper could not run — its optimised
codes against the snooping MESI bus and the home-node directory
protocols, on the same workloads at the paper's PE counts.  Each cell
records execution time, speedup over SEQ, D-cache miss rate and the
interconnect bill (bus transactions, cache-to-cache transfers,
directory messages, invalidations) into ``BENCH_throughput.json``
under ``cross_scheme``, so the scheme comparison is machine-readable
across PRs.

Correctness is gated, not just recorded: every scheme's every cell
must validate against the workload oracle, and the protocol schemes
must actually generate protocol traffic at >1 PE — a silent protocol
would mean the version plumbing quietly degraded to NAIVE.
"""

import os

from repro.harness.experiment import ExperimentRunner
from repro.harness.tables import TABLE3_VERSIONS, table3_rows
from repro.runtime import Version
from repro.workloads import workload

from bench_simulator_throughput import _record

#: Scaled-down sizes (the fault-matrix regime: arrays >> one PE cache).
WORKLOAD_SIZES = {
    "mxm": {"n": 16},
    "vpenta": {"n": 17},
    "tomcatv": {"n": 17, "steps": 2},
    "swim": {"n": 17, "steps": 2},
}

PE_COUNTS = (1, 4, 8, 16, 32, 64)
QUICK_PE_COUNTS = (1, 4, 8)


def _pe_counts():
    if os.environ.get("REPRO_BENCH_PES"):
        return tuple(int(p) for p in
                     os.environ["REPRO_BENCH_PES"].split(","))
    if os.environ.get("REPRO_BENCH_QUICK"):
        return QUICK_PE_COUNTS
    return PE_COUNTS


def test_cross_scheme_race(capsys):
    pe_counts = _pe_counts()
    sweeps = []
    for name, sizes in sorted(WORKLOAD_SIZES.items()):
        runner = ExperimentRunner(workload(name), sizes,
                                  param_overrides={"cache_bytes": 512})
        sweeps.append(runner.sweep(pe_counts, versions=TABLE3_VERSIONS))

    rows = table3_rows(sweeps, TABLE3_VERSIONS)
    cells = {}
    for row in rows:
        assert row["correct"], \
            f"{row['workload']}/{row['version']} @ {row['n_pes']} PEs wrong"
        assert row["stale_reads"] == 0
        if row["n_pes"] > 1:
            if row["version"] == Version.MESI:
                assert row["bus_tx"] > 0
            elif row["version"] in (Version.DIR, Version.DIR_LP):
                assert row["dir_msgs"] > 0
        key = f"{row['workload']}_p{row['n_pes']}_{row['version']}"
        cells[key] = {k: row[k] for k in
                      ("workload", "n_pes", "version", "elapsed", "speedup",
                       "miss_rate", "bus_tx", "c2c", "dir_msgs", "invals")}

    _record("cross_scheme", {"pe_counts": list(pe_counts),
                             "sizes": WORKLOAD_SIZES, "cells": cells})
    with capsys.disabled():
        for sweep in sweeps:
            for n_pes in pe_counts:
                line = [f"\n[cross-scheme] {sweep.workload:8s} "
                        f"p{n_pes:<3d}"]
                for version in TABLE3_VERSIONS:
                    rec = sweep.runs[(version, n_pes)]
                    line.append(f"{version}={rec.elapsed:,.0f}")
                print(" ".join(line), end="")
        print()
