"""Ablation: sensitivity to the architectural parameters the paper's
scheduler consumes — prefetch queue depth, cache size, and remote
latency.  (The paper's §6 names exactly this interaction as future
simulation work.)
"""

import pytest

from repro.coherence import CCDPConfig, ccdp_transform
from repro.machine.params import t3d
from repro.runtime import Version, run_program
from repro.workloads import workload

_cache = {}


def ccdp_time(name, n_pes=8, **over):
    key = (name, n_pes, tuple(sorted(over.items())))
    if key in _cache:
        return _cache[key]
    sizes = {"mxm": {"n": 32}, "tomcatv": {"n": 33, "steps": 2}}[name]
    program = workload(name).build(**sizes)
    over.setdefault("cache_bytes", 2048)
    params = t3d(n_pes, **over)
    transformed, _ = ccdp_transform(program, CCDPConfig(machine=params))
    result = run_program(transformed, params, Version.CCDP, on_stale="raise")
    _cache[key] = result
    return result


class TestQueueDepth:
    @pytest.mark.parametrize("slots", [1, 4, 16])
    def test_queue_sweep(self, slots, benchmark, capsys):
        result = benchmark.pedantic(
            lambda: ccdp_time("tomcatv", prefetch_queue_slots=slots),
            rounds=1, iterations=1)
        with capsys.disabled():
            total = result.machine.stats.total()
            print(f"\n[queue={slots:2d}] tomcatv ccdp={result.elapsed:,.0f} cyc "
                  f"dropped={total.pf_dropped}")

    def test_deeper_queue_never_hurts_much(self):
        shallow = ccdp_time("tomcatv", prefetch_queue_slots=1).elapsed
        deep = ccdp_time("tomcatv", prefetch_queue_slots=16).elapsed
        assert deep <= shallow * 1.05


class TestCacheSize:
    @pytest.mark.parametrize("kbytes", [1, 2, 8])
    def test_cache_sweep(self, kbytes, benchmark, capsys):
        result = benchmark.pedantic(
            lambda: ccdp_time("mxm", cache_bytes=kbytes * 1024),
            rounds=1, iterations=1)
        with capsys.disabled():
            total = result.machine.stats.total()
            print(f"\n[cache={kbytes}KB] mxm ccdp={result.elapsed:,.0f} cyc "
                  f"hit_rate={total.hit_rate:.3f}")

    def test_bigger_cache_helps(self):
        small = ccdp_time("mxm", cache_bytes=1024).elapsed
        large = ccdp_time("mxm", cache_bytes=8192).elapsed
        assert large <= small


class TestRemoteLatency:
    @pytest.mark.parametrize("remote", [50, 100, 200])
    def test_latency_sweep(self, remote, benchmark, capsys):
        def run_pair():
            sizes = {"n": 32}
            program = workload("mxm").build(**sizes)
            params = t3d(8, cache_bytes=2048, remote_base=remote)
            base = run_program(program, params, Version.BASE)
            transformed, _ = ccdp_transform(program, CCDPConfig(machine=params))
            ccdp = run_program(transformed, params, Version.CCDP)
            return 100.0 * (base.elapsed - ccdp.elapsed) / base.elapsed

        value = benchmark.pedantic(run_pair, rounds=1, iterations=1)
        _cache[("latency", remote)] = value
        with capsys.disabled():
            print(f"\n[remote={remote}] mxm improvement={value:6.1f}%")

    def test_improvement_grows_with_latency(self):
        """The scheme's value is latency hiding: the slower the network,
        the bigger CCDP's edge over uncached BASE."""
        lo = _cache.get(("latency", 50))
        hi = _cache.get(("latency", 200))
        if lo is None or hi is None:
            pytest.skip("run the latency sweep first (same session)")
        assert hi > lo
