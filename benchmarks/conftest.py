"""Shared benchmark infrastructure.

The expensive full sweeps (every workload x version x PE count) run once
per session and are shared by the Table 1 / Table 2 benchmarks.  Sizes
and PE counts are environment-tunable:

``REPRO_BENCH_N``      problem size override (default: workload default)
``REPRO_BENCH_STEPS``  time steps override
``REPRO_BENCH_PES``    comma list of PE counts (default 1,2,4,8,16,32,64)
``REPRO_BENCH_QUICK``  =1 -> PE counts 1,2,4,8 only
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.harness.experiment import ExperimentRunner, PAPER_PE_COUNTS, Sweep
from repro.workloads import all_workloads


def bench_pe_counts() -> Tuple[int, ...]:
    env = os.environ.get("REPRO_BENCH_PES")
    if env:
        return tuple(int(p) for p in env.split(","))
    if os.environ.get("REPRO_BENCH_QUICK"):
        return (1, 2, 4, 8)
    return PAPER_PE_COUNTS


def bench_size_args() -> Dict[str, int]:
    out: Dict[str, int] = {}
    if os.environ.get("REPRO_BENCH_N"):
        out["n"] = int(os.environ["REPRO_BENCH_N"])
    if os.environ.get("REPRO_BENCH_STEPS"):
        out["steps"] = int(os.environ["REPRO_BENCH_STEPS"])
    return out


@pytest.fixture(scope="session")
def built_programs():
    """Memoised ``workload(name).build(**size_args)`` via the harness's
    content-addressed program cache (``repro.harness.progcache``).

    Benchmark modules parametrize over versions/backends but run the same
    few programs; building IR is pure, so each distinct (workload, sizes)
    pair is built once per process.  The content key canonicalises the
    size arguments (sorted, JSON-encoded, hashed), so spelling the same
    sizes differently — or requesting them from different modules, or
    from parallel pytest-xdist/sweep worker processes, each of which
    carries its own per-process cache — can never alias two distinct
    programs or share state across processes.
    """
    from repro.harness import progcache
    from repro.workloads import workload

    def build(name: str, **size_args):
        return progcache.get_program(workload(name), size_args)

    return build


@pytest.fixture(scope="session")
def runners() -> Dict[str, ExperimentRunner]:
    return {spec.name: ExperimentRunner(spec, bench_size_args())
            for spec in all_workloads()}


@pytest.fixture(scope="session")
def sweeps(runners) -> Dict[str, Sweep]:
    """Full BASE+CCDP sweeps for all four applications (computed once).

    Routed through the journaled sweep farm (``repro.farm``): set
    ``REPRO_BENCH_FARM_DIR`` to persist the journal + result store, and
    an interrupted benchmark session resumes there — finished cells are
    replayed from the journal instead of re-simulated.
    """
    from repro.farm import FarmConfig
    from repro.harness.sweep import SweepSpec, sweep_grid

    pes = bench_pe_counts()
    farm_dir = os.environ.get("REPRO_BENCH_FARM_DIR")
    farm = FarmConfig(jobs=1, farm_dir=farm_dir)
    specs = [SweepSpec.create(name, size_args=bench_size_args(),
                              pe_counts=tuple(pes))
             for name in runners]
    print(f"\n[sweep] {[s.workload for s in specs]} over PEs {pes}"
          + (f" [farm: {farm_dir}]" if farm_dir else "") + " ...",
          flush=True)
    results = sweep_grid(specs, farm=farm)
    return {sweep.workload: sweep for sweep in results}
