"""Ablation: the contribution of each scheduling technique.

The paper motivates combining Gornish's (vector) and Mowry's (pipelined)
scheduling; this benchmark disables each technique and measures the CCDP
improvement that remains, on the two prefetch-heavy applications.
"""

import pytest

from repro.coherence import CCDPConfig, ccdp_transform
from repro.machine.params import t3d
from repro.runtime import Version, run_program
from repro.workloads import workload

SIZES = {"mxm": {"n": 32}, "tomcatv": {"n": 33, "steps": 2}}
VARIANTS = {
    "full": {},
    "no-vpg": {"enable_vpg": False},
    "no-vpg-no-sp": {"enable_vpg": False, "enable_sp": False},
    "bypass-only": {"enable_vpg": False, "enable_sp": False,
                    "enable_mbp": False},
}

_cache = {}


def improvement(name, variant, n_pes=8):
    key = (name, variant)
    if key in _cache:
        return _cache[key]
    spec = workload(name)
    program = spec.build(**SIZES[name])
    params = t3d(n_pes, cache_bytes=2048)
    base = run_program(program, params, Version.BASE)
    config = CCDPConfig(machine=params).with_(**VARIANTS[variant])
    transformed, _ = ccdp_transform(program, config)
    ccdp = run_program(transformed, params, Version.CCDP, on_stale="raise")
    value = 100.0 * (base.elapsed - ccdp.elapsed) / base.elapsed
    _cache[key] = value
    return value


@pytest.mark.parametrize("name", list(SIZES))
@pytest.mark.parametrize("variant", list(VARIANTS))
def test_technique_ablation(name, variant, benchmark, capsys):
    value = benchmark.pedantic(lambda: improvement(name, variant),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n[ablation] {name:8s} {variant:14s} improvement={value:6.1f}%")

    if variant == "full":
        # removing everything must not beat the full scheme
        assert value >= improvement(name, "bypass-only") - 1.0


def test_vpg_matters_for_mxm():
    """MXM's win is built on vector prefetching the A columns."""
    assert improvement("mxm", "full") > improvement("mxm", "bypass-only") + 5.0


def test_every_variant_is_coherent():
    """Disabling techniques must never break coherence (targets fall back
    to bypass reads)."""
    for name in SIZES:
        for variant in VARIANTS:
            improvement(name, variant)  # raises on any stale read
