"""Regenerates **Table 1** of the paper: speedups of the BASE and CCDP
codes over sequential execution time, for all four applications across
the PE counts.

The benchmark timings measure one representative CCDP execution per
application (simulator throughput); the table itself is printed from the
shared session sweeps and sanity-checked against the paper's qualitative
expectations.
"""

import pytest

from repro.harness.paper_data import TABLE1_QUALITATIVE
from repro.harness.tables import format_table1
from repro.runtime import Version


@pytest.mark.parametrize("workload", ["mxm", "vpenta", "tomcatv", "swim"])
def test_table1_speedups(workload, sweeps, runners, benchmark, capsys):
    sweep = sweeps[workload]
    pes = max(sweep.pe_counts())

    # Timed unit: one CCDP run at the largest PE count.
    runner = runners[workload]
    record = benchmark.pedantic(
        lambda: runner.run_version(Version.CCDP, pes), rounds=1, iterations=1)
    assert record.correct, record.error
    assert record.stale_reads == 0

    # Paper qualitative expectations per application.
    base_top = sweep.speedup(Version.BASE, pes)
    ccdp_top = sweep.speedup(Version.CCDP, pes)
    assert ccdp_top > base_top, "CCDP must out-scale BASE everywhere"
    if workload in ("mxm", "tomcatv"):
        assert ccdp_top > 1.5 * base_top, TABLE1_QUALITATIVE[workload]
    if workload in ("vpenta", "swim") and pes >= 8:
        # BASE already scales for the local-access apps — up to the point
        # where the scaled grid runs out of columns per PE (n/PE < 2).
        effective = min(pes, 8)
        assert sweep.speedup(Version.BASE, effective) > 0.3 * effective, \
            f"{workload} BASE should already scale well: {TABLE1_QUALITATIVE[workload]}"

    with capsys.disabled():
        if workload == "swim":  # print once, after the last sweep exists
            print()
            print(format_table1(list(sweeps.values())))
