"""PE-scaling cost of the batched backend's cross-PE plane.

The paper's results are all about behaviour as the PE count grows, so
the simulator must stay affordable from 1 to 64 PEs.  The plane engine
records each DOALL epoch once and replays it for every PE as stacked
NumPy scatters, so a warm run's cost should be nearly flat in ``n_pes``
— this benchmark measures that directly (MXM and SWIM CCDP at the
paper's PE counts), records the curve in ``BENCH_throughput.json``, and
gates the headline number: a 64-PE run may cost at most
``PE64_OVER_PE8_RATIO_GATE`` times an 8-PE run.

Runs in CI perf-smoke (``REPRO_BENCH_QUICK``) too: the ratio gate and
the plane-activation check are regression floors, not benchmarks.
"""

import time

from repro.machine.params import t3d
from repro.runtime import Backend, Version, run_program

from bench_simulator_throughput import _record, _transformed

#: The paper's PE axis, minus 2 (adds nothing the 1/4 points don't).
PE_COUNTS = (1, 4, 8, 16, 32, 64)

WORKLOAD_SIZES = {
    "mxm": {"n": 24},
    "swim": {"n": 16, "steps": 2},
}

#: Warm 64-PE cost over warm 8-PE cost, worst case across workloads.
#: Measured 2.2-2.5 (the plane's per-epoch scatters are O(n_pes) only
#: in small per-PE bookkeeping); 3 leaves room for runner noise while
#: still failing hard if per-PE Python loops creep back in.
PE64_OVER_PE8_RATIO_GATE = 3.0


def _best_of(program, params, reps):
    """Best-of-``reps`` warm wall time of a plane-enabled batched run.

    ``run_program`` reuses a warm interpreter from the plan cache, so
    rep 1 pays compile + plane recording and the rest time pure replay;
    two extra untimed warm-ups make best-of robust on noisy runners."""
    for _ in range(2):
        result = run_program(program, params, Version.CCDP,
                             backend=Backend.BATCHED)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = run_program(program, params, Version.CCDP,
                             backend=Backend.BATCHED)
        best = min(best, time.perf_counter() - start)
    return best, result


def _interleaved_ratio(cell8, cell64, blocks=8, reps=4):
    """64-PE over 8-PE warm cost, measured in alternating blocks.

    Timing the two arms seconds apart lets CPU frequency drift land
    entirely on one side and swing the ratio by ±20%; alternating small
    blocks exposes both arms to the same machine conditions, and the
    global best-of per arm then divides out the noise."""
    prog8, params8 = cell8
    prog64, params64 = cell64
    best8 = best64 = float("inf")
    for _ in range(blocks):
        for _ in range(reps):
            start = time.perf_counter()
            run_program(prog8, params8, Version.CCDP,
                        backend=Backend.BATCHED)
            best8 = min(best8, time.perf_counter() - start)
        for _ in range(reps):
            start = time.perf_counter()
            run_program(prog64, params64, Version.CCDP,
                        backend=Backend.BATCHED)
            best64 = min(best64, time.perf_counter() - start)
    return best64 / best8


def test_pe_scaling_cost_curve(built_programs, capsys):
    """Measure the warm plane cost at each PE count, record the curves,
    and gate ``pe64_over_pe8_cost_ratio`` ≤ 3 for every workload."""
    reps = 10
    curves = {}
    worst_ratio = 0.0
    for name, sizes in sorted(WORKLOAD_SIZES.items()):
        cells = {}
        gate_cells = {}
        for n_pes in PE_COUNTS:
            params = t3d(n_pes, cache_bytes=2048)
            program = _transformed(built_programs, name, sizes, n_pes)
            gate_cells[n_pes] = (program, params)
            seconds, result = _best_of(program, params, reps)
            total = result.machine.stats.total()
            refs = total.reads + total.writes
            cells[str(n_pes)] = {
                "seconds_per_run": seconds,
                "refs_per_run": refs,
                "refs_per_sec": refs / seconds,
                "plane_coverage": result.plane_coverage,
            }
            with capsys.disabled():
                print(f"\n[pe-scaling] {name:5s} ccdp pes={n_pes:3d} "
                      f"{seconds * 1e3:8.3f} ms/run "
                      f"plane {result.plane_coverage:.3f}")
        ratio = _interleaved_ratio(gate_cells[8], gate_cells[64])
        cells["pe64_over_pe8_cost_ratio"] = ratio
        curves[name] = cells
        worst_ratio = max(worst_ratio, ratio)
        with capsys.disabled():
            print(f"[pe-scaling] {name:5s} ccdp 64/8 cost ratio "
                  f"{ratio:.3f}")
    _record("pe_scaling", {
        **curves,
        "pe64_over_pe8_cost_ratio": worst_ratio,
    })
    assert worst_ratio <= PE64_OVER_PE8_RATIO_GATE, (
        f"64-PE cost is {worst_ratio:.2f}x the 8-PE cost, above the "
        f"{PE64_OVER_PE8_RATIO_GATE}x gate — the plane is no longer "
        "flattening the PE axis")


def test_plane_activates_at_64_pes(built_programs):
    """The 64-PE quick cell: a warm MXM CCDP run must be served
    entirely through plane replays (plane_coverage 1.0) — the scaling
    numbers above are meaningless if the plane silently disengages."""
    params = t3d(64, cache_bytes=2048)
    program = _transformed(built_programs, "mxm", WORKLOAD_SIZES["mxm"], 64)
    _, result = _best_of(program, params, reps=1)
    assert result.plane_chunks > 0, "plane replay never engaged at 64 PEs"
    assert result.plane_coverage >= 0.999, (
        f"plane coverage {result.plane_coverage:.4f} below 1.0 at 64 PEs")
    assert result.batched_coverage >= 0.999
