"""Reproduces **Figure 1** of the paper — the prefetch target analysis
algorithm — by running it (with its prerequisite stale reference
analysis) on all four applications and reporting its observable outputs:
the prefetch set size and the group-spatial / bypass demotions.

The benchmark times the full analysis pipeline (epoch graph + stale
reference analysis + Fig. 1), i.e. compile-time cost.
"""

import pytest

from repro.analysis.epochs import build_epoch_graph
from repro.analysis.stale import analyse_stale_references
from repro.coherence.config import CCDPConfig
from repro.coherence.inline import inline_parallel_calls
from repro.coherence.target_analysis import prefetch_target_analysis
from repro.machine.params import t3d
from repro.workloads import workload

SIZES = {"mxm": {"n": 32}, "vpenta": {"n": 33},
         "tomcatv": {"n": 33, "steps": 3}, "swim": {"n": 33, "steps": 3}}


@pytest.mark.parametrize("name", list(SIZES))
def test_fig1_target_analysis(name, benchmark, capsys):
    spec = workload(name)
    config = CCDPConfig(machine=t3d(8, cache_bytes=2048))

    def run_pipeline():
        program = spec.build(**SIZES[name]).clone()
        inline_parallel_calls(program)
        graph = build_epoch_graph(program)
        stale = analyse_stale_references(program, graph)
        return prefetch_target_analysis(program, stale, config), stale

    (result, stale) = benchmark(run_pipeline)

    # Fig. 1 invariants: a partition of P, leading refs only.
    covered = ({t.uid for t in result.targets}
               | {i.uid for i in result.demoted_group}
               | {i.uid for i in result.demoted_bypass}
               | {i.uid for i in result.stale_calls})
    assert covered == set(stale.stale_reads)
    for target in result.targets:
        assert target.info.uid not in {i.uid for i in result.demoted_group}

    with capsys.disabled():
        print(f"\n[fig1] {name:8s} stale={len(stale.stale_reads):3d} "
              f"targets={len(result.targets):3d} "
              f"group-demoted={len(result.demoted_group):3d} "
              f"bypass-demoted={len(result.demoted_bypass):3d} "
              f"call-summaries={len(result.stale_calls)}")
