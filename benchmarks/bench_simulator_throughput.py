"""Simulator engine throughput: memory references simulated per second.

Not a paper experiment — an engineering benchmark that tracks the
simulator's own performance so regressions (and wins, like the batched
execution backend) are visible.  Every run appends its numbers to
``BENCH_throughput.json`` at the repo root, keyed by benchmark case, so
the perf trajectory is machine-readable across PRs.
"""

import json
import os
from pathlib import Path

import pytest

from repro.machine.params import t3d
from repro.runtime import Backend, Version, run_program

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: Per-workload benchmark sizes: MXM at the headline acceptance size,
#: the rest scaled to keep a full matrix run affordable.
WORKLOAD_SIZES = {
    "mxm": {"n": 24},
    "vpenta": {"n": 16},
    "tomcatv": {"n": 16, "steps": 2},
    "swim": {"n": 16, "steps": 2},
}

#: Regression floor for the batched backend's bulk-service coverage on
#: the flagship case (MXM CCDP).  Measured 1.000 — every reference is
#: served through a batched plan; a drop below the floor means chunks
#: started falling back to the per-reference path.
MXM_CCDP_COVERAGE_FLOOR = 0.95

#: Per-cell floors for the full (workload x version) matrix — every cell,
#: not just the flagship.  Measured headroom: coverage 0.97-1.00 and
#: speedups 5.5x-245x with the compiled-plan cache warm, so these floors
#: trip on real regressions, not timer noise.
CELL_COVERAGE_FLOOR = 0.95
CELL_SPEEDUP_FLOOR = 5.0

#: Cells whose measured headroom is far above the base floor carry
#: tighter per-cell gates: tomcatv/swim CCDP measure 80-150x warm (the
#: plane replays whole epochs), so 12x still leaves a wide noise margin
#: while catching any real collapse of the epoch-replay path.
CELL_SPEEDUP_FLOOR_OVERRIDES = {
    "tomcatv_ccdp": 12.0,
    "swim_ccdp": 12.0,
}


def _quick() -> bool:
    """CI perf-smoke mode: the throughput matrix narrows to the flagship
    MXM CCDP cases; the per-cell floors gate still covers every cell."""
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def _transformed(built_programs, name: str, sizes: dict, n_pes: int = 4):
    from repro.coherence import CCDPConfig, ccdp_transform
    program, _ = ccdp_transform(
        built_programs(name, **sizes),
        CCDPConfig(machine=t3d(n_pes, cache_bytes=2048)))
    return program


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark result into the repo-root JSON ledger."""
    results = {}
    if RESULTS_PATH.exists():
        try:
            results = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            results = {}
    results[key] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                            + "\n")


@pytest.mark.parametrize("backend", [Backend.REFERENCE, Backend.BATCHED])
@pytest.mark.parametrize("version", [Version.SEQ, Version.BASE, Version.CCDP])
@pytest.mark.parametrize("name", sorted(WORKLOAD_SIZES))
def test_interpreter_throughput(name, version, backend, built_programs,
                                benchmark, capsys):
    if _quick() and (name != "mxm" or version != Version.CCDP):
        pytest.skip("REPRO_BENCH_QUICK: mxm ccdp only")
    sizes = WORKLOAD_SIZES[name]
    program = built_programs(name, **sizes)
    if version == Version.CCDP:
        program = _transformed(built_programs, name, sizes)
    params = t3d(1 if version == Version.SEQ else 4, cache_bytes=2048)

    result = benchmark(
        lambda: run_program(program, params, version, backend=backend))

    total = result.machine.stats.total()
    refs = total.reads + total.writes
    seconds = benchmark.stats.stats.min
    _record(f"{name}_n{sizes['n']}_{version}_{backend}", {
        "workload": name, **sizes, "version": version, "backend": backend,
        "refs_per_run": refs,
        "seconds_per_run": seconds,
        "refs_per_sec": refs / seconds,
        "batched_coverage": result.batched_coverage,
        "batch_fallbacks": result.batch_fallbacks,
    })
    with capsys.disabled():
        print(f"\n[throughput] {name:8s} {version:5s} {backend:9s} "
              f"{refs / seconds:,.0f} refs/sec ({refs} refs per run, "
              f"coverage {result.batched_coverage:.3f})")
    assert refs > 0
    if name == "mxm" and version == Version.CCDP and backend == Backend.BATCHED:
        assert result.batched_coverage >= MXM_CCDP_COVERAGE_FLOOR, (
            f"MXM CCDP batched coverage {result.batched_coverage:.3f} fell "
            f"below the recorded floor {MXM_CCDP_COVERAGE_FLOOR}")


def test_batched_backend_speedup(built_programs, capsys):
    """The headline acceptance number: batched vs reference refs/sec on
    MXM CCDP n=24.  Asserted ≥ 5x and recorded in the JSON ledger."""
    import time

    params = t3d(4, cache_bytes=2048)
    program = _transformed(built_programs, "mxm", {"n": 24})

    def best_of(backend, reps=3):
        best, result = float("inf"), None
        for _ in range(reps):
            start = time.perf_counter()
            result = run_program(program, params, Version.CCDP,
                                 backend=backend)
            best = min(best, time.perf_counter() - start)
        return best, result

    t_ref, res = best_of(Backend.REFERENCE)
    t_bat, res_bat = best_of(Backend.BATCHED)
    total = res.machine.stats.total()
    refs = total.reads + total.writes
    speedup = t_ref / t_bat
    _record("mxm_n24_ccdp_speedup", {
        "workload": "mxm", "n": 24, "version": Version.CCDP,
        "reference_refs_per_sec": refs / t_ref,
        "batched_refs_per_sec": refs / t_bat,
        "speedup": speedup,
        "batched_coverage": res_bat.batched_coverage,
    })
    with capsys.disabled():
        print(f"\n[speedup] mxm ccdp n=24: reference {refs / t_ref:,.0f} "
              f"refs/sec, batched {refs / t_bat:,.0f} refs/sec "
              f"({speedup:.2f}x)")
    assert speedup >= 5.0, f"batched speedup {speedup:.2f}x below 5x target"


def test_per_cell_floors(built_programs, capsys):
    """CI gate for the full-coverage fast path: EVERY (workload, version)
    cell must keep batched coverage >= 0.95, run >= 5x faster than the
    reference backend, and take zero run-time fallbacks on fault-free
    runs.  Runs under REPRO_BENCH_QUICK too — this is the per-cell
    regression floor, not a benchmark.  Timing is best-of-k with the
    compiled-plan cache warm after the first rep, which is what makes a
    5x floor safe against scheduler noise."""
    import time

    reps = 5  # quick mode too: best-of-5 keeps the 5x floor noise-proof
    failures = []
    cells = {}
    for name in sorted(WORKLOAD_SIZES):
        sizes = WORKLOAD_SIZES[name]
        for version in (Version.SEQ, Version.BASE, Version.CCDP):
            program = built_programs(name, **sizes)
            if version == Version.CCDP:
                program = _transformed(built_programs, name, sizes)
            params = t3d(1 if version == Version.SEQ else 4,
                         cache_bytes=2048)

            def best_of(backend):
                best, result = float("inf"), None
                for _ in range(reps):
                    start = time.perf_counter()
                    result = run_program(program, params, version,
                                         backend=backend)
                    best = min(best, time.perf_counter() - start)
                return best, result

            t_ref, _ = best_of(Backend.REFERENCE)
            t_bat, res = best_of(Backend.BATCHED)
            speedup = t_ref / t_bat
            cell = f"{name}_{version}"
            cells[cell] = {
                "speedup": speedup,
                "batched_coverage": res.batched_coverage,
                "batch_fallbacks": res.batch_fallbacks,
                "fallback_reasons": dict(res.fallback_reasons),
            }
            with capsys.disabled():
                print(f"\n[floors] {name:8s} {version:5s} {speedup:7.2f}x "
                      f"coverage {res.batched_coverage:.4f} "
                      f"fallbacks {res.batch_fallbacks}")
            if res.batched_coverage < CELL_COVERAGE_FLOOR:
                failures.append(
                    f"{cell}: coverage {res.batched_coverage:.4f} "
                    f"< {CELL_COVERAGE_FLOOR}")
            floor = CELL_SPEEDUP_FLOOR_OVERRIDES.get(
                cell, CELL_SPEEDUP_FLOOR)
            if speedup < floor:
                failures.append(
                    f"{cell}: speedup {speedup:.2f}x < {floor}x")
            if res.batch_fallbacks != 0:
                failures.append(
                    f"{cell}: {res.batch_fallbacks} run-time fallbacks "
                    f"({dict(res.fallback_reasons)}) on a fault-free run")
    _record("per_cell_floors", cells)
    assert not failures, "per-cell floors violated:\n" + "\n".join(failures)


#: Budget for counts-only tracing tax on a *warm* per-PE batched run.
#: The historical 3% budget was calibrated against ~50ms cold runs,
#: where the tracer's fixed per-epoch timeline snapshots and per-chunk
#: count folds were negligible; the compiled-plan cache cut the run to
#: ~2.5ms without changing that absolute tracer work (~0.15-0.3ms:
#: measured 0-12% across runs), so the budget now reflects the warm
#: regime — it trips when the count-fold path gains real per-chunk
#: work, not on machine-state variance.
TRACING_OVERHEAD_BUDGET = 0.20


def test_tracing_overhead(built_programs, capsys):
    """Tracing must not tax untraced runs: the tracer hooks are a single
    ``is None`` test on the hot paths, and the batched backend's
    counts-only mode folds whole chunks into per-kind counters without
    materialising tuples.  Gate: a counts-only ``Tracer(sample=0)`` run
    stays within budget of the tracer-disabled run on the flagship MXM
    CCDP case, on the per-PE batched path (``plane_epochs=False`` — the
    path where chunk-level count folding lives; plane replay folds one
    precomputed delta per epoch and cannot regress independently)."""
    import time

    from repro.obs import Tracer

    params = t3d(4, cache_bytes=2048)
    program = _transformed(built_programs, "mxm", {"n": 24})

    def once(tracer):
        start = time.perf_counter()
        run_program(program, params, Version.CCDP, backend=Backend.BATCHED,
                    plane_epochs=False, tracer=tracer)
        return time.perf_counter() - start

    once(None)
    once(Tracer(sample=0))  # warm both arms before timing
    # Scheduler/frequency noise on a few-ms run swamps a percent-level
    # signal, and it only ever *adds* time — so interleave many reps of
    # both arms (each sees the same machine conditions) and pool a
    # single global best per arm.  Both minima converge to each arm's
    # clean-machine floor, which makes their ratio — including the
    # signed raw value the ledger keeps — stable across processes,
    # where per-block ratios used to swing with whichever block drew
    # the quiet window.
    t_off = t_on = float("inf")
    for _ in range(30):
        t_off = min(t_off, once(None))
        t_on = min(t_on, once(Tracer(sample=0)))
    overhead = t_on / t_off - 1.0
    # Pooled minima can still cross by a hair (pure timer noise); the
    # ledger keeps the floored value — real overhead is never negative
    # — and the raw signed reading for diagnosing noise.
    _record("mxm_n24_ccdp_tracing_overhead", {
        "workload": "mxm", "n": 24, "version": Version.CCDP,
        "backend_path": "per_pe_batched",
        "seconds_untraced": t_off,
        "seconds_counts_only": t_on,
        "overhead_fraction": max(0.0, overhead),
        "overhead_fraction_raw": overhead,
    })
    with capsys.disabled():
        print(f"\n[tracing] mxm ccdp n=24 batched: untraced {t_off:.4f}s, "
              f"counts-only {t_on:.4f}s ({overhead * 100:+.1f}%)")
    assert overhead < TRACING_OVERHEAD_BUDGET, (
        f"counts-only tracing overhead {overhead * 100:.1f}% exceeds the "
        f"{TRACING_OVERHEAD_BUDGET:.0%} budget on MXM CCDP batched")


def test_transform_throughput(benchmark):
    """Compile-time cost of the full CCDP pipeline on SWIM (the largest
    program, with interprocedural inlining)."""
    from repro.coherence import CCDPConfig, ccdp_transform
    from repro.workloads import workload

    program = workload("swim").build(n=33, steps=3)
    config = CCDPConfig(machine=t3d(8, cache_bytes=2048))
    transformed, report = benchmark(lambda: ccdp_transform(program, config))
    _record("swim_n33_ccdp_transform", {
        "workload": "swim", "n": 33,
        "seconds_per_transform": benchmark.stats.stats.min,
    })
    assert report.targets.targets
