"""Simulator engine throughput: memory references simulated per second.

Not a paper experiment — an engineering benchmark that tracks the
reference interpreter's own performance so regressions are visible.
"""

import pytest

from repro.machine.params import t3d
from repro.runtime import Version, run_program
from repro.workloads import workload


@pytest.mark.parametrize("version", [Version.SEQ, Version.BASE, Version.CCDP])
def test_interpreter_throughput(version, benchmark, capsys):
    program = workload("mxm").build(n=24)
    if version == Version.CCDP:
        from repro.coherence import CCDPConfig, ccdp_transform
        program, _ = ccdp_transform(
            program, CCDPConfig(machine=t3d(4, cache_bytes=2048)))
    params = t3d(1 if version == Version.SEQ else 4, cache_bytes=2048)

    result = benchmark(lambda: run_program(program, params, version))

    total = result.machine.stats.total()
    refs = total.reads + total.writes
    with capsys.disabled():
        seconds = benchmark.stats.stats.mean
        print(f"\n[throughput] {version:5s} {refs / seconds:,.0f} refs/sec "
              f"({refs} refs per run)")
    assert refs > 0


def test_transform_throughput(benchmark):
    """Compile-time cost of the full CCDP pipeline on SWIM (the largest
    program, with interprocedural inlining)."""
    from repro.coherence import CCDPConfig, ccdp_transform

    program = workload("swim").build(n=33, steps=3)
    config = CCDPConfig(machine=t3d(8, cache_bytes=2048))
    transformed, report = benchmark(lambda: ccdp_transform(program, config))
    assert report.targets.targets
