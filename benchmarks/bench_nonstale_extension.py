"""The paper's §6 extension: prefetching non-stale references too.

    "Intuitively, we should be able to obtain further performance
    improvement by prefetching the non-stale references as well."

This benchmark measures that intuition on the simulator: CCDP vs
CCDP+non-stale-prefetching, per application.
"""

import pytest

from repro.coherence import CCDPConfig, ccdp_transform
from repro.machine.params import t3d
from repro.runtime import Version, run_program
from repro.workloads import workload

SIZES = {"mxm": {"n": 32}, "vpenta": {"n": 33},
         "tomcatv": {"n": 33, "steps": 2}, "swim": {"n": 33, "steps": 2}}

_results = {}


def run_variant(name, nonstale, n_pes=8):
    key = (name, nonstale)
    if key in _results:
        return _results[key]
    program = workload(name).build(**SIZES[name])
    params = t3d(n_pes, cache_bytes=2048)
    config = CCDPConfig(machine=params).with_(prefetch_nonstale=nonstale)
    transformed, report = ccdp_transform(program, config)
    result = run_program(transformed, params, Version.CCDP, on_stale="raise")
    _results[key] = (result, report)
    return _results[key]


@pytest.mark.parametrize("name", list(SIZES))
def test_nonstale_extension(name, benchmark, capsys):
    result, report = benchmark.pedantic(
        lambda: run_variant(name, True), rounds=1, iterations=1)
    plain, _ = run_variant(name, False)

    assert result.stats.stale_reads == 0  # extension must stay coherent
    assert report.nonstale_targets >= 0
    delta = 100.0 * (plain.elapsed - result.elapsed) / plain.elapsed

    with capsys.disabled():
        print(f"\n[nonstale] {name:8s} extra_targets={report.nonstale_targets:3d} "
              f"ccdp={plain.elapsed:,.0f} +ext={result.elapsed:,.0f} "
              f"delta={delta:+.1f}%")

    # The extension may help or cost a little overhead, but must not
    # cripple the scheme.
    assert result.elapsed < plain.elapsed * 1.25
