"""Reproduces **Figure 2** of the paper — the prefetch scheduling
algorithm — by running the full CCDP transformation on all four
applications and reporting the technique mix (vector prefetch
generation / software pipelining / moving back prefetches / bypass
drops) and the Fig. 2 case distribution per application.

The benchmark times the whole compiler (all passes + code generation).
"""

import pytest

from repro.coherence import CCDPConfig, ccdp_transform
from repro.machine.params import t3d
from repro.workloads import workload

SIZES = {"mxm": {"n": 32}, "vpenta": {"n": 33},
         "tomcatv": {"n": 33, "steps": 3}, "swim": {"n": 33, "steps": 3}}

#: The techniques the paper's discussion leads us to expect per app.
EXPECTED = {
    "mxm": {"vpg"},                 # vector prefetch of the A columns
    "vpenta": {"vpg"},              # local column vectors in the solver
    "tomcatv": {"vpg"},             # per-PE chunk vectors in loops 100/120
    "swim": {"vpg"},                # stencil vectors in CALC1..3
}


@pytest.mark.parametrize("name", list(SIZES))
def test_fig2_scheduling(name, benchmark, capsys):
    spec = workload(name)
    program = spec.build(**SIZES[name])
    config = CCDPConfig(machine=t3d(8, cache_bytes=2048))

    transformed, report = benchmark(lambda: ccdp_transform(program, config))

    counts = report.schedule.counts()
    placed = counts["vpg"] + counts["sp"] + counts["mbp_moved"] + counts["bypass"]
    assert placed == len(report.targets.targets), \
        "every target must be scheduled or dropped"
    used = {k for k in ("vpg", "sp", "mbp_moved") if counts[k]}
    assert EXPECTED[name] <= (used | {"vpg"} if counts["vpg"] else used), \
        f"{name}: expected {EXPECTED[name]}, used {used}"

    with capsys.disabled():
        cases = report.schedule.cases()
        print(f"\n[fig2] {name:8s} {counts}  cases={cases}")
