#!/usr/bin/env python
"""The paper's MXM case study, end to end.

Reproduces the §5 methodology for matrix multiply: build the
parallelised kernel, derive the BASE and CCDP versions, sweep the PE
counts, and print the Table 1 / Table 2 rows together with the
machine-level statistics that explain *why* CCDP wins — BASE pays the
remote latency for the columns of A on every outer iteration, while
CCDP stages them into each PE's cache with vector prefetches.

Run:  python examples/mxm_case_study.py [n] [pe,pe,...]
"""

import sys

from repro.harness import ExperimentRunner, format_table1, format_table2
from repro.runtime import Version
from repro.workloads import workload


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    pes = ([int(p) for p in sys.argv[2].split(",")]
           if len(sys.argv) > 2 else [1, 2, 4, 8, 16])

    runner = ExperimentRunner(workload("mxm"), {"n": n})
    print(f"MXM case study: {n}x{n} matrices, PE counts {pes}")
    print()

    # The compiler's view first.
    _, report = runner.ccdp_program(max(pes))
    print("compiler report")
    print("---------------")
    print(report.summary())
    for entry in report.schedule.entries:
        print(f"  {entry.case}: {entry.lsc.describe()} -> "
              f"{entry.techniques_used()}")
    print()

    sweep = runner.sweep(pes)
    assert sweep.all_correct(), "a run diverged from the NumPy oracle!"

    print(format_table1([sweep]))
    print()
    print(format_table2([sweep]))
    print()

    # Why: per-version machine statistics at the largest PE count.
    top = max(pes)
    base = sweep.record(Version.BASE, top)
    ccdp = sweep.record(Version.CCDP, top)
    print(f"machine statistics at {top} PEs")
    print("-------------------------------")
    rows = [
        ("uncached remote reads", "uncached_remote_reads"),
        ("uncached local reads", "uncached_local_reads"),
        ("cache hits", "cache_hits"),
        ("cache misses", "cache_misses"),
        ("remote line fills", "remote_fills"),
        ("vector prefetches", "vector_prefetches"),
        ("vector words moved", "vector_words"),
        ("stale reads", "stale_reads"),
    ]
    print(f"{'':28s}{'BASE':>12s}{'CCDP':>12s}")
    for label, key in rows:
        print(f"  {label:26s}{base.stats.get(key, 0):>12,.0f}"
              f"{ccdp.stats.get(key, 0):>12,.0f}")
    print()
    print(f"improvement at {top} PEs: {sweep.improvement(top):.1f}% "
          f"(paper range: 64.5%-89.8% on the real T3D)")


if __name__ == "__main__":
    main()
