#!/usr/bin/env python
"""Bring your own program: a 2-D heat solver written in the text DSL.

The CCDP compiler is not restricted to the paper's four kernels — this
example writes a brand-new application as plain text (the CRAFT-style
DSL), parses it, and takes it through the same machinery: naive caching
breaks it, CCDP makes cached execution coherent.

Run:  python examples/heat_dsl.py
"""

import numpy as np

from repro.coherence import CCDPConfig, ccdp_transform
from repro.ir import format_program, parse_program
from repro.machine import t3d
from repro.runtime import Version, run_program

N = 20
STEPS = 3

SOURCE = f"""
program heat
  shared real t(20, 20) dist(block, axis=-1)
  shared real tn(20, 20) dist(block, axis=-1)

  procedure main
    doall j = 1, 20 align(t) label(init)
      do i = 1, 20
        t(i, j) = 0.01 * i * j + 0.05 * j * j
        tn(i, j) = 0.0
      end do
    end doall
    do step = 1, {STEPS}
      ! heat the west edge a little every step (serial boundary epoch)
      do ib = 1, 20
        t(ib, 1) = t(ib, 1) + 0.5
      end do
      doall j = 2, 19 align(t) label(diffuse)
        do i = 2, 19
          tn(i, j) = t(i, j) + 0.1 * (t(i - 1, j) + t(i + 1, j)
                     + t(i, j - 1) + t(i, j + 1) - 4.0 * t(i, j))
        end do
      end doall
      doall j = 2, 19 align(t) label(commit)
        do i = 2, 19
          t(i, j) = tn(i, j)
        end do
      end doall
    end do
  end procedure
end program
"""


def oracle():
    i = np.arange(1, N + 1, dtype=float)[:, None]
    j = np.arange(1, N + 1, dtype=float)[None, :]
    t = np.broadcast_to(0.01 * i * j + 0.05 * j * j, (N, N)).copy()
    for _ in range(STEPS):
        t[:, 0] += 0.5
        tn = (t[1:-1, 1:-1]
              + 0.1 * (t[0:-2, 1:-1] + t[2:, 1:-1]
                       + t[1:-1, 0:-2] + t[1:-1, 2:] - 4.0 * t[1:-1, 1:-1]))
        t[1:-1, 1:-1] = tn
    return t


def main():
    program = parse_program(SOURCE)
    params = t3d(4, cache_bytes=2048)
    expected = oracle()

    naive = run_program(program, params, Version.NAIVE)
    print(f"naive caching: {naive.stats.stale_reads} stale reads, "
          f"correct={np.allclose(naive.value_of('t'), expected)}")

    transformed, report = ccdp_transform(program, CCDPConfig(machine=params))
    print()
    print(report.summary())
    print()

    ccdp = run_program(transformed, params, Version.CCDP, on_stale="raise")
    ok = np.allclose(ccdp.value_of("t"), expected)
    print(f"CCDP: {ccdp.stats.stale_reads} stale reads, correct={ok}")
    assert ok

    base = run_program(program, params, Version.BASE)
    print(f"BASE (uncached): {base.elapsed:,.0f} cycles")
    print(f"CCDP (cached)  : {ccdp.elapsed:,.0f} cycles "
          f"({100 * (base.elapsed - ccdp.elapsed) / base.elapsed:.1f}% better)")

    print()
    print("transformed diffuse loop:")
    text = format_program(transformed)
    printing = False
    for line in text.splitlines():
        if "label(diffuse)" in line:
            printing = True
        if printing:
            print("  " + line)
            if "end doall" in line:
                break


if __name__ == "__main__":
    main()
