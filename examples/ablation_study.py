#!/usr/bin/env python
"""Ablation study: which parts of the CCDP scheduler earn their keep?

Runs MXM and TOMCATV with parts of the Fig. 2 scheduler switched off and
with varied hardware parameters, printing a compact table of the
improvement over BASE that survives each configuration. The same
machinery backs `benchmarks/bench_ablation_*.py`.

Run:  python examples/ablation_study.py
"""

from repro.coherence import CCDPConfig, ccdp_transform
from repro.machine import t3d
from repro.runtime import Version, run_program
from repro.workloads import workload

SIZES = {"mxm": {"n": 32}, "tomcatv": {"n": 33, "steps": 2}}

SCHEDULER_VARIANTS = [
    ("full scheme", {}),
    ("no vector prefetch", {"enable_vpg": False}),
    ("no VPG, no pipelining", {"enable_vpg": False, "enable_sp": False}),
    ("bypass reads only", {"enable_vpg": False, "enable_sp": False,
                           "enable_mbp": False}),
    ("+ non-stale prefetch", {"prefetch_nonstale": True}),
]

HARDWARE_VARIANTS = [
    ("queue = 2 slots", {"prefetch_queue_slots": 2}),
    ("remote 2x slower", {"remote_base": 200}),
    ("cache = 1 KB", {"cache_bytes": 1024}),
]


def improvement(name, ccdp_over=None, hw_over=None, n_pes=8):
    program = workload(name).build(**SIZES[name])
    params = t3d(n_pes, cache_bytes=2048).with_(**(hw_over or {}))
    base = run_program(program, params, Version.BASE)
    config = CCDPConfig(machine=params).with_(**(ccdp_over or {}))
    transformed, report = ccdp_transform(program, config)
    ccdp = run_program(transformed, params, Version.CCDP, on_stale="raise")
    assert ccdp.stats.stale_reads == 0
    return (100.0 * (base.elapsed - ccdp.elapsed) / base.elapsed,
            report.schedule.counts())


def main():
    print("CCDP improvement over BASE at 8 PEs, by configuration")
    print()
    header = f"{'configuration':26s}" + "".join(f"{n:>12s}" for n in SIZES)
    print(header)
    print("-" * len(header))

    print("scheduler ablations:")
    for label, over in SCHEDULER_VARIANTS:
        row = [f"  {label:24s}"]
        for name in SIZES:
            value, _ = improvement(name, ccdp_over=over)
            row.append(f"{value:11.1f}%")
        print("".join(row))

    print("hardware sensitivity (full scheme):")
    for label, over in HARDWARE_VARIANTS:
        row = [f"  {label:24s}"]
        for name in SIZES:
            value, _ = improvement(name, hw_over=over)
            row.append(f"{value:11.1f}%")
        print("".join(row))

    print()
    print("technique mix of the full scheme:")
    for name in SIZES:
        _, counts = improvement(name)
        print(f"  {name:8s} {counts}")


if __name__ == "__main__":
    main()
