#!/usr/bin/env python
"""Quickstart: the CCDP scheme in five minutes.

Builds a tiny parallel stencil program, shows that caching shared data
naively on the (non-coherent) T3D-style machine computes *wrong*
numbers, then applies the CCDP compiler and runs the same program cached,
coherent, and faster than the safe uncached baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.ir as ir
from repro.coherence import CCDPConfig, ccdp_transform
from repro.machine import t3d
from repro.runtime import Version, run_program


def build_program(n=24, steps=4):
    """A Jacobi-style sweep: every time step, each column is replaced by
    the average of its neighbours — written as an epoch-structured
    parallel program (DOALL over columns, BLOCK-distributed)."""
    b = ir.ProgramBuilder("jacobi")
    b.shared("x", (n, n))
    b.shared("tmp", (n, n))
    with b.proc("main"):
        with b.doall("j", 1, n, label="init", align="x"):
            with b.do("i", 1, n):
                b.assign(b.ref("x", "i", "j"),
                         ir.E("i") * 0.1 + ir.E("j") * ir.E("j") * 0.02)
                b.assign(b.ref("tmp", "i", "j"), 0.0)
        with b.do("t", 1, steps):
            with b.doall("j", 2, n - 1, label="sweep", align="x"):
                with b.do("i", 1, n):
                    b.assign(b.ref("tmp", "i", "j"),
                             (b.ref("x", "i", ir.E("j") - 1)
                              + b.ref("x", "i", ir.E("j") + 1)) * 0.5)
            with b.doall("j", 2, n - 1, label="copy", align="x"):
                with b.do("i", 1, n):
                    b.assign(b.ref("x", "i", "j"), b.ref("tmp", "i", "j"))
    return b.finish()


def oracle(n=24, steps=4):
    i = np.arange(1, n + 1)[:, None].astype(float)
    j = np.arange(1, n + 1)[None, :].astype(float)
    x = np.broadcast_to(i * 0.1 + j * j * 0.02, (n, n)).copy()
    for _ in range(steps):
        tmp = (x[:, 0:n - 2] + x[:, 2:n]) * 0.5
        x[:, 1:n - 1] = tmp
    return x


def main():
    n_pes = 4
    params = t3d(n_pes, cache_bytes=2048)
    program = build_program()
    expected = oracle()

    print("=" * 72)
    print("1. The problem: a non-coherent machine with naively cached data")
    print("=" * 72)
    naive = run_program(program, params, Version.NAIVE)
    wrong = not np.allclose(naive.value_of("x"), expected)
    print(f"   stale reads observed : {naive.stats.stale_reads}")
    print(f"   result is wrong      : {wrong}")
    assert wrong and naive.stats.stale_reads > 0

    print()
    print("=" * 72)
    print("2. The safe baseline: CRAFT-style, shared data never cached")
    print("=" * 72)
    base = run_program(program, params, Version.BASE)
    print(f"   result correct       : {np.allclose(base.value_of('x'), expected)}")
    print(f"   execution time       : {base.elapsed:,.0f} cycles")

    print()
    print("=" * 72)
    print("3. The CCDP scheme: compile for coherence, cache everything")
    print("=" * 72)
    transformed, report = ccdp_transform(program, CCDPConfig(machine=params))
    print("   " + report.summary().replace("\n", "\n   "))
    ccdp = run_program(transformed, params, Version.CCDP, on_stale="raise")
    print(f"   stale reads          : {ccdp.stats.stale_reads}  (guaranteed 0)")
    print(f"   result correct       : {np.allclose(ccdp.value_of('x'), expected)}")
    print(f"   execution time       : {ccdp.elapsed:,.0f} cycles")
    improvement = 100 * (base.elapsed - ccdp.elapsed) / base.elapsed
    print(f"   improvement over BASE: {improvement:.1f}%")
    assert np.allclose(ccdp.value_of("x"), expected)

    print()
    print("=" * 72)
    print("4. What the compiler did to the sweep loop")
    print("=" * 72)
    text = ir.format_program(transformed)
    in_sweep = False
    for line in text.splitlines():
        if "label(sweep)" in line:
            in_sweep = True
        if in_sweep:
            print("   " + line)
        if in_sweep and "end doall" in line:
            break


if __name__ == "__main__":
    main()
