#!/usr/bin/env python
"""A guided tour of the CCDP compiler on TOMCATV.

Walks every stage of the pipeline and prints what each one sees:

1. the epoch flow graph (with the time-loop back edges),
2. stale reference analysis (who may read out-of-date cached data, and
   why — the writer-class/reader-class reasoning),
3. prefetch target analysis (Fig. 1: group-spatial demotions),
4. prefetch scheduling (Fig. 2: which technique each LSC got),
5. the transformed loops, before and after.

Run:  python examples/compiler_tour.py
"""

from repro.analysis import analyse_stale_references, build_epoch_graph
from repro.coherence import CCDPConfig, ccdp_transform
from repro.coherence.inline import inline_parallel_calls
from repro.coherence.target_analysis import prefetch_target_analysis
from repro.ir.printer import format_stmt
from repro.machine import t3d
from repro.workloads import workload


def header(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main():
    n, steps, n_pes = 17, 2, 4
    program = workload("tomcatv").build(n=n, steps=steps).clone()
    config = CCDPConfig(machine=t3d(n_pes, cache_bytes=2048))
    inline_parallel_calls(program)

    header("1. Epoch flow graph")
    graph = build_epoch_graph(program)
    print(graph.describe())
    print(f"back edges (time loop): {graph.back_edges[:6]} ...")

    header("2. Stale reference analysis")
    stale = analyse_stale_references(program, graph)
    print(stale.summary())
    print()
    by_epoch = {}
    for info in stale.stale_reads.values():
        by_epoch.setdefault(info.epoch_id, []).append(info)
    for epoch_id in sorted(by_epoch)[:4]:
        epoch = graph.epoch(epoch_id)
        print(f"  {epoch.describe()}:")
        for info in by_epoch[epoch_id][:4]:
            print(f"    {info.ref!r:28} class={info.alignment.klass:10} "
                  f"footprint={info.section}")

    header("3. Prefetch target analysis (Fig. 1)")
    targets = prefetch_target_analysis(program, stale, config)
    print(targets.summary())
    for lsc, lsc_targets in targets.targets_by_lsc()[:5]:
        print(f"  {lsc.describe():24}: "
              + ", ".join(repr(t.info.ref) for t in lsc_targets))

    header("4. Prefetch scheduling (Fig. 2)")
    fresh_program = workload("tomcatv").build(n=n, steps=steps)
    transformed, report = ccdp_transform(fresh_program, config)
    for entry in report.schedule.entries:
        print(f"  {entry.case:26} {entry.lsc.describe():22} "
              f"{entry.techniques_used()}")

    header("5. The solver loop (loop 100), before and after")
    def find_loop(prog, label):
        from repro.ir.stmt import Loop
        for stmt in prog.walk():
            if isinstance(stmt, Loop) and stmt.label == label:
                return stmt
        raise KeyError(label)

    print("--- before ---")
    print(format_stmt(find_loop(fresh_program, "elim"), 1))
    print("--- after (note the per-PE chunk vector prefetches) ---")
    print(format_stmt(find_loop(transformed, "elim"), 1))


if __name__ == "__main__":
    main()
