"""Prefetch hardware: the line-prefetch queue and the vector (block)
transfer engine.

The T3D prefetch queue holds a small fixed number of outstanding
prefetches (16 words on the real machine; we model line-granularity
entries with a configurable slot count).  Issuing into a full queue
**drops** the prefetch — the paper's rule is that dropped prefetches
degrade to bypass-style fetches at the use point, which falls out
naturally here because the line was invalidated before issue.

Vector transfers model SHMEM-style block gets: a pipelined bulk copy
with a startup cost, completing at a deterministic time, after which the
covered lines install into the cache on first touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .params import MachineParams


@dataclass
class PrefetchEntry:
    """One outstanding line prefetch."""

    line_addr: int
    array: str
    arrival: float
    issued_at: float
    home_pe: int


class PrefetchQueue:
    """Bounded queue of outstanding line prefetches for one PE."""

    def __init__(self, params: MachineParams) -> None:
        self.capacity = params.prefetch_queue_slots
        self.entries: List[PrefetchEntry] = []
        self.dropped = 0
        self.issued = 0
        # Deepest the queue has been since the last reset_high_water()
        # (per-epoch queue-pressure metric in the tracing timeline).
        self.high_water = 0
        # Fault-injection hook: callable(capacity) -> effective capacity for
        # this issue attempt (queue squeeze).  None means no squeezing.
        self.squeeze = None

    def issue(self, entry: PrefetchEntry) -> bool:
        """Enqueue; returns False (dropped) when the queue is full or the
        line already has an outstanding entry."""
        if any(e.line_addr == entry.line_addr for e in self.entries):
            return True  # coalesce: an outstanding prefetch already covers it
        capacity = self.capacity if self.squeeze is None \
            else min(self.capacity, self.squeeze(self.capacity))
        if len(self.entries) >= capacity:
            self.dropped += 1
            return False
        self.entries.append(entry)
        self.issued += 1
        if len(self.entries) > self.high_water:
            self.high_water = len(self.entries)
        return True

    def reset_high_water(self) -> None:
        """Start a new high-water window (epoch boundary)."""
        self.high_water = len(self.entries)

    def match(self, line_addr: int) -> Optional[PrefetchEntry]:
        for entry in self.entries:
            if entry.line_addr == line_addr:
                return entry
        return None

    def extract(self, entry: PrefetchEntry) -> None:
        self.entries.remove(entry)

    def reclaim_arrived(self, now: float) -> None:
        """Free slots whose data arrived but was never extracted (the
        hardware retires them as the processor drains the queue)."""
        self.entries = [e for e in self.entries if e.arrival > now]

    @property
    def outstanding(self) -> int:
        return len(self.entries)

    # -- batched drain (batched execution backend) ----------------------------
    def lines(self) -> np.ndarray:
        """Outstanding line addresses in queue order."""
        return np.asarray([e.line_addr for e in self.entries], dtype=np.int64)

    def match_lines(self, line_addrs: np.ndarray) -> np.ndarray:
        """Vectorized membership test: for each query line, is there an
        outstanding entry covering it?  One ``np.isin`` instead of one
        linear :meth:`match` scan per reference."""
        queries = np.asarray(line_addrs, dtype=np.int64)
        if not self.entries:
            return np.zeros(queries.shape[0], dtype=bool)
        return np.isin(queries, self.lines())

    def snapshot(self) -> List[Tuple[int, float, float, int, str]]:
        """Queue state as plain tuples (line, arrival, issued_at, home, array)
        for consumption by the batched scan engine."""
        return [(e.line_addr, e.arrival, e.issued_at, e.home_pe, e.array)
                for e in self.entries]

    def replace_entries(self, entries: Iterable[PrefetchEntry]) -> None:
        """Install a rebuilt entry list (batched chunk commit).  Aggregate
        ``issued``/``dropped`` counters are adjusted separately by the
        caller, which tracked them during its scan."""
        self.entries = list(entries)

    def restore_snapshot(
            self, snap: Iterable[Tuple[int, float, float, int, str]]) -> None:
        """Rebuild the entry list from :meth:`snapshot` tuples — the
        inverse used by batched chunk commits and plane-epoch replays.
        Counters (``issued``/``dropped``/``high_water``) are the caller's
        responsibility, exactly as in :meth:`replace_entries`."""
        self.entries = [
            PrefetchEntry(line_addr=line, array=array, arrival=arrival,
                          issued_at=issued_at, home_pe=home)
            for (line, arrival, issued_at, home, array) in snap]


@dataclass
class VectorTransfer:
    """One in-flight block transfer: covers [line_lo, line_hi]."""

    array: str
    line_lo: int
    line_hi: int
    completion: float

    def covers(self, line_addr: int) -> bool:
        return self.line_lo <= line_addr <= self.line_hi


class VectorUnit:
    """Bounded set of outstanding vector transfers for one PE."""

    def __init__(self, params: MachineParams) -> None:
        self.capacity = params.max_outstanding_vectors
        self.transfers: List[VectorTransfer] = []
        self.issued = 0
        self.words_moved = 0

    def earliest_completion(self) -> float:
        return min(t.completion for t in self.transfers)

    def reap(self, now: float) -> None:
        self.transfers = [t for t in self.transfers if t.completion > now]

    def stall_until_slot(self, now: float) -> float:
        """Time at which a new transfer can be issued (>= now)."""
        self.reap(now)
        if len(self.transfers) < self.capacity:
            return now
        return self.earliest_completion()

    def issue(self, transfer: VectorTransfer) -> None:
        if len(self.transfers) >= self.capacity:
            raise RuntimeError("vector unit full; call stall_until_slot first")
        self.transfers.append(transfer)
        self.issued += 1
        self.words_moved += 0  # updated by caller with actual word count

    def match(self, line_addr: int) -> Optional[VectorTransfer]:
        best: Optional[VectorTransfer] = None
        for transfer in self.transfers:
            if transfer.covers(line_addr):
                if best is None or transfer.completion < best.completion:
                    best = transfer
        return best

    def snapshot(self) -> List[Tuple[str, int, int, float]]:
        """Transfer state as plain tuples (array, line_lo, line_hi,
        completion) for state signatures and plane-epoch replay."""
        return [(t.array, t.line_lo, t.line_hi, t.completion)
                for t in self.transfers]

    def restore_snapshot(
            self, snap: Iterable[Tuple[str, int, int, float]]) -> None:
        """Rebuild the transfer list from :meth:`snapshot` tuples.
        ``issued`` is adjusted separately by the caller (``words_moved``
        is only ever touched by the vector-prefetch call site)."""
        self.transfers = [
            VectorTransfer(array=array, line_lo=line_lo, line_hi=line_hi,
                           completion=completion)
            for (array, line_lo, line_hi, completion) in snap]


__all__ = ["PrefetchEntry", "PrefetchQueue", "VectorTransfer", "VectorUnit"]
