"""The shadow coherence oracle: an independent, value-level referee.

The machine already detects staleness *by version*: every word carries a
monotone version, caches remember the version they loaded, and a hit
whose cached version trails memory is a stale read.  That detector is
exact — but it is part of the machinery under test.  A bug in the
version bookkeeping (a missed bump in a bulk scatter, a line refill that
copies values but not versions) would silently disable it.

The oracle closes that loop with a second, independent model: a
**sequentially consistent shadow memory**, maintained purely from the
stream of committed writes (one plain array store per write, no
versions, no caches, no timing).  Because the simulated machine is
write-through with a single global interleaving of accesses, a coherent
machine must return exactly the shadow value for every read.  Every
committed read is therefore replayed against the shadow:

* observed == shadow — coherent, whatever the version checker said (a
  version-stale hit whose value happens to match is *silent* staleness:
  conservative detection, not a violation);
* observed != shadow **and** the version checker flagged the read stale
  — confirmed staleness, the intentional incoherence a NAIVE run
  demonstrates (CCDP/BASE/SEQ runs pair the oracle with
  ``on_stale="raise"``, so they can never reach this case silently);
* observed != shadow and **not** flagged — the machine returned a value
  a coherent machine could not return *and its own detector missed it*:
  :class:`StaleReadViolation`, raised on the spot.

This maps onto the paper's two correctness rules: rule 1
(invalidate-before-prefetch) and rule 2 (dropped prefetch ⇒ bypass
fetch) exist precisely so that no read can observe an unflagged
non-shadow value; the oracle is the machine-checkable form of that
claim, and the fault-injection layer (:mod:`repro.faults`) supplies the
adversarial schedules under which it must keep holding.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np


class StaleReadViolation(RuntimeError):
    """A committed read observed a value no coherent machine could
    return — and the version-based stale detector did not flag it."""


class CoherenceOracle:
    """Replays committed shared-memory reads against a shadow memory."""

    def __init__(self, memory) -> None:
        # Shadow = copies of the shared arrays at attach time (runs
        # attach at machine construction, when everything is zero).
        self.shadow: Dict[str, np.ndarray] = {
            name: values.copy() for name, values in memory.values.items()}
        self.checked_reads = 0
        self.checked_writes = 0
        self.confirmed_stale = 0   #: value-stale reads the checker flagged
        self.silent_stale = 0      #: version-stale reads with unchanged value
        self.violations = 0

    # -- event hooks --------------------------------------------------------
    def observe_write(self, name: str, flat: int, value: float) -> None:
        self.shadow[name][flat] = value
        self.checked_writes += 1

    def observe_fill(self, name: str, data: np.ndarray) -> None:
        """Bulk (re-)initialisation of a shared array (``set_array``)."""
        self.shadow[name][:] = data

    def observe_read(self, pe_id: int, name: str, flat: int,
                     observed: float, flagged_stale: bool) -> None:
        self.checked_reads += 1
        expected = float(self.shadow[name][flat])
        if observed == expected:
            if flagged_stale:
                self.silent_stale += 1
            return
        if flagged_stale:
            self.confirmed_stale += 1
            return
        self.violations += 1
        raise StaleReadViolation(
            f"PE{pe_id} observed {name}[flat={flat}] = {observed!r} but a "
            f"coherent machine must return {expected!r} — and the version "
            f"checker did not flag the read as stale")

    # -- reporting ----------------------------------------------------------
    def verify_final(self, memory, arrays: Iterable[str] = ()) -> None:
        """End-of-run check: main memory must equal the shadow exactly
        (write-through means memory is the committed state)."""
        names = list(arrays) or list(self.shadow)
        for name in names:
            if not np.array_equal(memory.values[name], self.shadow[name]):
                bad = int(np.flatnonzero(
                    memory.values[name] != self.shadow[name])[0])
                raise StaleReadViolation(
                    f"final memory diverges from the shadow: {name}[{bad}] "
                    f"= {memory.values[name][bad]!r}, shadow has "
                    f"{self.shadow[name][bad]!r}")

    def summary(self) -> str:
        return (f"oracle: {self.checked_reads} reads / "
                f"{self.checked_writes} writes checked, "
                f"{self.confirmed_stale} confirmed stale, "
                f"{self.silent_stale} silent stale, "
                f"{self.violations} violations")


__all__ = ["CoherenceOracle", "StaleReadViolation"]
