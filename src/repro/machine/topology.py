"""3-D torus interconnect topology.

The Cray T3D arranges PEs in a 3-D torus; remote access cost grows with
the hop distance between the requesting and the home PE.  We embed
``n_pes`` into a near-cubic box (powers of two split greedily across the
three axes, matching real T3D configurations: 32 PEs = 4x4x2 etc.) and
measure wrap-around Manhattan distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np


def torus_shape(n_pes: int) -> Tuple[int, int, int]:
    """A balanced (x, y, z) box with ``x*y*z == n_pes``.

    Works for any positive count (not just powers of two): factors are
    peeled off largest-axis-first to keep the box near-cubic.
    """
    if n_pes < 1:
        raise ValueError("n_pes must be >= 1")
    dims = [1, 1, 1]
    remaining = n_pes
    factor = 2
    factors = []
    while remaining > 1:
        while remaining % factor == 0:
            factors.append(factor)
            remaining //= factor
        factor += 1
    for f in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= f
    dims.sort(reverse=True)
    return (dims[0], dims[1], dims[2])


@dataclass(frozen=True)
class Torus:
    """Hop-distance oracle for a fixed PE count."""

    n_pes: int
    shape: Tuple[int, int, int]

    @staticmethod
    def for_pes(n_pes: int, shape: Tuple[int, int, int] = None) -> "Torus":
        return Torus(n_pes, shape or torus_shape(n_pes))

    def coords(self, pe: int) -> Tuple[int, int, int]:
        if not (0 <= pe < self.n_pes):
            raise ValueError(f"PE {pe} out of range 0..{self.n_pes - 1}")
        x_dim, y_dim, z_dim = self.shape
        return (pe % x_dim, (pe // x_dim) % y_dim, pe // (x_dim * y_dim))

    def hops(self, src: int, dst: int) -> int:
        """Wrap-around Manhattan distance between two PEs."""
        if src == dst:
            return 0
        a, b = self.coords(src), self.coords(dst)
        total = 0
        for ai, bi, dim in zip(a, b, self.shape):
            delta = abs(ai - bi)
            total += min(delta, dim - delta)
        return total

    def hop_matrix(self) -> np.ndarray:
        """(n_pes, n_pes) matrix of hop counts (vectorised-engine input)."""
        coords = np.array([self.coords(p) for p in range(self.n_pes)])
        shape = np.array(self.shape)
        delta = np.abs(coords[:, None, :] - coords[None, :, :])
        wrapped = np.minimum(delta, shape[None, None, :] - delta)
        return wrapped.sum(axis=2).astype(np.int64)

    def mean_hops(self) -> float:
        """Average hop count over distinct PE pairs (capacity planning)."""
        if self.n_pes == 1:
            return 0.0
        matrix = self.hop_matrix()
        return float(matrix.sum() / (self.n_pes * (self.n_pes - 1)))


@lru_cache(maxsize=64)
def torus_for(n_pes: int) -> Torus:
    return Torus.for_pes(n_pes)


__all__ = ["Torus", "torus_shape", "torus_for"]
