"""Shared machinery for the hardware coherence protocols.

Layering contract (see DESIGN.md §8): the protocol does **not** own the
data.  The machine's value plane stays write-through — every shared
write updates memory immediately, so memory is always current and the
per-word version counters / shadow oracle work unchanged.  On top of
that, the protocol keeps a *nominal* line-state table per PE (M/E/S/I
for MESI; I/S/M for a directory's local view), physically invalidates
remote copies when a write requires it (which is what makes these
schemes coherent — a remote reader can only miss to fresh memory), and
computes the latency of each miss/write from its transaction model.

State reconciliation: lines can vanish from a cache behind the
protocol's back — eviction-storm faults, victim replacement by a plane
reset, explicit invalidation.  Losing a copy is always *safe* here
(write-through means no data is lost), so the protocol lazily
reconciles: :meth:`CoherenceProtocol._state` answers ``I`` and drops
the stale table entry whenever the physical tag no longer matches.
The inverse cannot happen — every physical install of a shared line
under a protocol version goes through the protocol first.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


class CoherenceProtocol:
    """Base class: per-PE line-state tables + holder tracking."""

    kind = "base"

    def __init__(self, machine) -> None:
        self.machine = machine
        self.params = machine.params
        self.n_pes = machine.params.n_pes
        self.lw = machine.params.line_words
        #: per-PE ``{line_addr: state}`` for lines this PE may hold.
        self.states: List[Dict[int, str]] = [{} for _ in range(self.n_pes)]
        #: line_addr -> set of PEs whose table has an entry for it
        #: (a superset of the live copies; avoids O(n_pes) scans).
        self.holders: Dict[int, Set[int]] = {}
        #: parallel-phase counter, bumped at each barrier (dir-pp).
        self.phase = 0

    # -- state table ----------------------------------------------------
    def _present(self, pe_id: int, line_addr: int) -> bool:
        cache = self.machine.pes[pe_id].cache
        return int(cache.tags[line_addr % cache.n_lines]) == line_addr

    def _drop(self, pe_id: int, line_addr: int) -> None:
        self.states[pe_id].pop(line_addr, None)
        held = self.holders.get(line_addr)
        if held is not None:
            held.discard(pe_id)
            if not held:
                del self.holders[line_addr]

    def _state(self, pe_id: int, line_addr: int) -> str:
        state = self.states[pe_id].get(line_addr)
        if state is None:
            return "I"
        if not self._present(pe_id, line_addr):
            self._drop(pe_id, line_addr)
            return "I"
        return state

    def state(self, pe_id: int, line_addr: int) -> str:
        """This PE's (reconciled) protocol state for one line."""
        return self._state(pe_id, line_addr)

    def _set_state(self, pe_id: int, line_addr: int, state: str) -> None:
        self.states[pe_id][line_addr] = state
        self.holders.setdefault(line_addr, set()).add(pe_id)

    def _live_others(self, pe_id: int, line_addr: int) -> List[int]:
        """Other PEs with a live copy, in PE order (deterministic)."""
        return [q for q in sorted(self.holders.get(line_addr, ()))
                if q != pe_id and self._state(q, line_addr) != "I"]

    # -- shared transitions ---------------------------------------------
    def _emit_wb(self, pe_id: int, line_addr: int, reason: str) -> None:
        """Account one (nominal) writeback of a modified line."""
        self.machine.pes[pe_id].stats.writebacks += 1
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(("coh_wb", pe_id, line_addr, reason))

    def _evict_victim(self, pe_id: int, line_addr: int) -> None:
        """Retire the line the upcoming install will replace, if any."""
        cache = self.machine.pes[pe_id].cache
        victim = int(cache.tags[line_addr % cache.n_lines])
        if victim < 0 or victim == line_addr:
            return
        state = self.states[pe_id].get(victim)
        if state is not None:
            if state == "M":
                self._emit_wb(pe_id, victim, "evict")
            self._drop(pe_id, victim)

    def _invalidate_copies(self, writer: int, line_addr: int,
                           targets) -> int:
        """Physically invalidate every live copy among ``targets``.

        Modified copies are flushed (one ``coh_wb`` each).  Returns the
        number of copies actually killed; the caller accounts them to
        the writer (``coh_invalidations`` / one ``coh_inval`` event)."""
        count = 0
        for q in targets:
            state = self._state(q, line_addr)
            if state == "I":
                continue
            if state == "M":
                self._emit_wb(q, line_addr, "evict")
            self.machine.pes[q].cache.invalidate_line(line_addr)
            self._drop(q, line_addr)
            count += 1
        return count

    def _account_inval(self, writer: int, line_addr: int, count: int) -> None:
        if count <= 0:
            return
        self.machine.pes[writer].stats.coh_invalidations += count
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(("coh_inval", writer, line_addr, count))

    # -- hooks the machine calls ----------------------------------------
    def read_miss(self, pe_id: int, name: str, flat: int, line_addr: int,
                  owner: int) -> float:
        """Latency of a demand read miss on a shared line.  The caller
        installs the line afterwards; the protocol records the new
        state (and retires the victim) here."""
        raise NotImplementedError

    def write(self, pe_id: int, name: str, flat: int, line_addr: int,
              owner: int, cacheable: bool = True) -> float:
        """Latency of a shared write (memory is already updated)."""
        raise NotImplementedError

    def on_barrier(self) -> None:
        self.phase += 1

    def reset(self) -> None:
        """Restore the exact post-construction state (plan-cache warm
        reuse)."""
        for table in self.states:
            table.clear()
        self.holders.clear()
        self.phase = 0


__all__ = ["CoherenceProtocol"]
