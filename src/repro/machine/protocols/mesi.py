"""Snooping MESI on a shared bus.

Processor events (PrRd hit, PrRd miss, PrWr) drive the classic
four-state machine; every transition that needs other caches' attention
becomes one bus transaction (BusRd, BusRdX, BusUpgr) serialised by
:class:`~repro.machine.bus.SnoopBus`.  The transition table (states ×
events, with the snoop side-effects on every other cache) is written
out in DESIGN.md §8 and exercised cell-by-cell by
``tests/machine/test_protocol_litmus.py``.

Cost model (cycles):

* BusRd / BusRdX occupy the bus for ``bus_cycle + line_words`` (address
  phase + one data beat per word); BusUpgr is address-only
  (``bus_cycle``).
* A dirty remote copy supplies the line cache-to-cache for
  ``4*line_words + n_pes + 1`` cycles (SNIPPETS.md #3: flush + snoop
  resolution across ``n_pes`` caches); the owner downgrades M→S
  (BusRd, with a sharing writeback) or flushes to invalid (BusRdX).
* Otherwise memory supplies the line at the machine's normal fill
  latency (including the fault-injection network hooks for remote
  homes).
* Requester latency = arbitration stall + address phase + supply;
  writes add the ``write_local`` store-buffer cost.
"""

from __future__ import annotations

from ..bus import SnoopBus
from .base import CoherenceProtocol


class MESIProtocol(CoherenceProtocol):
    kind = "mesi"

    def __init__(self, machine) -> None:
        super().__init__(machine)
        self.bus = SnoopBus(machine.params.bus_cycle)

    def _supply(self, pe_id: int, line_addr: int, owner: int, others):
        """(cycles, c2c, dirty_owner) for one line supply on the bus."""
        dirty_owner = next(
            (q for q in others if self.states[q].get(line_addr) == "M"),
            None)
        if dirty_owner is not None:
            self.machine.pes[pe_id].stats.c2c_transfers += 1
            return 4 * self.lw + self.n_pes + 1, 1, dirty_owner
        machine = self.machine
        cycles = machine.read_latency(pe_id, owner)
        if owner != pe_id:
            cycles = machine.memory.remote_latency(pe_id, cycles)
        return cycles, 0, None

    def read_miss(self, pe_id: int, name: str, flat: int, line_addr: int,
                  owner: int) -> float:
        pe = self.machine.pes[pe_id]
        self._evict_victim(pe_id, line_addr)
        others = self._live_others(pe_id, line_addr)
        _, stall = self.bus.acquire(pe.clock,
                                    self.params.bus_cycle + self.lw)
        supply, c2c, dirty_owner = self._supply(pe_id, line_addr, owner,
                                                others)
        if dirty_owner is not None:
            # BusRd snooped by the modified owner: sharing writeback.
            self.states[dirty_owner][line_addr] = "S"
            self._emit_wb(dirty_owner, line_addr, "downgrade")
        else:
            for q in others:
                if self.states[q].get(line_addr) == "E":
                    self.states[q][line_addr] = "S"
        self._set_state(pe_id, line_addr, "S" if others else "E")
        pe.stats.bus_rd += 1
        pe.stats.bus_stall_cycles += stall
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(("bus_tx", pe_id, "busrd", line_addr, c2c))
        return stall + self.params.bus_cycle + supply

    def write(self, pe_id: int, name: str, flat: int, line_addr: int,
              owner: int, cacheable: bool = True) -> float:
        pe = self.machine.pes[pe_id]
        params = self.params
        state = self._state(pe_id, line_addr)
        if state == "M":
            return params.write_local
        if state == "E":
            # Silent E→M upgrade: exclusivity means no bus transaction.
            self.states[pe_id][line_addr] = "M"
            pe.stats.silent_upgrades += 1
            tracer = self.machine.tracer
            if tracer is not None:
                tracer.emit(("silent_upgrade", pe_id, line_addr))
            return params.write_local
        if state == "S":
            # BusUpgr: address-only transaction killing the other copies.
            _, stall = self.bus.acquire(pe.clock, params.bus_cycle)
            count = self._invalidate_copies(
                pe_id, line_addr, self._live_others(pe_id, line_addr))
            self.states[pe_id][line_addr] = "M"
            pe.stats.bus_upgr += 1
            pe.stats.bus_stall_cycles += stall
            tracer = self.machine.tracer
            if tracer is not None:
                tracer.emit(("bus_tx", pe_id, "busupgr", line_addr, 0))
            self._account_inval(pe_id, line_addr, count)
            return stall + params.bus_cycle + params.write_local
        # I: BusRdX — fetch the line with intent to modify (the one
        # write-allocate path in the machine; memory already holds the
        # new value, so the install below picks it up).
        self._evict_victim(pe_id, line_addr)
        others = self._live_others(pe_id, line_addr)
        _, stall = self.bus.acquire(pe.clock, params.bus_cycle + self.lw)
        supply, c2c, _dirty_owner = self._supply(pe_id, line_addr, owner,
                                                 others)
        count = self._invalidate_copies(pe_id, line_addr, others)
        self._set_state(pe_id, line_addr, "M")
        if cacheable:
            self.machine._install_line(pe, name, line_addr)
        pe.stats.bus_rdx += 1
        pe.stats.bus_stall_cycles += stall
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(("bus_tx", pe_id, "busrdx", line_addr, c2c))
        self._account_inval(pe_id, line_addr, count)
        return stall + params.bus_cycle + supply + params.write_local

    def reset(self) -> None:
        super().reset()
        self.bus.reset()


__all__ = ["MESIProtocol"]
