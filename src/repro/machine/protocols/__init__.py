"""Hardware cache-coherence protocols (the related-work baselines).

CCDP keeps caches coherent in software; the schemes here do it in
hardware, underneath the *untransformed* program:

* :class:`~repro.machine.protocols.mesi.MESIProtocol` — snooping MESI
  on a shared bus (:mod:`repro.machine.bus`).
* :class:`~repro.machine.protocols.directory.DirectoryProtocol` — a
  home-node directory, in full-map (``dir``), limited-pointer
  (``dir-lp``) and phase-priority (``dir-pp``, Li & An) flavours.

Both share one architecture (see :mod:`.base`): the machine's value
plane stays write-through exact — memory is always current, so final
values are bit-identical to ``seq`` and the shadow oracle applies
unchanged — while the protocol layer physically invalidates remote
copies on writes (zero stale reads by construction) and supplies the
timing/traffic model (bus transactions, cache-to-cache transfers,
directory messages).
"""

from __future__ import annotations

from .base import CoherenceProtocol
from .directory import DirectoryProtocol
from .mesi import MESIProtocol


def make_protocol(kind: str, machine) -> CoherenceProtocol:
    """Instantiate the protocol named by an ``ExecutionConfig.protocol``."""
    if kind == "mesi":
        return MESIProtocol(machine)
    if kind == "dir":
        return DirectoryProtocol(machine)
    if kind == "dir-lp":
        return DirectoryProtocol(machine, limited_ptrs=True)
    if kind == "dir-pp":
        return DirectoryProtocol(machine, phase_priority=True)
    raise ValueError(f"unknown coherence protocol {kind!r}; "
                     f"expected one of mesi, dir, dir-lp, dir-pp")


__all__ = ["CoherenceProtocol", "MESIProtocol", "DirectoryProtocol",
           "make_protocol"]
