"""Home-node directory coherence: full-map, limited-pointer, and
phase-priority request ordering.

Every line has a *home* PE (the home of its first-touched word, cached
per line — deterministic because the reference path replays accesses in
one fixed order).  The home's directory entry records the sharer set, a
dirty bit with the owning PE, and — in the limited-pointer variant — a
broadcast bit that replaces precise sharers once more than
``dir_ptr_limit`` PEs hold the line.

Message cost between PEs ``p`` and ``q`` is
``dir_msg_base + remote_per_hop * hops(p, q)``; the home controller
serialises requests (one ``free_at`` horizon per home, ``dir_proc``
occupancy each), which is where directory contention shows up.

Transactions (costs in DESIGN.md §8):

* **Read miss, clean line** — request + data reply (2 messages); the
  home's memory supplies the line (fault-injection hooks apply on a
  remote home).
* **Read miss, dirty line** — 4-hop: request, forward to owner,
  cache-to-cache data to the requester, sharing writeback to home; the
  owner downgrades M→S.
* **Write** — request, then a parallel invalidation round to every
  other sharer (2 messages each: invalidate + ack; the round costs the
  *max* outgoing + max ack leg, not the sum), then data (miss) or ack
  (upgrade).  A write by the current owner is directory-silent.

Variants:

* ``dir-lp`` (``limited_ptrs``): at most ``dir_ptr_limit`` precise
  pointers; overflow sets the broadcast bit, and the next invalidation
  round goes to all other PEs (``dir_bcast`` event, fanout ``P-1``).
* ``dir-pp`` (``phase_priority``, after Li & An): requests carry the
  epoch/phase the explicitly parallel program is in; the home services
  current-phase requests eagerly instead of making them wait out the
  occupancy horizon (counted as ``priority_bypasses``), and invalidation
  acks are not on the critical path (the phase barrier subsumes them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from .base import CoherenceProtocol


@dataclass
class DirEntry:
    """One line's directory state at its home node."""

    sharers: Set[int] = field(default_factory=set)
    dirty: bool = False
    owner: int = -1      #: owning PE while ``dirty``
    bcast: bool = False  #: limited-pointer overflow: sharers imprecise


class DirectoryProtocol(CoherenceProtocol):
    kind = "dir"

    def __init__(self, machine, limited_ptrs: bool = False,
                 phase_priority: bool = False) -> None:
        super().__init__(machine)
        self.limited_ptrs = limited_ptrs
        self.phase_priority = phase_priority
        if limited_ptrs:
            self.kind = "dir-lp"
        elif phase_priority:
            self.kind = "dir-pp"
        self.entries: Dict[int, DirEntry] = {}
        self.home_of: Dict[int, int] = {}
        #: per-home controller occupancy horizon (machine cycles).
        self.free_at = [0.0] * self.n_pes

    # -- directory mechanics --------------------------------------------
    def _entry(self, line_addr: int) -> DirEntry:
        entry = self.entries.get(line_addr)
        if entry is None:
            entry = self.entries[line_addr] = DirEntry()
        return entry

    def _msg(self, p: int, q: int) -> float:
        return (self.params.dir_msg_base
                + self.params.remote_per_hop * self.machine.torus.hops(p, q))

    def _home_grant(self, home: int, clock: float):
        """(stall, bypass) of one request at the home controller."""
        free = self.free_at[home]
        if self.phase_priority:
            # Current-phase requests are serviced eagerly; the horizon
            # still advances so the *amount* of bypassed waiting is
            # observable.
            bypass = 1 if free > clock else 0
            self.free_at[home] = max(free, clock) + self.params.dir_proc
            return 0.0, bypass
        grant = max(clock, free)
        self.free_at[home] = grant + self.params.dir_proc
        return grant - clock, 0

    def _add_sharer(self, entry: DirEntry, pe_id: int) -> None:
        entry.sharers.add(pe_id)
        if (self.limited_ptrs and not entry.bcast
                and len(entry.sharers) > self.params.dir_ptr_limit):
            entry.bcast = True

    def _live_dirty_owner(self, entry: DirEntry, line_addr: int, pe_id: int):
        """The modified-owner PE, or None (reconciling silent evictions)."""
        if not entry.dirty:
            return None
        owner = entry.owner
        if owner == pe_id or self._state(owner, line_addr) != "M":
            entry.dirty = False
            entry.owner = -1
            return None
        return owner

    # -- machine hooks ---------------------------------------------------
    def read_miss(self, pe_id: int, name: str, flat: int, line_addr: int,
                  owner: int) -> float:
        pe = self.machine.pes[pe_id]
        params = self.params
        home = self.home_of.setdefault(line_addr, owner)
        self._evict_victim(pe_id, line_addr)
        entry = self._entry(line_addr)
        stall, bypass = self._home_grant(home, pe.clock)
        cost = stall + self._msg(pe_id, home) + params.dir_proc
        dirty_owner = self._live_dirty_owner(entry, line_addr, pe_id)
        if dirty_owner is not None:
            # 4-hop: forward to owner, cache-to-cache data, sharing
            # writeback; the owner keeps a shared copy.
            msgs, c2c = 4, 1
            cost += (self._msg(home, dirty_owner)
                     + self._msg(dirty_owner, pe_id) + self.lw)
            pe.stats.c2c_transfers += 1
            self.states[dirty_owner][line_addr] = "S"
            self._emit_wb(dirty_owner, line_addr, "downgrade")
            entry.dirty = False
            entry.owner = -1
        else:
            msgs, c2c = 2, 0
            reply = self._msg(home, pe_id) + params.local_mem
            if home != pe_id:
                reply = self.machine.memory.remote_latency(pe_id, reply)
            cost += reply
        self._add_sharer(entry, pe_id)
        self._set_state(pe_id, line_addr, "S")
        pe.stats.dir_requests += 1
        pe.stats.dir_messages += msgs
        pe.stats.dir_stall_cycles += stall
        pe.stats.priority_bypasses += bypass
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(("dir_req", pe_id, "rd", line_addr, home, msgs,
                         c2c, bypass))
        return cost

    def write(self, pe_id: int, name: str, flat: int, line_addr: int,
              owner: int, cacheable: bool = True) -> float:
        pe = self.machine.pes[pe_id]
        params = self.params
        state = self._state(pe_id, line_addr)
        if state == "M":
            # Owner write: directory-silent, like a MESI M hit.
            return params.write_local
        home = self.home_of.setdefault(line_addr, owner)
        entry = self._entry(line_addr)
        stall, bypass = self._home_grant(home, pe.clock)
        msgs = 2  # request + terminal data/ack
        cost = stall + self._msg(pe_id, home) + params.dir_proc
        c2c = 0
        dirty_owner = self._live_dirty_owner(entry, line_addr, pe_id)
        if state == "I" and dirty_owner is not None:
            # Owner flushes the line to the requester before dying.
            msgs += 2
            c2c = 1
            cost += (self._msg(home, dirty_owner)
                     + self._msg(dirty_owner, pe_id) + self.lw)
            pe.stats.c2c_transfers += 1
        # Invalidation round: precise sharers, or everyone on overflow.
        if entry.bcast:
            targets = [q for q in range(self.n_pes) if q != pe_id]
            pe.stats.dir_broadcasts += 1
            tracer = self.machine.tracer
            if tracer is not None:
                tracer.emit(("dir_bcast", pe_id, line_addr,
                             self.n_pes - 1))
        else:
            targets = sorted(entry.sharers - {pe_id})
        if targets:
            msgs += 2 * len(targets)
            out = max(self._msg(home, q) for q in targets)
            ack = max(self._msg(q, home) for q in targets)
            # The round is parallel: pay the slowest invalidate and (in
            # the base protocol) the slowest ack.  Phase-priority trusts
            # the phase barrier to collect acks off the critical path.
            cost += out if self.phase_priority else out + ack
        count = self._invalidate_copies(pe_id, line_addr, targets)
        if state == "I" and dirty_owner is None:
            # The home's memory supplies the line with the data reply.
            reply = self._msg(home, pe_id) + params.local_mem
            if home != pe_id:
                reply = self.machine.memory.remote_latency(pe_id, reply)
            cost += reply
        elif state == "S":
            cost += self._msg(home, pe_id)  # upgrade ack
        op = "rdx" if state == "I" else "upgr"
        if state == "I":
            self._evict_victim(pe_id, line_addr)
            if cacheable:
                self.machine._install_line(pe, name, line_addr)
        entry.sharers = {pe_id}
        entry.dirty = True
        entry.owner = pe_id
        entry.bcast = False
        self._set_state(pe_id, line_addr, "M")
        pe.stats.dir_requests += 1
        pe.stats.dir_messages += msgs
        pe.stats.dir_stall_cycles += stall
        pe.stats.priority_bypasses += bypass
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(("dir_req", pe_id, op, line_addr, home, msgs,
                         c2c, bypass))
        self._account_inval(pe_id, line_addr, count)
        return cost + params.write_local

    def reset(self) -> None:
        super().reset()
        self.entries.clear()
        self.home_of.clear()
        self.free_at = [0.0] * self.n_pes


__all__ = ["DirEntry", "DirectoryProtocol"]
