"""Distributed main memory: values plus per-word versions.

Memory is the coherence ground truth.  Caches are write-through, so
memory always holds the current value of every word; staleness lives
only in caches.  Every word carries a monotonically increasing version
number, bumped on each write — the coherence checker compares cached
versions against memory versions to detect stale reads *exactly*.

Private (replicated) arrays hold one copy per PE and never go stale.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..ir.arrays import ArrayDecl
from .addressing import layout_bases
from .params import MachineParams


class Memory:
    """Value + version store for all program arrays.

    Shared arrays live in one flat global backing store (``values_flat`` /
    ``versions_flat``) laid out by :func:`~repro.machine.addressing.layout_bases`
    — the same layout :class:`~repro.machine.addressing.AddressMap` uses, so a
    global word address indexes the backing store directly.  The per-array
    ``values`` / ``versions`` dicts hold *views* into the backing store, which
    keeps every scalar-path accessor below unchanged while letting the batched
    backend gather/scatter whole traces in single NumPy operations.
    """

    def __init__(self, arrays: Iterable[ArrayDecl], params: MachineParams) -> None:
        self.params = params
        self.decls: Dict[str, ArrayDecl] = {}
        self.values: Dict[str, np.ndarray] = {}
        self.versions: Dict[str, np.ndarray] = {}
        self.private_values: Dict[str, np.ndarray] = {}
        # Fault-injection state (set by Machine when a FaultPlan is active):
        # remote accesses route their latency through remote_latency() so
        # network jitter and transient remote failures (retry/backoff) apply.
        self.faults = None
        # Coherence oracle (set by Machine when enabled): notified of bulk
        # re-initialisations so its shadow tracks set_array.
        self.oracle = None
        decls = list(arrays)
        self.bases, self.total_words = layout_bases(decls, params.line_words)
        self.values_flat = np.zeros(self.total_words, dtype=np.float64)
        self.versions_flat = np.zeros(self.total_words, dtype=np.int64)
        for decl in decls:
            self.decls[decl.name] = decl
            if decl.is_shared:
                base = self.bases[decl.name]
                self.values[decl.name] = self.values_flat[base:base + decl.size]
                self.versions[decl.name] = self.versions_flat[base:base + decl.size]
            else:
                self.private_values[decl.name] = np.zeros(
                    (params.n_pes, decl.size), dtype=np.float64)

    # -- shared arrays --------------------------------------------------------
    def read(self, name: str, flat: int) -> float:
        return float(self.values[name][flat])

    def read_with_version(self, name: str, flat: int):
        return float(self.values[name][flat]), int(self.versions[name][flat])

    def write(self, name: str, flat: int, value: float) -> int:
        """Write one word; returns its new version."""
        self.values[name][flat] = value
        self.versions[name][flat] += 1
        return int(self.versions[name][flat])

    def version(self, name: str, flat: int) -> int:
        return int(self.versions[name][flat])

    # -- fault-aware timing ----------------------------------------------------
    def remote_latency(self, pe_id: int, base: float) -> float:
        """Latency of a remote access with base cost ``base`` cycles.

        Without faults this is the identity.  With an active
        :class:`~repro.faults.state.FaultState` it adds network jitter
        and transient-failure retry/backoff penalties — purely timing,
        never values: a failed remote access is retried until it
        succeeds, so the data returned is always the current memory
        word."""
        if self.faults is None:
            return base
        return base + self.faults.remote_penalty(pe_id, base)

    # -- private arrays ---------------------------------------------------------
    def read_private(self, name: str, pe: int, flat: int) -> float:
        return float(self.private_values[name][pe, flat])

    def write_private(self, name: str, pe: int, flat: int, value: float) -> None:
        self.private_values[name][pe, flat] = value

    # -- batched access (batched execution backend) ---------------------------
    def gather(self, name: str, flats: np.ndarray) -> np.ndarray:
        """Current values of many words of one shared array (a fresh copy)."""
        return self.values[name][flats]

    def scatter(self, name: str, flats: np.ndarray, values: np.ndarray) -> None:
        """Bulk write-through: store ``values`` and bump one version per
        element write (duplicate indices bump once per occurrence, matching
        a sequence of scalar :meth:`write` calls; the stored value is the
        last occurrence's, as NumPy fancy assignment applies in order)."""
        self.values[name][flats] = values
        np.add.at(self.versions[name], flats, 1)

    def gather_addr(self, addrs: np.ndarray) -> np.ndarray:
        """Current values at global word addresses (any shared array)."""
        return self.values_flat[addrs]

    def versions_addr(self, addrs: np.ndarray) -> np.ndarray:
        return self.versions_flat[addrs]

    def gather_private(self, name: str, pe: int, flats: np.ndarray) -> np.ndarray:
        return self.private_values[name][pe, flats]

    def scatter_private(self, name: str, pe: int, flats: np.ndarray,
                        values: np.ndarray) -> None:
        self.private_values[name][pe, flats] = values

    # -- bulk access (initialisation, result extraction, fast engine) -------------
    def array_view(self, name: str) -> np.ndarray:
        """Column-major (Fortran-order) ndarray view of a shared array."""
        decl = self.decls[name]
        return self.values[name].reshape(decl.shape, order="F")

    def set_array(self, name: str, data: np.ndarray) -> None:
        """Bulk-initialise a shared array (bumps versions once)."""
        decl = self.decls[name]
        flat = np.asarray(data, dtype=np.float64).reshape(decl.size, order="F")
        self.values[name][:] = flat
        self.versions[name] += 1
        if self.oracle is not None:
            self.oracle.observe_fill(name, flat)

    def private_view(self, name: str, pe: int) -> np.ndarray:
        decl = self.decls[name]
        return self.private_values[name][pe].reshape(decl.shape, order="F")

    def snapshot(self) -> Dict[str, np.ndarray]:
        """Copies of all shared arrays (oracle comparison in tests)."""
        return {name: self.array_view(name).copy() for name in self.values}


__all__ = ["Memory"]
