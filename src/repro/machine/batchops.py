"""Bulk (vectorized) primitives for the batched execution backend.

The heart of this module is :func:`classify_events`: an exact direct-mapped
cache simulation over a whole event trace.  For traces without INVALIDATE
events it runs as a handful of NumPy array operations using the *shifted
comparison* trick pioneered in ``fastcache``: sort events by cache set
(stable), then for every event the resident line beforehand is the line of
the most recent earlier installing event in the same set — a prefix-maximum
over positions, no Python loop.  Traces with INVALIDATE events fall back to
an exact per-event Python scan (invalidations are rare in practice: the
batched runtime issues them through its own scan engine).

Unlike ``fastcache.classify_trace`` (which always starts from a cold cache),
:func:`classify_events` accepts ``initial_tags`` so a trace can be classified
against a *warm* cache — this is what lets the batched backend splice bulk
chunks into the middle of a simulation without touching per-word state.

Also here: latency lookup tables (per-owner cost vectors that turn the
machine's scalar cost model into O(1) list indexing inside scan loops) and
bulk cache refill helpers used when committing a batched chunk's effects
back into a :class:`~repro.machine.cache.DirectMappedCache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .params import MachineParams

# Event kinds (canonical values; ``fastcache`` re-exports these).
READ = 0
WRITE = 1
INSTALL = 2
INVALIDATE = 3

# Outcome codes per event.
OUT_HIT = 0
OUT_MISS = 1
OUT_NA = 2  # not a READ (or invalidated/no outcome)


@dataclass
class EventClassification:
    """Exact outcome of replaying an event trace against a direct-mapped cache.

    ``present[i]`` is True when event *i*'s line was resident immediately
    before the event (for READs this equals HIT; for WRITEs it says whether a
    write-through update lands in the cache).  ``changed_sets`` lists the
    cache sets whose resident line after the trace differs from the initial
    state, with ``changed_lines`` the new resident line per such set (-1 for
    invalidated-empty)."""

    outcomes: np.ndarray       # int8 per event: OUT_HIT / OUT_MISS / OUT_NA
    present: np.ndarray        # bool per event: line resident before event
    changed_sets: np.ndarray   # int64, sets whose final resident line changed
    changed_lines: np.ndarray  # int64, final resident line per changed set


def classify_events(line_addrs: np.ndarray,
                    kinds: Optional[np.ndarray],
                    n_lines: int,
                    initial_tags: Optional[np.ndarray] = None) -> EventClassification:
    """Replay ``(line_addrs, kinds)`` against a direct-mapped cache.

    ``kinds=None`` means all-READ.  ``initial_tags`` is the resident line per
    set before the trace (-1 empty); ``None`` means a cold cache.  READ misses
    and INSTALLs install their line; WRITEs never install (write-through,
    no-allocate); INVALIDATEs empty the set iff the named line is resident.
    """
    line_addrs = np.asarray(line_addrs, dtype=np.int64)
    n = line_addrs.shape[0]
    if kinds is None:
        kinds = np.zeros(n, dtype=np.int8)
    else:
        kinds = np.asarray(kinds, dtype=np.int8)
    outcomes = np.full(n, OUT_NA, dtype=np.int8)
    present = np.zeros(n, dtype=bool)
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return EventClassification(outcomes, present, empty, empty.copy())
    sets = (line_addrs % n_lines).astype(np.int64)
    if initial_tags is None:
        init = np.full(n_lines, -1, dtype=np.int64)
    else:
        init = np.asarray(initial_tags, dtype=np.int64)
    if bool((kinds == INVALIDATE).any()):
        return _classify_scan(line_addrs, kinds, sets, init, outcomes, present)

    order = np.argsort(sets, kind="stable")
    ss = sets[order]
    sl = line_addrs[order]
    sk = kinds[order]
    pos = np.arange(n, dtype=np.int64)

    # Segment start per set-run (events of one set stay in trace order).
    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = ss[1:] != ss[:-1]
    seg0 = np.maximum.accumulate(np.where(seg_start, pos, np.int64(-1)))

    # Installing events: READs (miss or hit, the line ends up resident
    # either way) and explicit INSTALLs.
    installs = (sk == READ) | (sk == INSTALL)
    last_inst = np.maximum.accumulate(np.where(installs, pos, np.int64(-1)))
    prev_inst = np.empty(n, dtype=np.int64)
    prev_inst[0] = -1
    prev_inst[1:] = last_inst[:-1]
    has_prev = prev_inst >= seg0
    before = np.where(has_prev, sl[np.maximum(prev_inst, 0)], init[ss])
    hit = before == sl

    is_read = sk == READ
    out_sorted = np.full(n, OUT_NA, dtype=np.int8)
    out_sorted[is_read] = np.where(hit[is_read], OUT_HIT, OUT_MISS)
    outcomes[order] = out_sorted
    present[order] = hit

    # Final resident line per touched set, from the last installing event.
    seg_last = np.empty(n, dtype=bool)
    seg_last[-1] = True
    seg_last[:-1] = ss[1:] != ss[:-1]
    li = last_inst[seg_last]
    has_final = li >= seg0[seg_last]
    csets = ss[seg_last]
    fin = np.where(has_final, sl[np.maximum(li, 0)], init[csets])
    changed = fin != init[csets]
    return EventClassification(outcomes, present, csets[changed], fin[changed])


def _classify_scan(line_addrs, kinds, sets, init, outcomes, present):
    """Exact per-event scan; handles INVALIDATE (conditional set clear)."""
    state = {}
    la = line_addrs.tolist()
    ks = kinds.tolist()
    st = sets.tolist()
    for i in range(len(la)):
        s = st[i]
        line = la[i]
        resident = state.get(s)
        if resident is None:
            resident = int(init[s])
        here = resident == line
        present[i] = here
        k = ks[i]
        if k == READ:
            outcomes[i] = OUT_HIT if here else OUT_MISS
            state[s] = line
        elif k == INSTALL:
            state[s] = line
        elif k == INVALIDATE:
            if here:
                state[s] = -1
    csets: List[int] = []
    clines: List[int] = []
    for s in sorted(state):
        if state[s] != int(init[s]):
            csets.append(s)
            clines.append(state[s])
    return EventClassification(outcomes, present,
                               np.asarray(csets, dtype=np.int64),
                               np.asarray(clines, dtype=np.int64))


# -- latency tables ----------------------------------------------------------

def read_latency_table(params: MachineParams, torus, pe: int,
                       extra: float = 0.0) -> List[float]:
    """Cache-miss read cost per home PE, mirroring ``Machine.read_latency``."""
    out = []
    for owner in range(params.n_pes):
        if owner == pe:
            out.append(params.local_mem + extra)
        else:
            out.append(params.remote_base
                       + params.remote_per_hop * torus.hops(pe, owner) + extra)
    return out


def write_latency_table(params: MachineParams, torus, pe: int,
                        extra: float = 0.0) -> List[float]:
    """Shared-write cost per home PE, mirroring ``Machine.write_latency``."""
    out = []
    for owner in range(params.n_pes):
        if owner == pe:
            out.append(params.write_local + extra)
        else:
            out.append(params.write_remote_base
                       + params.write_remote_per_hop * torus.hops(pe, owner)
                       + extra)
    return out


def uncached_read_latency_table(params: MachineParams, torus, pe: int,
                                extra: float = 0.0) -> List[float]:
    """Uncached/bypass read cost per home PE (local DRAM vs remote fetch)."""
    out = []
    for owner in range(params.n_pes):
        if owner == pe:
            out.append(params.uncached_local_read + extra)
        else:
            out.append(params.remote_base
                       + params.remote_per_hop * torus.hops(pe, owner) + extra)
    return out


# -- bulk cache refill helpers ----------------------------------------------

def bulk_fill_lines(cache, lines: Sequence[int],
                    values_flat: np.ndarray, versions_flat: np.ndarray) -> None:
    """Refill whole cache lines from the flat memory backing.

    Only lines still resident (tag match) are filled — callers pass the set
    of lines installed during a batched chunk, some of which may have been
    evicted again before the chunk ended."""
    lw = cache.line_words
    nl = cache.n_lines
    if len(lines) > 8:
        ln = np.asarray(lines, dtype=np.int64)
        ix = ln % nl
        ok = cache.tags[ix] == ln
        if not bool(ok.any()):
            return
        ln = ln[ok]
        ix = ix[ok]
        word_ix = ln[:, None] * lw + np.arange(lw, dtype=np.int64)
        cache.data[ix] = values_flat[word_ix]
        cache.vers[ix] = versions_flat[word_ix]
        return
    for line in lines:
        ix = line % nl
        if cache.tags[ix] == line:
            base = line * lw
            cache.data[ix, :] = values_flat[base:base + lw]
            cache.vers[ix, :] = versions_flat[base:base + lw]


def bulk_update_words(cache, addrs: Sequence[int],
                      values_flat: np.ndarray, versions_flat: np.ndarray) -> None:
    """Apply write-through word updates for resident lines, in bulk.

    Duplicate addresses are fine: fancy assignment applies in order, and the
    flat backing already holds each word's final value/version."""
    if not len(addrs):
        return
    a = np.asarray(addrs, dtype=np.int64)
    lw = cache.line_words
    ln = a // lw
    ix = ln % cache.n_lines
    ok = cache.tags[ix] == ln
    if not bool(ok.any()):
        return
    a = a[ok]
    ln = ln[ok]
    ix = ix[ok]
    off = a - ln * lw
    cache.data[ix, off] = values_flat[a]
    cache.vers[ix, off] = versions_flat[a]


def stale_words(cache, versions_flat: np.ndarray):
    """Words resident in ``cache`` whose cached version lags memory.

    Returns ``{addr: (cached_value, cached_version, memory_version)}`` — the
    batched scan patches these into gathered read values so a chunk sees
    exactly what the scalar interpreter would have read."""
    valid = cache.tags >= 0
    if not bool(valid.any()):
        return {}
    lw = cache.line_words
    lines = cache.tags[valid]
    addrs = (lines[:, None] * lw + np.arange(lw, dtype=np.int64)).ravel()
    cvers = cache.vers[valid].ravel()
    mvers = versions_flat[addrs]
    mask = cvers < mvers
    if not bool(mask.any()):
        return {}
    vals = cache.data[valid].ravel()
    out = {}
    for a, v, cv, mv in zip(addrs[mask].tolist(), vals[mask].tolist(),
                            cvers[mask].tolist(), mvers[mask].tolist()):
        out[a] = (v, cv, mv)
    return out


__all__ = [
    "READ", "WRITE", "INSTALL", "INVALIDATE",
    "OUT_HIT", "OUT_MISS", "OUT_NA",
    "EventClassification", "classify_events",
    "read_latency_table", "write_latency_table", "uncached_read_latency_table",
    "bulk_fill_lines", "bulk_update_words", "stale_words",
]
