"""Bulk (vectorized) primitives for the batched execution backend.

The heart of this module is :func:`classify_events`: an exact direct-mapped
cache simulation over a whole event trace.  It runs as a handful of NumPy
array operations using the *shifted comparison* trick pioneered in
``fastcache``: sort events by cache set (stable), then for every event the
resident line beforehand is the line of the most recent earlier installing
event in the same set — a prefix-maximum over positions, no Python loop.
INVALIDATE events ride the same machinery: an invalidate *kills* iff its
line equals the last-installed line of its set, and a set reads as empty
whenever the most recent kill postdates the most recent install (a kill
marked while the set was already empty is harmless — it clears to the same
empty state the set was in).

:func:`replay_chunk` is the prefetch replay engine: an exact, allocation-free
scan over one batched chunk's pre-classified events that reproduces the
reference machine's prefetch semantics — invalidate-before-prefetch, queue
occupancy/coalescing/reclaim, capacity-drop → bypass-fetch degradation
(paper rule 2), extract-vs-late arrival stalls and vector-transfer stalls —
without touching the live machine.  The batched runtime commits its outcome
wholesale, or discards it untouched when the scan flags a hazard.

Unlike ``fastcache.classify_trace`` (which always starts from a cold cache),
:func:`classify_events` accepts ``initial_tags`` so a trace can be classified
against a *warm* cache — this is what lets the batched backend splice bulk
chunks into the middle of a simulation without touching per-word state.

Also here: latency lookup tables (per-owner cost vectors that turn the
machine's scalar cost model into O(1) list indexing inside scan loops) and
bulk cache refill helpers used when committing a batched chunk's effects
back into a :class:`~repro.machine.cache.DirectMappedCache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .params import MachineParams

# Event kinds (canonical values; ``fastcache`` re-exports these).
READ = 0
WRITE = 1
INSTALL = 2
INVALIDATE = 3

# Outcome codes per event.
OUT_HIT = 0
OUT_MISS = 1
OUT_NA = 2  # not a READ (or invalidated/no outcome)


@dataclass
class EventClassification:
    """Exact outcome of replaying an event trace against a direct-mapped cache.

    ``present[i]`` is True when event *i*'s line was resident immediately
    before the event (for READs this equals HIT; for WRITEs it says whether a
    write-through update lands in the cache).  ``changed_sets`` lists the
    cache sets whose resident line after the trace differs from the initial
    state, with ``changed_lines`` the new resident line per such set (-1 for
    invalidated-empty)."""

    outcomes: np.ndarray       # int8 per event: OUT_HIT / OUT_MISS / OUT_NA
    present: np.ndarray        # bool per event: line resident before event
    changed_sets: np.ndarray   # int64, sets whose final resident line changed
    changed_lines: np.ndarray  # int64, final resident line per changed set


def classify_events(line_addrs: np.ndarray,
                    kinds: Optional[np.ndarray],
                    n_lines: int,
                    initial_tags: Optional[np.ndarray] = None) -> EventClassification:
    """Replay ``(line_addrs, kinds)`` against a direct-mapped cache.

    ``kinds=None`` means all-READ.  ``initial_tags`` is the resident line per
    set before the trace (-1 empty); ``None`` means a cold cache.  READ misses
    and INSTALLs install their line; WRITEs never install (write-through,
    no-allocate); INVALIDATEs empty the set iff the named line is resident.
    """
    line_addrs = np.asarray(line_addrs, dtype=np.int64)
    sets = line_addrs % n_lines  # already int64 from the asarray above
    if initial_tags is None:
        init = np.full(n_lines, -1, dtype=np.int64)
    else:
        init = np.asarray(initial_tags, dtype=np.int64)
    return _classify_on_sets(line_addrs, kinds, sets, init, n_lines)


def classify_events_multi(line_addrs: np.ndarray,
                          kinds: Optional[np.ndarray],
                          pe_of: np.ndarray,
                          n_lines: int,
                          initial_tags: np.ndarray) -> EventClassification:
    """Replay one concatenated multi-PE event trace against a *stack* of
    per-PE direct-mapped caches in a single pass.

    ``pe_of[i]`` names the PE whose cache event *i* touches;
    ``initial_tags`` has shape ``(n_pes, n_lines)`` (row = one PE's resident
    line per set, -1 empty).  Internally every (pe, set) pair becomes one
    plane set ``pe * n_lines + set``, so the per-set shifted-comparison
    classify runs once over the whole plane — per-PE event order is
    preserved (the sort is stable and each plane set belongs to one PE),
    making the outcome bit-exact against ``n_pes`` separate
    :func:`classify_events` calls.  ``changed_sets`` come back in plane
    coordinates: decompose with ``divmod(changed_sets, n_lines)``.
    """
    line_addrs = np.asarray(line_addrs, dtype=np.int64)
    pe_of = np.asarray(pe_of, dtype=np.int64)
    init = np.ascontiguousarray(initial_tags, dtype=np.int64).reshape(-1)
    n_sets = init.shape[0]
    sets = pe_of * n_lines + line_addrs % n_lines
    return _classify_on_sets(line_addrs, kinds, sets, init, n_sets)


def _classify_on_sets(line_addrs: np.ndarray,
                      kinds: Optional[np.ndarray],
                      sets: np.ndarray,
                      init: np.ndarray,
                      n_sets: int) -> EventClassification:
    """Shared core: classify events whose cache set was precomputed.

    ``sets[i]`` indexes ``init`` (length ``n_sets``) directly, which lets
    the multi-PE plane reuse the single-cache machinery by giving every
    (pe, set) pair its own plane set."""
    n = line_addrs.shape[0]
    all_reads = kinds is None
    if all_reads:
        kinds = np.zeros(n, dtype=np.int8)
    else:
        kinds = np.asarray(kinds, dtype=np.int8)
        all_reads = bool((kinds == READ).all())
    outcomes = np.full(n, OUT_NA, dtype=np.int8)
    present = np.zeros(n, dtype=bool)
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return EventClassification(outcomes, present, empty, empty.copy())
    if n_sets <= 0x7FFF:
        # Radix-sorting narrow keys is markedly cheaper; set indices
        # always fit in int16 for realistic cache geometries.
        order = np.argsort(sets.astype(np.int16), kind="stable")
    else:
        order = np.argsort(sets, kind="stable")
    ss = sets[order]
    sl = line_addrs[order]

    # Segment start per set-run (events of one set stay in trace order).
    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = ss[1:] != ss[:-1]

    if all_reads:
        # Every event installs its line, so an event hits iff it repeats
        # the immediately preceding line in its set-run (or the initial
        # resident line at a run start).  No install/invalidate chains.
        hit = np.empty(n, dtype=bool)
        hit[0] = True
        np.equal(sl[1:], sl[:-1], out=hit[1:])
        starts = np.flatnonzero(seg_start)
        hit[starts] = init[ss[starts]] == sl[starts]
        out_sorted = np.where(hit, np.int8(OUT_HIT), np.int8(OUT_MISS))
        outcomes[order] = out_sorted
        present[order] = hit
        seg_last = np.empty(n, dtype=bool)
        seg_last[-1] = True
        seg_last[:-1] = seg_start[1:]
        csets = ss[seg_last]
        fin = sl[seg_last]
        changed = fin != init[csets]
        return EventClassification(outcomes, present, csets[changed],
                                   fin[changed])

    sk = kinds[order]
    pos = np.arange(n, dtype=np.int64)
    seg0 = np.maximum.accumulate(np.where(seg_start, pos, np.int64(-1)))

    # Installing events: READs (miss or hit, the line ends up resident
    # either way) and explicit INSTALLs.
    installs = (sk == READ) | (sk == INSTALL)
    last_inst = np.maximum.accumulate(np.where(installs, pos, np.int64(-1)))
    prev_inst = np.empty(n, dtype=np.int64)
    prev_inst[0] = -1
    prev_inst[1:] = last_inst[:-1]
    has_prev = prev_inst >= seg0
    before = np.where(has_prev, sl[np.maximum(prev_inst, 0)], init[ss])
    hit = before == sl

    # INVALIDATEs: one kills iff its line equals the set's last-installed
    # line, and the set reads empty whenever the latest kill postdates the
    # latest install.  A kill marked while the set was already empty is a
    # no-op either way (it "clears" to the same empty state), so the
    # install-line comparison alone is exact.
    inval = sk == INVALIDATE
    has_inval = bool(inval.any())
    if has_inval:
        kills = inval & hit
        last_kill = np.maximum.accumulate(np.where(kills, pos, np.int64(-1)))
        prev_kill = np.empty(n, dtype=np.int64)
        prev_kill[0] = -1
        prev_kill[1:] = last_kill[:-1]
        cleared = (prev_kill >= seg0) & (prev_kill > prev_inst)
        hit = hit & ~cleared

    is_read = sk == READ
    out_sorted = np.full(n, OUT_NA, dtype=np.int8)
    out_sorted[is_read] = np.where(hit[is_read], OUT_HIT, OUT_MISS)
    outcomes[order] = out_sorted
    present[order] = hit

    # Final resident line per touched set, from the last installing event.
    seg_last = np.empty(n, dtype=bool)
    seg_last[-1] = True
    seg_last[:-1] = ss[1:] != ss[:-1]
    li = last_inst[seg_last]
    has_final = li >= seg0[seg_last]
    csets = ss[seg_last]
    fin = np.where(has_final, sl[np.maximum(li, 0)], init[csets])
    if has_inval:
        lk = last_kill[seg_last]
        killed = (lk >= seg0[seg_last]) & (lk > li)
        fin = np.where(killed, np.int64(-1), fin)
    changed = fin != init[csets]
    return EventClassification(outcomes, present, csets[changed], fin[changed])


# -- prefetch replay scan engine ---------------------------------------------

# Replay event kinds (distinct from trace kinds above: replay events carry
# per-event costs and are interleaved with queue/transfer state).
RE_COST = 0   # fixed-cost event (uncached read, uncacheable write, OOB prefetch)
RE_READ = 1   # cacheable read (hit / extract / miss / drop-bypass)
RE_WRITE = 2  # cacheable write-through (ghost-dirty hazard detection)
RE_PF = 3     # in-bounds line prefetch (invalidate + queue issue)

# Stall codes in ReplayOutcome.stalls (the commit step must apply idle time
# per stall, in order, exactly as the reference interpreter does).
STALL_VECTOR = 0    # read raced an in-flight vector transfer
STALL_LATE = 1      # read arrived before its prefetch (late-arrival wait)

# Dynamic-outcome record codes (machine-event synthesis in the batched
# backend): replay_chunk fills one code per RE_READ / RE_PF event when the
# caller passes a ``record`` list, so the commit step can synthesise the
# exact event stream the reference interpreter would have emitted.
REC_NONE = -1          # event emits nothing (RE_COST slots keep this)
REC_HIT = 0            # read_hit
REC_EXTRACT = 1        # pf_complete (queue extract at the use point)
REC_MISS = 2           # read_miss
REC_DROP_BYPASS = 3    # bypass_fetch kind="pf_drop" (paper rule 2)
REC_PF_ISSUE = 4       # pf_issue
REC_PF_COALESCE = 5    # pf_coalesce
REC_PF_DROP = 6        # pf_drop (queue capacity)
REC_KILL_FLAG = 8      # OR'd onto pf codes: invalidate killed a resident line


@dataclass
class ReplayOutcome:
    """Result of one exact prefetch-replay scan over a chunk's events.

    ``hazard`` means the scan detected a state it cannot commit exactly (a
    write-through into a line invalidated earlier in the same chunk, whose
    ghost contents would then diverge from final memory); the caller must
    fall back to the reference path.  Nothing in the scan mutates live
    machine state, so a hazard costs only the scan itself."""

    hazard: bool
    clock: float = 0.0
    busy: float = 0.0
    tags: Optional[List[int]] = None       #: final per-set resident lines
    queue: Optional[List[tuple]] = None    #: (line, arrival, issued_at, home, array)
    dropped: Optional[set] = None          #: final dropped-line set (rule 2)
    q_issued: int = 0                      #: PrefetchQueue.issued delta
    q_dropped: int = 0                     #: PrefetchQueue.dropped delta
    q_hw: int = 0                          #: queue high-water during the scan
    stalls: Optional[List[tuple]] = None   #: ordered (code, cycles)
    ghosts: Optional[List[tuple]] = None   #: (set, line, array) needing refill
    counters: Optional[dict] = None        #: PEStats deltas from the scan


def replay_chunk(kinds: np.ndarray, pre: np.ndarray, cost: np.ndarray,
                 lines: np.ndarray, misscost: np.ndarray, unccost: np.ndarray,
                 localf: np.ndarray, sharedf: np.ndarray, fill: np.ndarray,
                 home: np.ndarray, invalf: np.ndarray, slot_of: np.ndarray,
                 slot_arrays: Sequence[Optional[str]],
                 tags0: np.ndarray, n_lines: int, clock0: float, tail: float,
                 queue0: Sequence[tuple], queue_cap: int,
                 dropped0, transfers: Sequence[tuple],
                 cache_hit: float, extract_cost: float,
                 reclaim_lag: float,
                 record: Optional[list] = None) -> ReplayOutcome:
    """Exact scan of one chunk's replay events against shadow PE state.

    Mirrors ``Machine.read`` / ``Machine.prefetch_line`` event by event —
    same costs, same queue coalesce/capacity/reclaim rules, same stall
    resolution — but against *copies* of the PE's tags, prefetch queue and
    dropped-line set.  ``pre[i]`` is the fixed (arith/overhead) cost charged
    before event *i*; ``tail`` is charged once after the last event.

    Invalidate-before-prefetch leaves *ghost sets*: the tag is cleared but
    the reference cache keeps the line's data frozen at invalidation time.
    The scan tracks ghosts so the commit step can refill them from final
    memory — exact as long as no later write-through dirtied the ghost line,
    which is precisely the hazard this function detects.

    When ``record`` (a mutable sequence of length ``n``, prefilled with
    ``REC_NONE``) is supplied, the scan writes one ``REC_*`` code per
    RE_READ / RE_PF event so the caller can synthesise the exact machine
    events the reference path would have emitted.
    """
    n = len(kinds)
    kl = kinds.tolist()
    prel = pre.tolist()
    costl = cost.tolist()
    linel = lines.tolist()
    missl = misscost.tolist()
    uncl = unccost.tolist()
    locl = localf.tolist()
    shrl = sharedf.tolist()
    filll = fill.tolist()
    homel = home.tolist()
    invl = invalf.tolist()
    slotl = slot_of.tolist()

    tags = tags0.tolist()
    queue = list(queue0)
    dropped = set(dropped0)
    ghosts: dict = {}        # set index -> (line, array)
    ghost_lines: set = set()
    stalls: List[tuple] = []
    tlist = list(transfers)  # (line_lo, line_hi, completion)

    hits = misses = local_fills = remote_fills = 0
    drop_bypass = extracted = 0
    pf_issued = pf_dropped = invalidations = 0
    q_issued = q_dropped = 0
    q_hw = len(queue)
    rec = record is not None
    clock = clock0
    busy = 0.0

    for i in range(n):
        p = prel[i]
        if p:
            clock += p
            busy += p
        k = kl[i]
        if k == RE_COST:
            c = costl[i]
            clock += c
            busy += c
            continue
        line = linel[i]
        if k == RE_READ:
            if shrl[i] and line in dropped:
                # Paper rule 2: a dropped prefetch degrades this use to a
                # one-shot bypass fetch (no install, no hit/miss counters).
                dropped.discard(line)
                c = uncl[i]
                clock += c
                busy += c
                drop_bypass += 1
                if rec:
                    record[i] = REC_DROP_BYPASS
                continue
            s = line % n_lines
            if tags[s] == line:
                if tlist:
                    best = 0.0
                    found = False
                    for (t_lo, t_hi, t_comp) in tlist:
                        if t_lo <= line <= t_hi and (not found or t_comp < best):
                            best = t_comp
                            found = True
                    if found and best > clock:
                        stalls.append((STALL_VECTOR, best - clock))
                        clock = best
                clock += cache_hit
                busy += cache_hit
                hits += 1
                if rec:
                    record[i] = REC_HIT
                continue
            qi = -1
            for j in range(len(queue)):
                if queue[j][0] == line:
                    qi = j
                    break
            if qi >= 0:
                arrival = queue[qi][1]
                if arrival > clock:
                    stalls.append((STALL_LATE, arrival - clock))
                    clock = arrival
                clock += extract_cost
                busy += extract_cost
                del queue[qi]
                extracted += 1
                tags[s] = line
                if s in ghosts:
                    ghost_lines.discard(ghosts.pop(s)[0])
                if rec:
                    record[i] = REC_EXTRACT
                continue
            c = missl[i]
            clock += c
            busy += c
            misses += 1
            if rec:
                record[i] = REC_MISS
            if locl[i]:
                local_fills += 1
            else:
                remote_fills += 1
            tags[s] = line
            if s in ghosts:
                ghost_lines.discard(ghosts.pop(s)[0])
            continue
        if k == RE_WRITE:
            c = costl[i]
            clock += c
            busy += c
            if ghost_lines and line in ghost_lines:
                # Write-through into a ghosted line: the reference cache
                # keeps pre-write contents, final memory would not.
                return ReplayOutcome(hazard=True)
            continue
        # RE_PF: invalidate-before-prefetch, then queue issue.
        s = line % n_lines
        kflag = 0
        if invl[i] and tags[s] == line:
            tags[s] = -1
            invalidations += 1
            ghosts[s] = (line, slot_arrays[slotl[i]])
            ghost_lines.add(line)
            kflag = REC_KILL_FLAG
        c = costl[i]
        clock += c
        busy += c
        if queue:
            lim = clock - reclaim_lag
            keep = [e for e in queue if e[1] > lim]
            if len(keep) != len(queue):
                queue = keep
        found = False
        for e in queue:
            if e[0] == line:
                found = True
                break
        if found:
            accepted = True          # coalesced: no new entry, no counters
            code = REC_PF_COALESCE
        elif len(queue) >= queue_cap:
            q_dropped += 1
            accepted = False
            code = REC_PF_DROP
        else:
            queue.append((line, clock + filll[i], clock, homel[i],
                          slot_arrays[slotl[i]]))
            q_issued += 1
            accepted = True
            code = REC_PF_ISSUE
            if len(queue) > q_hw:
                q_hw = len(queue)
        if rec:
            record[i] = code | kflag
        if accepted:
            pf_issued += 1
            dropped.discard(line)
        else:
            pf_dropped += 1
            dropped.add(line)
    clock += tail
    busy += tail

    return ReplayOutcome(
        hazard=False, clock=clock, busy=busy, tags=tags, queue=queue,
        dropped=dropped, q_issued=q_issued, q_dropped=q_dropped, q_hw=q_hw,
        stalls=stalls, ghosts=[(s, g[0], g[1]) for s, g in ghosts.items()],
        counters={
            "cache_hits": hits, "cache_misses": misses,
            "local_fills": local_fills, "remote_fills": remote_fills,
            "pf_drop_bypass": drop_bypass, "prefetch_extracted": extracted,
            "prefetch_issued": pf_issued, "pf_dropped": pf_dropped,
            "invalidations": invalidations,
        })


# -- latency tables ----------------------------------------------------------

def read_latency_table(params: MachineParams, torus, pe: int,
                       extra: float = 0.0) -> List[float]:
    """Cache-miss read cost per home PE, mirroring ``Machine.read_latency``."""
    out = []
    for owner in range(params.n_pes):
        if owner == pe:
            out.append(params.local_mem + extra)
        else:
            out.append(params.remote_base
                       + params.remote_per_hop * torus.hops(pe, owner) + extra)
    return out


def write_latency_table(params: MachineParams, torus, pe: int,
                        extra: float = 0.0) -> List[float]:
    """Shared-write cost per home PE, mirroring ``Machine.write_latency``."""
    out = []
    for owner in range(params.n_pes):
        if owner == pe:
            out.append(params.write_local + extra)
        else:
            out.append(params.write_remote_base
                       + params.write_remote_per_hop * torus.hops(pe, owner)
                       + extra)
    return out


def uncached_read_latency_table(params: MachineParams, torus, pe: int,
                                extra: float = 0.0) -> List[float]:
    """Uncached/bypass read cost per home PE (local DRAM vs remote fetch)."""
    out = []
    for owner in range(params.n_pes):
        if owner == pe:
            out.append(params.uncached_local_read + extra)
        else:
            out.append(params.remote_base
                       + params.remote_per_hop * torus.hops(pe, owner) + extra)
    return out


# -- bulk cache refill helpers ----------------------------------------------

def bulk_fill_lines(cache, lines: Sequence[int],
                    values_flat: np.ndarray, versions_flat: np.ndarray) -> None:
    """Refill whole cache lines from the flat memory backing.

    Only lines still resident (tag match) are filled — callers pass the set
    of lines installed during a batched chunk, some of which may have been
    evicted again before the chunk ended."""
    lw = cache.line_words
    nl = cache.n_lines
    if len(lines) > 8:
        ln = np.asarray(lines, dtype=np.int64)
        ix = ln % nl
        ok = cache.tags[ix] == ln
        if not bool(ok.any()):
            return
        ln = ln[ok]
        ix = ix[ok]
        word_ix = ln[:, None] * lw + np.arange(lw, dtype=np.int64)
        cache.data[ix] = values_flat[word_ix]
        cache.vers[ix] = versions_flat[word_ix]
        return
    for line in lines:
        ix = line % nl
        if cache.tags[ix] == line:
            base = line * lw
            cache.data[ix, :] = values_flat[base:base + lw]
            cache.vers[ix, :] = versions_flat[base:base + lw]


def bulk_update_words(cache, addrs: Sequence[int],
                      values_flat: np.ndarray, versions_flat: np.ndarray) -> None:
    """Apply write-through word updates for resident lines, in bulk.

    Duplicate addresses are fine: fancy assignment applies in order, and the
    flat backing already holds each word's final value/version."""
    if not len(addrs):
        return
    a = np.asarray(addrs, dtype=np.int64)
    lw = cache.line_words
    ln = a // lw
    ix = ln % cache.n_lines
    ok = cache.tags[ix] == ln
    if not bool(ok.any()):
        return
    a = a[ok]
    ln = ln[ok]
    ix = ix[ok]
    off = a - ln * lw
    cache.data[ix, off] = values_flat[a]
    cache.vers[ix, off] = versions_flat[a]


_EMPTY_LINES = np.empty(0, dtype=np.int64)


def stale_lines(cache, versions_flat: np.ndarray) -> np.ndarray:
    """Resident line addresses holding any word whose cached version lags
    memory.  The batched backend falls back only when one of these lines
    intersects a line the chunk itself touches; disjoint stale residue is
    harmless (chunk reads hit fresh lines, the commit refills only chunk
    lines, so the stale data survives untouched — exactly as the scalar
    interpreter would leave it)."""
    valid = np.flatnonzero(cache.tags >= 0)
    if not valid.size:
        return _EMPTY_LINES
    lw = cache.line_words
    lines = cache.tags[valid]
    addrs = lines[:, None] * lw + np.arange(lw, dtype=np.int64)
    mask = (cache.vers[valid] < versions_flat[addrs]).any(axis=1)
    if not mask.any():
        return _EMPTY_LINES
    return lines[mask]


def stale_words(cache, versions_flat: np.ndarray):
    """Words resident in ``cache`` whose cached version lags memory.

    Returns ``{addr: (cached_value, cached_version, memory_version)}`` — the
    batched scan patches these into gathered read values so a chunk sees
    exactly what the scalar interpreter would have read."""
    valid = cache.tags >= 0
    if not bool(valid.any()):
        return {}
    lw = cache.line_words
    lines = cache.tags[valid]
    addrs = (lines[:, None] * lw + np.arange(lw, dtype=np.int64)).ravel()
    cvers = cache.vers[valid].ravel()
    mvers = versions_flat[addrs]
    mask = cvers < mvers
    if not bool(mask.any()):
        return {}
    vals = cache.data[valid].ravel()
    out = {}
    for a, v, cv, mv in zip(addrs[mask].tolist(), vals[mask].tolist(),
                            cvers[mask].tolist(), mvers[mask].tolist()):
        out[a] = (v, cv, mv)
    return out


__all__ = [
    "READ", "WRITE", "INSTALL", "INVALIDATE",
    "OUT_HIT", "OUT_MISS", "OUT_NA",
    "RE_COST", "RE_READ", "RE_WRITE", "RE_PF",
    "STALL_VECTOR", "STALL_LATE",
    "REC_NONE", "REC_HIT", "REC_EXTRACT", "REC_MISS", "REC_DROP_BYPASS",
    "REC_PF_ISSUE", "REC_PF_COALESCE", "REC_PF_DROP", "REC_KILL_FLAG",
    "EventClassification", "classify_events", "classify_events_multi",
    "ReplayOutcome", "replay_chunk",
    "read_latency_table", "write_latency_table", "uncached_read_latency_table",
    "bulk_fill_lines", "bulk_update_words", "stale_lines", "stale_words",
]
