"""Shared snooping bus: transaction costs and arbitration.

The MESI protocol serialises its coherence transactions (BusRd, BusRdX,
BusUpgr) on one shared split-transaction bus.  Each transaction occupies
the bus for an address phase (``bus_cycle`` cycles) plus any data
transfer; a requester whose transaction would start before the bus is
free stalls until the previous one drains.

The simulator executes PEs sequentially within an epoch, so "time" here
is each PE's own clock.  The bus keeps one monotone ``free_at`` horizon:
a requester at local time ``t`` is granted ``max(t, free_at)`` and the
difference is accounted as arbitration stall.  This is a deterministic
first-come-first-served approximation of bus contention — exact
interleaving-level arbitration would require a global event queue the
machine model intentionally does not have (see DESIGN.md §8).
"""

from __future__ import annotations

from typing import Tuple


class SnoopBus:
    """One shared bus with an occupancy horizon and transaction stats."""

    def __init__(self, bus_cycle: float) -> None:
        self.bus_cycle = float(bus_cycle)
        self.free_at = 0.0
        self.transactions = 0
        self.busy_cycles = 0.0
        self.stall_cycles = 0.0

    def acquire(self, clock: float, occupancy: float) -> Tuple[float, float]:
        """Arbitrate one transaction starting at local time ``clock``.

        ``occupancy`` is the number of cycles the transaction holds the
        bus (address phase + data beats).  Returns ``(grant, stall)``:
        the cycle the transaction begins and the arbitration stall the
        requester pays before it."""
        grant = max(clock, self.free_at)
        stall = grant - clock
        self.free_at = grant + occupancy
        self.transactions += 1
        self.busy_cycles += occupancy
        self.stall_cycles += stall
        return grant, stall

    def reset(self) -> None:
        self.free_at = 0.0
        self.transactions = 0
        self.busy_cycles = 0.0
        self.stall_cycles = 0.0


__all__ = ["SnoopBus"]
