"""Vectorised trace-driven cache evaluation.

The reference simulator services memory operations one by one; for bulk
cache-behaviour questions (miss-rate profiles, conflict diagnosis,
what-if cache geometries) that is needlessly slow.  This module
classifies a whole *address trace* at once with NumPy, exactly
reproducing the reference :class:`~repro.machine.cache.DirectMappedCache`
hit/miss outcomes.

Key observation (per the HPC-Python guides: vectorise the hot loop): in
a direct-mapped cache, an access hits iff the **previous install-capable
event on the same set** carried the same line and no invalidation of
that line intervened.  Grouping events by set index turns the
classification into a shifted comparison per set — no sequential scan.

Event kinds::

    READ        installs the line on miss (fills change tag state)
    WRITE       write-through no-allocate: never changes tag state
    INSTALL     unconditional fill (prefetch arrival, vector install)
    INVALIDATE  drops the line if present

The evaluator returns per-event outcomes; aggregate helpers compute
miss rates and per-set conflict profiles.  Exactness is enforced by a
hypothesis test against the reference cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from . import batchops
from .params import MachineParams

# Event kind codes (canonical definitions live in batchops; re-exported
# here for backwards compatibility and analysis-side convenience).
READ = batchops.READ
WRITE = batchops.WRITE
INSTALL = batchops.INSTALL
INVALIDATE = batchops.INVALIDATE

#: Outcome codes per event.
OUT_HIT = batchops.OUT_HIT
OUT_MISS = batchops.OUT_MISS
OUT_NA = batchops.OUT_NA  # writes/installs/invalidates have no hit/miss outcome


@dataclass
class TraceResult:
    """Classification of one trace."""

    outcomes: np.ndarray       #: per-event OUT_* codes
    reads: int
    hits: int
    misses: int
    set_index: np.ndarray      #: per-event cache set
    line_addr: np.ndarray      #: per-event line address

    @property
    def hit_rate(self) -> float:
        return self.hits / self.reads if self.reads else 0.0

    def per_set_misses(self, n_sets: int) -> np.ndarray:
        """Miss count per cache set — the conflict 'heat map'."""
        mask = self.outcomes == OUT_MISS
        return np.bincount(self.set_index[mask], minlength=n_sets)


def classify_trace(addrs: np.ndarray, kinds: Optional[np.ndarray],
                   params: MachineParams) -> TraceResult:
    """Exact direct-mapped hit/miss classification of an event trace.

    ``addrs`` are global word addresses in program order; ``kinds`` are
    the event codes (``None`` means all READs).  The cache starts cold.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    n = addrs.shape[0]
    if kinds is None:
        kinds = np.zeros(n, dtype=np.int8)
    else:
        kinds = np.asarray(kinds, dtype=np.int8)
        if kinds.shape[0] != n:
            raise ValueError("addrs and kinds must have equal length")

    line_addr = addrs // params.line_words
    set_index = (line_addr % params.n_lines).astype(np.int64)

    # Shared kernel with the batched execution backend: cold initial state,
    # vectorized shifted-comparison path for traces without INVALIDATE,
    # exact per-event scan otherwise.
    cls = batchops.classify_events(line_addr, kinds, params.n_lines)
    outcomes = cls.outcomes
    is_read = kinds == READ
    reads = int(is_read.sum())
    hits = int((outcomes == OUT_HIT).sum())
    return TraceResult(outcomes, reads, hits, reads - hits, set_index, line_addr)


def classify_read_trace(addrs: np.ndarray, params: MachineParams) -> TraceResult:
    """Fully vectorised classification of a pure READ trace.

    With reads only, every access installs its line, so the resident line
    before event *k* of a set is simply the line of event *k-1* of that
    set — a shifted comparison, no scan at all.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    n = addrs.shape[0]
    line_addr = addrs // params.line_words
    set_index = (line_addr % params.n_lines).astype(np.int64)
    outcomes = np.full(n, OUT_MISS, dtype=np.int8)
    if n == 0:
        return TraceResult(outcomes, 0, 0, 0, set_index, line_addr)

    order = np.argsort(set_index, kind="stable")
    s_sets = set_index[order]
    s_lines = line_addr[order]
    same_set = np.empty(n, dtype=bool)
    same_set[0] = False
    same_set[1:] = s_sets[1:] == s_sets[:-1]
    same_line = np.empty(n, dtype=bool)
    same_line[0] = False
    same_line[1:] = s_lines[1:] == s_lines[:-1]
    hit_sorted = same_set & same_line
    hits_idx = order[hit_sorted]
    outcomes[hits_idx] = OUT_HIT
    hits = int(hit_sorted.sum())
    return TraceResult(outcomes, n, hits, n - hits, set_index, line_addr)


# ---------------------------------------------------------------------------
# what-if analysis helpers
# ---------------------------------------------------------------------------

def miss_rate_vs_cache_size(addrs: np.ndarray, params: MachineParams,
                            sizes_bytes: Tuple[int, ...]) -> Dict[int, float]:
    """Miss rate of a read trace under alternative cache sizes (the
    classic working-set curve)."""
    out = {}
    for size in sizes_bytes:
        variant = params.with_(cache_bytes=size)
        result = classify_read_trace(addrs, variant)
        out[size] = 1.0 - result.hit_rate
    return out


def conflict_profile(addrs: np.ndarray, params: MachineParams,
                     top: int = 8) -> Tuple[np.ndarray, np.ndarray]:
    """(set indices, miss counts) of the ``top`` most-conflicted sets of
    a read trace — pinpoints power-of-two aliasing like the VPENTA
    column-stride pathology."""
    result = classify_read_trace(addrs, params)
    per_set = result.per_set_misses(params.n_lines)
    worst = np.argsort(per_set)[::-1][:top]
    return worst, per_set[worst]


__all__ = ["READ", "WRITE", "INSTALL", "INVALIDATE",
           "OUT_HIT", "OUT_MISS", "OUT_NA", "TraceResult",
           "classify_trace", "classify_read_trace",
           "miss_rate_vs_cache_size", "conflict_profile"]
