"""Processing element state: clock, cache, prefetch hardware, stats."""

from __future__ import annotations

from dataclasses import fields
from typing import Optional

import numpy as np

from .cache import DirectMappedCache
from .params import MachineParams
from .prefetchq import PrefetchQueue, VectorUnit
from .stats import PEStats

#: All PEStats counter names, in declaration order (plane snapshots).
STAT_FIELDS = tuple(f.name for f in fields(PEStats))


class PE:
    """All per-processor simulator state."""

    __slots__ = ("pe_id", "params", "_clocks", "_clock_slot", "cache",
                 "queue", "vectors", "last_prefetch_pe", "dropped_lines",
                 "stats")

    def __init__(self, pe_id: int, params: MachineParams) -> None:
        self.pe_id = pe_id
        self.params = params
        # The clock lives as one slot of a (possibly machine-stacked)
        # float64 array — see rebase_clock.  A standalone PE gets its
        # own one-element plane.
        self._clocks = np.zeros(1, dtype=np.float64)
        self._clock_slot = 0
        self.cache = DirectMappedCache(params)
        self.queue = PrefetchQueue(params)
        self.vectors = VectorUnit(params)
        self.last_prefetch_pe: Optional[int] = None
        # Line addresses whose prefetch was dropped and not yet re-fetched:
        # the next read to such a line degrades to a bypass-cache fetch
        # (the paper's rule 2 for dropped prefetches).
        self.dropped_lines: set = set()
        self.stats = PEStats()

    @property
    def clock(self) -> float:
        """This PE's clock, read from the stacked clock plane.

        Returned as a plain float so every downstream consumer (stat
        accumulators, signatures, JSON records) keeps native types."""
        return float(self._clocks[self._clock_slot])

    @clock.setter
    def clock(self, value: float) -> None:
        self._clocks[self._clock_slot] = value

    def rebase_clock(self, clocks: np.ndarray, slot: int) -> None:
        """Move this PE's clock into row ``slot`` of a machine-stacked
        plane (carrying the current value along), so cross-PE consumers
        — barrier, elapsed, plane replay — address every clock in one
        NumPy operation."""
        clocks[slot] = self._clocks[self._clock_slot]
        self._clocks = clocks
        self._clock_slot = slot

    def advance(self, cycles: float) -> None:
        self._clocks[self._clock_slot] += cycles
        self.stats.busy_cycles += cycles

    def wait_until(self, time: float) -> float:
        """Stall until ``time``; returns the stall duration."""
        clocks = self._clocks
        slot = self._clock_slot
        now = float(clocks[slot])
        if time <= now:
            return 0.0
        stall = time - now
        clocks[slot] = time
        self.stats.idle_cycles += stall
        return stall

    def reset_clock(self) -> None:
        self._clocks[self._clock_slot] = 0.0

    def metrics_snapshot(self) -> tuple:
        """The counters the epoch metrics timeline tracks as deltas:
        (reads, hits, misses, prefetch_issued, pf_dropped, idle)."""
        s = self.stats
        return (s.reads, s.cache_hits, s.cache_misses, s.prefetch_issued,
                s.pf_dropped, s.idle_cycles)

    # -- cross-PE plane support -------------------------------------------
    def plane_sig(self) -> tuple:
        """Hashable signature of this PE's timing-relevant state.

        Two machine states whose per-PE signatures (plus the shared-memory
        version part, owned by the caller) are equal evolve identically
        over an epoch with fixed address streams: the clock and float
        cycle counters are pinned as absolutes (so recorded absolutes can
        be restored exactly), the full tag array fixes every cache
        classification, resident-line versions fix the stale-overlap
        guards, and the queue/vector/drop state fixes prefetch replay."""
        s = self.stats
        cache = self.cache
        return (self.clock, s.busy_cycles, s.idle_cycles,
                s.vector_stall_cycles, s.prefetch_late_cycles,
                cache.tags.tobytes(), cache.resident_vers_bytes(),
                tuple(self.queue.snapshot()),
                tuple(sorted(self.dropped_lines)),
                tuple(self.vectors.snapshot()), self.last_prefetch_pe)

    def plane_snapshot(self) -> tuple:
        """Deep capture of every per-PE field a DOALL epoch can mutate,
        for diffing after a plane-epoch recording run."""
        s = self.stats
        tags, data, vers = self.cache.plane_state()
        return (self.clock, {f: getattr(s, f) for f in STAT_FIELDS},
                tags, data, vers,
                tuple(self.queue.snapshot()), self.queue.issued,
                self.queue.dropped,
                tuple(self.vectors.snapshot()), self.vectors.issued,
                self.last_prefetch_pe, set(self.dropped_lines))

    @staticmethod
    def plane_sig_from_snapshot(snap: tuple) -> tuple:
        """:meth:`plane_sig` recomputed from a :meth:`plane_snapshot` —
        the recorder keys its entry on the *pre*-epoch state it captured,
        and the two must produce structurally identical tuples."""
        (clock, stats, tags, _data, vers, q, _qi, _qd, tv, _vi, lp,
         dl) = snap
        return (clock, stats["busy_cycles"], stats["idle_cycles"],
                stats["vector_stall_cycles"], stats["prefetch_late_cycles"],
                tags.tobytes(), vers[tags >= 0].tobytes(), q,
                tuple(sorted(dl)), tv, lp)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PE {self.pe_id} @ {self.clock:.0f} cycles>"


__all__ = ["PE", "STAT_FIELDS"]
