"""Processing element state: clock, cache, prefetch hardware, stats."""

from __future__ import annotations

from typing import Optional

from .cache import DirectMappedCache
from .params import MachineParams
from .prefetchq import PrefetchQueue, VectorUnit
from .stats import PEStats


class PE:
    """All per-processor simulator state."""

    __slots__ = ("pe_id", "params", "clock", "cache", "queue", "vectors",
                 "last_prefetch_pe", "dropped_lines", "stats")

    def __init__(self, pe_id: int, params: MachineParams) -> None:
        self.pe_id = pe_id
        self.params = params
        self.clock: float = 0.0
        self.cache = DirectMappedCache(params)
        self.queue = PrefetchQueue(params)
        self.vectors = VectorUnit(params)
        self.last_prefetch_pe: Optional[int] = None
        # Line addresses whose prefetch was dropped and not yet re-fetched:
        # the next read to such a line degrades to a bypass-cache fetch
        # (the paper's rule 2 for dropped prefetches).
        self.dropped_lines: set = set()
        self.stats = PEStats()

    def advance(self, cycles: float) -> None:
        self.clock += cycles
        self.stats.busy_cycles += cycles

    def wait_until(self, time: float) -> float:
        """Stall until ``time``; returns the stall duration."""
        if time <= self.clock:
            return 0.0
        stall = time - self.clock
        self.clock = time
        self.stats.idle_cycles += stall
        return stall

    def reset_clock(self) -> None:
        self.clock = 0.0

    def metrics_snapshot(self) -> tuple:
        """The counters the epoch metrics timeline tracks as deltas:
        (reads, hits, misses, prefetch_issued, pf_dropped, idle)."""
        s = self.stats
        return (s.reads, s.cache_hits, s.cache_misses, s.prefetch_issued,
                s.pf_dropped, s.idle_cycles)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PE {self.pe_id} @ {self.clock:.0f} cycles>"


__all__ = ["PE"]
