"""Global address map: arrays -> word addresses -> home PEs.

The T3D presents a global, physically-distributed address space: every
word has a *home* PE whose local DRAM holds it.  We lay arrays out
consecutively in a global word-addressed space, each array aligned to a
cache-line boundary (the paper requires line-aligned arrays for the
prefetch-target mapping calculations; the runtime relies on the same
property).

Shared arrays must have word-sized elements (the T3D prefetch unit moves
64-bit words); narrower element types are allowed for private arrays
only.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..ir.arrays import ArrayDecl, DistKind
from ..ir.dtypes import WORD_BYTES
from .params import MachineParams


def layout_bases(arrays: Iterable[ArrayDecl], line_words: int) -> Tuple[Dict[str, int], int]:
    """Line-aligned base word address per array, plus the total extent.

    The single source of truth for the global layout: :class:`AddressMap`
    and :class:`~repro.machine.memory.Memory` both derive their bases from
    it, so flat global addresses index memory's backing store directly.
    """
    bases: Dict[str, int] = {}
    cursor = line_words  # keep address 0 unused (debug aid)
    for decl in arrays:
        bases[decl.name] = cursor
        cursor += _round_up(decl.size, line_words)
    return bases, cursor


class AddressMap:
    """Assigns line-aligned global word addresses to every array and
    answers ownership queries."""

    def __init__(self, arrays: Iterable[ArrayDecl], params: MachineParams) -> None:
        self.params = params
        self.decls: Dict[str, ArrayDecl] = {}
        decls = list(arrays)
        for decl in decls:
            if decl.is_shared and decl.dtype.size != WORD_BYTES:
                raise ValueError(
                    f"shared array {decl.name}: element size must be one word "
                    f"({WORD_BYTES} bytes) on this machine")
            self.decls[decl.name] = decl
        self.bases, self.total_words = layout_bases(decls, params.line_words)
        self._owner_cache: Dict[str, np.ndarray] = {}

    # -- address arithmetic ---------------------------------------------------
    def base(self, name: str) -> int:
        return self.bases[name]

    def addr(self, name: str, flat: int) -> int:
        """Global word address of a flat (0-based, column-major) element."""
        return self.bases[name] + flat

    def addr_vec(self, name: str, flats: np.ndarray) -> np.ndarray:
        return self.bases[name] + flats

    def line_of(self, addr: int) -> int:
        return addr // self.params.line_words

    # -- ownership -----------------------------------------------------------------
    def owner_table(self, name: str) -> np.ndarray:
        """Per-element home PE for one array (cached, flat column-major).

        Private arrays have no single home; callers must special-case
        them (each PE holds its own copy locally)."""
        if name in self._owner_cache:
            return self._owner_cache[name]
        decl = self.decls[name]
        n_pes = self.params.n_pes
        if not decl.is_shared:
            raise ValueError(f"array {decl.name} is private; ownership is per-PE")
        axis = decl.dist_axis
        stride = 1
        for extent in decl.shape[:axis]:
            stride *= extent
        flat = np.arange(decl.size, dtype=np.int64)
        axis_index = (flat // stride) % decl.shape[axis]  # 0-based
        if decl.dist.kind == DistKind.BLOCK:
            block = decl.block_size(n_pes)
            owners = np.minimum(axis_index // block, n_pes - 1)
        else:  # CYCLIC
            owners = axis_index % n_pes
        owners = owners.astype(np.int16)
        self._owner_cache[name] = owners
        return owners

    def owner(self, name: str, flat: int) -> int:
        return int(self.owner_table(name)[flat])

    def is_local(self, name: str, flat: int, pe: int) -> bool:
        decl = self.decls[name]
        if not decl.is_shared:
            return True
        return self.owner(name, flat) == pe

    # -- layout introspection (debugging / reports) ---------------------------------
    def layout(self) -> List[Tuple[str, int, int]]:
        """(name, base, words) per array, ascending base."""
        return sorted(((name, base, self.decls[name].size)
                       for name, base in self.bases.items()), key=lambda t: t[1])

    def array_at(self, addr: int) -> Optional[str]:
        for name, base, words in self.layout():
            if base <= addr < base + words:
                return name
        return None


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


__all__ = ["AddressMap"]
