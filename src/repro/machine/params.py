"""Machine parameter sets.

The defaults model a Cray T3D-class PE: a 150 MHz Alpha 21064 with an
8 KB direct-mapped write-through data cache (32-byte lines, no write
allocate), local DRAM, a 3-D torus interconnect to remote PEs' memories,
a DTB-Annex-mediated prefetch unit with a 16-slot prefetch queue, and a
SHMEM-style block-transfer engine for vector prefetches.

All costs are in processor clock cycles.  Absolute values are published
T3D magnitudes (Arpaci et al. ISCA'95; Numrich's T3D address-space
report); the reproduction depends on their *ratios* (remote ≫ local ≫
hit), which are faithful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..ir.dtypes import WORD_BYTES


@dataclass(frozen=True)
class MachineParams:
    """Complete description of the simulated multiprocessor."""

    n_pes: int = 8

    # -- data cache (per PE) ------------------------------------------------
    cache_bytes: int = 8192
    line_bytes: int = 32

    # -- memory/network latencies (cycles) -----------------------------------
    cache_hit: int = 2
    local_mem: int = 22          #: local DRAM read (fill one line)
    uncached_local_read: int = 5  #: uncached local word read (DRAM page-mode
    #: streaming makes these cheaper than a full line fill)
    remote_base: int = 100       #: remote read, 0-hop component
    remote_per_hop: int = 3
    write_local: int = 3         #: write-through, buffered local store
    write_remote_base: int = 28  #: remote store (buffered, no reply wait)
    write_remote_per_hop: int = 1

    # -- prefetch hardware ------------------------------------------------------
    prefetch_issue: int = 7        #: issue a line prefetch (queue interaction)
    dtb_setup: int = 14            #: DTB Annex entry setup on target-PE change
    prefetch_extract: int = 5      #: extract an arrived word/line from queue
    prefetch_queue_slots: int = 16
    vector_startup: int = 80       #: SHMEM-style block transfer startup
    vector_per_word: float = 0.4   #: pipelined transfer, cycles per word
    max_outstanding_vectors: int = 2

    # -- arithmetic/control costs -----------------------------------------------
    flop_add: int = 4
    flop_mul: int = 4
    flop_div: int = 30
    intrinsic_cost: int = 40
    int_op: int = 1
    loop_overhead: int = 2       #: per-iteration increment/branch

    # -- epochs / runtime ----------------------------------------------------------
    barrier_base: int = 80
    barrier_per_log_pe: int = 25
    epoch_start: int = 40
    dynamic_chunk: int = 4
    dynamic_sched_overhead: int = 140  #: remote fetch&inc per chunk

    # -- CRAFT (BASE-version) software shared-memory overheads ----------------------
    craft_shared_ref_overhead: int = 3  #: per-access global address translation
    craft_epoch_overhead: int = 1200     #: doshared setup/teardown per epoch

    # -- hardware coherence baselines (mesi / dir versions) -------------------------
    bus_cycle: float = 2.0        #: snooping-bus address phase / beat time
    dir_msg_base: float = 18.0    #: directory message, 0-hop component
    dir_proc: int = 4             #: home-controller occupancy per request
    dir_ptr_limit: int = 4        #: dir-lp pointers before broadcast

    torus_dims: Optional[Tuple[int, int, int]] = None

    # -- derived quantities ------------------------------------------------------
    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise ValueError("n_pes must be >= 1")
        if self.line_bytes % WORD_BYTES != 0:
            raise ValueError("line size must be a whole number of words")
        if self.cache_bytes % self.line_bytes != 0:
            raise ValueError("cache size must be a whole number of lines")

    @property
    def line_words(self) -> int:
        return self.line_bytes // WORD_BYTES

    @property
    def n_lines(self) -> int:
        return self.cache_bytes // self.line_bytes

    @property
    def cache_words(self) -> int:
        return self.cache_bytes // WORD_BYTES

    def line_elems(self, elem_bytes: int) -> int:
        """Elements of the given size per cache line (at least 1)."""
        return max(1, self.line_bytes // elem_bytes)

    def log2_pes(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.n_pes))))

    def barrier_cost(self) -> int:
        if self.n_pes == 1:
            return 0
        return self.barrier_base + self.barrier_per_log_pe * self.log2_pes()

    def with_(self, **overrides) -> "MachineParams":
        """A copy with selected fields replaced (ablation studies)."""
        return replace(self, **overrides)


def t3d(n_pes: int = 8, **overrides) -> MachineParams:
    """The default Cray T3D-like configuration at a given PE count."""
    return MachineParams(n_pes=n_pes).with_(**overrides) if overrides else MachineParams(n_pes=n_pes)


def sequential_params(base: MachineParams) -> MachineParams:
    """Single-PE configuration used for the sequential baseline."""
    return base.with_(n_pes=1)


__all__ = ["MachineParams", "t3d", "sequential_params"]
