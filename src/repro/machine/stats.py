"""Execution statistics counters.

One :class:`PEStats` per PE, merged into a :class:`MachineStats` for
reporting.  Counters are plain ints (cheap to bump on the hot path).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List


@dataclass
class PEStats:
    """Per-PE event counters."""

    reads: int = 0
    writes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    local_fills: int = 0
    remote_fills: int = 0
    bypass_reads: int = 0
    uncached_local_reads: int = 0
    uncached_remote_reads: int = 0
    remote_writes: int = 0
    stale_hits: int = 0
    prefetch_issued: int = 0
    pf_dropped: int = 0        #: prefetches dropped (capacity or injected)
    pf_drop_bypass: int = 0    #: dropped prefetches replaced by bypass fetches
    prefetch_extracted: int = 0
    prefetch_late_cycles: float = 0.0
    prefetch_unused: int = 0
    vector_prefetches: int = 0
    vector_words: int = 0
    vector_stall_cycles: float = 0.0
    invalidations: int = 0
    dtb_setups: int = 0
    # -- hardware coherence protocols (mesi / dir versions) ------------
    bus_rd: int = 0            #: BusRd transactions issued
    bus_rdx: int = 0           #: BusRdX (read-for-ownership) transactions
    bus_upgr: int = 0          #: BusUpgr (invalidate-only) transactions
    bus_stall_cycles: float = 0.0  #: bus arbitration stalls
    c2c_transfers: int = 0     #: lines supplied cache-to-cache
    writebacks: int = 0        #: modified lines flushed (evict/downgrade)
    silent_upgrades: int = 0   #: MESI E->M transitions (no bus traffic)
    coh_invalidations: int = 0  #: remote copies killed by this PE's writes
    dir_requests: int = 0      #: directory transactions issued
    dir_messages: int = 0      #: directory protocol messages (all hops)
    dir_broadcasts: int = 0    #: limited-pointer overflow broadcasts
    dir_stall_cycles: float = 0.0  #: home-controller occupancy stalls
    priority_bypasses: int = 0  #: dir-pp requests serviced ahead of queue
    flops: int = 0
    iterations: int = 0
    busy_cycles: float = 0.0
    idle_cycles: float = 0.0

    def merge(self, other: "PEStats") -> None:
        if not isinstance(other, PEStats):
            raise TypeError(f"merge expects PEStats, got "
                            f"{type(other).__name__}")
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def add_bulk(self, **deltas: float) -> None:
        """Accumulate many counters at once (batched backend commit path).

        Keyword names must be counter *field* names.  Validated against
        the dataclass fields explicitly: ``getattr`` alone would let a
        typo silently shadow a class-level attribute (``hit_rate``, a
        method name) instead of raising."""
        for name, delta in deltas.items():
            if name not in _PE_COUNTER_FIELDS:
                raise ValueError(
                    f"unknown PEStats counter {name!r}; valid counters: "
                    f"{', '.join(sorted(_PE_COUNTER_FIELDS))}")
            setattr(self, name, getattr(self, name) + delta)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


#: The counter names ``add_bulk`` accepts (exactly the dataclass fields).
_PE_COUNTER_FIELDS = frozenset(f.name for f in fields(PEStats))


@dataclass
class MachineStats:
    """Aggregated machine-level statistics for one run."""

    per_pe: List[PEStats] = field(default_factory=list)
    stale_reads: int = 0           #: coherence violations observed
    stale_examples: List[str] = field(default_factory=list)
    barriers: int = 0
    epochs: int = 0

    def total(self) -> PEStats:
        out = PEStats()
        for pe_stats in self.per_pe:
            out.merge(pe_stats)
        return out

    def as_dict(self) -> Dict[str, float]:
        total = self.total()
        out = {f.name: getattr(total, f.name) for f in fields(total)}
        out.update(stale_reads=self.stale_reads, barriers=self.barriers,
                   epochs=self.epochs)
        return out

    def summary(self) -> str:
        total = self.total()
        return (f"reads={total.reads} writes={total.writes} "
                f"hit_rate={total.hit_rate:.3f} "
                f"prefetches={total.prefetch_issued} "
                f"(dropped {total.pf_dropped}, "
                f"{total.pf_drop_bypass} replaced by bypass) "
                f"vectors={total.vector_prefetches} "
                f"stale_reads={self.stale_reads} epochs={self.epochs}")


__all__ = ["PEStats", "MachineStats"]
