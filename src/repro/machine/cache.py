"""Per-PE direct-mapped, write-through, no-write-allocate data cache.

This is the T3D Alpha 21064 dcache shape: 8 KB, 32-byte lines, direct
mapped, write-through with no write allocation.  Crucially there is **no
hardware coherence**: a remote PE's write to memory neither updates nor
invalidates lines cached here — that is the staleness the CCDP compiler
must neutralise.

Lines store values *and* per-word version numbers so a stale read is an
exact, observable event: the cache happily returns the old value and the
coherence checker compares the cached version with memory's.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .params import MachineParams


class DirectMappedCache:
    """One PE's data cache, addressed by global word address."""

    __slots__ = ("n_lines", "line_words", "tags", "data", "vers")

    def __init__(self, params: MachineParams) -> None:
        self.n_lines = params.n_lines
        self.line_words = params.line_words
        # tag == full line address (addr // line_words); -1 means invalid.
        self.tags = np.full(self.n_lines, -1, dtype=np.int64)
        self.data = np.zeros((self.n_lines, self.line_words), dtype=np.float64)
        self.vers = np.zeros((self.n_lines, self.line_words), dtype=np.int64)

    # -- address helpers -------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return addr // self.line_words

    def set_index(self, line_addr: int) -> int:
        return line_addr % self.n_lines

    # -- lookup ---------------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """True when the word's line is present (valid, tag match)."""
        line = addr // self.line_words
        return self.tags[line % self.n_lines] == line

    def read(self, addr: int) -> Optional[Tuple[float, int]]:
        """(value, version) on hit, ``None`` on miss.  The value returned
        on a hit is whatever the cache holds — possibly stale."""
        line = addr // self.line_words
        index = line % self.n_lines
        if self.tags[index] != line:
            return None
        offset = addr - line * self.line_words
        return float(self.data[index, offset]), int(self.vers[index, offset])

    # -- fills / updates ------------------------------------------------------------
    def install(self, line_addr: int, words: np.ndarray, versions: np.ndarray) -> None:
        """Fill a whole line (read miss, prefetch arrival, vector install)."""
        index = line_addr % self.n_lines
        self.tags[index] = line_addr
        self.data[index, :] = words
        self.vers[index, :] = versions

    def write_through_update(self, addr: int, value: float, version: int) -> bool:
        """On a store: update the word if its line is present (no
        allocation on miss).  Returns True when the line was present."""
        line = addr // self.line_words
        index = line % self.n_lines
        if self.tags[index] != line:
            return False
        offset = addr - line * self.line_words
        self.data[index, offset] = value
        self.vers[index, offset] = version
        return True

    # -- invalidation -----------------------------------------------------------------
    def invalidate_line(self, line_addr: int) -> bool:
        """Invalidate one line if present; returns True when it was."""
        index = line_addr % self.n_lines
        if self.tags[index] == line_addr:
            self.tags[index] = -1
            return True
        return False

    def invalidate_range(self, addr_lo: int, addr_hi: int) -> int:
        """Invalidate every present line overlapping [addr_lo, addr_hi];
        returns the number of lines dropped."""
        first = addr_lo // self.line_words
        last = addr_hi // self.line_words
        span = last - first + 1
        if span >= self.n_lines:
            count = int(np.count_nonzero(self.tags >= 0))
            self.tags[:] = -1
            return count
        if span > 4:
            # Fewer lines than sets: each line maps to a distinct set, so
            # one gather/scatter pair invalidates every present line.
            lines = np.arange(first, last + 1, dtype=np.int64)
            ix = lines % self.n_lines
            hit = self.tags[ix] == lines
            count = int(np.count_nonzero(hit))
            if count:
                self.tags[ix[hit]] = -1
            return count
        count = 0
        for line in range(first, last + 1):
            if self.invalidate_line(line):
                count += 1
        return count

    def invalidate_sets(self, sets: np.ndarray) -> int:
        """Invalidate whatever lines are resident in the given cache sets
        (fault-injection eviction storms); returns the number dropped.
        Always coherence-safe: write-through means a dropped line only
        costs a fresh refill."""
        dropped = int(np.count_nonzero(self.tags[sets] >= 0))
        self.tags[sets] = -1
        return dropped

    def flush(self) -> None:
        self.tags[:] = -1

    # -- batched classification ------------------------------------------------
    def classify_trace(self, addrs: np.ndarray,
                       kinds: Optional[np.ndarray] = None):
        """Classify an event trace against this cache's *current* contents
        without mutating it (warm-start variant of ``fastcache``).

        Returns a :class:`~repro.machine.batchops.EventClassification`; the
        batched execution backend uses it to service whole read traces in
        one shot and then commit the resulting tag changes."""
        from .batchops import classify_events
        line_addrs = np.asarray(addrs, dtype=np.int64) // self.line_words
        return classify_events(line_addrs, kinds, self.n_lines,
                               initial_tags=self.tags)

    # -- cross-PE plane support ------------------------------------------------
    def rebase(self, tags: np.ndarray, data: np.ndarray,
               vers: np.ndarray) -> None:
        """Re-back this cache's state onto caller-owned arrays (one row
        of the machine's stacked ``(n_pes, ...)`` cache planes).  The
        rows must already hold this cache's current contents; every
        mutation in this class is in-place, so views stay coherent."""
        self.tags = tags
        self.data = data
        self.vers = vers

    def plane_state(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copies of (tags, data, vers): this cache's row of the stacked
        multi-PE plane state (see :class:`~repro.machine.machine.MachinePlane`
        and the batched backend's plane-epoch recorder)."""
        return self.tags.copy(), self.data.copy(), self.vers.copy()

    def resident_vers_bytes(self) -> bytes:
        """Version words of *resident* lines only, as signature bytes.

        Dead sets (tag ``-1``) keep whatever data/version garbage their
        last occupant froze there; that garbage provably cannot influence
        future behaviour (a dead set is either never touched again —
        both paths leave it as-is — or re-installed, which overwrites
        it), so plane signatures exclude it to avoid spurious misses."""
        return self.vers[self.tags >= 0].tobytes()

    # -- introspection -----------------------------------------------------------------
    def occupancy(self) -> int:
        return int(np.count_nonzero(self.tags >= 0))

    def resident_lines(self) -> np.ndarray:
        return self.tags[self.tags >= 0].copy()


__all__ = ["DirectMappedCache"]
