"""Cray T3D-class machine model: non-coherent write-through caches,
distributed memory over a 3-D torus, DTB-Annex prefetch queue, and a
SHMEM-style vector transfer engine — with an exact stale-read checker.
"""

from .addressing import AddressMap
from .cache import DirectMappedCache
from .fastcache import (TraceResult, classify_read_trace, classify_trace,
                        conflict_profile, miss_rate_vs_cache_size)
from .machine import Machine, StaleReadError
from .memory import Memory
from .oracle import CoherenceOracle, StaleReadViolation
from .params import MachineParams, sequential_params, t3d
from .pe import PE
from .prefetchq import PrefetchEntry, PrefetchQueue, VectorTransfer, VectorUnit
from .stats import MachineStats, PEStats
from .topology import Torus, torus_for, torus_shape

__all__ = [
    "AddressMap", "DirectMappedCache",
    "TraceResult", "classify_trace", "classify_read_trace",
    "conflict_profile", "miss_rate_vs_cache_size", "Machine", "StaleReadError", "Memory",
    "CoherenceOracle", "StaleReadViolation",
    "MachineParams", "t3d", "sequential_params", "PE",
    "PrefetchEntry", "PrefetchQueue", "VectorTransfer", "VectorUnit",
    "MachineStats", "PEStats", "Torus", "torus_for", "torus_shape",
]
