"""The multiprocessor facade: memory + caches + prefetch hardware +
timing, with an exact coherence checker.

Every operation is charged to one PE's clock.  The machine is
deliberately policy-free: whether shared data is cached (CCDP) or not
(BASE), and whether CRAFT translation overheads apply, are per-call
flags decided by the runtime's execution configuration.

Coherence semantics: caches are non-coherent and write-through.  A read
that hits a cached line returns the cached value *even if memory has
moved on* — the checker records a stale-read event (and can be armed to
raise).  A correct CCDP transformation produces zero stale reads; a
naively-cached run produces both events and numerically wrong results.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..faults.state import make_state
from ..ir.arrays import ArrayDecl
from .addressing import AddressMap
from .memory import Memory
from .oracle import CoherenceOracle
from .params import MachineParams
from .pe import PE
from .prefetchq import PrefetchEntry, VectorTransfer
from .protocols import make_protocol
from .stats import MachineStats, PEStats
from .topology import Torus, torus_for


class StaleReadError(RuntimeError):
    """Raised in strict mode when a PE consumes a stale cached value."""


class Machine:
    """A simulated T3D-class multiprocessor."""

    def __init__(self, arrays: Iterable[ArrayDecl], params: MachineParams,
                 on_stale: str = "record", trace: bool = False,
                 fault_plan=None, oracle: bool = False,
                 tracer=None, protocol: Optional[str] = None) -> None:
        if on_stale not in ("record", "raise"):
            raise ValueError("on_stale must be 'record' or 'raise'")
        if tracer is not None and not callable(getattr(tracer, "emit", None)):
            raise TypeError("tracer must expose an emit(event) method")
        decls = list(arrays)
        self.params = params
        self.addr_map = AddressMap(decls, params)
        self.memory = Memory(decls, params)
        self.torus = torus_for(params.n_pes)
        self.pes: List[PE] = [PE(i, params) for i in range(params.n_pes)]
        # Stacked clock plane: every PE's clock is one slot of this
        # (n_pes,) array, so barrier/elapsed/replay touch all clocks in
        # single NumPy operations while pe.clock stays a plain float
        # property for per-PE code.
        self.clocks = np.zeros(params.n_pes, dtype=np.float64)
        for pe in self.pes:
            pe.rebase_clock(self.clocks, pe.pe_id)
        # Stacked cache planes: every PE's direct-mapped cache state lives
        # as one row of these (n_pes, ...) arrays, and each cache holds
        # row views into them.  Per-PE code is unchanged (all cache
        # mutations are in-place), while cross-PE consumers — the plane
        # replay's scatters, the stacked classifier — address the whole
        # machine in single NumPy operations.
        self.cache_tags = np.full((params.n_pes, params.n_lines), -1,
                                  dtype=np.int64)
        self.cache_data = np.zeros(
            (params.n_pes, params.n_lines, params.line_words),
            dtype=np.float64)
        self.cache_vers = np.zeros(
            (params.n_pes, params.n_lines, params.line_words),
            dtype=np.int64)
        for pe in self.pes:
            pe.cache.rebase(self.cache_tags[pe.pe_id],
                            self.cache_data[pe.pe_id],
                            self.cache_vers[pe.pe_id])
        # Flat aliases over the same storage, for the plane replay's
        # scatters: 1D fancy-index assignment is markedly cheaper than
        # 2D index-pair assignment at the same element count.
        self.cache_tags_flat = self.cache_tags.reshape(-1)
        self.cache_data_rows = self.cache_data.reshape(
            -1, params.line_words)
        self.cache_vers_rows = self.cache_vers.reshape(
            -1, params.line_words)
        self.stats = MachineStats(per_pe=[pe.stats for pe in self.pes])
        self.on_stale = on_stale
        self._lw = params.line_words
        # Fault injection: realise the (immutable) plan into per-run state
        # with one RNG stream per (model, PE), then hand hooks to the
        # components that need them.  None when no plan is active — the
        # hot paths below guard on that and stay fault-free-identical.
        # Machine-event tracer (repro.obs.Tracer or None).  Every hot-path
        # emission below is guarded by a plain None check; with no tracer
        # attached the instrumentation is a single attribute test.
        self.tracer = tracer
        self.faults = make_state(fault_plan, params.n_pes)
        self.memory.faults = self.faults
        if self.faults is not None:
            self.faults.tracer = tracer
        if self.faults is not None:
            for pe in self.pes:
                pe.queue.squeeze = (
                    lambda cap, _pe=pe.pe_id:
                    self.faults.squeeze_capacity(_pe, cap))
        # Hardware coherence protocol (mesi/dir versions): a nominal
        # line-state machine layered over the write-through value plane.
        # It replaces the plain miss/write latencies and physically
        # invalidates remote copies on writes — see machine.protocols.
        self.protocol = make_protocol(protocol, self) if protocol else None
        # Shadow coherence oracle: replays every committed shared read
        # against a sequentially consistent shadow memory.
        self.oracle: Optional[CoherenceOracle] = (
            CoherenceOracle(self.memory) if oracle else None)
        self.memory.oracle = self.oracle
        # Optional per-PE access trace: lists of global word addresses of
        # cacheable reads, consumable by repro.machine.fastcache.
        self.trace_enabled = trace
        self.read_trace: List[List[int]] = [[] for _ in self.pes] if trace else []
        # Optional intra-epoch race detection: per-word last writer within
        # the current epoch (cleared at barriers).  The epoch model forbids
        # cross-task dependences inside one parallel epoch; this checks it
        # dynamically, complementing the static GCD test in
        # repro.analysis.parcheck.
        self.race_check = False
        self._epoch_writers: dict = {}
        self.races: int = 0
        self.race_examples: List[str] = []
        # Install-capture hook for the batched backend's preamble memo:
        # when set to a list, prefetch_vector appends one
        # ``(array, install_lines)`` record per install it performs, so
        # the memo can re-gather the same lines from live memory later.
        self._pf_record: Optional[list] = None

    # ------------------------------------------------------------------
    # latency helpers
    # ------------------------------------------------------------------
    def read_latency(self, pe_id: int, owner: int) -> float:
        if owner == pe_id:
            return self.params.local_mem
        return self.params.remote_base + self.params.remote_per_hop * self.torus.hops(pe_id, owner)

    def write_latency(self, pe_id: int, owner: int) -> float:
        if owner == pe_id:
            return self.params.write_local
        return (self.params.write_remote_base
                + self.params.write_remote_per_hop * self.torus.hops(pe_id, owner))

    def _owner(self, name: str, flat: int, pe_id: int) -> int:
        decl = self.memory.decls[name]
        if not decl.is_shared:
            return pe_id
        return self.addr_map.owner(name, flat)

    # ------------------------------------------------------------------
    # line fill
    # ------------------------------------------------------------------
    def _line_contents(self, name: str, line_addr: int, pe_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """(values, versions) of one line; words outside the array are 0."""
        base = self.addr_map.base(name)
        decl = self.memory.decls[name]
        lw = self._lw
        start = line_addr * lw - base
        words = np.zeros(lw, dtype=np.float64)
        versions = np.zeros(lw, dtype=np.int64)
        lo = max(start, 0)
        hi = min(start + lw, decl.size)
        if lo < hi:
            off = lo - start
            if decl.is_shared:
                words[off:off + hi - lo] = self.memory.values[name][lo:hi]
                versions[off:off + hi - lo] = self.memory.versions[name][lo:hi]
            else:
                words[off:off + hi - lo] = self.memory.private_values[name][pe_id, lo:hi]
        return words, versions

    def _install_line(self, pe: PE, name: str, line_addr: int) -> None:
        words, versions = self._line_contents(name, line_addr, pe.pe_id)
        pe.cache.install(line_addr, words, versions)

    def _install_lines_bulk(self, pe: PE, name: str, lines: list) -> None:
        """Install many lines of one array at once.

        Shared arrays are line-aligned views into the flat memory backing
        (padding words between arrays stay zero), so a line's contents are
        exactly ``values_flat[line*lw : (line+1)*lw]`` — one gather/scatter
        replaces the per-line install loop when the target sets are distinct
        (always true for a contiguous run shorter than the cache)."""
        decl = self.memory.decls[name]
        n = len(lines)
        if decl.is_shared and n > 1:
            cache = pe.cache
            lw = self._lw
            ln = np.asarray(lines, dtype=np.int64)
            contiguous = n == int(ln[-1] - ln[0] + 1)
            i0 = int(ln[0]) % cache.n_lines
            if contiguous and i0 + n <= cache.n_lines:
                # Contiguous run with no set wraparound: both sides are
                # plain slices of the line-aligned flat backing.
                w0 = int(ln[0]) * lw
                cache.tags[i0:i0 + n] = ln
                cache.data[i0:i0 + n] = \
                    self.memory.values_flat[w0:w0 + n * lw].reshape(n, lw)
                cache.vers[i0:i0 + n] = \
                    self.memory.versions_flat[w0:w0 + n * lw].reshape(n, lw)
                return
            ix = ln % cache.n_lines
            if contiguous or np.unique(ix).size == ix.size:
                word_ix = ln[:, None] * lw + np.arange(lw, dtype=np.int64)
                cache.tags[ix] = ln
                cache.data[ix] = self.memory.values_flat[word_ix]
                cache.vers[ix] = self.memory.versions_flat[word_ix]
                return
        for line_addr in lines:
            self._install_line(pe, name, line_addr)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, pe_id: int, name: str, flat: int, *, cacheable: bool = True,
             bypass: bool = False, craft: bool = False) -> float:
        """Service one load; advances the PE clock and returns the value
        the processor observes (stale cached data included)."""
        pe = self.pes[pe_id]
        pe.stats.reads += 1
        tr = self.tracer
        decl = self.memory.decls[name]
        shared = decl.is_shared
        if self.faults is not None:
            self.faults.maybe_evict(pe_id, pe.cache)
        if self.race_check and shared:
            writer = self._epoch_writers.get((name, flat))
            if writer is not None and writer != pe_id:
                self._race_event(pe_id, writer, name, flat, "read-after-write")

        if bypass or not cacheable:
            # Direct memory access: BASE-mode shared refs and CCDP
            # bypass-cache fetches.  Always fresh.  Uncached *local* word
            # reads stream from DRAM page mode, cheaper than a line fill.
            owner = self._owner(name, flat, pe_id)
            if owner == pe_id:
                latency: float = self.params.uncached_local_read
            else:
                latency = self.memory.remote_latency(
                    pe_id, self.read_latency(pe_id, owner))
            if craft:
                latency += self.params.craft_shared_ref_overhead
            pe.advance(latency)
            if bypass:
                pe.stats.bypass_reads += 1
            elif owner == pe_id:
                pe.stats.uncached_local_reads += 1
            else:
                pe.stats.uncached_remote_reads += 1
            if tr is not None:
                kind = ("bypass" if bypass else
                        "uncached_local" if owner == pe_id
                        else "uncached_remote")
                tr.emit(("bypass_fetch", pe_id, name, flat, kind))
            if shared:
                value = self.memory.read(name, flat)
                if self.oracle is not None:
                    self.oracle.observe_read(pe_id, name, flat, value, False)
                return value
            return self.memory.read_private(name, pe_id, flat)

        addr = self.addr_map.addr(name, flat)
        line_addr = addr // self._lw
        if shared and pe.dropped_lines and line_addr in pe.dropped_lines:
            # Paper rule 2: this line's prefetch was dropped, so its use
            # degrades to a bypass-cache fetch — always fresh, never
            # installed (the line stays invalid from the pre-issue
            # invalidation).  Observable as pf_drop_bypass.
            pe.dropped_lines.discard(line_addr)
            owner = self._owner(name, flat, pe_id)
            if owner == pe_id:
                latency = self.params.uncached_local_read
            else:
                latency = self.memory.remote_latency(
                    pe_id, self.read_latency(pe_id, owner))
            if craft:
                latency += self.params.craft_shared_ref_overhead
            pe.advance(latency)
            pe.stats.bypass_reads += 1
            pe.stats.pf_drop_bypass += 1
            if tr is not None:
                tr.emit(("bypass_fetch", pe_id, name, flat, "pf_drop"))
            value = self.memory.read(name, flat)
            if self.oracle is not None:
                self.oracle.observe_read(pe_id, name, flat, value, False)
            return value
        if self.trace_enabled:
            self.read_trace[pe_id].append(addr)
        cached = pe.cache.read(addr)
        if cached is not None:
            value, version = cached
            transfer = pe.vectors.match(line_addr)
            if transfer is not None and transfer.completion > pe.clock:
                stall = pe.wait_until(transfer.completion)
                pe.stats.vector_stall_cycles += stall
                # the transfer delivered fresh data; re-read the line
                value, version = pe.cache.read(addr)  # type: ignore[misc]
            pe.advance(self.params.cache_hit)
            pe.stats.cache_hits += 1
            stale = shared and version < self.memory.version(name, flat)
            if tr is not None:
                tr.emit(("read_hit", pe_id, name, flat, int(stale)))
            if stale:
                self._stale_event(pe_id, name, flat, version)
            if shared and self.oracle is not None:
                self.oracle.observe_read(pe_id, name, flat, value, stale)
            return value

        # Miss: does an outstanding prefetch cover this line?
        entry = pe.queue.match(line_addr)
        if entry is not None:
            late = pe.wait_until(entry.arrival)
            pe.stats.prefetch_late_cycles += late
            pe.advance(self.params.prefetch_extract)
            pe.queue.extract(entry)
            pe.stats.prefetch_extracted += 1
            if tr is not None:
                tr.emit(("pf_complete", pe_id, name, flat))
            self._install_line(pe, name, line_addr)
            fresh = pe.cache.read(addr)
            assert fresh is not None
            if shared and self.oracle is not None:
                self.oracle.observe_read(pe_id, name, flat, fresh[0], False)
            return fresh[0]

        # Plain miss: fetch the line from its home memory (or, under a
        # hardware protocol, via the protocol's transaction model —
        # possibly cache-to-cache from a modified remote copy).
        owner = self._owner(name, flat, pe_id)
        if self.protocol is not None and shared:
            latency = self.protocol.read_miss(pe_id, name, flat,
                                              line_addr, owner)
        else:
            latency = self.read_latency(pe_id, owner)
            if owner != pe_id:
                latency = self.memory.remote_latency(pe_id, latency)
        if craft:
            latency += self.params.craft_shared_ref_overhead
        pe.advance(latency)
        pe.stats.cache_misses += 1
        if owner == pe_id:
            pe.stats.local_fills += 1
        else:
            pe.stats.remote_fills += 1
        if tr is not None:
            tr.emit(("read_miss", pe_id, name, flat, int(owner == pe_id)))
        self._install_line(pe, name, line_addr)
        fresh = pe.cache.read(addr)
        assert fresh is not None
        if shared and self.oracle is not None:
            self.oracle.observe_read(pe_id, name, flat, fresh[0], False)
        return fresh[0]

    def _stale_event(self, pe_id: int, name: str, flat: int, version: int) -> None:
        self.stats.stale_reads += 1
        self.pes[pe_id].stats.stale_hits += 1
        if len(self.stats.stale_examples) < 16:
            self.stats.stale_examples.append(
                f"PE{pe_id} read stale {name}[flat={flat}] "
                f"(cached v{version} < memory v{self.memory.version(name, flat)})")
        if self.on_stale == "raise":
            raise StaleReadError(self.stats.stale_examples[-1])

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write(self, pe_id: int, name: str, flat: int, value: float, *,
              cacheable: bool = True, craft: bool = False) -> None:
        pe = self.pes[pe_id]
        pe.stats.writes += 1
        decl = self.memory.decls[name]
        if self.faults is not None:
            self.faults.maybe_evict(pe_id, pe.cache)
        if not decl.is_shared:
            self.memory.write_private(name, pe_id, flat, value)
            pe.advance(self.params.write_local)
            if self.tracer is not None:
                self.tracer.emit(("write", pe_id, name, flat, 0, 0))
            if cacheable:
                addr = self.addr_map.addr(name, flat)
                pe.cache.write_through_update(addr, value, 0)
            return
        if self.race_check:
            previous = self._epoch_writers.get((name, flat))
            if previous is not None and previous != pe_id:
                self._race_event(pe_id, previous, name, flat, "write-after-write")
            self._epoch_writers[(name, flat)] = pe_id
        owner = self.addr_map.owner(name, flat)
        version = self.memory.write(name, flat, value)
        if self.oracle is not None:
            self.oracle.observe_write(name, flat, value)
        if self.protocol is not None:
            # Protocol write: memory already holds the value (the value
            # plane stays write-through exact), so the protocol only
            # prices the transaction and kills remote copies.  Ownership
            # makes the store local — remote_writes stays 0, and the
            # write event says so, keeping trace folds exact.
            addr = self.addr_map.addr(name, flat)
            latency = self.protocol.write(pe_id, name, flat,
                                          addr // self._lw, owner,
                                          cacheable=cacheable)
            pe.advance(latency)
            if self.tracer is not None:
                self.tracer.emit(("write", pe_id, name, flat, 1, 0))
            if cacheable:
                pe.cache.write_through_update(addr, value, version)
            return
        latency = self.write_latency(pe_id, owner)
        if owner != pe_id:
            latency = self.memory.remote_latency(pe_id, latency)
        if craft:
            latency += self.params.craft_shared_ref_overhead
        pe.advance(latency)
        if owner != pe_id:
            pe.stats.remote_writes += 1
        if self.tracer is not None:
            self.tracer.emit(("write", pe_id, name, flat, 1,
                              int(owner != pe_id)))
        if cacheable:
            # Write-through, no allocate: update this PE's copy if present.
            addr = self.addr_map.addr(name, flat)
            pe.cache.write_through_update(addr, value, version)

    # ------------------------------------------------------------------
    # prefetch operations
    # ------------------------------------------------------------------
    def prefetch_line(self, pe_id: int, name: str, flat: int,
                      invalidate: bool = True) -> bool:
        """Issue a line prefetch; returns False when dropped (queue full).
        The target line is invalidated first, so even a dropped prefetch
        leaves the program coherent (the use will miss to fresh memory)."""
        pe = self.pes[pe_id]
        tr = self.tracer
        addr = self.addr_map.addr(name, flat)
        line_addr = addr // self._lw
        if invalidate:
            if pe.cache.invalidate_line(line_addr):
                pe.stats.invalidations += 1
                if tr is not None:
                    tr.emit(("invalidate", pe_id, name, 1, "prefetch",
                             -1, -1))
        owner = self._owner(name, flat, pe_id)
        cost = self.params.prefetch_issue
        dtb = 0
        if pe.last_prefetch_pe != owner:
            cost += self.params.dtb_setup
            pe.stats.dtb_setups += 1
            pe.last_prefetch_pe = owner
            dtb = 1
        pe.advance(cost)
        pe.queue.reclaim_arrived(pe.clock - 4 * self.params.remote_base)
        # Coalesce probe (trace only): issue() folds both outcomes into
        # True, so peek at the queue before issuing to tell them apart.
        coalesced = tr is not None and pe.queue.match(line_addr) is not None
        if self.faults is not None and self.faults.force_drop(pe_id):
            # Injected drop: the issue is lost before it reaches the queue.
            accepted = False
        else:
            fill = self.read_latency(pe_id, owner)
            if owner != pe_id:
                fill = self.memory.remote_latency(pe_id, fill)
            accepted = pe.queue.issue(PrefetchEntry(
                line_addr=line_addr, array=name, arrival=pe.clock + fill,
                issued_at=pe.clock, home_pe=owner))
        if accepted:
            pe.stats.prefetch_issued += 1
            pe.dropped_lines.discard(line_addr)
            if tr is not None:
                tr.emit(("pf_coalesce" if coalesced else "pf_issue",
                         pe_id, name, line_addr, dtb))
        else:
            pe.stats.pf_dropped += 1
            # Paper rule 2: mark the line so its use point degrades to a
            # bypass-cache fetch (the line itself is already invalid).
            pe.dropped_lines.add(line_addr)
            if tr is not None:
                tr.emit(("pf_drop", pe_id, name, line_addr, dtb))
        return accepted

    def prefetch_vector(self, pe_id: int, name: str, flat_start: int,
                        length: int, stride: int = 1,
                        invalidate: bool = True) -> None:
        """SHMEM-style block prefetch of ``length`` elements with a fixed
        element ``stride``.  Covered lines are installed (usable after the
        transfer completes); reads that race the transfer stall."""
        if length <= 0:
            return
        pe = self.pes[pe_id]
        decl = self.memory.decls[name]
        flat_last = flat_start + (length - 1) * stride
        if not (0 <= flat_start < decl.size and 0 <= flat_last < decl.size):
            raise IndexError(
                f"vector prefetch of {name} out of bounds: "
                f"[{flat_start}, {flat_last}] vs size {decl.size}")
        addr_lo = self.addr_map.addr(name, min(flat_start, flat_last))
        addr_hi = self.addr_map.addr(name, max(flat_start, flat_last))
        line_lo = addr_lo // self._lw
        line_hi = addr_hi // self._lw
        if stride == 1:
            install_lines = np.arange(line_lo, line_hi + 1, dtype=np.int64)
        else:
            install_lines = sorted({
                self.addr_map.addr(name, flat_start + k * stride) // self._lw
                for k in range(length)})
        if len(install_lines) > pe.cache.n_lines:
            raise ValueError(
                f"vector prefetch touching {len(install_lines)} lines exceeds "
                f"the cache ({pe.cache.n_lines} lines); the compiler must bound it")
        tr = self.tracer
        if invalidate:
            if stride == 1:
                killed = pe.cache.invalidate_range(addr_lo, addr_hi)
            else:
                killed = 0
                for line_addr in install_lines:
                    if pe.cache.invalidate_line(line_addr):
                        killed += 1
            pe.stats.invalidations += killed
            if tr is not None and killed:
                tr.emit(("invalidate", pe_id, name, killed, "vector",
                         -1, -1))
        stall_at = pe.vectors.stall_until_slot(pe.clock)
        stall = pe.wait_until(stall_at)
        pe.stats.vector_stall_cycles += stall
        pe.vectors.reap(pe.clock)
        owner = self._owner(name, flat_start, pe_id)
        hops = self.torus.hops(pe_id, owner) if owner != pe_id else 0
        pe.advance(self.params.vector_startup)
        words = length  # one word per element
        network = self.params.remote_per_hop * hops
        if owner != pe_id:
            network = self.memory.remote_latency(pe_id, network)
        completion = pe.clock + self.params.vector_per_word * words + network
        self._install_lines_bulk(pe, name, install_lines)
        rec = self._pf_record
        if rec is not None:
            rec.append((name, install_lines))
        pe.vectors.issue(VectorTransfer(array=name, line_lo=line_lo,
                                        line_hi=line_hi, completion=completion))
        pe.stats.vector_prefetches += 1
        pe.stats.vector_words += words
        if tr is not None:
            tr.emit(("vector_transfer", pe_id, name, line_lo, line_hi, words,
                     flat_start, stride))

    # ------------------------------------------------------------------
    # trace replay support (repro.trace)
    # ------------------------------------------------------------------
    def replay_read(self, pe_id: int, name: str, flat: int,
                    hint: Optional[str] = None, *, cacheable: bool = True,
                    bypass: bool = False, craft: bool = False) -> float:
        """:meth:`read`, steered by a recorded outcome.

        The trace frontend replays reads through the ordinary read path —
        latency, installs, events and the oracle all behave naturally —
        but prefetch-queue *timing* cannot be reconstructed from a trace
        (replayed clocks exclude compute), so the recorded outcome
        ``hint`` pre-adjusts queue state instead:

        * ``"miss"`` — the source run had no covering entry at this
          point: retire any lingering replay entry so the read misses to
          memory.
        * ``"extract"`` — the source run extracted a covering prefetch:
          inject an already-arrived entry if the replay queue lost it.
        * ``"drop"`` — the line's prefetch was dropped (paper rule 2):
          mark it so the read degrades to a bypass fetch.
        * ``"hit"`` / ``None`` — no queue adjustment; the cache decides.

        Cache *contents* are queue-timing independent (a miss and an
        extract install identical line data), so hints only repair
        timing divergence, never values.
        """
        pe = self.pes[pe_id]
        if (hint is not None and cacheable and not bypass
                and self.memory.decls[name].is_shared):
            line_addr = self.addr_map.addr(name, flat) // self._lw
            if hint in ("hit", "miss", "extract"):
                pe.dropped_lines.discard(line_addr)
            if hint == "miss":
                entry = pe.queue.match(line_addr)
                while entry is not None:
                    pe.queue.entries.remove(entry)
                    entry = pe.queue.match(line_addr)
            elif hint == "extract":
                if pe.queue.match(line_addr) is None:
                    owner = self._owner(name, flat, pe_id)
                    pe.queue.entries.append(PrefetchEntry(
                        line_addr=line_addr, array=name, arrival=pe.clock,
                        issued_at=pe.clock, home_pe=owner))
            elif hint == "drop":
                pe.dropped_lines.add(line_addr)
        return self.read(pe_id, name, flat, cacheable=cacheable,
                         bypass=bypass, craft=craft)

    def replay_prefetch_line(self, pe_id: int, name: str, line_addr: int,
                             outcome: str, dtb: int,
                             invalidate: bool = True) -> None:
        """:meth:`prefetch_line`, steered by a recorded outcome.

        ``outcome`` is the source run's queue disposition (``issue`` /
        ``coalesce`` / ``drop``) and ``dtb`` its recorded DTB-setup
        flag; both depend on source queue occupancy and clock values the
        replay cannot reproduce, so they are forced rather than
        recomputed.  The queue itself is kept plausible — issued entries
        are appended (capacity was already arbitrated by the source
        run), and a forced issue retires any lingering replay entry for
        the same line first.  Entries are never reclaimed on a timer;
        :meth:`replay_read` hints retire them at their use points.
        """
        if outcome not in ("issue", "coalesce", "drop"):
            raise ValueError(f"unknown prefetch outcome {outcome!r}")
        pe = self.pes[pe_id]
        tr = self.tracer
        if invalidate and pe.cache.invalidate_line(line_addr):
            pe.stats.invalidations += 1
            if tr is not None:
                tr.emit(("invalidate", pe_id, name, 1, "prefetch", -1, -1))
        # The recorded event carries the line, not the accessed element;
        # any in-line element gives the same owner *for the latency*
        # only when ownership doesn't split the line, so clamp to the
        # line's first in-array word (the dtb decision — the part that
        # is owner-boundary sensitive — comes from the trace, not from
        # this owner).
        decl = self.memory.decls[name]
        flat0 = min(max(line_addr * self._lw - self.addr_map.base(name), 0),
                    decl.size - 1)
        owner = self._owner(name, flat0, pe_id)
        cost = self.params.prefetch_issue
        if dtb:
            cost += self.params.dtb_setup
            pe.stats.dtb_setups += 1
        pe.last_prefetch_pe = owner
        pe.advance(cost)
        if outcome == "drop":
            pe.queue.dropped += 1
            pe.stats.pf_dropped += 1
            pe.dropped_lines.add(line_addr)
            if tr is not None:
                tr.emit(("pf_drop", pe_id, name, line_addr, dtb))
            return
        pe.stats.prefetch_issued += 1
        pe.dropped_lines.discard(line_addr)
        if outcome == "coalesce":
            if tr is not None:
                tr.emit(("pf_coalesce", pe_id, name, line_addr, dtb))
            return
        entry = pe.queue.match(line_addr)
        while entry is not None:
            pe.queue.entries.remove(entry)
            entry = pe.queue.match(line_addr)
        fill = self.read_latency(pe_id, owner)
        if owner != pe_id:
            fill = self.memory.remote_latency(pe_id, fill)
        queue = pe.queue
        queue.entries.append(PrefetchEntry(
            line_addr=line_addr, array=name, arrival=pe.clock + fill,
            issued_at=pe.clock, home_pe=owner))
        queue.issued += 1
        if len(queue.entries) > queue.high_water:
            queue.high_water = len(queue.entries)
        if tr is not None:
            tr.emit(("pf_issue", pe_id, name, line_addr, dtb))

    def invalidate(self, pe_id: int, name: str, flat_lo: int, flat_hi: int) -> int:
        """Explicit invalidation of the lines covering an element range."""
        pe = self.pes[pe_id]
        addr_lo = self.addr_map.addr(name, flat_lo)
        addr_hi = self.addr_map.addr(name, flat_hi)
        count = pe.cache.invalidate_range(addr_lo, addr_hi)
        pe.stats.invalidations += count
        pe.advance(max(1, count) * self.params.int_op)
        if self.tracer is not None:
            self.tracer.emit(("invalidate", pe_id, name, count, "explicit",
                              flat_lo, flat_hi))
        return count

    # ------------------------------------------------------------------
    # synchronisation
    # ------------------------------------------------------------------
    def _race_event(self, reader_pe: int, writer_pe: int, name: str,
                    flat: int, kind: str) -> None:
        self.races += 1
        if len(self.race_examples) < 16:
            self.race_examples.append(
                f"{kind}: PE{reader_pe} touched {name}[flat={flat}] "
                f"written by PE{writer_pe} in the same epoch")

    def barrier(self) -> float:
        """All PEs synchronise; returns the post-barrier common time."""
        self.stats.barriers += 1
        if self.protocol is not None:
            self.protocol.on_barrier()
        if self.race_check:
            self._epoch_writers.clear()
        clocks = self.clocks
        latest = float(clocks.max())
        cost = self.params.barrier_cost()
        time = latest + cost
        # Stall accounting runs only for PEs strictly behind the max —
        # after a replayed uniform epoch there are none, and the whole
        # barrier stays in vectorized code.  ``latest + cost`` is the
        # same float every PE's ``clock = latest; clock += cost`` would
        # produce.
        behind = clocks < latest
        if behind.any():
            pes = self.pes
            for i in np.flatnonzero(behind):
                pes[i].stats.idle_cycles += latest - float(clocks[i])
        clocks.fill(time)
        if self.tracer is not None:
            self.tracer.emit(("barrier", time))
        return time

    def sync_clocks_to(self, time: float) -> None:
        time = float(time)
        clocks = self.clocks
        behind = clocks < time
        if behind.any():
            pes = self.pes
            for i in np.flatnonzero(behind):
                pes[i].stats.idle_cycles += time - float(clocks[i])
            np.maximum(clocks, time, out=clocks)

    def elapsed(self) -> float:
        return float(self.clocks.max())

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def flush_caches(self) -> None:
        for pe in self.pes:
            pe.cache.flush()

    def coherent(self) -> bool:
        return self.stats.stale_reads == 0

    def plane_view(self) -> "MachinePlane":
        """A cross-PE plane view over this machine's per-PE state."""
        return MachinePlane(self)


class MachinePlane:
    """Cross-PE plane view: per-PE state stacked along a leading PE axis.

    The batched backend's plane epochs and the multi-PE trace classifier
    (:func:`~repro.machine.batchops.classify_events_multi`) consume
    whole-machine state as ``(n_pes, ...)`` arrays.  This view *gathers*
    stacked copies in PE order and *writes back* per-PE rows, so the
    oracle, tracer synthesis and fault hooks — which all observe plain
    per-PE objects — see ordinary per-PE effects regardless of how the
    stacked computation was organised."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    # -- stacked gathers ------------------------------------------------
    def tags(self) -> np.ndarray:
        """(n_pes, n_lines) stacked cache tag copies."""
        return self.machine.cache_tags.copy()

    def data(self) -> np.ndarray:
        """(n_pes, n_lines, line_words) stacked cache data copies."""
        return self.machine.cache_data.copy()

    def vers(self) -> np.ndarray:
        """(n_pes, n_lines, line_words) stacked cache version copies."""
        return self.machine.cache_vers.copy()

    def clocks(self) -> np.ndarray:
        """(n_pes,) PE clock copies."""
        return self.machine.clocks.copy()

    def stat(self, field: str) -> np.ndarray:
        """(n_pes,) one PEStats counter across the machine."""
        return np.array([getattr(pe.stats, field)
                         for pe in self.machine.pes])

    def sig(self) -> tuple:
        """Stacked per-PE plane signatures (see :meth:`PE.plane_sig`)."""
        return tuple(pe.plane_sig() for pe in self.machine.pes)

    def snapshot(self) -> list:
        """Stacked per-PE deep snapshots (see :meth:`PE.plane_snapshot`)."""
        return [pe.plane_snapshot() for pe in self.machine.pes]

    # -- multi-PE classification ---------------------------------------
    def classify(self, line_addrs: np.ndarray, kinds,
                 pe_of: np.ndarray):
        """Classify a cross-PE event trace against the stacked caches —
        one :func:`classify_events_multi` call instead of one
        ``classify_trace`` per PE.  ``pe_of[k]`` is the PE that issues
        event ``k``; the trace is chronological per PE (cross-PE
        interleaving is immaterial because per-PE caches are disjoint)."""
        from .batchops import classify_events_multi
        return classify_events_multi(line_addrs, kinds, pe_of,
                                     self.machine.params.n_lines,
                                     self.tags())

    # -- per-PE writeback -----------------------------------------------
    def writeback_tags(self, tags: np.ndarray) -> None:
        for pe, row in zip(self.machine.pes, tags):
            pe.cache.tags[:] = row

    def writeback_clocks(self, clocks: np.ndarray) -> None:
        for pe, clock in zip(self.machine.pes, clocks):
            pe.clock = float(clock)

    def writeback_stat(self, field: str, values: np.ndarray) -> None:
        for pe, value in zip(self.machine.pes, values):
            setattr(pe.stats, field, type(getattr(pe.stats, field))(value))


__all__ = ["Machine", "MachinePlane", "StaleReadError"]
