"""Fold an event stream back into statistics.

Every count-class field of :class:`~repro.machine.stats.PEStats` is a
pure function of the event stream; :func:`fold_events` computes it, and
:func:`reconcile` diffs the fold against a live machine's counters.
The reconciliation property test runs this on both backends: if a
backend ever emits a stream that folds to different numbers than its
own ``MachineStats``, either an emission point is missing or one is
double-counted.

Cycle-class fields (busy/idle/late/stall cycles, flops, iterations)
are *not* foldable — events carry no timing by design — so they are
outside the reconciliation contract.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

#: PEStats fields reconstructable from events, in PEStats declaration
#: order.  ``reads`` folds from the four read-outcome kinds; everything
#: else maps to one kind (possibly filtered by a field value).
FOLDABLE_PE_FIELDS = (
    "reads", "writes", "cache_hits", "cache_misses", "local_fills",
    "remote_fills", "bypass_reads", "uncached_local_reads",
    "uncached_remote_reads", "remote_writes", "stale_hits",
    "prefetch_issued", "pf_dropped", "pf_drop_bypass",
    "prefetch_extracted", "vector_prefetches", "vector_words",
    "invalidations", "dtb_setups",
    "bus_rd", "bus_rdx", "bus_upgr", "c2c_transfers", "writebacks",
    "silent_upgrades", "coh_invalidations", "dir_requests",
    "dir_messages", "dir_broadcasts", "priority_bypasses",
)

#: MachineStats scalar fields reconstructable from events.
FOLDABLE_MACHINE_FIELDS = ("stale_reads", "barriers", "epochs")

#: Foldable fields whose *value* is a function of machine clocks, not
#: of the access stream alone (dir-pp's priority bypass fires when a
#: request beats the home controller's occupancy horizon).  They
#: reconcile within one run, but a trace replay — whose clocks carry no
#: compute by design — may legitimately decide them differently, so the
#: trace conformance contract skips them (DESIGN.md §9).
TIMING_DEPENDENT_FIELDS = ("priority_bypasses",)


def fold_events(events: Iterable[tuple], n_pes: int) -> dict:
    """Replay ``events`` into ``{"per_pe": [...], "machine": {...}}``.

    Requires an unsampled, uncapped stream (counters are exact under
    sampling, folds are not).  Unknown kinds raise."""
    per_pe: List[Dict[str, int]] = [
        {name: 0 for name in FOLDABLE_PE_FIELDS} for _ in range(n_pes)]
    machine = {name: 0 for name in FOLDABLE_MACHINE_FIELDS}
    for event in events:
        kind = event[0]
        if kind == "read_hit":
            pe, stale = event[1], event[4]
            row = per_pe[pe]
            row["reads"] += 1
            row["cache_hits"] += 1
            row["stale_hits"] += stale
            machine["stale_reads"] += stale
        elif kind == "read_miss":
            pe, local = event[1], event[4]
            row = per_pe[pe]
            row["reads"] += 1
            row["cache_misses"] += 1
            row["local_fills" if local else "remote_fills"] += 1
        elif kind == "bypass_fetch":
            pe, why = event[1], event[4]
            row = per_pe[pe]
            row["reads"] += 1
            if why == "bypass":
                row["bypass_reads"] += 1
            elif why == "uncached_local":
                row["uncached_local_reads"] += 1
            elif why == "uncached_remote":
                row["uncached_remote_reads"] += 1
            elif why == "pf_drop":
                row["bypass_reads"] += 1
                row["pf_drop_bypass"] += 1
            else:
                raise ValueError(f"unknown bypass_fetch kind {why!r}")
        elif kind == "write":
            row = per_pe[event[1]]
            row["writes"] += 1
            row["remote_writes"] += event[5]
        elif kind in ("pf_issue", "pf_coalesce"):
            row = per_pe[event[1]]
            row["prefetch_issued"] += 1
            row["dtb_setups"] += event[4]
        elif kind == "pf_drop":
            row = per_pe[event[1]]
            row["pf_dropped"] += 1
            row["dtb_setups"] += event[4]
        elif kind == "pf_complete":
            row = per_pe[event[1]]
            row["reads"] += 1
            row["prefetch_extracted"] += 1
        elif kind == "invalidate":
            # Eviction-storm invalidations (reason "fault") are injected
            # consequences, not program behaviour; PEStats.invalidations
            # counts only the latter.
            if event[4] != "fault":
                per_pe[event[1]]["invalidations"] += event[3]
        elif kind == "vector_transfer":
            row = per_pe[event[1]]
            row["vector_prefetches"] += 1
            row["vector_words"] += event[5]
        elif kind == "bus_tx":
            row = per_pe[event[1]]
            op = event[2]
            row["bus_rd" if op == "busrd" else
                "bus_rdx" if op == "busrdx" else "bus_upgr"] += 1
            row["c2c_transfers"] += event[4]
        elif kind == "coh_wb":
            per_pe[event[1]]["writebacks"] += 1
        elif kind == "silent_upgrade":
            per_pe[event[1]]["silent_upgrades"] += 1
        elif kind == "coh_inval":
            per_pe[event[1]]["coh_invalidations"] += event[3]
        elif kind == "dir_req":
            row = per_pe[event[1]]
            row["dir_requests"] += 1
            row["dir_messages"] += event[5]
            row["c2c_transfers"] += event[6]
            row["priority_bypasses"] += event[7]
        elif kind == "dir_bcast":
            per_pe[event[1]]["dir_broadcasts"] += 1
        elif kind == "barrier":
            machine["barriers"] += 1
        elif kind == "epoch_end":
            machine["epochs"] += 1
        elif kind in ("epoch_begin", "fault_activation"):
            pass
        else:
            raise ValueError(f"unknown event kind {kind!r}")
    return {"per_pe": per_pe, "machine": machine}


def reconcile(events: Iterable[tuple], machine,
              skip: tuple = ()) -> List[str]:
    """Diff :func:`fold_events` against a machine's live counters.

    ``skip`` names per-PE fields to leave out of the comparison — the
    trace frontend passes :data:`TIMING_DEPENDENT_FIELDS` when diffing
    *source* events against a *replayed* machine.  Returns
    human-readable mismatch strings (empty == reconciled)."""
    folded = fold_events(events, len(machine.pes))
    mismatches: List[str] = []
    for pe, row in enumerate(folded["per_pe"]):
        stats = machine.stats.per_pe[pe]
        for name in FOLDABLE_PE_FIELDS:
            if name in skip:
                continue
            want = getattr(stats, name)
            got = row[name]
            if got != want:
                mismatches.append(
                    f"pe{pe}.{name}: folded {got} != stats {want}")
    for name in FOLDABLE_MACHINE_FIELDS:
        want = getattr(machine.stats, name)
        got = folded["machine"][name]
        if got != want:
            mismatches.append(f"machine.{name}: folded {got} != stats {want}")
    return mismatches


__all__ = ["FOLDABLE_PE_FIELDS", "FOLDABLE_MACHINE_FIELDS",
           "TIMING_DEPENDENT_FIELDS", "fold_events", "reconcile"]
