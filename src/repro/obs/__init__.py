"""Observability: machine-event tracing, metrics timeline, exporters.

The simulator's event-level instrumentation (see DESIGN.md
§observability).  A :class:`Tracer` attached via
``ExecutionConfig(tracer=...)`` receives one typed tuple per machine
event from *either* execution backend — the reference interpreter emits
per event, the batched backend synthesises the identical stream from
its bulk plans — so a trace is a backend-independent observable, pinned
by golden snapshots and cross-backend equivalence tests.
"""

from .events import (BYPASS_KINDS, EVENT_FIELDS, EVENT_KINDS,
                     INVALIDATE_REASONS, event_from_dict, event_to_dict,
                     validate_event)
from .export import (chrome_trace, event_to_json, events_to_jsonl,
                     read_jsonl, write_chrome_trace, write_jsonl)
from .fold import (FOLDABLE_MACHINE_FIELDS, FOLDABLE_PE_FIELDS,
                   TIMING_DEPENDENT_FIELDS, fold_events, reconcile)
from .tracer import EpochPEMetrics, EpochRow, Tracer

__all__ = [
    "BYPASS_KINDS", "EVENT_FIELDS", "EVENT_KINDS", "INVALIDATE_REASONS",
    "event_from_dict", "event_to_dict", "validate_event",
    "chrome_trace", "event_to_json", "events_to_jsonl", "read_jsonl",
    "write_chrome_trace", "write_jsonl",
    "FOLDABLE_MACHINE_FIELDS", "FOLDABLE_PE_FIELDS",
    "TIMING_DEPENDENT_FIELDS", "fold_events", "reconcile",
    "EpochPEMetrics", "EpochRow", "Tracer",
]
