"""Schema validation for JSONL traces (CI trace-smoke entry point).

``python -m repro.obs.validate trace.jsonl [more.jsonl ...]`` parses
every line against the event schema and exits non-zero on the first
malformed one, printing a per-kind census on success.
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Tuple

from .events import event_from_dict, validate_event


def validate_file(path) -> Tuple[int, Counter]:
    """Validate one JSONL trace; returns (n_events, per-kind counts).

    Raises ``ValueError`` with the offending line number on failure."""
    counts: Counter = Counter()
    n = 0
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
        try:
            event = event_from_dict(record)
            validate_event(event)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
        counts[event[0]] += 1
        n += 1
    return n, counts


def main(argv: List[str] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate TRACE.jsonl [...]",
              file=sys.stderr)
        return 2
    for path in argv:
        try:
            n, counts = validate_file(path)
        except (OSError, ValueError) as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        census = " ".join(f"{kind}={counts[kind]}"
                          for kind in sorted(counts))
        print(f"OK: {path}: {n} events ({census})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
