"""Machine-event taxonomy: the typed vocabulary of the tracing layer.

Every observable thing the simulated machine does is one *event*: a
plain tuple whose first element is the event kind and whose remaining
elements follow the kind's field schema below.  Events deliberately
carry **no timestamps** — stream order *is* the timeline (each PE's
events appear in its own program order, and cross-PE interleaving is
fixed by the interpreter's deterministic scheduling), which is what
makes the reference and batched backends able to produce bit-identical
streams.  The only exceptions are the synchronisation events
(``barrier``, ``epoch_begin``/``epoch_end``), which carry the machine
clock because that value is itself a backend-exact observable.

Tuples (not objects) keep emission cheap on the reference hot path and
make cross-backend comparison a plain ``==``.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: kind -> field names following the kind tag, in tuple order.
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    # -- per-reference events (one per machine.read/write outcome) --------
    "read_hit": ("pe", "array", "flat", "stale"),
    "read_miss": ("pe", "array", "flat", "local"),
    "bypass_fetch": ("pe", "array", "flat", "kind"),
    "write": ("pe", "array", "flat", "shared", "remote"),
    # -- prefetch engine ---------------------------------------------------
    "pf_issue": ("pe", "array", "line", "dtb"),
    "pf_coalesce": ("pe", "array", "line", "dtb"),
    "pf_drop": ("pe", "array", "line", "dtb"),
    "pf_complete": ("pe", "array", "flat"),
    "invalidate": ("pe", "array", "count", "reason", "lo", "hi"),
    # ``flat``/``stride`` restate the vector prefetch's *instruction*
    # (start element, element stride); ``line_lo``/``line_hi`` alone
    # cannot recover a strided install set, and the trace frontend
    # replays the instruction, not its line footprint.
    "vector_transfer": ("pe", "array", "line_lo", "line_hi", "words",
                        "flat", "stride"),
    # -- hardware coherence protocols (mesi / dir versions) ----------------
    "bus_tx": ("pe", "op", "line", "c2c"),
    "coh_wb": ("pe", "line", "reason"),
    "silent_upgrade": ("pe", "line"),
    "coh_inval": ("pe", "line", "count"),
    "dir_req": ("pe", "op", "line", "home", "msgs", "c2c", "bypass"),
    "dir_bcast": ("pe", "line", "fanout"),
    # -- synchronisation / control ----------------------------------------
    "barrier": ("time",),
    "epoch_begin": ("index", "label", "time"),
    "epoch_end": ("index", "label", "time"),
    # -- fault injection ---------------------------------------------------
    "fault_activation": ("pe", "model", "detail"),
    # -- sweep-farm lifecycle (repro.farm; one stream per farm run) --------
    "farm_lease": ("key", "attempt"),
    "farm_retry": ("key", "attempt", "delay_ms", "reason"),
    "farm_quarantine": ("key", "attempts", "reason"),
    "farm_resume": ("key", "digest"),
    "farm_done": ("key", "attempt", "cached"),
}

EVENT_KINDS = frozenset(EVENT_FIELDS)

#: ``bypass_fetch.kind`` values: why the read went around the cache.
#: ``bypass`` = compiler-marked uncacheable reference, ``uncached_*`` =
#: reference to a non-cacheable array (by home PE), ``pf_drop`` = the
#: paper's rule-2 degradation — the line's prefetch was dropped, so the
#: read must bypass to stay coherent.
BYPASS_KINDS = frozenset({"bypass", "uncached_local", "uncached_remote",
                          "pf_drop"})

#: ``invalidate.reason`` values: ``prefetch`` = invalidate-before-
#: prefetch killed a resident line, ``vector`` = vector-prefetch range
#: invalidation, ``explicit`` = standalone INVALIDATE instruction,
#: ``fault`` = eviction-storm fault injection.  ``lo``/``hi`` carry the
#: flat element range of an ``explicit`` invalidation (the replay input
#: that ``count`` — the number of lines actually killed — cannot
#: recover); the other reasons have no instruction-level range and
#: carry ``-1, -1``.
INVALIDATE_REASONS = frozenset({"prefetch", "vector", "explicit", "fault"})

#: ``farm_retry.reason`` / ``farm_quarantine.reason`` values: why the
#: failed attempt failed (mirrors ``repro.farm.jobs.FAIL_REASONS``).
FARM_FAIL_REASONS = frozenset({"error", "timeout", "crash"})

#: ``bus_tx.op`` values: the snooping-bus transaction vocabulary.
BUS_OPS = frozenset({"busrd", "busrdx", "busupgr"})

#: ``coh_wb.reason`` values: why a modified line was flushed —
#: ``evict`` = victim replacement or remote-write invalidation,
#: ``downgrade`` = M→S sharing writeback on a remote read.
WB_REASONS = frozenset({"evict", "downgrade"})

#: ``dir_req.op`` values: directory request types (read miss,
#: read-for-ownership miss, ownership upgrade of a shared copy).
DIR_OPS = frozenset({"rd", "rdx", "upgr"})

_STR_FIELDS = frozenset({"array", "kind", "reason", "label", "model",
                         "detail", "key", "digest", "op"})
_FLOAT_FIELDS = frozenset({"time"})


def validate_event(event) -> None:
    """Raise ``ValueError`` if ``event`` is not schema-conformant."""
    if not isinstance(event, tuple) or not event:
        raise ValueError(f"event must be a non-empty tuple, got {event!r}")
    kind = event[0]
    fields = EVENT_FIELDS.get(kind)
    if fields is None:
        raise ValueError(f"unknown event kind {kind!r}")
    if len(event) != 1 + len(fields):
        raise ValueError(
            f"{kind} event has {len(event) - 1} fields, schema wants "
            f"{len(fields)} ({', '.join(fields)}): {event!r}")
    for name, value in zip(fields, event[1:]):
        if name in _STR_FIELDS:
            if not isinstance(value, str):
                raise ValueError(f"{kind}.{name} must be str, got {value!r}")
        elif name in _FLOAT_FIELDS:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"{kind}.{name} must be a number, got {value!r}")
        elif not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"{kind}.{name} must be int, got {value!r}")
    if kind == "bypass_fetch" and event[4] not in BYPASS_KINDS:
        raise ValueError(f"bypass_fetch.kind {event[4]!r} not in "
                         f"{sorted(BYPASS_KINDS)}")
    if kind == "invalidate" and event[4] not in INVALIDATE_REASONS:
        raise ValueError(f"invalidate.reason {event[4]!r} not in "
                         f"{sorted(INVALIDATE_REASONS)}")
    if kind in ("farm_retry", "farm_quarantine") and \
            event[-1] not in FARM_FAIL_REASONS:
        raise ValueError(f"{kind}.reason {event[-1]!r} not in "
                         f"{sorted(FARM_FAIL_REASONS)}")
    if kind == "bus_tx" and event[2] not in BUS_OPS:
        raise ValueError(f"bus_tx.op {event[2]!r} not in {sorted(BUS_OPS)}")
    if kind == "coh_wb" and event[3] not in WB_REASONS:
        raise ValueError(f"coh_wb.reason {event[3]!r} not in "
                         f"{sorted(WB_REASONS)}")
    if kind == "dir_req" and event[2] not in DIR_OPS:
        raise ValueError(f"dir_req.op {event[2]!r} not in {sorted(DIR_OPS)}")


def event_to_dict(event) -> dict:
    """Schema-ordered dict form (JSONL serialisation)."""
    fields = EVENT_FIELDS[event[0]]
    record = {"ev": event[0]}
    record.update(zip(fields, event[1:]))
    return record


def event_from_dict(record: dict) -> tuple:
    """Inverse of :func:`event_to_dict`; raises on malformed records."""
    if "ev" not in record:
        raise ValueError(f"record has no 'ev' key: {record!r}")
    kind = record["ev"]
    fields = EVENT_FIELDS.get(kind)
    if fields is None:
        raise ValueError(f"unknown event kind {kind!r}")
    extra = set(record) - set(fields) - {"ev"}
    missing = [name for name in fields if name not in record]
    if extra or missing:
        raise ValueError(f"{kind} record fields mismatch: extra="
                         f"{sorted(extra)} missing={missing}: {record!r}")
    return (kind,) + tuple(record[name] for name in fields)


__all__ = ["EVENT_FIELDS", "EVENT_KINDS", "BYPASS_KINDS",
           "INVALIDATE_REASONS", "FARM_FAIL_REASONS", "BUS_OPS",
           "WB_REASONS", "DIR_OPS", "validate_event",
           "event_to_dict", "event_from_dict"]
