"""The Tracer: bounded event recording + per-epoch metrics timeline.

A :class:`Tracer` is handed to the machine through
``ExecutionConfig(tracer=...)``.  The reference interpreter emits one
tuple per machine event; the batched backend synthesises the identical
stream from its bulk plans (or, when every kind it would emit is
sampled out, folds whole chunks into the per-kind counters without
materialising tuples).  Three knobs bound the cost of a trace:

``capacity``
    Ring-buffer size.  ``None`` keeps every recorded event (tests,
    goldens); an int keeps only the most recent ``capacity`` events
    while the per-kind counters stay exact.

``sample``
    Per-event-type decimation.  ``None``/1 records every event, ``k``
    records the first of every ``k`` emissions of a kind, ``0`` counts
    the kind without recording any tuples.  An int applies to all
    kinds; a ``{kind: k}`` dict applies per kind (default 1).  Sampling
    decisions depend only on the per-kind emission ordinal, and both
    backends emit identical streams, so a sampled trace is also
    backend-deterministic.

``kinds``
    Optional allow-list: kinds outside it are counted but never
    recorded (equivalent to ``sample=0`` for them).

Counters are exact regardless of sampling or capacity — that is the
contract the trace<->stats reconciliation tests lean on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from .events import EVENT_KINDS


@dataclass
class EpochPEMetrics:
    """One PE's activity during one epoch (deltas over the epoch)."""

    pe: int
    reads: int
    hits: int
    misses: int
    prefetch_issued: int
    pf_dropped: int
    stall_cycles: float        #: idle cycles accumulated during the epoch
    queue_high_water: int      #: deepest the prefetch queue got
    cache_lines: int           #: resident cache lines at epoch end

    @property
    def hit_rate(self) -> float:
        cached = self.hits + self.misses
        return self.hits / cached if cached else 0.0

    def as_dict(self) -> dict:
        return {"pe": self.pe, "reads": self.reads, "hits": self.hits,
                "misses": self.misses, "hit_rate": self.hit_rate,
                "prefetch_issued": self.prefetch_issued,
                "pf_dropped": self.pf_dropped,
                "stall_cycles": self.stall_cycles,
                "queue_high_water": self.queue_high_water,
                "cache_lines": self.cache_lines}


@dataclass
class EpochRow:
    """One row of the metrics timeline: an epoch × every PE."""

    index: int
    label: str
    start: float
    end: float
    per_pe: List[EpochPEMetrics] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {"index": self.index, "label": self.label,
                "start": self.start, "end": self.end,
                "per_pe": [m.as_dict() for m in self.per_pe]}


class Tracer:
    """Typed machine-event recorder with exact per-kind counters."""

    def __init__(self, capacity: Optional[int] = None,
                 sample: Union[None, int, Dict[str, int]] = None,
                 kinds: Optional[Iterable[str]] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None: {capacity}")
        self.capacity = capacity
        self._events = deque(maxlen=capacity) if capacity else []
        self.counts: Dict[str, int] = {}
        self.kept = 0                     #: events recorded (pre-eviction)
        self._rows: List[EpochRow] = []   #: materialised timeline rows
        self._raw_rows: List[tuple] = []  #: epoch snapshots not yet folded
        default = 1
        strides: Dict[str, int] = {}
        if isinstance(sample, dict):
            for kind, k in sample.items():
                if kind not in EVENT_KINDS:
                    raise ValueError(f"unknown event kind in sample: {kind!r}")
                if not isinstance(k, int) or k < 0:
                    raise ValueError(f"sample stride must be an int >= 0: "
                                     f"{kind}={k!r}")
                strides[kind] = k
        elif sample is not None:
            if not isinstance(sample, int) or sample < 0:
                raise ValueError(f"sample must be an int >= 0 or a dict: "
                                 f"{sample!r}")
            default = sample
        if kinds is not None:
            allowed = set(kinds)
            unknown = allowed - EVENT_KINDS
            if unknown:
                raise ValueError(f"unknown event kinds: {sorted(unknown)}")
            for kind in EVENT_KINDS - allowed:
                strides[kind] = 0
        self._strides = strides
        self._default_stride = default
        self._counts_only: Dict[object, bool] = {}
        self._epoch_snap = None

    # -- recording ---------------------------------------------------------
    def emit(self, event: tuple) -> None:
        """Count (always) and record (subject to sampling) one event."""
        kind = event[0]
        seen = self.counts.get(kind, 0)
        self.counts[kind] = seen + 1
        k = self._strides.get(kind, self._default_stride)
        if k == 0 or (k > 1 and seen % k):
            return
        self.kept += 1
        self._events.append(event)

    def add_counts(self, kind: str, n: int) -> None:
        """Bulk-count ``n`` events of a sampled-out kind.

        The batched backend's counts-only fast path: when
        :meth:`counts_only` is true for every kind a chunk would emit,
        it tallies here instead of synthesising tuples.  Only valid for
        kinds whose stride is 0 — otherwise the sampling ordinals would
        diverge from the reference backend's."""
        if n:
            self.counts[kind] = self.counts.get(kind, 0) + n

    def stride(self, kind: str) -> int:
        return self._strides.get(kind, self._default_stride)

    def counts_only(self, kinds: Iterable[str]) -> bool:
        """True when none of ``kinds`` would record a tuple.

        Strides are fixed at construction, so the answer is memoised per
        kinds collection (the batched backend asks once per chunk)."""
        try:
            cached = self._counts_only.get(kinds)
        except TypeError:
            return all(self.stride(kind) == 0 for kind in kinds)
        if cached is None:
            cached = all(self.stride(kind) == 0 for kind in kinds)
            self._counts_only[kinds] = cached
        return cached

    @property
    def events(self) -> list:
        """The recorded events, oldest first (a fresh list)."""
        return list(self._events)

    @property
    def evicted(self) -> int:
        """Recorded events the ring buffer has since pushed out."""
        return self.kept - len(self._events)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    # -- epoch timeline ----------------------------------------------------
    def epoch_begin(self, label: str, machine) -> None:
        """Mark an epoch start: emit the event, snapshot per-PE counters,
        and reset the per-epoch high-water marks."""
        index = len(self._rows) + len(self._raw_rows)
        now = machine.elapsed()
        self.emit(("epoch_begin", index, label, now))
        snap = []
        for pe in machine.pes:
            pe.queue.reset_high_water()
            snap.append(pe.metrics_snapshot())
        self._epoch_snap = (index, label, now, snap)

    def epoch_end(self, label: str, machine) -> None:
        """Mark an epoch end: emit the event and snapshot the per-PE
        counters.  The snapshot is *raw* — folding it into an
        :class:`EpochRow` is deferred to the :attr:`timeline` property,
        keeping the epoch boundary on the simulation's hot path cheap."""
        if self._epoch_snap is None:
            raise RuntimeError("epoch_end without a matching epoch_begin")
        index, begin_label, start, snap = self._epoch_snap
        self._epoch_snap = None
        end = machine.elapsed()
        self.emit(("epoch_end", index, label, end))
        # One stacked-plane copy, then per-PE row views: far cheaper
        # than a tags.copy() per PE, and the rows are read-only once
        # the timeline folds them.
        tags = machine.cache_tags.copy()
        after = [(pe.pe_id, pe.metrics_snapshot(), pe.queue.high_water,
                  tags[pe.pe_id]) for pe in machine.pes]
        self._raw_rows.append((index, label, start, end, snap, after))

    @property
    def timeline(self) -> List[EpochRow]:
        """The metrics timeline, folded lazily from the epoch snapshots."""
        if self._raw_rows:
            for index, label, start, end, snap, after in self._raw_rows:
                row = EpochRow(index=index, label=label, start=start,
                               end=end)
                for before, (pe_id, now, hw, tags) in zip(snap, after):
                    row.per_pe.append(EpochPEMetrics(
                        pe=pe_id,
                        reads=now[0] - before[0],
                        hits=now[1] - before[1],
                        misses=now[2] - before[2],
                        prefetch_issued=now[3] - before[3],
                        pf_dropped=now[4] - before[4],
                        stall_cycles=now[5] - before[5],
                        queue_high_water=hw,
                        cache_lines=int(np.count_nonzero(tags >= 0))))
                self._rows.append(row)
            self._raw_rows.clear()
        return self._rows


__all__ = ["Tracer", "EpochRow", "EpochPEMetrics"]
