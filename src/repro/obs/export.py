"""Trace exporters: normalized JSONL and Chrome-trace (Perfetto) JSON.

JSONL is the interchange + golden-snapshot format: one event per line,
keys sorted, compact separators, and integral floats written as ints,
so a byte-level diff of two traces is meaningful and stable.  The
Chrome-trace exporter renders the epoch timeline (spans + per-PE
counter tracks) and barrier instants for ``chrome://tracing`` /
https://ui.perfetto.dev — the machine clock (cycles) is mapped onto the
microsecond timestamp axis.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .events import event_from_dict, event_to_dict

PathLike = Union[str, Path]


def normalize_value(value):
    """JSON-safe scalar: NumPy ints/floats -> Python, integral floats
    -> int (so ``12.0`` and ``12`` serialise identically)."""
    if isinstance(value, bool) or isinstance(value, str):
        return value
    if hasattr(value, "item"):        # NumPy scalar
        value = value.item()
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def event_to_json(event: tuple) -> str:
    """One normalized JSONL line (no trailing newline)."""
    record = {key: normalize_value(val)
              for key, val in event_to_dict(event).items()}
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def events_to_jsonl(events: Iterable[tuple]) -> str:
    """Full normalized JSONL document (trailing newline included)."""
    lines = [event_to_json(event) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: Iterable[tuple], path: PathLike) -> int:
    """Write events as JSONL; returns the number of lines written."""
    text = events_to_jsonl(events)
    Path(path).write_text(text)
    return text.count("\n")


def read_jsonl(path: PathLike) -> List[tuple]:
    """Parse a JSONL trace back into event tuples (raises on malformed
    lines, with the 1-based line number in the message)."""
    events: List[tuple] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            events.append(event_from_dict(json.loads(line)))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
    return events


def chrome_trace(timeline: Sequence, events: Iterable[tuple] = (),
                 metadata: Optional[dict] = None) -> dict:
    """Chrome-trace JSON object from a metrics timeline + event stream.

    - each epoch becomes a complete ("X") span on the Epochs track;
    - each ``barrier`` event becomes a global instant ("i");
    - each :class:`~repro.obs.tracer.EpochPEMetrics` row becomes counter
      ("C") samples per PE (hit rate, queue high-water, stalls).
    """
    trace_events: List[dict] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": "ccdp machine"}},
        {"ph": "M", "pid": 0, "tid": 0, "name": "thread_name",
         "args": {"name": "Epochs"}},
    ]
    for row in timeline:
        trace_events.append({
            "ph": "X", "pid": 0, "tid": 0, "name": row.label,
            "ts": normalize_value(row.start),
            "dur": normalize_value(max(row.duration, 0.0)),
            "args": {"epoch": row.index}})
        for m in row.per_pe:
            ts = normalize_value(row.end)
            trace_events.append(
                {"ph": "C", "pid": 0, "tid": 0, "ts": ts,
                 "name": f"pe{m.pe} hit_rate", "args": {"v": m.hit_rate}})
            trace_events.append(
                {"ph": "C", "pid": 0, "tid": 0, "ts": ts,
                 "name": f"pe{m.pe} queue_hw",
                 "args": {"v": m.queue_high_water}})
            trace_events.append(
                {"ph": "C", "pid": 0, "tid": 0, "ts": ts,
                 "name": f"pe{m.pe} stall_cycles",
                 "args": {"v": normalize_value(m.stall_cycles)}})
    for event in events:
        if event[0] == "barrier":
            trace_events.append({
                "ph": "i", "pid": 0, "tid": 0, "s": "g", "name": "barrier",
                "ts": normalize_value(event[1])})
    doc = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if metadata:
        doc["otherData"] = metadata
    return doc


def write_chrome_trace(timeline: Sequence, path: PathLike,
                       events: Iterable[tuple] = (),
                       metadata: Optional[dict] = None) -> None:
    doc = chrome_trace(timeline, events, metadata)
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


__all__ = ["normalize_value", "event_to_json", "events_to_jsonl",
           "write_jsonl", "read_jsonl", "chrome_trace",
           "write_chrome_trace"]
