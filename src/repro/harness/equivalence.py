"""Differential equivalence harness: batched backend vs reference.

The batched execution backend promises *bit-exactness*: for any program
it accepts, running with ``backend="batched"`` must leave the machine in
exactly the state the reference interpreter produces — same elapsed
cycles, same aggregate and per-PE statistics, same shared and private
array contents.  This module checks that promise mechanically so tests
and ad-hoc investigations share one comparison.

Use :func:`compare_backends` for a single program, or
:func:`check_workload` to build + (optionally) CCDP-transform a named
workload first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import fields as dc_fields
from typing import List, Optional

import numpy as np

from ..machine.params import MachineParams
from ..runtime.exec_config import ExecutionConfig, Version
from ..runtime.interp import make_interpreter


@dataclass
class EquivalenceReport:
    """Outcome of one reference-vs-batched comparison."""

    version: str
    elapsed_ref: float
    elapsed_batched: float
    batch_chunks: int          #: loop chunks the batched backend bulk-serviced
    batch_fallbacks: int       #: chunks that bound but fell back at run time
    mismatches: List[str] = field(default_factory=list)
    fault_fallbacks: int = 0   #: chunks the fault schedule forced to reference
    coverage: float = 0.0      #: fraction of refs the batched run bulk-served
    stats_batched: dict = field(default_factory=dict)  #: batched-run stats
    trace_events: int = 0      #: events compared (0 unless trace=True)

    @property
    def exact(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        verdict = "exact" if self.exact else "MISMATCH"
        return (f"[{self.version}] {verdict}: elapsed={self.elapsed_batched} "
                f"chunks={self.batch_chunks} fallbacks={self.batch_fallbacks}"
                + ("".join("\n  " + m for m in self.mismatches)))


def compare_backends(program, params: MachineParams, version: str,
                     on_stale: str = "record", fault_plan=None,
                     oracle: bool = False,
                     trace: bool = False) -> EquivalenceReport:
    """Run ``program`` under both backends and diff every observable.

    Comparisons are exact (``==`` / ``array_equal``), never approximate:
    the batched backend is a drop-in replacement, not an approximation.
    With a ``fault_plan``, both backends realise the *same* seeded fault
    schedule (the batched backend routes faulted chunks to the reference
    path), so the diff must still be empty — that invariant is what the
    fault-matrix tests lean on.

    With ``trace=True``, both runs carry an unbounded
    :class:`~repro.obs.Tracer` and the full machine-event streams plus
    the per-epoch metrics timelines are diffed element by element — the
    batched backend synthesises events, so this is the strongest
    backend-equivalence check available.
    """
    from ..obs import Tracer

    tracer_ref = Tracer() if trace else None
    tracer_bat = Tracer() if trace else None
    ref = make_interpreter(program, params,
                           ExecutionConfig.for_version(
                               version, on_stale, backend="reference",
                               fault_plan=fault_plan, oracle=oracle,
                               tracer=tracer_ref))
    bat = make_interpreter(program, params,
                           ExecutionConfig.for_version(
                               version, on_stale, backend="batched",
                               fault_plan=fault_plan, oracle=oracle,
                               tracer=tracer_bat))
    res_ref = ref.run()
    res_bat = bat.run()
    mism: List[str] = []
    if res_ref.elapsed != res_bat.elapsed:
        mism.append(f"elapsed: {res_ref.elapsed} != {res_bat.elapsed}")
    _diff_stats(ref.machine, bat.machine, mism)
    _diff_memory(ref.machine.memory, bat.machine.memory, mism)
    if ref.machine.faults is not None:
        fa = ref.machine.faults.stats.as_dict()
        fb = bat.machine.faults.stats.as_dict()
        for key in fa:
            if key != "batch_fallbacks" and fa[key] != fb[key]:
                mism.append(f"faults.{key}: {fa[key]} != {fb[key]}")
    trace_events = 0
    if trace:
        trace_events = _diff_traces(tracer_ref, tracer_bat, mism)
    return EquivalenceReport(
        version=version, elapsed_ref=res_ref.elapsed,
        elapsed_batched=res_bat.elapsed,
        batch_chunks=getattr(bat, "batch_chunks", 0),
        batch_fallbacks=getattr(bat, "batch_fallbacks", 0),
        mismatches=mism,
        fault_fallbacks=getattr(bat, "fault_fallbacks", 0),
        coverage=res_bat.batched_coverage,
        stats_batched=bat.machine.stats.as_dict(),
        trace_events=trace_events)


def check_workload(name: str, params: MachineParams, version: str,
                   on_stale: str = "record", fault_plan=None,
                   oracle: bool = False, transform: Optional[bool] = None,
                   ccdp_overrides: Optional[dict] = None,
                   trace: bool = False, **size_args) -> EquivalenceReport:
    """Build workload ``name``; CCDP-transform it when ``version`` is
    ``ccdp`` (or ``transform`` forces it either way — e.g. to exercise
    the prefetch instructions the transform inserts under SEQ/BASE
    semantics); then :func:`compare_backends`.  ``ccdp_overrides`` are
    passed to :class:`CCDPConfig` (``enable_vpg=False`` steers the
    scheduler to line prefetches, the batched replay path's diet)."""
    from ..coherence import CCDPConfig, ccdp_transform
    from ..workloads import workload

    program = workload(name).build(**size_args)
    if transform if transform is not None else version == Version.CCDP:
        config = CCDPConfig(machine=params).with_(**(ccdp_overrides or {}))
        program, _ = ccdp_transform(program, config)
    return compare_backends(program, params, version, on_stale,
                            fault_plan=fault_plan, oracle=oracle, trace=trace)


def _diff_stats(machine_a, machine_b, out: List[str]) -> None:
    da = machine_a.stats.as_dict()
    db = machine_b.stats.as_dict()
    for key in da:
        if da[key] != db[key]:
            out.append(f"stats.{key}: {da[key]} != {db[key]}")
    for pe, (sa, sb) in enumerate(zip(machine_a.stats.per_pe,
                                      machine_b.stats.per_pe)):
        for f in dc_fields(sa):
            va, vb = getattr(sa, f.name), getattr(sb, f.name)
            if va != vb:
                out.append(f"pe{pe}.{f.name}: {va} != {vb}")
    for pe, (pa, pb) in enumerate(zip(machine_a.pes, machine_b.pes)):
        if pa.clock != pb.clock:
            out.append(f"pe{pe}.clock: {pa.clock} != {pb.clock}")
        if not np.array_equal(pa.cache.tags, pb.cache.tags):
            out.append(f"pe{pe}.cache.tags differ")
        elif not np.array_equal(pa.cache.data, pb.cache.data):
            out.append(f"pe{pe}.cache.data differ")
        elif not np.array_equal(pa.cache.vers, pb.cache.vers):
            out.append(f"pe{pe}.cache.vers differ")
        # Prefetch hardware state: the batched replay path rebuilds the
        # queue wholesale, so compare its contents, its aggregate
        # counters, and the rule-2 dropped-line bookkeeping exactly.
        if pa.queue.snapshot() != pb.queue.snapshot():
            out.append(f"pe{pe}.queue.entries: {pa.queue.snapshot()} != "
                       f"{pb.queue.snapshot()}")
        for counter in ("issued", "dropped", "high_water"):
            va, vb = getattr(pa.queue, counter), getattr(pb.queue, counter)
            if va != vb:
                out.append(f"pe{pe}.queue.{counter}: {va} != {vb}")
        if pa.dropped_lines != pb.dropped_lines:
            out.append(f"pe{pe}.dropped_lines: {sorted(pa.dropped_lines)} != "
                       f"{sorted(pb.dropped_lines)}")
        if pa.last_prefetch_pe != pb.last_prefetch_pe:
            out.append(f"pe{pe}.last_prefetch_pe: {pa.last_prefetch_pe} != "
                       f"{pb.last_prefetch_pe}")
        va = [(t.array, t.line_lo, t.line_hi, t.completion)
              for t in pa.vectors.transfers]
        vb = [(t.array, t.line_lo, t.line_hi, t.completion)
              for t in pb.vectors.transfers]
        if va != vb:
            out.append(f"pe{pe}.vectors.transfers: {va} != {vb}")
        if pa.vectors.issued != pb.vectors.issued:
            out.append(f"pe{pe}.vectors.issued: {pa.vectors.issued} != "
                       f"{pb.vectors.issued}")


def _diff_traces(tracer_ref, tracer_bat, out: List[str]) -> int:
    """Diff two full (unsampled, uncapped) traces: event streams, per-kind
    counters and metrics timelines.  Returns the number of events in the
    reference stream."""
    ev_a = tracer_ref.events
    ev_b = tracer_bat.events
    if len(ev_a) != len(ev_b):
        out.append(f"trace length: {len(ev_a)} != {len(ev_b)}")
    for i, (a, b) in enumerate(zip(ev_a, ev_b)):
        if a != b:
            lo = max(0, i - 2)
            ctx_a = ev_a[lo:i + 2]
            ctx_b = ev_b[lo:i + 2]
            out.append(f"trace event {i}: {a} != {b} "
                       f"(ref context {ctx_a}, batched context {ctx_b})")
            break
    if tracer_ref.counts != tracer_bat.counts:
        out.append(f"trace counts: {tracer_ref.counts} != "
                   f"{tracer_bat.counts}")
    rows_a = [r.as_dict() for r in tracer_ref.timeline]
    rows_b = [r.as_dict() for r in tracer_bat.timeline]
    if len(rows_a) != len(rows_b):
        out.append(f"timeline length: {len(rows_a)} != {len(rows_b)}")
    for i, (ra, rb) in enumerate(zip(rows_a, rows_b)):
        if ra != rb:
            out.append(f"timeline row {i}: {ra} != {rb}")
            break
    return len(ev_a)


def _diff_memory(mem_a, mem_b, out: List[str]) -> None:
    for array, values in mem_a.values.items():
        if not np.array_equal(values, mem_b.values[array]):
            bad = int(np.flatnonzero(values != mem_b.values[array])[0])
            out.append(f"shared {array}[{bad}]: {values[bad]} != "
                       f"{mem_b.values[array][bad]}")
    for array, versions in mem_a.versions.items():
        if not np.array_equal(versions, mem_b.versions[array]):
            out.append(f"versions {array} differ")
    for array, values in mem_a.private_values.items():
        if not np.array_equal(values, mem_b.private_values[array]):
            out.append(f"private {array} differs")


__all__ = ["EquivalenceReport", "compare_backends", "check_workload"]
