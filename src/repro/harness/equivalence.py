"""Differential equivalence harness: batched backend vs reference.

The batched execution backend promises *bit-exactness*: for any program
it accepts, running with ``backend="batched"`` must leave the machine in
exactly the state the reference interpreter produces — same elapsed
cycles, same aggregate and per-PE statistics, same shared and private
array contents.  This module checks that promise mechanically so tests
and ad-hoc investigations share one comparison.

Use :func:`compare_backends` for a single program, or
:func:`check_workload` to build + (optionally) CCDP-transform a named
workload first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import fields as dc_fields
from typing import List, Optional

import numpy as np

from ..machine.params import MachineParams
from ..runtime.exec_config import ExecutionConfig, Version
from ..runtime.interp import make_interpreter


@dataclass
class EquivalenceReport:
    """Outcome of one reference-vs-batched comparison."""

    version: str
    elapsed_ref: float
    elapsed_batched: float
    batch_chunks: int          #: loop chunks the batched backend bulk-serviced
    batch_fallbacks: int       #: chunks that bound but fell back at run time
    mismatches: List[str] = field(default_factory=list)

    @property
    def exact(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        verdict = "exact" if self.exact else "MISMATCH"
        return (f"[{self.version}] {verdict}: elapsed={self.elapsed_batched} "
                f"chunks={self.batch_chunks} fallbacks={self.batch_fallbacks}"
                + ("".join("\n  " + m for m in self.mismatches)))


def compare_backends(program, params: MachineParams, version: str,
                     on_stale: str = "record", fault_plan=None,
                     oracle: bool = False) -> EquivalenceReport:
    """Run ``program`` under both backends and diff every observable.

    Comparisons are exact (``==`` / ``array_equal``), never approximate:
    the batched backend is a drop-in replacement, not an approximation.
    With a ``fault_plan``, both backends realise the *same* seeded fault
    schedule (the batched backend routes faulted chunks to the reference
    path), so the diff must still be empty — that invariant is what the
    fault-matrix tests lean on.
    """
    ref = make_interpreter(program, params,
                           ExecutionConfig.for_version(
                               version, on_stale, backend="reference",
                               fault_plan=fault_plan, oracle=oracle))
    bat = make_interpreter(program, params,
                           ExecutionConfig.for_version(
                               version, on_stale, backend="batched",
                               fault_plan=fault_plan, oracle=oracle))
    res_ref = ref.run()
    res_bat = bat.run()
    mism: List[str] = []
    if res_ref.elapsed != res_bat.elapsed:
        mism.append(f"elapsed: {res_ref.elapsed} != {res_bat.elapsed}")
    _diff_stats(ref.machine, bat.machine, mism)
    _diff_memory(ref.machine.memory, bat.machine.memory, mism)
    if ref.machine.faults is not None:
        fa = ref.machine.faults.stats.as_dict()
        fb = bat.machine.faults.stats.as_dict()
        for key in fa:
            if key != "batch_fallbacks" and fa[key] != fb[key]:
                mism.append(f"faults.{key}: {fa[key]} != {fb[key]}")
    return EquivalenceReport(
        version=version, elapsed_ref=res_ref.elapsed,
        elapsed_batched=res_bat.elapsed,
        batch_chunks=getattr(bat, "batch_chunks", 0),
        batch_fallbacks=getattr(bat, "batch_fallbacks", 0),
        mismatches=mism)


def check_workload(name: str, params: MachineParams, version: str,
                   on_stale: str = "record", fault_plan=None,
                   oracle: bool = False, **size_args) -> EquivalenceReport:
    """Build workload ``name``; CCDP-transform it when ``version`` is
    ``ccdp``; then :func:`compare_backends`."""
    from ..coherence import CCDPConfig, ccdp_transform
    from ..workloads import workload

    program = workload(name).build(**size_args)
    if version == Version.CCDP:
        program, _ = ccdp_transform(program, CCDPConfig(machine=params))
    return compare_backends(program, params, version, on_stale,
                            fault_plan=fault_plan, oracle=oracle)


def _diff_stats(machine_a, machine_b, out: List[str]) -> None:
    da = machine_a.stats.as_dict()
    db = machine_b.stats.as_dict()
    for key in da:
        if da[key] != db[key]:
            out.append(f"stats.{key}: {da[key]} != {db[key]}")
    for pe, (sa, sb) in enumerate(zip(machine_a.stats.per_pe,
                                      machine_b.stats.per_pe)):
        for f in dc_fields(sa):
            va, vb = getattr(sa, f.name), getattr(sb, f.name)
            if va != vb:
                out.append(f"pe{pe}.{f.name}: {va} != {vb}")
    for pe, (pa, pb) in enumerate(zip(machine_a.pes, machine_b.pes)):
        if pa.clock != pb.clock:
            out.append(f"pe{pe}.clock: {pa.clock} != {pb.clock}")
        if not np.array_equal(pa.cache.tags, pb.cache.tags):
            out.append(f"pe{pe}.cache.tags differ")
        elif not np.array_equal(pa.cache.data, pb.cache.data):
            out.append(f"pe{pe}.cache.data differ")


def _diff_memory(mem_a, mem_b, out: List[str]) -> None:
    for array, values in mem_a.values.items():
        if not np.array_equal(values, mem_b.values[array]):
            bad = int(np.flatnonzero(values != mem_b.values[array])[0])
            out.append(f"shared {array}[{bad}]: {values[bad]} != "
                       f"{mem_b.values[array][bad]}")
    for array, versions in mem_a.versions.items():
        if not np.array_equal(versions, mem_b.versions[array]):
            out.append(f"versions {array} differ")
    for array, values in mem_a.private_values.items():
        if not np.array_equal(values, mem_b.private_values[array]):
            out.append(f"private {array} differs")


__all__ = ["EquivalenceReport", "compare_backends", "check_workload"]
