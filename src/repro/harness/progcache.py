"""Content-addressed in-process cache for built programs, oracles and
CCDP transforms.

Building a workload's IR and running the CCDP compiler are pure
functions of (workload name, size arguments) and (program, machine
parameters, CCDP overrides) respectively, and both are reused many
times per process: every version run of a sweep shares one built
program, every PE count shares one oracle, and benchmark sessions
rebuild the same handful of programs across modules.  This module
memoises them under *content keys* — canonical JSON of every input that
affects the result, hashed with SHA-256 — so equal inputs hit the cache
regardless of which caller (CLI, sweep worker, benchmark fixture)
produced them, and unequal inputs can never collide on a partial key.

The cache is per-process by design.  Parallel sweep workers each carry
their own copy (populated on first use, or inherited pre-warmed via
``fork``), so no cross-process locking or shared mutable state exists;
determinism follows because the cached values are themselves pure.

Programs and transform results are returned *shared*, not cloned: the
runtime treats IR as immutable (the interpreters never mutate a
program), which is the same contract ``ExperimentRunner`` has always
relied on when reusing ``self.program`` across runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Dict, Tuple

from ..machine.params import MachineParams

_PROGRAMS: Dict[str, object] = {}
_ORACLES: Dict[str, dict] = {}
_TRANSFORMS: Dict[str, Tuple[object, object]] = {}

#: Cache effectiveness counters (observable by tests and diagnostics).
COUNTERS = {"program_hits": 0, "program_misses": 0,
            "oracle_hits": 0, "oracle_misses": 0,
            "transform_hits": 0, "transform_misses": 0,
            "plan_hits": 0, "plan_misses": 0}


def _canonical(value):
    """Reduce a key component to canonical JSON-encodable form."""
    if isinstance(value, MachineParams):
        return {k: _canonical(v) for k, v in sorted(asdict(value).items())}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Fall back to repr for exotic override values; repr equality is a
    # conservative (never falsely equal) stand-in for content equality.
    return repr(value)


def content_key(*parts) -> str:
    """SHA-256 over the canonical JSON encoding of ``parts``."""
    blob = json.dumps(_canonical(parts), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def get_program(spec, size_args: Dict[str, int]):
    """Memoised ``spec.build(**size_args)``."""
    key = content_key("program", spec.name, size_args)
    if key not in _PROGRAMS:
        COUNTERS["program_misses"] += 1
        _PROGRAMS[key] = spec.build(**size_args)
    else:
        COUNTERS["program_hits"] += 1
    return _PROGRAMS[key]


def get_oracle(spec, size_args: Dict[str, int]) -> dict:
    """Memoised ``spec.oracle(**size_args)`` (NumPy reference results)."""
    key = content_key("oracle", spec.name, size_args)
    if key not in _ORACLES:
        COUNTERS["oracle_misses"] += 1
        _ORACLES[key] = spec.oracle(**size_args)
    else:
        COUNTERS["oracle_hits"] += 1
    return _ORACLES[key]


def get_transform(name: str, size_args: Dict[str, int], program,
                  params: MachineParams, ccdp_overrides: Dict[str, object]):
    """Memoised ``ccdp_transform(program, CCDPConfig(machine=params)
    .with_(**ccdp_overrides))`` → ``(transformed_program, CCDPReport)``.

    ``program`` must be the build for ``(name, size_args)``; the key is
    derived from those plus the *full* machine description, so two
    parameter sets differing in any field (PE count, cache size, queue
    slots, ...) can never share a transform.
    """
    key = content_key("ccdp", name, size_args, params, ccdp_overrides)
    if key not in _TRANSFORMS:
        from ..coherence import CCDPConfig, ccdp_transform
        COUNTERS["transform_misses"] += 1
        config = CCDPConfig(machine=params).with_(**ccdp_overrides)
        _TRANSFORMS[key] = ccdp_transform(program, config)
    else:
        COUNTERS["transform_hits"] += 1
    return _TRANSFORMS[key]


def clear() -> None:
    """Drop every cached artifact (tests; memory pressure)."""
    _PROGRAMS.clear()
    _ORACLES.clear()
    _TRANSFORMS.clear()
    from ..runtime import plancache
    plancache.clear()
    for k in COUNTERS:
        COUNTERS[k] = 0


__all__ = ["content_key", "get_program", "get_oracle", "get_transform",
           "clear", "COUNTERS"]
