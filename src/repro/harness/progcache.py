"""Content-addressed in-process cache for built programs, oracles and
CCDP transforms.

Building a workload's IR and running the CCDP compiler are pure
functions of (workload name, size arguments) and (program, machine
parameters, CCDP overrides) respectively, and both are reused many
times per process: every version run of a sweep shares one built
program, every PE count shares one oracle, and benchmark sessions
rebuild the same handful of programs across modules.  This module
memoises them under *content keys* — canonical JSON of every input that
affects the result, hashed with SHA-256 — so equal inputs hit the cache
regardless of which caller (CLI, sweep worker, benchmark fixture)
produced them, and unequal inputs can never collide on a partial key.

The cache is per-process by design.  Parallel sweep workers each carry
their own copy (populated on first use, or inherited pre-warmed via
``fork``), so no cross-process locking or shared mutable state exists;
determinism follows because the cached values are themselves pure.

Programs and transform results are returned *shared*, not cloned: the
runtime treats IR as immutable (the interpreters never mutate a
program), which is the same contract ``ExperimentRunner`` has always
relied on when reusing ``self.program`` across runs.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..machine.params import MachineParams

log = logging.getLogger("repro.progcache")

_PROGRAMS: Dict[str, object] = {}
_ORACLES: Dict[str, dict] = {}
_TRANSFORMS: Dict[str, Tuple[object, object]] = {}

#: Cache effectiveness counters (observable by tests and diagnostics).
COUNTERS = {"program_hits": 0, "program_misses": 0,
            "oracle_hits": 0, "oracle_misses": 0,
            "transform_hits": 0, "transform_misses": 0,
            "plan_hits": 0, "plan_misses": 0}


def _canonical(value):
    """Reduce a key component to canonical JSON-encodable form."""
    if isinstance(value, MachineParams):
        return {k: _canonical(v) for k, v in sorted(asdict(value).items())}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Fall back to repr for exotic override values; repr equality is a
    # conservative (never falsely equal) stand-in for content equality.
    return repr(value)


def content_key(*parts) -> str:
    """SHA-256 over the canonical JSON encoding of ``parts``."""
    blob = json.dumps(_canonical(parts), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def get_program(spec, size_args: Dict[str, int]):
    """Memoised ``spec.build(**size_args)``."""
    key = content_key("program", spec.name, size_args)
    if key not in _PROGRAMS:
        COUNTERS["program_misses"] += 1
        _PROGRAMS[key] = spec.build(**size_args)
    else:
        COUNTERS["program_hits"] += 1
    return _PROGRAMS[key]


def get_oracle(spec, size_args: Dict[str, int]) -> dict:
    """Memoised ``spec.oracle(**size_args)`` (NumPy reference results)."""
    key = content_key("oracle", spec.name, size_args)
    if key not in _ORACLES:
        COUNTERS["oracle_misses"] += 1
        _ORACLES[key] = spec.oracle(**size_args)
    else:
        COUNTERS["oracle_hits"] += 1
    return _ORACLES[key]


def get_transform(name: str, size_args: Dict[str, int], program,
                  params: MachineParams, ccdp_overrides: Dict[str, object]):
    """Memoised ``ccdp_transform(program, CCDPConfig(machine=params)
    .with_(**ccdp_overrides))`` → ``(transformed_program, CCDPReport)``.

    ``program`` must be the build for ``(name, size_args)``; the key is
    derived from those plus the *full* machine description, so two
    parameter sets differing in any field (PE count, cache size, queue
    slots, ...) can never share a transform.
    """
    key = content_key("ccdp", name, size_args, params, ccdp_overrides)
    if key not in _TRANSFORMS:
        from ..coherence import CCDPConfig, ccdp_transform
        COUNTERS["transform_misses"] += 1
        config = CCDPConfig(machine=params).with_(**ccdp_overrides)
        _TRANSFORMS[key] = ccdp_transform(program, config)
    else:
        COUNTERS["transform_hits"] += 1
    return _TRANSFORMS[key]


def result_digest(data: bytes) -> str:
    """SHA-256 of a serialized result payload — the verification token
    the farm journal stores next to every ``done`` record."""
    return hashlib.sha256(data).hexdigest()


class DiskStore:
    """Content-addressed on-disk result store (``<farm_dir>/results``).

    One pickled payload per content key, written atomically (temp file
    + ``fsync`` + ``rename``) so a ``kill -9`` at any instant leaves
    either the complete old state or the complete new state — never a
    torn entry a resume could trust.

    Reads are *paranoid by design*: a missing file, a short read, a
    digest mismatch or an unpicklable payload logs a warning, evicts
    the entry, and returns ``None`` — the caller recomputes.  Corrupt
    caches may cost work; they can never crash a sweep or smuggle a
    wrong result past the digest check.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- writing -------------------------------------------------------
    def put_bytes(self, key: str, data: bytes) -> str:
        """Atomically store ``data`` under ``key``; returns its digest."""
        path = self.path_for(key)
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return result_digest(data)

    def put(self, key: str, obj: object) -> Tuple[str, bytes]:
        data = pickle.dumps(obj)
        return self.put_bytes(key, data), data

    # -- reading -------------------------------------------------------
    def _evict(self, key: str, why: str) -> None:
        log.warning("result store %s: evicting %s (%s); will recompute",
                    self.root, key[:16], why)
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    def get_bytes(self, key: str,
                  expect_digest: Optional[str] = None) -> Optional[bytes]:
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._evict(key, f"unreadable: {exc}")
            return None
        if expect_digest is not None and result_digest(data) != expect_digest:
            self._evict(key, "digest mismatch (corrupt or truncated entry)")
            return None
        return data

    def get(self, key: str,
            expect_digest: Optional[str] = None) -> Optional[object]:
        """Verified unpickle of ``key``'s entry, or ``None`` (evicting
        on any corruption)."""
        data = self.get_bytes(key, expect_digest)
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except Exception as exc:
            self._evict(key, f"bad pickle: {exc!r}")
            return None


def clear() -> None:
    """Drop every cached artifact (tests; memory pressure)."""
    _PROGRAMS.clear()
    _ORACLES.clear()
    _TRANSFORMS.clear()
    from ..runtime import plancache
    plancache.clear()
    for k in COUNTERS:
        COUNTERS[k] = 0


__all__ = ["content_key", "get_program", "get_oracle", "get_transform",
           "result_digest", "DiskStore", "clear", "COUNTERS"]
