"""Process-parallel sweep engine for the experiment grid, farm-backed.

A paper reproduction sweep is an embarrassingly parallel grid: every
(workload, version, PE count) cell is an independent simulation whose
result depends only on its own inputs.  This module turns that grid
into content-addressed jobs and fans them out through the sweep farm
(:mod:`repro.farm`) while keeping the output *byte-identical* to the
serial sweep:

* **Deterministic cell order.**  Cells are enumerated in the exact
  order :meth:`ExperimentRunner.sweep` runs them (per workload: SEQ
  first, then PE-major, version-minor) and results are merged back by
  cell index, so the assembled :class:`Sweep` objects never depend on
  worker scheduling, retry timing, or which cells a resume replayed.
* **Deterministic cell seeds.**  A faulted sweep derives each cell's
  fault seed from a stable hash of (base seed, workload, version, PE
  count) — the same cell gets the same fault schedule no matter which
  worker runs it, at any job count, on any retry attempt.
* **Content-addressed cells.**  :func:`cell_key` hashes every input
  that affects a cell's :class:`RunRecord` (workload, effective sizes,
  version, PEs, backend, overrides, derived fault seed).  With a
  ``farm_dir`` the farm journals results under these keys, so a killed
  sweep resumes replaying only unfinished cells and sweeps sharing a
  farm dir dedup identical cells.
* **Failure surfacing.**  A crashing cell never wedges the pool.
  Without a farm config, :func:`sweep_grid` raises one
  :class:`SweepError` naming every failed cell with its coordinates,
  content key, a ready-to-paste ``ccdp run`` repro line, and the
  traceback.  With a farm config, failing cells are retried with
  seeded backoff, then *quarantined*: the rest of the grid completes
  and the quarantined cells surface in :attr:`Sweep.failed`.

``jobs <= 1`` runs the identical code path in-process (no pool), which
is both the fallback and the determinism reference.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..farm import SCHEMA, FarmConfig, FarmError, FarmResult, Job, JobOutcome
from ..farm import run_farm as _run_farm
from ..runtime import Version
from .experiment import PAPER_PE_COUNTS, ExperimentRunner, RunRecord, Sweep
from .progcache import content_key

ProgressFn = Callable[[int, int, str], None]


@dataclass(frozen=True)
class SweepSpec:
    """Hashable description of one workload's sweep (picklable, so it can
    cross the process boundary; hashable, so workers can key their
    per-process runner cache on it)."""

    workload: str
    size_args: Tuple[Tuple[str, int], ...] = ()
    pe_counts: Tuple[int, ...] = PAPER_PE_COUNTS
    versions: Tuple[str, ...] = (Version.BASE, Version.CCDP)
    backend: str = "reference"
    check: bool = True
    param_overrides: Tuple[Tuple[str, float], ...] = ()
    ccdp_overrides: Tuple[Tuple[str, object], ...] = ()
    fault_spec: Optional[str] = None   #: ``--faults`` spec/preset, or None
    fault_seed: int = 0                #: base seed; cells derive their own

    @classmethod
    def create(cls, workload: str, size_args: Optional[Dict[str, int]] = None,
               pe_counts: Sequence[int] = PAPER_PE_COUNTS,
               versions: Sequence[str] = (Version.BASE, Version.CCDP),
               backend: str = "reference", check: bool = True,
               param_overrides: Optional[Dict[str, float]] = None,
               ccdp_overrides: Optional[Dict[str, object]] = None,
               fault_spec: Optional[str] = None,
               fault_seed: int = 0) -> "SweepSpec":
        """Build a spec from plain dict/sequence options."""
        as_items = lambda d: tuple(sorted((d or {}).items()))
        return cls(workload=workload, size_args=as_items(size_args),
                   pe_counts=tuple(pe_counts), versions=tuple(versions),
                   backend=backend, check=check,
                   param_overrides=as_items(param_overrides),
                   ccdp_overrides=as_items(ccdp_overrides),
                   fault_spec=fault_spec, fault_seed=fault_seed)


@dataclass(frozen=True)
class Cell:
    """One grid point: a single (workload, version, PE count) run."""

    index: int     #: global position in the serial sweep order
    workload: str
    version: str
    n_pes: int

    def describe(self) -> str:
        return f"{self.workload}/{self.version}@{self.n_pes}"


@dataclass
class FailedCell:
    """A cell the farm gave up on, with everything needed to re-run it
    in isolation."""

    cell: Cell
    spec: SweepSpec
    key: str                 #: the cell's content key (journal/result id)
    attempts: int
    reason: str              #: error | timeout | crash
    error: str               #: last attempt's traceback / failure text

    def repro_command(self) -> str:
        """A ready-to-paste ``ccdp run`` line reproducing this cell alone
        (fault seed pre-derived, so the standalone run realises the
        exact schedule the sweep cell did)."""
        parts = [f"python -m repro.harness run {self.cell.workload}",
                 f"--version {self.cell.version}",
                 f"--pes {self.cell.n_pes}"]
        for name, value in self.spec.size_args:
            parts.append(f"--{name} {value}")
        if self.spec.backend != "reference":
            parts.append(f"--backend {self.spec.backend}")
        if not self.spec.check:
            parts.append("--no-check")
        if self.spec.fault_spec:
            parts.append(f"--faults '{self.spec.fault_spec}' --fault-seed "
                         f"{cell_fault_seed(self.spec.fault_seed, self.cell)}")
        return " ".join(parts)

    def describe(self) -> str:
        last = self.error.strip().splitlines()
        return (f"{self.cell.describe()}: FAILED after {self.attempts} "
                f"attempt(s) [{self.reason}]"
                + (f" ({last[-1]})" if last else ""))


class SweepError(RuntimeError):
    """One or more sweep cells failed; carries every cell's coordinates,
    content key, repro command and traceback."""

    def __init__(self, failures: List[FailedCell]) -> None:
        self.failures = failures
        names = ", ".join(f.cell.describe() for f in failures)
        detail = "\n\n".join(
            f"--- {f.cell.describe()} (key {f.key[:16]}) ---\n"
            f"repro: {f.repro_command()}\n{f.error.rstrip()}"
            for f in failures)
        super().__init__(
            f"{len(failures)} sweep cell(s) failed: {names}\n{detail}")


def cell_fault_seed(base_seed: int, cell: Cell) -> int:
    """Stable per-cell fault seed: equal cells get equal schedules at any
    job count; distinct cells get decorrelated streams."""
    tag = f"{base_seed}|{cell.workload}|{cell.version}|{cell.n_pes}"
    return zlib.crc32(tag.encode()) & 0x7FFFFFFF


def cell_key(spec: SweepSpec, cell: Cell) -> str:
    """Content key of one cell: canonical hash of every input its
    :class:`RunRecord` depends on.  Size arguments are resolved against
    the workload defaults first, so an explicit ``n=<default>`` and the
    default spelling address the same result."""
    fault = None
    if spec.fault_spec:
        fault = (spec.fault_spec, cell_fault_seed(spec.fault_seed, cell))
    try:
        sizes = _sized_args(spec)
    except Exception:
        # Unknown workload: keep the raw sizes so the key still exists
        # and the cell can fail (and be journaled) like any other.
        sizes = dict(spec.size_args)
    return content_key(
        "cell", SCHEMA, cell.workload, sizes, cell.version,
        cell.n_pes, spec.backend, spec.check, spec.param_overrides,
        spec.ccdp_overrides, fault)


def plan_cells(specs: Sequence[SweepSpec]) -> List[Tuple[SweepSpec, Cell]]:
    """Enumerate the grid in serial-sweep order (the determinism anchor:
    result merging relies on this order, never on completion order)."""
    cells: List[Tuple[SweepSpec, Cell]] = []
    index = 0
    for spec in specs:
        cells.append((spec, Cell(index, spec.workload, Version.SEQ, 1)))
        index += 1
        for n_pes in spec.pe_counts:
            for version in spec.versions:
                cells.append((spec, Cell(index, spec.workload, version, n_pes)))
                index += 1
    return cells


# -- worker side ---------------------------------------------------------------

#: Per-process runner cache.  Keyed by the (hashable) SweepSpec so one
#: worker servicing many cells of the same sweep builds the program and
#: oracle once; safe because runners are only ever used for pure runs.
_RUNNERS: Dict[SweepSpec, ExperimentRunner] = {}


def _runner_for(spec: SweepSpec) -> ExperimentRunner:
    if spec not in _RUNNERS:
        from ..workloads import workload
        _RUNNERS[spec] = ExperimentRunner(
            workload(spec.workload), dict(spec.size_args),
            dict(spec.param_overrides), dict(spec.ccdp_overrides),
            check=spec.check)
    return _RUNNERS[spec]


def _trapdoors(cell: Cell) -> None:
    """Test/CI hooks: make a named cell crash or hang, so supervision
    paths are exercisable end to end.  ``REPRO_SWEEP_CRASH_CELL`` names
    cells (comma list of ``workload/version@pes``) whose worker dies
    without reporting; ``REPRO_SWEEP_HANG_CELL`` names cells that hang
    until the per-cell timeout reaps them.  Only meaningful under
    ``--jobs >= 2`` / a cell timeout (worker processes)."""
    crash = os.environ.get("REPRO_SWEEP_CRASH_CELL", "")
    if crash and cell.describe() in {c.strip() for c in crash.split(",")}:
        os._exit(3)
    hang = os.environ.get("REPRO_SWEEP_HANG_CELL", "")
    if hang and cell.describe() in {c.strip() for c in hang.split(",")}:
        time.sleep(3600)


def _run_cell(payload: Tuple[SweepSpec, Cell]):
    """Execute one grid cell; never raises.  Returns
    ``(RunRecord, None)`` on success or ``(None, traceback_text)`` on
    failure — the farm's ``failure_of`` hook turns the latter into
    retries/quarantine.  The return value is index-free so identical
    cells from different grids share one journaled result."""
    import traceback

    spec, cell = payload
    try:
        _trapdoors(cell)
        fault_plan = None
        if spec.fault_spec:
            from ..faults import parse_fault_plan
            fault_plan = parse_fault_plan(
                spec.fault_spec, seed=cell_fault_seed(spec.fault_seed, cell))
        runner = _runner_for(spec)
        record = runner.run_version(cell.version, cell.n_pes,
                                    backend=spec.backend,
                                    fault_plan=fault_plan)
        # CCDPReport is a rich object graph that is expensive to pickle
        # and not needed per-cell (report generation re-derives it from a
        # runner); stripping it on BOTH the serial and parallel paths
        # keeps the two byte-identical.
        record.ccdp_report = None
        return record, None
    except Exception:
        return None, traceback.format_exc()


def _cell_failure(result) -> Optional[str]:
    """Farm ``failure_of`` hook for sweep cells."""
    return result[1]


# -- parent side ---------------------------------------------------------------

def run_pool(worker, payloads: Sequence, jobs: int = 1,
             progress: Optional[Callable[[int, int, object], None]] = None
             ) -> List:
    """Order-preserving map of ``worker`` over ``payloads``, optionally
    across ``jobs`` processes (ephemeral farm run: no journal, no
    retries).

    This is the shared fan-out engine for any embarrassingly-parallel
    grid.  ``worker`` must be a module-level callable of one payload
    (so it pickles by reference) that never raises — failures travel
    inside its return value; a worker that *does* raise surfaces as
    :class:`~repro.farm.FarmError`.  Every result is round-tripped
    through pickle on both the serial and pool paths, which keeps
    ``jobs=1`` and ``jobs=N`` byte-identical (tests rely on this).
    ``progress`` (when given) is called as
    ``progress(done, total, result)`` after every cell.
    """
    jobs_list = [Job(index=i, key=f"pool-{i}", payload=payload,
                     desc=f"job {i}")
                 for i, payload in enumerate(payloads)]

    def farm_progress(done: int, total: int, outcome: JobOutcome) -> None:
        progress(done, total, outcome.result)

    farm = _run_farm(worker, jobs_list, FarmConfig(jobs=jobs),
                     progress=farm_progress if progress is not None else None)
    for outcome in farm.failed:
        raise FarmError(f"{outcome.job.desc} raised:\n{outcome.error}")
    return [outcome.result for outcome in farm.outcomes]


def _sized_args(spec: SweepSpec) -> Dict[str, int]:
    """The effective size arguments (defaults + applicable overrides),
    mirroring ExperimentRunner's filtering without building anything."""
    from ..workloads import workload
    defaults = workload(spec.workload).default_args
    overrides = {k: v for k, v in dict(spec.size_args).items()
                 if k in defaults}
    return {**defaults, **overrides}


def sweep_grid(specs: Sequence[SweepSpec], jobs: int = 1,
               progress: Optional[ProgressFn] = None,
               farm: Optional[FarmConfig] = None,
               collect: Optional[dict] = None) -> List[Sweep]:
    """Run every spec's full grid through the farm.

    Returns one :class:`Sweep` per spec, in spec order, with records
    identical (bit-for-bit, including pickled form) to a serial
    ``ExperimentRunner.sweep`` — see the module docstring for how.

    Without ``farm``, runs an ephemeral strict grid (``jobs`` worker
    processes, no journal) and raises :class:`SweepError` if any cell
    failed.  With a :class:`~repro.farm.FarmConfig`, journaling/resume/
    dedup, timeouts and retries apply, and cells that end quarantined
    land in :attr:`Sweep.failed` instead of aborting the grid.
    ``collect`` (a dict, when given) receives the
    :class:`~repro.farm.FarmResult` under ``"farm"``.
    """
    strict = farm is None
    config = farm or FarmConfig(jobs=jobs)
    payloads = plan_cells(specs)
    jobs_list = [Job(index=cell.index, key=cell_key(spec, cell),
                     payload=(spec, cell), desc=cell.describe())
                 for spec, cell in payloads]

    def farm_progress(done: int, total: int, outcome: JobOutcome) -> None:
        progress(done, total, _outcome_text(outcome))

    result = _run_farm(_run_cell, jobs_list, config,
                       failure_of=_cell_failure,
                       progress=farm_progress if progress is not None
                       else None)
    if collect is not None:
        collect["farm"] = result

    failures: List[FailedCell] = []
    by_index: Dict[int, Optional[RunRecord]] = {}
    for (spec, cell), outcome in zip(payloads, result.outcomes):
        if outcome.quarantined:
            failures.append(FailedCell(
                cell=cell, spec=spec, key=outcome.job.key,
                attempts=outcome.attempts, reason=outcome.reason or "error",
                error=outcome.error or ""))
            by_index[cell.index] = None
        else:
            by_index[cell.index] = outcome.result[0]
    if failures and strict:
        raise SweepError(failures)

    failed_by_index = {f.cell.index: f for f in failures}
    sweeps: List[Sweep] = []
    cursor = 0
    for spec in specs:
        try:
            sized = _sized_args(spec)
        except Exception:
            sized = dict(spec.size_args)
        sweep = Sweep(workload=spec.workload, size_args=sized)
        n_cells = 1 + len(spec.pe_counts) * len(spec.versions)
        for _, cell in payloads[cursor:cursor + n_cells]:
            record = by_index[cell.index]
            if cell.index in failed_by_index:
                sweep.failed[(cell.version, cell.n_pes)] = \
                    failed_by_index[cell.index]
            elif cell.version == Version.SEQ:
                sweep.seq = record
            else:
                sweep.runs[(cell.version, cell.n_pes)] = record
        cursor += n_cells
        sweeps.append(sweep)
    return sweeps


def _outcome_text(outcome: JobOutcome) -> str:
    if outcome.quarantined:
        return outcome.describe()
    record = outcome.result[0]
    return record.describe() + (" [journal]" if outcome.cached else "")


__all__ = ["SweepSpec", "Cell", "FailedCell", "SweepError",
           "cell_fault_seed", "cell_key", "plan_cells", "run_pool",
           "sweep_grid"]
