"""Process-parallel sweep engine for the experiment grid.

A paper reproduction sweep is an embarrassingly parallel grid: every
(workload, version, PE count) cell is an independent simulation whose
result depends only on its own inputs.  This module fans that grid out
to a ``multiprocessing`` pool (CLI ``--jobs N``) while keeping the
output *byte-identical* to the serial sweep:

* **Deterministic cell order.**  Cells are enumerated in the exact
  order :meth:`ExperimentRunner.sweep` runs them (per workload: SEQ
  first, then PE-major, version-minor) and results are merged back by
  cell index, so the assembled :class:`Sweep` objects never depend on
  worker scheduling.
* **Deterministic cell seeds.**  A faulted sweep derives each cell's
  fault seed from a stable hash of (base seed, workload, version, PE
  count) — the same cell gets the same fault schedule no matter which
  worker runs it, at any job count.
* **Pure, content-addressed caching.**  Workers memoise built programs,
  oracles and CCDP transforms through :mod:`.progcache`; cache hits
  return the same pure values a cold build would, so caching is
  invisible in the results.
* **Failure surfacing.**  A crashing cell never wedges the pool: the
  worker catches the exception and ships the traceback home, and
  :func:`sweep_grid` raises one :class:`SweepError` naming every failed
  cell with its traceback.

``jobs <= 1`` runs the identical code path in-process (no pool), which
is both the fallback and the determinism reference.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..runtime import Version
from .experiment import PAPER_PE_COUNTS, ExperimentRunner, RunRecord, Sweep

ProgressFn = Callable[[int, int, str], None]


@dataclass(frozen=True)
class SweepSpec:
    """Hashable description of one workload's sweep (picklable, so it can
    cross the process boundary; hashable, so workers can key their
    per-process runner cache on it)."""

    workload: str
    size_args: Tuple[Tuple[str, int], ...] = ()
    pe_counts: Tuple[int, ...] = PAPER_PE_COUNTS
    versions: Tuple[str, ...] = (Version.BASE, Version.CCDP)
    backend: str = "reference"
    check: bool = True
    param_overrides: Tuple[Tuple[str, float], ...] = ()
    ccdp_overrides: Tuple[Tuple[str, object], ...] = ()
    fault_spec: Optional[str] = None   #: ``--faults`` spec/preset, or None
    fault_seed: int = 0                #: base seed; cells derive their own

    @classmethod
    def create(cls, workload: str, size_args: Optional[Dict[str, int]] = None,
               pe_counts: Sequence[int] = PAPER_PE_COUNTS,
               versions: Sequence[str] = (Version.BASE, Version.CCDP),
               backend: str = "reference", check: bool = True,
               param_overrides: Optional[Dict[str, float]] = None,
               ccdp_overrides: Optional[Dict[str, object]] = None,
               fault_spec: Optional[str] = None,
               fault_seed: int = 0) -> "SweepSpec":
        """Build a spec from plain dict/sequence options."""
        as_items = lambda d: tuple(sorted((d or {}).items()))
        return cls(workload=workload, size_args=as_items(size_args),
                   pe_counts=tuple(pe_counts), versions=tuple(versions),
                   backend=backend, check=check,
                   param_overrides=as_items(param_overrides),
                   ccdp_overrides=as_items(ccdp_overrides),
                   fault_spec=fault_spec, fault_seed=fault_seed)


@dataclass(frozen=True)
class Cell:
    """One grid point: a single (workload, version, PE count) run."""

    index: int     #: global position in the serial sweep order
    workload: str
    version: str
    n_pes: int

    def describe(self) -> str:
        return f"{self.workload}/{self.version}@{self.n_pes}"


class SweepError(RuntimeError):
    """One or more sweep cells failed; carries every cell's traceback."""

    def __init__(self, failures: List[Tuple[Cell, str]]) -> None:
        self.failures = failures
        names = ", ".join(cell.describe() for cell, _ in failures)
        detail = "\n\n".join(
            f"--- {cell.describe()} ---\n{tb.rstrip()}"
            for cell, tb in failures)
        super().__init__(
            f"{len(failures)} sweep cell(s) failed: {names}\n{detail}")


def cell_fault_seed(base_seed: int, cell: Cell) -> int:
    """Stable per-cell fault seed: equal cells get equal schedules at any
    job count; distinct cells get decorrelated streams."""
    tag = f"{base_seed}|{cell.workload}|{cell.version}|{cell.n_pes}"
    return zlib.crc32(tag.encode()) & 0x7FFFFFFF


def plan_cells(specs: Sequence[SweepSpec]) -> List[Tuple[SweepSpec, Cell]]:
    """Enumerate the grid in serial-sweep order (the determinism anchor:
    result merging relies on this order, never on completion order)."""
    cells: List[Tuple[SweepSpec, Cell]] = []
    index = 0
    for spec in specs:
        cells.append((spec, Cell(index, spec.workload, Version.SEQ, 1)))
        index += 1
        for n_pes in spec.pe_counts:
            for version in spec.versions:
                cells.append((spec, Cell(index, spec.workload, version, n_pes)))
                index += 1
    return cells


# -- worker side ---------------------------------------------------------------

#: Per-process runner cache.  Keyed by the (hashable) SweepSpec so one
#: worker servicing many cells of the same sweep builds the program and
#: oracle once; safe because runners are only ever used for pure runs.
_RUNNERS: Dict[SweepSpec, ExperimentRunner] = {}


def _runner_for(spec: SweepSpec) -> ExperimentRunner:
    if spec not in _RUNNERS:
        from ..workloads import workload
        _RUNNERS[spec] = ExperimentRunner(
            workload(spec.workload), dict(spec.size_args),
            dict(spec.param_overrides), dict(spec.ccdp_overrides),
            check=spec.check)
    return _RUNNERS[spec]


def _run_cell(payload: Tuple[SweepSpec, Cell]):
    """Execute one grid cell; never raises.  Returns
    ``(index, RunRecord, None)`` on success or ``(index, None,
    traceback_text)`` on failure — the parent turns failures into one
    aggregated :class:`SweepError`."""
    spec, cell = payload
    try:
        fault_plan = None
        if spec.fault_spec:
            from ..faults import parse_fault_plan
            fault_plan = parse_fault_plan(
                spec.fault_spec, seed=cell_fault_seed(spec.fault_seed, cell))
        runner = _runner_for(spec)
        record = runner.run_version(cell.version, cell.n_pes,
                                    backend=spec.backend,
                                    fault_plan=fault_plan)
        # CCDPReport is a rich object graph that is expensive to pickle
        # and not needed per-cell (report generation re-derives it from a
        # runner); stripping it on BOTH the serial and parallel paths
        # keeps the two byte-identical.
        record.ccdp_report = None
        return cell.index, record, None
    except Exception:
        return cell.index, None, traceback.format_exc()


# -- parent side ---------------------------------------------------------------

def run_pool(worker, payloads: Sequence, jobs: int = 1,
             progress: Optional[Callable[[int, int, object], None]] = None
             ) -> List:
    """Order-preserving map of ``worker`` over ``payloads``, optionally
    across ``jobs`` processes.

    This is the shared fan-out engine for any embarrassingly-parallel
    grid (the experiment sweep, the fuzz harness).  ``worker`` must be a
    module-level callable of one payload (so it pickles by reference)
    that never raises — failures travel inside its return value.  The
    serial path round-trips every result through pickle exactly as a
    pool transfer would: a natively built result can share interned
    objects between its attributes where a pool-returned one does not,
    and that identity difference changes the result's own pickled
    bytes.  Serialising on both paths keeps ``jobs=1`` and ``jobs=N``
    byte-identical, which tests rely on.  ``progress`` (when given) is
    called as ``progress(done, total, result)`` after every cell.
    """
    total = len(payloads)
    results: List = []
    if jobs <= 1 or total <= 1:
        for payload in payloads:
            result = pickle.loads(pickle.dumps(worker(payload)))
            results.append(result)
            if progress is not None:
                progress(len(results), total, result)
    else:
        with multiprocessing.Pool(processes=min(jobs, total)) as pool:
            for result in pool.imap(worker, payloads, chunksize=1):
                results.append(result)
                if progress is not None:
                    progress(len(results), total, result)
    return results


def _sized_args(spec: SweepSpec) -> Dict[str, int]:
    """The effective size arguments (defaults + applicable overrides),
    mirroring ExperimentRunner's filtering without building anything."""
    from ..workloads import workload
    defaults = workload(spec.workload).default_args
    overrides = {k: v for k, v in dict(spec.size_args).items()
                 if k in defaults}
    return {**defaults, **overrides}


def sweep_grid(specs: Sequence[SweepSpec], jobs: int = 1,
               progress: Optional[ProgressFn] = None) -> List[Sweep]:
    """Run every spec's full grid, optionally across ``jobs`` processes.

    Returns one :class:`Sweep` per spec, in spec order, with records
    identical (bit-for-bit, including pickled form) to a serial
    ``ExperimentRunner.sweep`` — see the module docstring for how.
    Raises :class:`SweepError` if any cell failed.
    """
    payloads = plan_cells(specs)

    def cell_progress(done: int, total: int, result) -> None:
        _report(progress, done, total, payloads[done - 1][1], result)

    results: List[Tuple[int, Optional[RunRecord], Optional[str]]] = run_pool(
        _run_cell, payloads, jobs=jobs,
        progress=cell_progress if progress is not None else None)

    by_index = {index: (record, err) for index, record, err in results}
    failures = [(cell, by_index[cell.index][1]) for _, cell in payloads
                if by_index[cell.index][1] is not None]
    if failures:
        raise SweepError(failures)

    sweeps: List[Sweep] = []
    cursor = 0
    for spec in specs:
        sweep = Sweep(workload=spec.workload, size_args=_sized_args(spec))
        n_cells = 1 + len(spec.pe_counts) * len(spec.versions)
        for _, cell in payloads[cursor:cursor + n_cells]:
            record = by_index[cell.index][0]
            if cell.version == Version.SEQ:
                sweep.seq = record
            else:
                sweep.runs[(cell.version, cell.n_pes)] = record
        cursor += n_cells
        sweeps.append(sweep)
    return sweeps


def _report(progress: ProgressFn, done: int, total: int, cell: Cell,
            result) -> None:
    _, record, err = result
    text = record.describe() if record is not None else \
        f"{cell.describe()}: FAILED ({err.strip().splitlines()[-1]})"
    progress(done, total, text)


__all__ = ["SweepSpec", "Cell", "SweepError", "cell_fault_seed",
           "plan_cells", "run_pool", "sweep_grid"]
