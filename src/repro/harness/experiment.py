"""Experiment runner: builds, transforms, executes and checks the
paper's program versions across PE counts.

The methodology mirrors the paper §5.2: each application is built once,
derived into BASE (CRAFT-style, shared data uncached) and CCDP
(transformed by the compiler, shared data cached) versions, executed at
each PE count, and timed against the sequential execution (SEQ).
Additionally every run is validated against the workload's NumPy oracle
and the CCDP runs are *required* to be coherent (zero stale reads) —
something the paper could only argue, but the simulator can prove.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..coherence import CCDPReport
from ..machine.params import MachineParams, t3d
from ..runtime import RunResult, Version, run_program
from ..workloads.base import WorkloadSpec, check_result
from . import progcache

PAPER_PE_COUNTS = (1, 2, 4, 8, 16, 32, 64)

#: Experiments run scaled-down problem sizes (DESIGN.md substitutions),
#: so the cache is scaled proportionally to stay in the paper's regime
#: (arrays much larger than one PE's cache).  8 KB / 4 matches the
#: roughly 8-16x linear problem-size scaling.
SCALED_CACHE_BYTES = 2048


@dataclass
class RunRecord:
    """One (workload, version, PE count) execution."""

    workload: str
    version: str
    n_pes: int
    elapsed: float
    stale_reads: int
    correct: bool
    error: Optional[str]
    stats: Dict[str, float]
    ccdp_report: Optional[CCDPReport] = None
    fault_stats: Optional[Dict[str, float]] = None  #: when a plan was active
    oracle_summary: Optional[str] = None            #: when the oracle ran
    backend: str = "reference"
    batch_chunks: int = 0        #: chunks the batched backend bulk-executed
    batch_fallbacks: int = 0     #: chunks that bound but fell back at run time
    fault_fallbacks: int = 0     #: chunks routed to the reference path by faults
    batched_coverage: float = 0.0  #: fraction of refs served by batched plans
    plane_chunks: int = 0        #: DOALL epochs replayed through the plane
    plane_coverage: float = 0.0  #: fraction of refs served by plane replays
    fallback_reasons: Dict[str, int] = field(default_factory=dict)
    """Per-reason fallback/skip taxonomy (see BatchedInterpreter._fall)."""

    def describe(self) -> str:
        status = "ok" if self.correct else f"WRONG ({self.error})"
        text = (f"{self.workload}/{self.version} @ {self.n_pes} PEs: "
                f"{self.elapsed:.0f} cycles, {status}")
        if self.backend != "reference":
            text += (f" [{self.backend}: {self.batched_coverage:.0%} coverage, "
                     f"{self.batch_fallbacks + self.fault_fallbacks} fallbacks]")
            if self.fallback_reasons:
                detail = ", ".join(f"{k}:{v}" for k, v in
                                   sorted(self.fallback_reasons.items()))
                text += f" ({detail})"
        return text


@dataclass
class Sweep:
    """All runs of one workload across versions and PE counts."""

    workload: str
    size_args: Dict[str, int]
    seq: RunRecord = None  # type: ignore[assignment]
    runs: Dict[Tuple[str, int], RunRecord] = field(default_factory=dict)
    #: quarantined cells, keyed like ``runs`` (SEQ under (seq, 1)) —
    #: populated by farm-mode ``sweep_grid`` instead of aborting the grid
    failed: Dict[Tuple[str, int], object] = field(default_factory=dict)

    def record(self, version: str, n_pes: int) -> RunRecord:
        return self.runs[(version, n_pes)]

    def speedup(self, version: str, n_pes: int) -> float:
        return self.seq.elapsed / self.record(version, n_pes).elapsed

    def improvement(self, n_pes: int) -> float:
        """% improvement in execution time of CCDP over BASE (Table 2)."""
        base = self.record(Version.BASE, n_pes).elapsed
        ccdp = self.record(Version.CCDP, n_pes).elapsed
        return 100.0 * (base - ccdp) / base

    def pe_counts(self) -> List[int]:
        return sorted({n for (_, n) in self.runs})

    def complete_pes(self) -> List[int]:
        """PE counts with both a BASE and a CCDP record (improvement is
        only defined on these; quarantined cells leave gaps)."""
        return [n for n in self.pe_counts()
                if (Version.BASE, n) in self.runs
                and (Version.CCDP, n) in self.runs]

    def all_correct(self) -> bool:
        return (not self.failed and self.seq is not None and self.seq.correct
                and all(r.correct for r in self.runs.values()))


class ExperimentRunner:
    """Caches programs/oracles and executes version runs on demand."""

    def __init__(self, spec: WorkloadSpec, size_args: Optional[Dict[str, int]] = None,
                 param_overrides: Optional[Dict[str, float]] = None,
                 ccdp_overrides: Optional[Dict[str, object]] = None,
                 check: bool = True) -> None:
        self.spec = spec
        # Ignore size keys the workload does not take (e.g. a harness-wide
        # --steps applied to MXM/VPENTA, which have no time loop).
        overrides = {k: v for k, v in (size_args or {}).items()
                     if k in spec.default_args}
        self.size_args = {**spec.default_args, **overrides}
        self.param_overrides = {"cache_bytes": SCALED_CACHE_BYTES,
                                **(param_overrides or {})}
        self.ccdp_overrides = dict(ccdp_overrides or {})
        self.check = check
        self.program = progcache.get_program(spec, self.size_args)
        self.oracle = progcache.get_oracle(spec, self.size_args) if check else {}

    # ------------------------------------------------------------------
    def params_for(self, n_pes: int) -> MachineParams:
        return t3d(n_pes, **self.param_overrides)

    def ccdp_program(self, n_pes: int):
        """CCDP-transformed program for a PE count (the transform sees the
        machine description, so it is PE-count specific).  Served by the
        content-addressed :mod:`.progcache`, so equal (program, machine,
        overrides) inputs share one transform across runners."""
        return progcache.get_transform(
            self.spec.name, self.size_args, self.program,
            self.params_for(n_pes), self.ccdp_overrides)

    # ------------------------------------------------------------------
    def run_version(self, version: str, n_pes: int,
                    on_stale: str = "record",
                    backend: str = "reference",
                    fault_plan=None, oracle: bool = False) -> RunRecord:
        report: Optional[CCDPReport] = None
        if version == Version.CCDP:
            program, report = self.ccdp_program(n_pes)
        else:
            program = self.program
        params = self.params_for(1 if version == Version.SEQ else n_pes)
        result = run_program(program, params, version, on_stale=on_stale,
                             backend=backend, fault_plan=fault_plan,
                             oracle=oracle)
        error = None
        if self.check:
            error = check_result(
                {a: result.value_of(a) for a in self.spec.check_arrays},
                self.oracle, self.spec.check_arrays)
        return RunRecord(
            workload=self.spec.name, version=version, n_pes=params.n_pes,
            elapsed=result.elapsed, stale_reads=result.stats.stale_reads,
            correct=error is None, error=error,
            stats=result.stats.as_dict(), ccdp_report=report,
            fault_stats=(None if result.fault_stats is None
                         else result.fault_stats.as_dict()),
            oracle_summary=(None if result.oracle is None
                            else result.oracle.summary()),
            backend=backend,
            batch_chunks=result.batch_chunks,
            batch_fallbacks=result.batch_fallbacks,
            fault_fallbacks=result.fault_fallbacks,
            batched_coverage=result.batched_coverage,
            plane_chunks=result.plane_chunks,
            plane_coverage=result.plane_coverage,
            fallback_reasons=dict(result.fallback_reasons))

    def sweep(self, pe_counts: Sequence[int] = PAPER_PE_COUNTS,
              versions: Sequence[str] = (Version.BASE, Version.CCDP)) -> Sweep:
        sweep = Sweep(workload=self.spec.name, size_args=dict(self.size_args))
        sweep.seq = self.run_version(Version.SEQ, 1)
        for n_pes in pe_counts:
            for version in versions:
                sweep.runs[(version, n_pes)] = self.run_version(version, n_pes)
        return sweep


def run_sweep(spec: WorkloadSpec, pe_counts: Sequence[int] = PAPER_PE_COUNTS,
              size_args: Optional[Dict[str, int]] = None,
              param_overrides: Optional[Dict[str, float]] = None,
              ccdp_overrides: Optional[Dict[str, object]] = None,
              check: bool = True) -> Sweep:
    """Convenience wrapper: full BASE+CCDP sweep for one workload."""
    runner = ExperimentRunner(spec, size_args, param_overrides,
                              ccdp_overrides, check=check)
    return runner.sweep(pe_counts)


__all__ = ["RunRecord", "Sweep", "ExperimentRunner", "run_sweep",
           "PAPER_PE_COUNTS", "SCALED_CACHE_BYTES"]
