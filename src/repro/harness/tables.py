"""Formatters that regenerate the paper's Table 1 and Table 2.

Table 1: speedups of the BASE and CCDP codes over sequential execution
time, per application per PE count.

Table 2: percentage improvement in execution time of the CCDP codes
over the BASE codes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..runtime import Version
from .experiment import Sweep
from .paper_data import paper_improvement


def _fmt_cell(value: Optional[float], width: int = 7, digits: int = 2) -> str:
    if value is None:
        return " " * (width - 1) + "-"
    return f"{value:>{width}.{digits}f}"


def _speedup(sweep: Sweep, version: str, n_pes: int) -> Optional[float]:
    """Speedup over SEQ, or ``None`` when either record is missing
    (quarantined cells leave gaps that render as ``-``)."""
    record = sweep.runs.get((version, n_pes))
    if record is None or sweep.seq is None:
        return None
    return sweep.seq.elapsed / record.elapsed


def table1_rows(sweeps: Sequence[Sweep]) -> List[Dict[str, object]]:
    """Structured Table 1 data: one row per PE count, BASE and CCDP
    speedups per workload."""
    pe_counts = sorted({n for sweep in sweeps for n in sweep.pe_counts()})
    rows = []
    for n_pes in pe_counts:
        row: Dict[str, object] = {"n_pes": n_pes}
        for sweep in sweeps:
            for version in (Version.BASE, Version.CCDP):
                value = _speedup(sweep, version, n_pes)
                if value is not None:
                    row[f"{sweep.workload}/{version}"] = value
        rows.append(row)
    return rows


def format_table1(sweeps: Sequence[Sweep]) -> str:
    """Render Table 1 in the paper's layout."""
    names = [sweep.workload for sweep in sweeps]
    header1 = "        " + "".join(f"{name.upper():^16}" for name in names)
    header2 = "#PEs    " + "".join(f"{'BASE':>7} {'CCDP':>7} " for _ in names)
    lines = ["Table 1. Speedups over sequential execution time.",
             header1, header2, "-" * len(header2)]
    for row in table1_rows(sweeps):
        cells = [f"{row['n_pes']:<8d}"]
        for name in names:
            cells.append(_fmt_cell(row.get(f"{name}/base")))
            cells.append(" ")
            cells.append(_fmt_cell(row.get(f"{name}/ccdp")))
            cells.append(" ")
        lines.append("".join(cells))
    return "\n".join(lines)


def table2_rows(sweeps: Sequence[Sweep]) -> List[Dict[str, object]]:
    """Structured Table 2 data: measured improvement plus the paper's
    published value where recoverable."""
    pe_counts = sorted({n for sweep in sweeps for n in sweep.pe_counts()})
    rows = []
    for n_pes in pe_counts:
        row: Dict[str, object] = {"n_pes": n_pes}
        for sweep in sweeps:
            if (Version.BASE, n_pes) in sweep.runs and \
                    (Version.CCDP, n_pes) in sweep.runs:
                row[sweep.workload] = sweep.improvement(n_pes)
                row[f"{sweep.workload}/paper"] = paper_improvement(sweep.workload, n_pes)
        rows.append(row)
    return rows


def format_table2(sweeps: Sequence[Sweep], with_paper: bool = True) -> str:
    """Render Table 2; optionally with the paper's cells alongside."""
    names = [sweep.workload for sweep in sweeps]
    if with_paper:
        header = "#PEs    " + "".join(
            f"{name.upper():>9} {'(paper)':>9}  " for name in names)
    else:
        header = "#PEs    " + "".join(f"{name.upper():>9}  " for name in names)
    lines = ["Table 2. Improvement in execution time of CCDP codes over "
             "BASE codes (%).", header, "-" * len(header)]
    for row in table2_rows(sweeps):
        cells = [f"{row['n_pes']:<8d}"]
        for name in names:
            cells.append(_fmt_cell(row.get(name), 9))
            if with_paper:
                paper = row.get(f"{name}/paper")
                cells.append(" " + _fmt_cell(paper, 9))
            cells.append("  ")
        lines.append("".join(cells))
    return "\n".join(lines)


__all__ = ["table1_rows", "format_table1", "table2_rows", "format_table2"]
