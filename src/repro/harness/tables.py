"""Formatters that regenerate the paper's Table 1 and Table 2, plus the
cross-scheme Table 3 the paper could not run.

Table 1: speedups of the BASE and CCDP codes over sequential execution
time, per application per PE count.

Table 2: percentage improvement in execution time of the CCDP codes
over the BASE codes.

Table 3: CCDP raced against the hardware coherence baselines (snooping
MESI bus, home-node directory and its limited-pointer / phase-priority
variants): execution time, speedup over SEQ, D-cache miss rate, and the
interconnect bill each scheme pays — bus transactions and cache-to-cache
transfers for the bus, protocol messages for the directory."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..runtime import Version
from .experiment import Sweep
from .paper_data import paper_improvement


def _fmt_cell(value: Optional[float], width: int = 7, digits: int = 2) -> str:
    if value is None:
        return " " * (width - 1) + "-"
    return f"{value:>{width}.{digits}f}"


def _speedup(sweep: Sweep, version: str, n_pes: int) -> Optional[float]:
    """Speedup over SEQ, or ``None`` when either record is missing
    (quarantined cells leave gaps that render as ``-``)."""
    record = sweep.runs.get((version, n_pes))
    if record is None or sweep.seq is None:
        return None
    return sweep.seq.elapsed / record.elapsed


def table1_rows(sweeps: Sequence[Sweep]) -> List[Dict[str, object]]:
    """Structured Table 1 data: one row per PE count, BASE and CCDP
    speedups per workload."""
    pe_counts = sorted({n for sweep in sweeps for n in sweep.pe_counts()})
    rows = []
    for n_pes in pe_counts:
        row: Dict[str, object] = {"n_pes": n_pes}
        for sweep in sweeps:
            for version in (Version.BASE, Version.CCDP):
                value = _speedup(sweep, version, n_pes)
                if value is not None:
                    row[f"{sweep.workload}/{version}"] = value
        rows.append(row)
    return rows


def format_table1(sweeps: Sequence[Sweep]) -> str:
    """Render Table 1 in the paper's layout."""
    names = [sweep.workload for sweep in sweeps]
    header1 = "        " + "".join(f"{name.upper():^16}" for name in names)
    header2 = "#PEs    " + "".join(f"{'BASE':>7} {'CCDP':>7} " for _ in names)
    lines = ["Table 1. Speedups over sequential execution time.",
             header1, header2, "-" * len(header2)]
    for row in table1_rows(sweeps):
        cells = [f"{row['n_pes']:<8d}"]
        for name in names:
            cells.append(_fmt_cell(row.get(f"{name}/base")))
            cells.append(" ")
            cells.append(_fmt_cell(row.get(f"{name}/ccdp")))
            cells.append(" ")
        lines.append("".join(cells))
    return "\n".join(lines)


def table2_rows(sweeps: Sequence[Sweep]) -> List[Dict[str, object]]:
    """Structured Table 2 data: measured improvement plus the paper's
    published value where recoverable."""
    pe_counts = sorted({n for sweep in sweeps for n in sweep.pe_counts()})
    rows = []
    for n_pes in pe_counts:
        row: Dict[str, object] = {"n_pes": n_pes}
        for sweep in sweeps:
            if (Version.BASE, n_pes) in sweep.runs and \
                    (Version.CCDP, n_pes) in sweep.runs:
                row[sweep.workload] = sweep.improvement(n_pes)
                row[f"{sweep.workload}/paper"] = paper_improvement(sweep.workload, n_pes)
        rows.append(row)
    return rows


def format_table2(sweeps: Sequence[Sweep], with_paper: bool = True) -> str:
    """Render Table 2; optionally with the paper's cells alongside."""
    names = [sweep.workload for sweep in sweeps]
    if with_paper:
        header = "#PEs    " + "".join(
            f"{name.upper():>9} {'(paper)':>9}  " for name in names)
    else:
        header = "#PEs    " + "".join(f"{name.upper():>9}  " for name in names)
    lines = ["Table 2. Improvement in execution time of CCDP codes over "
             "BASE codes (%).", header, "-" * len(header)]
    for row in table2_rows(sweeps):
        cells = [f"{row['n_pes']:<8d}"]
        for name in names:
            cells.append(_fmt_cell(row.get(name), 9))
            if with_paper:
                paper = row.get(f"{name}/paper")
                cells.append(" " + _fmt_cell(paper, 9))
            cells.append("  ")
        lines.append("".join(cells))
    return "\n".join(lines)


#: Table 3's default scheme line-up: the paper's optimised codes vs the
#: hardware protocols they were proposed to replace.
TABLE3_VERSIONS = (Version.CCDP, Version.MESI, Version.DIR, Version.DIR_LP)


def _miss_rate(stats: Dict[str, float]) -> Optional[float]:
    accesses = stats.get("cache_hits", 0) + stats.get("cache_misses", 0)
    if not accesses:
        return None
    return 100.0 * stats.get("cache_misses", 0) / accesses


def table3_rows(sweeps: Sequence[Sweep],
                versions: Sequence[str] = TABLE3_VERSIONS
                ) -> List[Dict[str, object]]:
    """Structured Table 3 data: one row per (workload, PE count,
    version) with timing and interconnect-traffic columns."""
    rows: List[Dict[str, object]] = []
    for sweep in sweeps:
        for n_pes in sweep.pe_counts():
            for version in versions:
                record = sweep.runs.get((version, n_pes))
                if record is None:
                    continue
                stats = record.stats
                rows.append({
                    "workload": sweep.workload,
                    "n_pes": n_pes,
                    "version": version,
                    "elapsed": record.elapsed,
                    "speedup": (None if sweep.seq is None
                                else sweep.seq.elapsed / record.elapsed),
                    "miss_rate": _miss_rate(stats),
                    "bus_tx": int(stats.get("bus_rd", 0)
                                  + stats.get("bus_rdx", 0)
                                  + stats.get("bus_upgr", 0)),
                    "c2c": int(stats.get("c2c_transfers", 0)),
                    "dir_msgs": int(stats.get("dir_messages", 0)),
                    "invals": int(stats.get("coh_invalidations", 0)),
                    "stale_reads": record.stale_reads,
                    "correct": record.correct,
                })
    return rows


def format_table3(sweeps: Sequence[Sweep],
                  versions: Sequence[str] = TABLE3_VERSIONS) -> str:
    """Render Table 3: one block per workload, schemes side by side at
    each PE count."""
    lines = ["Table 3. CCDP vs hardware coherence schemes.",
             "(bus-tx/c2c: snooping bus traffic; dir-msg: directory "
             "protocol messages; inval: invalidations sent)"]
    header = (f"{'#PEs':<6}{'scheme':<8}{'cycles':>12}{'speedup':>9}"
              f"{'miss%':>8}{'bus-tx':>8}{'c2c':>7}{'dir-msg':>9}"
              f"{'inval':>7}")
    by_workload: Dict[str, List[Dict[str, object]]] = {}
    for row in table3_rows(sweeps, versions):
        by_workload.setdefault(str(row["workload"]), []).append(row)
    for sweep in sweeps:
        rows = by_workload.get(sweep.workload, [])
        if not rows:
            continue
        sizes = ", ".join(f"{k}={v}" for k, v in sweep.size_args.items())
        lines += ["", f"{sweep.workload.upper()} ({sizes})",
                  header, "-" * len(header)]
        last_pes = None
        for row in rows:
            pes = f"{row['n_pes']:<6d}" if row["n_pes"] != last_pes \
                else " " * 6
            last_pes = row["n_pes"]
            flag = "" if row["correct"] else "  WRONG"
            lines.append(
                pes + f"{row['version']:<8}"
                + f"{row['elapsed']:>12.0f}"
                + _fmt_cell(row["speedup"], 9)
                + _fmt_cell(row["miss_rate"], 8)
                + f"{row['bus_tx']:>8d}{row['c2c']:>7d}"
                + f"{row['dir_msgs']:>9d}{row['invals']:>7d}" + flag)
    return "\n".join(lines)


__all__ = ["table1_rows", "format_table1", "table2_rows", "format_table2",
           "TABLE3_VERSIONS", "table3_rows", "format_table3"]
