"""Command-line interface: ``ccdp`` / ``python -m repro.harness``.

Subcommands
-----------
``table1`` / ``table2``
    Regenerate the paper's tables on the simulator.
``table3``
    Cross-scheme race: CCDP vs the hardware coherence baselines
    (snooping MESI bus, directory variants) — execution time, miss
    rates and interconnect traffic per scheme (``--versions``).
``report``
    Full sweep + EXPERIMENTS.md-style report (``--out`` to write a file).
``compile``
    Run the CCDP compiler on one workload and print the transformed
    program plus the pass reports.
``run``
    Execute one (workload, version, PE count) and print statistics.
``trace``
    Execute one version with machine-event tracing: per-kind counts and
    the per-epoch metrics timeline, with optional JSONL / Chrome-trace
    export (``--trace-out`` / ``--chrome-out``).
``replay``
    Trace-driven frontend: replay a recorded access stream (JSONL
    machine events or the hand-writable text format) through any
    registered scheme — per-epoch stats stream live, ``--conform``
    diffs the replayed counters against the source events, and the
    farm flags make replay cells resumable and content-addressed.
``verify``
    Static coherence-safety verification: prove the paper's coverage,
    ordering and resource rules on the transformed IR of every
    (workload, version) pair.
``fuzz``
    Differential conformance fuzzing: seeded random programs through
    every registry-fuzzed scheme × both backends × oracle × verifier
    (``--shrink`` delta-debugs failures to minimal ``.ir`` reproducers).
``info``
    List workloads and the machine configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from ..coherence import CCDPConfig, ccdp_transform
from ..farm import FarmConfig, FarmError
from ..faults import FaultPlanError, parse_fault_plan, PRESETS
from ..ir.printer import format_program
from ..machine.params import t3d
from ..runtime import Backend, Version, run_program
from ..workloads import all_workloads, workload
from . import progcache
from .experiment import PAPER_PE_COUNTS, ExperimentRunner
from .report import generate_report
from .sweep import SweepSpec, plan_cells, sweep_grid
from .tables import (TABLE3_VERSIONS, format_table1, format_table2,
                     format_table3)

#: retries a farm-mode sweep grants each cell before quarantine when
#: ``--max-retries`` is not given explicitly
DEFAULT_FARM_RETRIES = 2


def _parse_pes(text: str) -> List[int]:
    return [int(p) for p in text.split(",") if p.strip()]


def _size_args(args: argparse.Namespace) -> Dict[str, int]:
    out: Dict[str, int] = {}
    if args.n is not None:
        out["n"] = args.n
    if getattr(args, "steps", None) is not None:
        out["steps"] = args.steps
    return out


def _farm_config(args: argparse.Namespace, parser: argparse.ArgumentParser,
                 jobs: int) -> Optional[FarmConfig]:
    """Build a FarmConfig when any farm flag was used, else None (legacy
    strict grid)."""
    wants = bool(getattr(args, "farm_dir", None) or args.resume
                 or args.cell_timeout is not None
                 or args.max_retries is not None
                 or args.requeue_quarantined)
    if not wants:
        return None
    if (args.resume or args.requeue_quarantined) and not args.farm_dir:
        parser.error("--resume/--requeue-quarantined require --farm-dir")
    retries = args.max_retries if args.max_retries is not None \
        else DEFAULT_FARM_RETRIES
    config = FarmConfig(jobs=max(1, jobs), farm_dir=args.farm_dir or None,
                        resume=args.resume, cell_timeout=args.cell_timeout,
                        max_retries=retries,
                        requeue_quarantined=args.requeue_quarantined)
    try:
        config.validate()
    except FarmError as exc:
        parser.error(str(exc))
    return config


def _print_failed_cells(failed, stream=sys.stderr) -> None:
    if not failed:
        return
    print(f"\n{len(failed)} cell(s) quarantined:", file=stream)
    for cell in failed:
        print(f"  {cell.describe()}", file=stream)
        print(f"    key:   {cell.key}", file=stream)
        print(f"    repro: PYTHONPATH=src {cell.repro_command()}",
              file=stream)


def _sweeps(args: argparse.Namespace, parser: argparse.ArgumentParser):
    names = args.workloads.split(",") if args.workloads else \
        [spec.name for spec in all_workloads()]
    pe_counts = _parse_pes(args.pes)
    jobs = getattr(args, "jobs", 1)
    farm = _farm_config(args, parser, jobs)
    versions = None
    if getattr(args, "versions", None):
        versions = [v.strip() for v in args.versions.split(",") if v.strip()]
        for version in versions:
            if version not in Version.ALL:
                from ..runtime import scheme_names
                parser.error(f"--versions: unknown version {version!r} "
                             f"(registered schemes: {scheme_names()})")
    sweep_kwargs = {} if versions is None else {"versions": tuple(versions)}
    specs = [SweepSpec.create(workload(name.strip()).name,
                              size_args=_size_args(args),
                              pe_counts=pe_counts,
                              check=not args.no_check,
                              **sweep_kwargs)
             for name in names]
    print(f"running {len(plan_cells(specs))} cells "
          f"({', '.join(s.workload for s in specs)}) over PEs {pe_counts} "
          f"with {max(1, jobs)} process(es)"
          + (f" [farm: {args.farm_dir or 'ephemeral'}]" if farm else "")
          + " ...", file=sys.stderr)

    def progress(done: int, total: int, text: str) -> None:
        print(f"  [{done}/{total}] {text}", file=sys.stderr)

    collect: Dict[str, object] = {}
    try:
        sweeps = sweep_grid(specs, jobs=jobs, progress=progress, farm=farm,
                            collect=collect)
    except FarmError as exc:
        parser.error(str(exc))
    if "farm" in collect:
        print("  " + collect["farm"].summary(), file=sys.stderr)
    # Cache effectiveness, for this process's share of the work (workers
    # in a --jobs pool keep their own counters): program/oracle/transform
    # memoisation plus the batched backend's compiled-plan cache.
    counters = progcache.COUNTERS
    print("  cache: " + ", ".join(
        f"{kind} {counters[kind + '_hits']}h/{counters[kind + '_misses']}m"
        for kind in ("program", "oracle", "transform", "plan")),
        file=sys.stderr)
    # Report generation re-derives CCDP pass reports from runners (the
    # sweep records travel without them); runners share the sweep's
    # programs/transforms through the content-addressed cache.
    runners = {s.workload: ExperimentRunner(workload(s.workload),
                                            _size_args(args),
                                            check=not args.no_check)
               for s in specs}
    failed = [f for sweep in sweeps for _, f in sorted(sweep.failed.items())]
    return sweeps, runners, failed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ccdp",
        description="CCDP reproduction harness (Lim & Yew, IPPS 1997)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workloads", default="",
                       help="comma list (default: all four)")
        p.add_argument("--pes", default=",".join(map(str, PAPER_PE_COUNTS)),
                       help="comma list of PE counts")
        p.add_argument("--n", type=int, default=None, help="problem size")
        p.add_argument("--steps", type=int, default=None, help="time steps")
        p.add_argument("--no-check", action="store_true",
                       help="skip oracle validation (faster)")
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run sweep cells across N worker processes "
                            "(results are byte-identical to --jobs 1)")
        add_farm(p)

    def add_farm(p: argparse.ArgumentParser) -> None:
        g = p.add_argument_group(
            "farm", "journaled resumable execution (repro.farm): any of "
                    "these flags routes the grid through the supervised "
                    "work queue — failing cells are retried with seeded "
                    "backoff and quarantined instead of aborting")
        g.add_argument("--farm-dir", default="", metavar="DIR",
                       help="journal + result-store directory; finished "
                            "cells dedup across runs sharing it, and a "
                            "killed run resumes from its journal")
        g.add_argument("--resume", action="store_true",
                       help="resume from an existing journal in --farm-dir "
                            "(error if none); only unfinished cells run")
        g.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SEC",
                       help="per-cell wall-clock limit; a cell over it is "
                            "killed and retried (forces worker processes)")
        g.add_argument("--max-retries", type=int, default=None, metavar="N",
                       help="retries per cell before quarantine "
                            f"(default {DEFAULT_FARM_RETRIES} in farm mode)")
        g.add_argument("--requeue-quarantined", action="store_true",
                       help="clear standing quarantines in the journal and "
                            "re-execute those cells")

    for name in ("table1", "table2", "table3", "report"):
        p = sub.add_parser(name)
        add_common(p)
        if name == "report":
            p.add_argument("--out", default="", help="write report to file")
        if name == "table3":
            p.description = ("cross-scheme race: CCDP vs the hardware "
                             "coherence baselines (Table 3)")
            p.add_argument("--versions",
                           default=",".join(TABLE3_VERSIONS),
                           help="comma list of schemes to race "
                                f"(default: {','.join(TABLE3_VERSIONS)})")

    p = sub.add_parser("compile", help="show the CCDP transformation")
    p.add_argument("workload")
    p.add_argument("--n", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--pes", default="8")
    p.add_argument("--program", action="store_true",
                   help="print the transformed program text")

    p = sub.add_parser("run", help="run one version")
    p.add_argument("workload")
    p.add_argument("--version", default=Version.CCDP,
                   choices=list(Version.ALL))
    p.add_argument("--pes", default="8")
    p.add_argument("--n", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--no-check", action="store_true")
    p.add_argument("--backend", default=Backend.REFERENCE,
                   choices=list(Backend.ALL),
                   help="execution backend (batched = bulk NumPy traces, "
                        "bit-exact vs reference)")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="fault-injection plan: a preset "
                        f"({', '.join(sorted(PRESETS))}) or "
                        "'name[=rate][:key=value ...],...' e.g. "
                        "'drop=0.3,jitter=0.5:max_extra=40' (see repro.faults)")
    p.add_argument("--fault-seed", type=int, default=0, metavar="N",
                   help="seed for the fault plan's RNG streams (>= 0)")
    p.add_argument("--oracle", action="store_true",
                   help="arm the shadow coherence oracle (raises "
                        "StaleReadViolation on any unflagged stale value)")

    p = sub.add_parser("trace", help="run one version with machine-event "
                                     "tracing and a metrics timeline")
    p.add_argument("workload")
    p.add_argument("--version", default=Version.CCDP,
                   choices=list(Version.ALL))
    p.add_argument("--pes", default="4")
    p.add_argument("--n", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--backend", default=Backend.REFERENCE,
                   choices=list(Backend.ALL),
                   help="both backends emit identical event streams")
    p.add_argument("--trace-out", default="", metavar="PATH",
                   help="write recorded events as JSONL")
    p.add_argument("--chrome-out", default="", metavar="PATH",
                   help="write a Chrome trace (load in chrome://tracing "
                        "or https://ui.perfetto.dev)")
    p.add_argument("--trace-events", default="", metavar="KINDS",
                   help="comma allow-list of event kinds to record "
                        "(others are counted but not recorded)")
    p.add_argument("--trace-sample", type=int, default=None, metavar="K",
                   help="record 1 of every K events per kind "
                        "(0 = count only, no tuples)")
    p.add_argument("--trace-capacity", type=int, default=None, metavar="N",
                   help="ring-buffer size: keep only the last N events "
                        "(counters stay exact)")

    p = sub.add_parser("replay", help="replay a recorded trace through "
                                      "any coherence scheme")
    p.add_argument("--trace", required=True, metavar="FILE",
                   help="JSONL event trace (ccdp trace --trace-out) or "
                        "text access stream (see repro.trace.TEXT_GRAMMAR)")
    p.add_argument("--format", default="auto",
                   choices=["auto", "jsonl", "text"],
                   help="input format (auto = by file extension)")
    p.add_argument("--version", default=Version.CCDP,
                   choices=list(Version.ALL),
                   help="scheme to replay the trace under")
    p.add_argument("--versions", default="", metavar="LIST",
                   help="comma list of schemes (overrides --version; "
                        "one cell per scheme)")
    p.add_argument("--pes", type=int, default=None, metavar="N",
                   help="PE count (default: the trace's own geometry)")
    p.add_argument("--backend", default=Backend.REFERENCE,
                   choices=list(Backend.ALL),
                   help="replay path (batched = bulk classify planes, "
                        "bit-exact vs reference)")
    p.add_argument("--oracle", action="store_true",
                   help="arm the shadow coherence oracle during replay")
    p.add_argument("--conform", action="store_true",
                   help="fold the source events and diff every counter "
                        "against the replayed machine (JSONL traces "
                        "replayed under their source scheme)")
    p.add_argument("--workload", default="",
                   help="workload whose array declarations the trace "
                        "was recorded from (JSONL traces)")
    p.add_argument("--n", type=int, default=None, help="problem size")
    p.add_argument("--steps", type=int, default=None, help="time steps")
    p.add_argument("--ir", default="", metavar="PATH",
                   help="DSL .ir file supplying the array declarations "
                        "(JSONL traces; alternative to --workload)")
    p.add_argument("--cache-bytes", type=int, default=None, metavar="B",
                   help="per-PE cache size (default: the scaled "
                        "experiment cache)")
    p.add_argument("--chunk-ops", type=int, default=None, metavar="N",
                   help="ops per streamed chunk (bounds resident memory)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="farm worker processes (useful with --versions)")
    add_farm(p)

    p = sub.add_parser("compile-file",
                       help="compile a DSL source file with CCDP")
    p.add_argument("path")
    p.add_argument("--pes", default="8")
    p.add_argument("--run", action="store_true",
                   help="also execute SEQ/BASE/CCDP and compare")
    p.add_argument("--out", default="", help="write transformed DSL to file")

    p = sub.add_parser("profile",
                       help="cache-behaviour profile via the vectorised "
                            "trace evaluator")
    p.add_argument("workload")
    p.add_argument("--version", default=Version.CCDP, choices=list(Version.ALL))
    p.add_argument("--pes", default="4")
    p.add_argument("--n", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--pe", type=int, default=0, help="which PE's trace")

    p = sub.add_parser("verify", help="static coherence-safety verification "
                                      "of the transformed IR")
    p.add_argument("--workloads", default="",
                   help="comma list (default: all four)")
    p.add_argument("--versions", default=",".join(Version.ALL),
                   help="comma list of versions to verify")
    p.add_argument("--pes", default="8", help="PE count for the machine model")
    p.add_argument("--n", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)

    p = sub.add_parser("fuzz", help="differential conformance fuzzing "
                                    "(versions x backends x oracle x verifier)")
    p.add_argument("--seeds", type=int, default=25, metavar="N",
                   help="number of generator seeds to run")
    p.add_argument("--start", type=int, default=0, metavar="S",
                   help="first seed (cells run seeds S .. S+N-1)")
    p.add_argument("--pes", default="4",
                   help="PE count for the parallel versions (seq runs on 1)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan cells out across N worker processes")
    add_farm(p)
    p.add_argument("--shrink", action="store_true",
                   help="delta-debug failing seeds to minimal reproducers")
    p.add_argument("--out", default="", metavar="DIR",
                   help="directory for failing-seed .ir repro files "
                        "(default: current directory)")

    sub.add_parser("info", help="list workloads and machine defaults")

    args = parser.parse_args(argv)

    if args.command == "info":
        params = t3d(8)
        print("workloads:")
        for spec in all_workloads():
            print(f"  {spec.name:8s} {spec.suite:18s} default={spec.default_args} "
                  f"paper={spec.paper_args} — {spec.description}")
        print(f"\nmachine defaults (T3D-class): cache={params.cache_bytes}B "
              f"direct-mapped, line={params.line_bytes}B, "
              f"queue={params.prefetch_queue_slots} slots, "
              f"local={params.local_mem}cyc, remote~{params.remote_base}cyc")
        return 0

    if args.command in ("table1", "table2", "table3", "report"):
        sweeps, runners, failed = _sweeps(args, parser)
        if args.command == "table1":
            print(format_table1(sweeps))
        elif args.command == "table2":
            print(format_table2(sweeps))
        elif args.command == "table3":
            versions = [v.strip() for v in args.versions.split(",")
                        if v.strip()]
            print(format_table3(sweeps, versions))
        else:
            text = generate_report(sweeps, runners, failed_cells=failed)
            if args.out:
                with open(args.out, "w") as fh:
                    fh.write(text + "\n")
                print(f"wrote {args.out}", file=sys.stderr)
            else:
                print(text)
        _print_failed_cells(failed)
        bad = [s.workload for s in sweeps if not s.all_correct()]
        if bad:
            print(f"CORRECTNESS FAILURES: {bad}", file=sys.stderr)
            return 1
        return 0

    if args.command == "compile":
        spec = workload(args.workload)
        sizes = _size_args(args)
        program = spec.build(**{**spec.default_args, **sizes})
        config = CCDPConfig(machine=t3d(int(args.pes)))
        transformed, report = ccdp_transform(program, config)
        print(report.summary())
        for entry in report.schedule.entries:
            print(f"  {entry.case:28s} {entry.lsc.describe():24s} "
                  f"{entry.techniques_used()}")
        if args.program:
            print()
            print(format_program(transformed))
        return 0

    if args.command == "compile-file":
        from ..ir.dsl import parse_program
        from .experiment import SCALED_CACHE_BYTES

        with open(args.path) as fh:
            program = parse_program(fh.read())
        params = t3d(int(args.pes), cache_bytes=SCALED_CACHE_BYTES)
        transformed, report = ccdp_transform(program, CCDPConfig(machine=params))
        print(report.summary())
        text = format_program(transformed)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print()
            print(text)
        if args.run:
            seq = run_program(program, t3d(1, cache_bytes=SCALED_CACHE_BYTES),
                              Version.SEQ)
            base = run_program(program, params, Version.BASE)
            ccdp = run_program(transformed, params, Version.CCDP,
                               on_stale="raise")
            print(f"SEQ : {seq.elapsed:>12,.0f} cycles")
            print(f"BASE: {base.elapsed:>12,.0f} cycles "
                  f"(speedup {seq.elapsed / base.elapsed:.2f}x)")
            print(f"CCDP: {ccdp.elapsed:>12,.0f} cycles "
                  f"(speedup {seq.elapsed / ccdp.elapsed:.2f}x, "
                  f"{100 * (base.elapsed - ccdp.elapsed) / base.elapsed:.1f}% "
                  f"over BASE, {ccdp.stats.stale_reads} stale reads)")
        return 0

    if args.command == "profile":
        import numpy as np

        from ..machine.fastcache import (classify_read_trace,
                                         conflict_profile,
                                         miss_rate_vs_cache_size)
        from ..runtime import ExecutionConfig, Interpreter
        from .experiment import SCALED_CACHE_BYTES

        spec = workload(args.workload)
        sizes = {**spec.default_args, **_size_args(args)}
        sizes = {k: v for k, v in sizes.items() if k in spec.default_args}
        program = spec.build(**sizes)
        params = t3d(int(args.pes), cache_bytes=SCALED_CACHE_BYTES)
        if args.version == Version.CCDP:
            transformed, _ = ccdp_transform(program, CCDPConfig(machine=params))
            program = transformed
        interp = Interpreter(program, params,
                             ExecutionConfig.for_version(args.version),
                             trace_reads=True)
        interp.run()
        trace = np.array(interp.machine.read_trace[args.pe], dtype=np.int64)
        print(f"{spec.name}/{args.version}: PE {args.pe} issued "
              f"{len(trace):,} cacheable reads")
        result = classify_read_trace(trace, params)
        print(f"hit rate (cold, this trace): {result.hit_rate:.3f}")
        print("\nmiss rate vs cache size:")
        for size, rate in miss_rate_vs_cache_size(
                trace, params, (512, 1024, 2048, 8192, 65536)).items():
            bar = "#" * int(rate * 50)
            print(f"  {size:>6d} B  {rate:6.3f}  {bar}")
        worst, counts = conflict_profile(trace, params, top=5)
        print("\nmost-conflicted cache sets (set: misses):")
        for set_i, count in zip(worst, counts):
            print(f"  {set_i:>4d}: {count}")
        return 0

    if args.command == "trace":
        from ..obs import Tracer, write_chrome_trace, write_jsonl
        from .experiment import SCALED_CACHE_BYTES
        from .report import timeline_table

        spec = workload(args.workload)
        sizes = {**spec.default_args, **_size_args(args)}
        sizes = {k: v for k, v in sizes.items() if k in spec.default_args}
        program = spec.build(**sizes)
        n_pes = int(args.pes)
        params = t3d(n_pes, cache_bytes=SCALED_CACHE_BYTES)
        if args.version == Version.CCDP:
            program, _ = ccdp_transform(program, CCDPConfig(machine=params))
        kinds = [k.strip() for k in args.trace_events.split(",")
                 if k.strip()] or None
        try:
            tracer = Tracer(capacity=args.trace_capacity,
                            sample=args.trace_sample, kinds=kinds)
        except ValueError as exc:
            parser.error(str(exc))
        result = run_program(program, params, args.version,
                             backend=args.backend, tracer=tracer)
        print(f"{spec.name}/{args.version} on {n_pes} PE(s) "
              f"[{args.backend}]: {result.elapsed:,.0f} cycles")
        print(f"events: {tracer.total:,} emitted, {tracer.kept:,} recorded"
              + (f" ({tracer.evicted:,} since evicted)"
                 if tracer.evicted else ""))
        for kind in sorted(tracer.counts):
            print(f"  {kind:16s} {tracer.counts[kind]:>10,}")
        if tracer.timeline:
            print()
            print(timeline_table(tracer.timeline))
        if args.trace_out:
            n = write_jsonl(tracer.events, args.trace_out)
            print(f"wrote {n} events to {args.trace_out}", file=sys.stderr)
        if args.chrome_out:
            write_chrome_trace(tracer.timeline, args.chrome_out,
                               events=tracer.events)
            print(f"wrote Chrome trace to {args.chrome_out}",
                  file=sys.stderr)
        return 0

    if args.command == "verify":
        from ..verify import verify_program
        from .experiment import SCALED_CACHE_BYTES

        names = args.workloads.split(",") if args.workloads else \
            [spec.name for spec in all_workloads()]
        versions = [v.strip() for v in args.versions.split(",") if v.strip()]
        for version in versions:
            if version not in Version.ALL:
                from ..runtime import scheme_names
                parser.error(f"--versions: unknown version {version!r} "
                             f"(registered schemes: {scheme_names()})")
        config = CCDPConfig(machine=t3d(int(args.pes),
                                        cache_bytes=SCALED_CACHE_BYTES))
        bad = 0
        for name in names:
            spec = workload(name.strip())
            sizes = {**spec.default_args, **_size_args(args)}
            sizes = {k: v for k, v in sizes.items() if k in spec.default_args}
            program = spec.build(**sizes)
            for version in versions:
                report = verify_program(program, version, config=config)
                print(f"{spec.name}/{version}: {report.summary()}")
                for violation in report.violations:
                    print(f"  {violation.describe()}")
                    bad += 1
        if bad:
            print(f"\n{bad} violation(s)", file=sys.stderr)
            return 1
        print("\nall clean", file=sys.stderr)
        return 0

    if args.command == "fuzz":
        import os

        from ..verify import fuzz_seeds, shrink_failure

        n_pes = int(args.pes)
        farm = _farm_config(args, parser, args.jobs)
        seeds = list(range(args.start, args.start + args.seeds))
        print(f"fuzzing {len(seeds)} seed(s) [{seeds[0]}..{seeds[-1]}] "
              f"on {n_pes} PE(s) with {max(1, args.jobs)} process(es)"
              + (f" [farm: {args.farm_dir or 'ephemeral'}]" if farm else "")
              + " ...", file=sys.stderr)

        def progress(done: int, total: int, result) -> None:
            print(f"  [{done}/{total}] {result.describe()}", file=sys.stderr)

        collect: Dict[str, object] = {}
        try:
            results = fuzz_seeds(seeds, n_pes=n_pes, jobs=args.jobs,
                                 progress=progress, farm=farm,
                                 collect=collect)
        except FarmError as exc:
            parser.error(str(exc))
        if "farm" in collect:
            print("  " + collect["farm"].summary(), file=sys.stderr)
        failing = [r for r in results if not r.ok]
        clean = sum(r.naive_stale == 0 for r in results)
        print(f"\n{len(results) - len(failing)}/{len(results)} seeds ok "
              f"({len(results) - clean} with naive-version stale reads)",
              file=sys.stderr)
        for result in failing:
            print(f"\n--- {result.describe()} ---")
            if result.choices:
                print(f"  {result.choices}")
            for failure in result.failures:
                print(f"  {failure}")
            if result.error:
                print(result.error.rstrip())
            if args.shrink and not result.error:
                small, text = shrink_failure(result.seed, n_pes=n_pes)
                os.makedirs(args.out or ".", exist_ok=True)
                path = os.path.join(args.out or ".",
                                    f"fuzz-seed-{result.seed}.ir")
                with open(path, "w") as fh:
                    fh.write(text)
                print(f"  shrunk reproducer -> {path} "
                      f"({len(text.splitlines())} lines)")
        return 1 if failing else 0

    if args.command == "replay":
        from ..machine.oracle import StaleReadViolation
        from ..trace import DEFAULT_CHUNK_OPS, TraceError, sniff_format
        from ..trace.cells import (build_program, replay_failure,
                                   replay_key, run_replay_cell)
        from .experiment import SCALED_CACHE_BYTES

        versions = [v.strip() for v in args.versions.split(",")
                    if v.strip()] or [args.version]
        for version in versions:
            if version not in Version.ALL:
                from ..runtime import scheme_names
                parser.error(f"--versions: unknown version {version!r} "
                             f"(registered schemes: {scheme_names()})")
        fmt = args.format if args.format != "auto" \
            else sniff_format(args.trace)
        if fmt == "text" and args.conform:
            parser.error("--conform needs a JSONL trace (text traces "
                         "carry no source counters to diff against)")
        if fmt == "text" and (args.workload or args.ir):
            parser.error("--workload/--ir apply to JSONL traces; text "
                         "traces are self-describing")
        cache_bytes = args.cache_bytes if args.cache_bytes is not None \
            else SCALED_CACHE_BYTES
        base = {"trace": args.trace, "format": fmt, "pes": args.pes,
                "backend": args.backend, "oracle": args.oracle,
                "conform": args.conform, "cache_bytes": cache_bytes,
                "chunk_ops": args.chunk_ops or DEFAULT_CHUNK_OPS,
                "workload": args.workload, "sizes": _size_args(args),
                "ir": args.ir}
        payloads = [dict(base, version=version) for version in versions]

        def show(record) -> bool:
            print(f"{record['trace']} -> {record['version']} on "
                  f"{record['pes']} PE(s) [{record['backend']}]: "
                  f"{record['elapsed']:,.0f} cycles")
            stats = record["stats"]
            print(f"  reads={stats['reads']:.0f} "
                  f"writes={stats['writes']:.0f} "
                  f"hits={stats['cache_hits']:.0f} "
                  f"misses={stats['cache_misses']:.0f} "
                  f"prefetches={stats['prefetch_issued']:.0f} "
                  f"stale_reads={stats['stale_reads']:.0f} "
                  f"epochs={stats['epochs']:.0f}")
            c = record["counters"]
            if record["backend"] != Backend.REFERENCE:
                share = c["bulk_ops"] / c["ops"] if c["ops"] else 0.0
                print(f"  bulk: {c['bulk_ops']:,}/{c['ops']:,} ops "
                      f"({share:.1%}) in {c['bulk_runs']} run(s), "
                      f"{c['fallbacks']} fallback(s)")
            if record["oracle"]:
                print(f"  {record['oracle']}")
            if record["conform"] is not None:
                if record["conform"]:
                    print(f"  CONFORMANCE: {len(record['conform'])} "
                          f"counter mismatch(es) vs source events:")
                    for line in record["conform"]:
                        print(f"    {line}")
                    return False
                print("  conformance: every folded counter matches the "
                      "source events")
            return True

        farm = _farm_config(args, parser, args.jobs)
        try:
            if farm is not None:
                from ..farm import Job, run_farm
                jobs_list = [Job(index=i, key=replay_key(payload),
                                 payload=payload,
                                 desc=f"replay/{payload['version']}")
                             for i, payload in enumerate(payloads)]

                def progress(done, total, outcome):
                    print(f"  [{done}/{total}] {outcome.describe()}",
                          file=sys.stderr)

                result = run_farm(run_replay_cell, jobs_list, farm,
                                  failure_of=replay_failure,
                                  progress=progress)
                print("  " + result.summary(), file=sys.stderr)
                ok = True
                for outcome in result.outcomes:
                    if outcome.quarantined or outcome.result is None:
                        print(f"  {outcome.describe()}", file=sys.stderr)
                        ok = False
                    else:
                        ok = show(outcome.result) and ok
                return 0 if ok else 1

            program = build_program(payloads[0])
            ok = True
            for payload in payloads:
                params = t3d(program.n_pes, cache_bytes=cache_bytes)

                def epoch_cb(row):
                    print(f"  epoch {row['index']:>3} "
                          f"{row['label']:<24.24s} "
                          f"reads={row['reads']:>9,} "
                          f"hits={row['hits']:>9,} "
                          f"misses={row['misses']:>8,} "
                          f"stale={row['stale']:>5,} "
                          f"clock={row['clock']:>14,.0f}",
                          file=sys.stderr)

                print(f"replaying {args.trace} under "
                      f"{payload['version']} ...", file=sys.stderr)
                result = program.replay(params, payload["version"],
                                        backend=args.backend,
                                        oracle=args.oracle,
                                        epoch_cb=epoch_cb)
                record = {"trace": str(args.trace),
                          "version": result.version,
                          "backend": result.backend,
                          "pes": program.n_pes,
                          "elapsed": result.elapsed,
                          "stats": result.machine.stats.as_dict(),
                          "counters": {
                              "ops": result.counters.ops,
                              "bulk_ops": result.counters.bulk_ops,
                              "bulk_runs": result.counters.bulk_runs,
                              "fallbacks": result.counters.fallbacks},
                          "oracle": result.machine.oracle.summary()
                          if result.machine.oracle else None,
                          "conform": None}
                if args.conform:
                    from ..obs.fold import (TIMING_DEPENDENT_FIELDS,
                                            reconcile)
                    from ..trace import read_jsonl_events
                    record["conform"] = reconcile(
                        (event for _, event
                         in read_jsonl_events(args.trace)),
                        result.machine, skip=TIMING_DEPENDENT_FIELDS)
                ok = show(record) and ok
            return 0 if ok else 1
        except TraceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except StaleReadViolation as exc:
            print(f"coherence violation: {exc}", file=sys.stderr)
            return 1
        except FarmError as exc:
            parser.error(str(exc))

    if args.command == "run":
        if args.fault_seed < 0:
            parser.error(f"--fault-seed must be >= 0, got {args.fault_seed}")
        try:
            fault_plan = parse_fault_plan(args.faults, seed=args.fault_seed)
        except FaultPlanError as exc:
            parser.error(f"--faults: {exc}")
        spec = workload(args.workload)
        runner = ExperimentRunner(spec, _size_args(args), check=not args.no_check)
        record = runner.run_version(args.version, int(args.pes),
                                    backend=args.backend,
                                    fault_plan=fault_plan,
                                    oracle=args.oracle)
        print(record.describe())
        for key in ("cache_hits", "cache_misses", "prefetch_issued",
                    "pf_dropped", "pf_drop_bypass", "vector_prefetches",
                    "bypass_reads", "stale_reads"):
            print(f"  {key:18s} {record.stats.get(key, 0):.0f}")
        print(f"  backend            {record.backend}")
        if record.backend != Backend.REFERENCE:
            print(f"  batch_chunks       {record.batch_chunks}")
            print(f"  batch_fallbacks    {record.batch_fallbacks}")
            print(f"  fault_fallbacks    {record.fault_fallbacks}")
            print(f"  batched_coverage   {record.batched_coverage:.3f}")
            print(f"  plane_coverage     {record.plane_coverage:.3f}")
            for reason, count in sorted(record.fallback_reasons.items()):
                print(f"    {reason:16s} {count}")
        if record.fault_stats is not None:
            print("  faults:")
            for key, value in record.fault_stats.items():
                print(f"    {key:18s} {value:.0f}")
        if record.oracle_summary is not None:
            print(f"  {record.oracle_summary}")
        return 0 if record.correct else 1

    parser.error(f"unknown command {args.command}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
