"""The paper's published numbers, for side-by-side comparison.

Table 2 (percentage improvement in execution time of the CCDP codes
over the BASE codes) is partially recoverable from the paper text; the
MXM column and two cells did not survive the source's table extraction,
but the prose pins the MXM range ("a performance improvement of 64.5%
to 89.8%") and SWIM's ("2.5% to 13.2%").  ``None`` marks unrecoverable
cells.

Table 1 (absolute speedups of BASE and CCDP over sequential time) is
not recoverable from the source text at all; the prose supplies the
qualitative expectations recorded in ``TABLE1_QUALITATIVE``, which the
report generator checks instead.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

PE_COUNTS = (1, 2, 4, 8, 16, 32, 64)

#: Table 2 — % improvement of CCDP over BASE, per application per PE count.
PAPER_TABLE2: Dict[str, Tuple[Optional[float], ...]] = {
    #            1      2      4      8      16     32     64
    "mxm":     (None,  None,  None,  None,  None,  None,  None),
    "vpenta":  (12.53, 13.58, 9.23,  4.44,  4.98,  6.90,  23.90),
    "tomcatv": (44.83, 38.97, 55.85, 64.91, 69.22, 69.64, 68.51),
    "swim":    (None,  12.54, 12.50, 12.66, 12.75, 13.07, 13.16),
}

#: Prose-level improvement ranges per application (paper §5.4).
PAPER_IMPROVEMENT_RANGES: Dict[str, Tuple[float, float]] = {
    "mxm": (64.5, 89.8),
    "vpenta": (4.4, 23.9),
    # prose says "44.8% to 68.5%" but the table's own 2-PE cell is 38.97
    "tomcatv": (38.9, 69.7),
    "swim": (2.5, 13.2),
}

#: Paper ordering of improvements at scale (§5.4 prose).
PAPER_ORDERING = ("mxm", "tomcatv", "vpenta", "swim")

TABLE1_QUALITATIVE = {
    "mxm": ("BASE shows almost no speedup (remote columns of A dominate); "
            "CCDP restores much better scaling"),
    "vpenta": ("both versions scale well — all accesses are PE-local; "
               "CCDP achieves close-to-ideal linear speedups"),
    "tomcatv": ("BASE performs poorly (parallel-inner solver loops are "
                "remote-heavy); CCDP markedly better"),
    "swim": ("BASE already performs well (remote fraction is small); "
             "CCDP consistently a little better"),
}


def paper_improvement(workload: str, n_pes: int) -> Optional[float]:
    """Paper Table 2 cell, or None when the cell is unrecoverable."""
    if workload not in PAPER_TABLE2 or n_pes not in PE_COUNTS:
        return None
    return PAPER_TABLE2[workload][PE_COUNTS.index(n_pes)]


__all__ = ["PE_COUNTS", "PAPER_TABLE2", "PAPER_IMPROVEMENT_RANGES",
           "PAPER_ORDERING", "TABLE1_QUALITATIVE", "paper_improvement"]
