"""Experiment harness: version sweeps, Table 1 / Table 2 regeneration,
paper-vs-measured reporting, and the ``ccdp`` CLI."""

from .experiment import (PAPER_PE_COUNTS, ExperimentRunner, RunRecord, Sweep,
                         run_sweep)
from .paper_data import (PAPER_IMPROVEMENT_RANGES, PAPER_ORDERING,
                         PAPER_TABLE2, PE_COUNTS, paper_improvement)
from .report import band_verdict, generate_report
from .sweep import (Cell, FailedCell, SweepError, SweepSpec, cell_key,
                    sweep_grid)
from .tables import format_table1, format_table2, table1_rows, table2_rows

__all__ = [
    "PAPER_PE_COUNTS", "ExperimentRunner", "RunRecord", "Sweep", "run_sweep",
    "PAPER_IMPROVEMENT_RANGES", "PAPER_ORDERING", "PAPER_TABLE2", "PE_COUNTS",
    "paper_improvement", "band_verdict", "generate_report",
    "SweepSpec", "Cell", "FailedCell", "SweepError", "cell_key",
    "sweep_grid",
    "format_table1", "format_table2", "table1_rows", "table2_rows",
]
