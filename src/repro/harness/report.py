"""EXPERIMENTS.md generation: paper-vs-measured for every table/figure.

The report records, per experiment:

* Table 1 — measured BASE/CCDP speedups and the paper's qualitative
  expectations (absolute cells are unrecoverable from the source text);
* Table 2 — measured improvement next to every recoverable paper cell,
  plus a band check against the prose ranges;
* Fig. 1 / Fig. 2 — the algorithm implementations' observable outputs
  (target counts and scheduling technique mix per application).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..runtime import Version
from .experiment import ExperimentRunner, Sweep
from .paper_data import (PAPER_IMPROVEMENT_RANGES, PAPER_ORDERING,
                         TABLE1_QUALITATIVE, paper_improvement)
from .tables import format_table1, format_table2


def band_verdict(workload: str, improvements: Sequence[float]) -> str:
    lo, hi = PAPER_IMPROVEMENT_RANGES[workload]
    inside = [v for v in improvements if lo - 8 <= v <= hi + 12]
    frac = len(inside) / max(1, len(improvements))
    if frac >= 0.8:
        return "matches the paper band"
    if frac >= 0.4:
        return "mostly within/near the paper band"
    return "outside the paper band (see notes)"


def timeline_table(timeline: Sequence) -> str:
    """Markdown summary of a :class:`~repro.obs.Tracer` metrics timeline.

    One row per epoch, PE metrics aggregated: total reads, machine-wide
    hit rate, prefetch issue/drop totals, the deepest any PE's prefetch
    queue got, and total stall cycles."""
    lines = ["| epoch | label | start | cycles | reads | hit rate "
             "| pf issued | pf dropped | queue hw | stall cyc |",
             "|---|---|---|---|---|---|---|---|---|---|"]
    for row in timeline:
        reads = sum(m.reads for m in row.per_pe)
        hits = sum(m.hits for m in row.per_pe)
        cached = hits + sum(m.misses for m in row.per_pe)
        rate = f"{hits / cached:.3f}" if cached else "-"
        issued = sum(m.prefetch_issued for m in row.per_pe)
        dropped = sum(m.pf_dropped for m in row.per_pe)
        qhw = max((m.queue_high_water for m in row.per_pe), default=0)
        stall = sum(m.stall_cycles for m in row.per_pe)
        lines.append(
            f"| {row.index} | {row.label} | {row.start:.0f} "
            f"| {row.duration:.0f} | {reads} | {rate} | {issued} "
            f"| {dropped} | {qhw} | {stall:.0f} |")
    return "\n".join(lines)


def generate_report(sweeps: Sequence[Sweep],
                    runners: Optional[Dict[str, ExperimentRunner]] = None,
                    notes: str = "",
                    failed_cells: Optional[Sequence] = None) -> str:
    """Build the EXPERIMENTS.md content from finished sweeps.

    ``failed_cells`` — quarantined :class:`~repro.harness.sweep.FailedCell`
    entries from a farm-mode sweep; they get their own section with repro
    command lines, and the per-sweep sections skip the cells they left
    missing rather than crashing on the gaps."""
    lines: List[str] = []
    w = lines.append
    w("# EXPERIMENTS — paper vs. measured")
    w("")
    w("Reproduction of Lim & Yew, *A Compiler-Directed Cache Coherence "
      "Scheme Using Data Prefetching* (IPPS 1997), on the simulated "
      "T3D-class machine in `repro.machine`.")
    w("")
    w(f"Generated {time.strftime('%Y-%m-%d %H:%M:%S')} by "
      "`python -m repro.harness report`.")
    w("")
    sizes = ", ".join(
        f"{s.workload} {s.size_args}" for s in sweeps)
    w(f"Problem sizes (scaled from the paper's full inputs — see "
      f"DESIGN.md substitutions): {sizes}")
    w("")

    # Correctness statement (the simulator can prove what the paper argued).
    all_ok = all(s.all_correct() for s in sweeps)
    stale = sum(r.stale_reads for s in sweeps
                for (v, _), r in s.runs.items() if v == Version.CCDP)
    w("## Coherence and correctness")
    w("")
    w(f"* every run (SEQ/BASE/CCDP, all PE counts) checked against the "
      f"NumPy oracle: **{'all correct' if all_ok else 'FAILURES — see logs'}**")
    w(f"* stale reads observed in CCDP runs: **{stale}** (must be 0 — the "
      "scheme's coherence guarantee)")
    w("")

    # Table 1.
    w("## Table 1 — speedups over sequential execution")
    w("")
    w("```")
    w(format_table1(sweeps))
    w("```")
    w("")
    w("The paper's absolute Table 1 cells are not recoverable from the "
      "source text; the prose expectations and our verdicts:")
    w("")
    for sweep in sweeps:
        complete = sweep.complete_pes()
        if not complete or sweep.seq is None:
            w(f"* **{sweep.workload}** — paper: "
              f"{TABLE1_QUALITATIVE[sweep.workload]}. "
              f"No complete PE count (quarantined cells) — no verdict.")
            continue
        top = max(complete)
        base_sp = sweep.speedup(Version.BASE, top)
        ccdp_sp = sweep.speedup(Version.CCDP, top)
        w(f"* **{sweep.workload}** — paper: {TABLE1_QUALITATIVE[sweep.workload]}. "
          f"Measured at {top} PEs: BASE {base_sp:.2f}x, CCDP {ccdp_sp:.2f}x.")
    w("")

    # Table 2.
    w("## Table 2 — % improvement of CCDP over BASE")
    w("")
    w("```")
    w(format_table2(sweeps))
    w("```")
    w("")
    for sweep in sweeps:
        imps = [sweep.improvement(n) for n in sweep.complete_pes()]
        lo, hi = PAPER_IMPROVEMENT_RANGES[sweep.workload]
        if not imps:
            w(f"* **{sweep.workload}** — paper range {lo}-{hi}%; no "
              f"complete BASE+CCDP pair measured (quarantined cells).")
            continue
        w(f"* **{sweep.workload}** — paper range {lo}-{hi}%; measured "
          f"{min(imps):.1f}-{max(imps):.1f}%: {band_verdict(sweep.workload, imps)}.")
    w("")
    ordered = [s for s in sweeps if s.complete_pes()]
    if ordered:
        order = sorted(ordered, key=lambda s: -max(s.improvement(n)
                                                   for n in s.complete_pes()))
        w(f"Measured improvement ordering: "
          f"{' > '.join(s.workload for s in order)} "
          f"(paper: {' > '.join(PAPER_ORDERING)}).")
        w("")

    # Prefetch accounting: issued vs dropped vs degraded-to-bypass.
    w("## Prefetch accounting (CCDP runs, max PE count)")
    w("")
    w("Dropped prefetches are the paper's rule-2 hazard: each one must be "
      "replaced by a bypass-cache fetch at the use point, never by a stale "
      "cached value.  `pf_drop_bypass` counts those replacement fetches "
      "(they also appear in `bypass_reads`).")
    w("")
    w("The last three columns describe the *execution backend*, not the "
      "scheme: under `backend=\"batched\"` they give the fraction of "
      "references served through bulk chunk plans, the chunks that "
      "fell back to the reference path (run-time guards or injected "
      "faults), and the per-reason fallback/skip taxonomy; under the "
      "reference backend they are `-`.")
    w("")
    w("| app | issued | extracted | pf_dropped | pf_drop_bypass "
      "| vector prefetches | batched coverage | fallbacks | why |")
    w("|---|---|---|---|---|---|---|---|---|")
    for sweep in sweeps:
        ccdp_pes = [n for n in sweep.pe_counts()
                    if (Version.CCDP, n) in sweep.runs]
        if not ccdp_pes:
            w(f"| {sweep.workload} | - | - | - | - | - | - | - | "
              f"quarantined |")
            continue
        record = sweep.record(Version.CCDP, max(ccdp_pes))
        stats = record.stats
        if record.backend == "reference":
            coverage, fallbacks, why = "-", "-", "-"
        else:
            coverage = f"{record.batched_coverage:.3f}"
            fallbacks = f"{record.batch_fallbacks + record.fault_fallbacks}"
            why = ", ".join(f"{k}:{v}" for k, v in
                            sorted(record.fallback_reasons.items())) or "-"
        w(f"| {sweep.workload} "
          f"| {stats.get('prefetch_issued', 0):.0f} "
          f"| {stats.get('prefetch_extracted', 0):.0f} "
          f"| {stats.get('pf_dropped', 0):.0f} "
          f"| {stats.get('pf_drop_bypass', 0):.0f} "
          f"| {stats.get('vector_prefetches', 0):.0f} "
          f"| {coverage} | {fallbacks} | {why} |")
    w("")

    # Figures 1 & 2 (algorithms): observable pass outputs.
    if runners:
        w("## Fig. 1 / Fig. 2 — the compiler algorithms")
        w("")
        w("The paper's figures are the prefetch target analysis and "
          "prefetch scheduling algorithms; reproduced as "
          "`repro.coherence.target_analysis` / `repro.coherence.scheduling`. "
          "Their observable outputs on the four applications:")
        w("")
        w("| app | stale reads | targets | group-demoted | bypass-demoted "
          "| VPG | SP | MBP | dropped→bypass |")
        w("|---|---|---|---|---|---|---|---|---|")
        for sweep in sweeps:
            runner = runners.get(sweep.workload)
            if runner is None:
                continue
            _, report = runner.ccdp_program(max(sweep.pe_counts()))
            counts = report.schedule.counts()
            w(f"| {sweep.workload} | {len(report.stale.stale_reads)} "
              f"| {len(report.targets.targets)} "
              f"| {len(report.targets.demoted_group)} "
              f"| {len(report.targets.demoted_bypass)} "
              f"| {counts['vpg']} | {counts['sp']} | {counts['mbp_moved']} "
              f"| {counts['bypass']} |")
        w("")

    if failed_cells:
        w("## Failed cells (quarantined)")
        w("")
        w("These cells exhausted their farm retries and were quarantined; "
          "the grid completed without them.  Each line reproduces the "
          "failure standalone:")
        w("")
        for cell in failed_cells:
            w(f"* `{cell.describe()}` — key `{cell.key[:16]}…`")
            w(f"  * repro: `PYTHONPATH=src {cell.repro_command()}`")
            last = (cell.error or "").strip().splitlines()
            if last:
                w(f"  * error: `{last[-1]}`")
        w("")

    w("## Notes")
    w("")
    w(DEFAULT_NOTES.strip())
    if notes:
        w("")
        w(notes)
    w("")
    return "\n".join(lines)


DEFAULT_NOTES = """
* **Scaled sizes.** The paper ran full SPEC inputs (MXM 256, VPENTA 128²,
  TOMCATV/SWIM 513² with 100 time steps) on real hardware; we simulate
  every memory reference, so the defaults are linearly scaled down ~8-16x
  and the cache is scaled with them (2 KB instead of 8 KB) to preserve the
  paper's regime of arrays ≫ cache. See DESIGN.md's substitution table.
* **SWIM overshoots at high PE counts.** With a 33-column grid, 32-64 PEs
  leave ≤1 column per PE, so nearly every stencil access crosses a block
  boundary — a remote fraction far above the paper's 8 columns/PE at
  513²/64. The overshoot shrinks with the grid: at n=65 SWIM measures
  ~19% (2 PEs) → ~37% (32 PEs), converging toward the paper's 12.5-13.2%
  band as columns-per-PE approach the paper's ratio.
* **Table 2 at 1 PE** isolates the caching-vs-CRAFT-overhead effect (no
  remote traffic); the paper's 1-PE TOMCATV cell (44.8%) suggests their
  CRAFT per-access overhead was larger than our calibration.
* **MXM's measured band (57-67%)** sits at the bottom of the paper's
  64.5-89.8% because the simulator charges MXM's BASE version the cheap
  page-mode rate for its uncached local B/C accesses; the paper's span up
  to 89.8% likely reflects costlier CRAFT addressing on the real machine.
* **Ordering.** The paper's strongest cross-application claim — MXM and
  TOMCATV improve by a large factor, VPENTA and SWIM modestly, and CCDP
  never loses — holds in every measured cell.
"""


__all__ = ["generate_report", "band_verdict", "timeline_table"]
