"""Text front end: a tiny Fortran-flavoured DSL for IR programs.

The DSL exists so example programs and tests can be written as plain
text, and so the pretty-printer output round-trips (``parse(format(p))``
reproduces ``p`` structurally).  Grammar sketch::

    program     := "program" NAME decl* proc+ "end" "program"
    decl        := ["shared"] TYPE NAME "(" int ("," int)* ")" dist?
                 | TYPE NAME ["=" number]
    dist        := "dist" "(" ("block"|"cyclic") "," "axis" "=" int ")"
                 | "private"
    proc        := "procedure" NAME ["(" params ")"] stmt* "end" "procedure"
    stmt        := assign | do | doall | if | call | prefetch forms
    do          := "do" NAME "=" expr "," expr ["," expr] opts stmt* "end" "do"
    doall       := "doall" ... "end" "doall"   with optional schedule(...)
    if          := "if" expr "then" stmt* ["else" stmt*] "end" "if"

Expressions use Fortran-ish operators (``+ - * / ** mod and or not``,
comparisons), intrinsics (``sqrt``, ``abs``, ``min``, ``max`` ...),
``$name`` for symbolic (compile-time-unknown) constants, and
``A(i, j)@bypass`` for bypass-cache references.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .arrays import ArrayDecl, DistKind, Distribution, REPLICATED
from .dtypes import dtype_from_name
from .expr import (ArrayRef, BinOp, Expr, FloatConst, IntConst, IntrinsicCall,
                   INTRINSICS, RefMode, SymConst, UnaryOp, VarRef)
from .program import Procedure, Program, ScalarDecl
from .stmt import (Assign, If, CallStmt, InvalidateLines, Loop, LoopKind,
                   PrefetchLine, PrefetchVector, ScheduleKind, Stmt)
from .validate import validate_program


class ParseError(Exception):
    """Raised with a line/column-annotated message on malformed input."""


_TOKEN_RE = re.compile(r"""
    (?P<ws>[ \t]+)
  | (?P<comment>[!#][^\n]*)
  | (?P<newline>\n)
  | (?P<float>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)
  | (?P<int>\d+)
  | (?P<sym>\$[A-Za-z_][A-Za-z_0-9]*)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>\*\*|<=|>=|==|!=|[-+*/(),=<>@])
""", re.VERBOSE)

_KEYWORDS = {
    "program", "end", "procedure", "do", "doall", "if", "then", "else",
    "call", "shared", "private", "dist", "schedule", "label",
    "prefetch", "vprefetch", "invalidate", "axis", "len", "stride", "ahead",
    "preamble", "align", "and", "or", "not", "mod", "min", "max",
}


class Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind: str, text: str, line: int, col: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line, line_start = 1, 0
    pos = 0
    paren_depth = 0  # newlines inside parentheses continue the line
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            col = pos - line_start + 1
            raise ParseError(f"line {line}, col {col}: unexpected character {source[pos]!r}")
        kind = match.lastgroup
        text = match.group()
        col = pos - line_start + 1
        pos = match.end()
        if kind == "ws" or kind == "comment":
            continue
        if kind == "newline":
            if paren_depth == 0 and tokens and tokens[-1].kind != "newline":
                tokens.append(Token("newline", "\n", line, col))
            line += 1
            line_start = pos
            continue
        if kind == "op":
            if text == "(":
                paren_depth += 1
            elif text == ")":
                paren_depth = max(0, paren_depth - 1)
        if kind == "name" and text.lower() in _KEYWORDS:
            tokens.append(Token(text.lower(), text, line, col))
        else:
            tokens.append(Token(kind or "?", text, line, col))
    tokens.append(Token("eof", "", line, 1))
    return tokens


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing -----------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ParseError(f"line {tok.line}, col {tok.col}: expected {want!r}, got {tok.text!r}")
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def skip_newlines(self) -> None:
        while self.accept("newline"):
            pass

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(f"line {tok.line}, col {tok.col}: {message} (at {tok.text!r})")

    # -- program structure --------------------------------------------------
    def parse_program(self) -> Program:
        self.skip_newlines()
        self.expect("program")
        name = self.expect("name").text
        program = Program(name)
        self.skip_newlines()
        while True:
            tok = self.peek()
            if tok.kind == "shared" or (tok.kind == "name" and self._looks_like_decl()):
                self._parse_decl(program)
                self.skip_newlines()
            else:
                break
        while self.peek().kind == "procedure":
            proc = self._parse_procedure(program)
            program.add_procedure(proc)
            self.skip_newlines()
        self.expect("end")
        self.expect("program")
        self.skip_newlines()
        self.expect("eof")
        if "main" in program.procedures:
            program.entry = "main"
        elif program.procedures:
            program.entry = list(program.procedures)[-1]
        else:
            raise ParseError("program has no procedures")
        validate_program(program)
        return program

    def _looks_like_decl(self) -> bool:
        tok = self.peek()
        try:
            dtype_from_name(tok.text)
        except ValueError:
            return False
        return self.peek(1).kind == "name"

    def _parse_decl(self, program: Program) -> None:
        is_shared = bool(self.accept("shared"))
        type_tok = self.expect("name")
        try:
            dtype = dtype_from_name(type_tok.text)
        except ValueError:
            raise ParseError(f"line {type_tok.line}: unknown type {type_tok.text!r}") from None
        name = self.expect("name").text
        if self.accept("op", "("):
            shape = [self._parse_int_literal()]
            while self.accept("op", ","):
                shape.append(self._parse_int_literal())
            self.expect("op", ")")
            dist = Distribution(DistKind.BLOCK, -1)
            if self.accept("private"):
                dist = REPLICATED
            elif self.accept("dist"):
                self.expect("op", "(")
                kind_tok = self.next()
                kind = kind_tok.text.lower()
                if kind not in (DistKind.BLOCK, DistKind.CYCLIC):
                    raise ParseError(f"line {kind_tok.line}: unknown distribution {kind!r}")
                axis = -1
                if self.accept("op", ","):
                    self.expect("axis")
                    self.expect("op", "=")
                    axis = self._parse_int_literal(signed=True)
                self.expect("op", ")")
                dist = Distribution(kind, axis)
            elif not is_shared:
                dist = REPLICATED
            program.declare_array(ArrayDecl(name, tuple(shape), dtype, dist))
        else:
            init = None
            if self.accept("op", "="):
                init = self._parse_number_literal()
            program.declare_scalar(ScalarDecl(name, dtype, init))

    def _parse_int_literal(self, signed: bool = False) -> int:
        negate = False
        if signed and self.accept("op", "-"):
            negate = True
        tok = self.expect("int")
        value = int(tok.text)
        return -value if negate else value

    def _parse_number_literal(self) -> float:
        negate = bool(self.accept("op", "-"))
        tok = self.next()
        if tok.kind == "int":
            value: float = int(tok.text)
        elif tok.kind == "float":
            value = float(tok.text)
        else:
            raise ParseError(f"line {tok.line}: expected a number, got {tok.text!r}")
        return -value if negate else value

    def _parse_procedure(self, program: Program) -> Procedure:
        self.expect("procedure")
        name = self.expect("name").text
        params: Tuple[str, ...] = ()
        if self.accept("op", "("):
            names = []
            if not self.accept("op", ")"):
                names.append(self.expect("name").text)
                while self.accept("op", ","):
                    names.append(self.expect("name").text)
                self.expect("op", ")")
            params = tuple(names)
        self.skip_newlines()
        body = self._parse_stmts(("end",))
        self.expect("end")
        self.expect("procedure")
        return Procedure(name, body, params)

    # -- statements -----------------------------------------------------------
    def _parse_stmts(self, stop_kinds: Tuple[str, ...]) -> List[Stmt]:
        stmts: List[Stmt] = []
        self.skip_newlines()
        while self.peek().kind not in stop_kinds and self.peek().kind != "eof":
            stmts.append(self._parse_stmt())
            self.skip_newlines()
        return stmts

    def _parse_stmt(self) -> Stmt:
        tok = self.peek()
        if tok.kind in ("do", "doall"):
            return self._parse_loop()
        if tok.kind == "if":
            return self._parse_if()
        if tok.kind == "call":
            return self._parse_call()
        if tok.kind == "prefetch":
            return self._parse_prefetch()
        if tok.kind == "vprefetch":
            return self._parse_vprefetch()
        if tok.kind == "invalidate":
            return self._parse_invalidate()
        if tok.kind == "name":
            return self._parse_assign()
        raise self.error("expected a statement")

    def _parse_loop(self) -> Loop:
        head = self.next()
        kind = LoopKind.DOALL if head.kind == "doall" else LoopKind.SERIAL
        var = self.expect("name").text
        self.expect("op", "=")
        lower = self._parse_expr()
        self.expect("op", ",")
        upper = self._parse_expr()
        step: Expr = IntConst(1)
        if self.accept("op", ","):
            step = self._parse_expr()
        schedule = ScheduleKind.STATIC_BLOCK
        label = ""
        align = ""
        while True:
            if self.accept("align"):
                self.expect("op", "(")
                align = self.next().text
                self.expect("op", ")")
            elif self.accept("schedule"):
                self.expect("op", "(")
                sched_tok = self.next()
                mapping = {"block": ScheduleKind.STATIC_BLOCK,
                           "cyclic": ScheduleKind.STATIC_CYCLIC,
                           "dynamic": ScheduleKind.DYNAMIC}
                if sched_tok.text.lower() not in mapping:
                    raise ParseError(f"line {sched_tok.line}: unknown schedule {sched_tok.text!r}")
                schedule = mapping[sched_tok.text.lower()]
                self.expect("op", ")")
            elif self.accept("label"):
                self.expect("op", "(")
                label = self.next().text
                self.expect("op", ")")
            else:
                break
        self.skip_newlines()
        preamble: List[Stmt] = []
        if self.peek().kind == "preamble":
            self.next()
            preamble = self._parse_stmts(("end",))
            self.expect("end")
            self.expect("preamble")
        body = self._parse_stmts(("end",))
        self.expect("end")
        self.expect(head.kind)
        return Loop(var, lower, upper, step, body, kind, schedule, label, preamble, align)

    def _parse_if(self) -> If:
        self.expect("if")
        cond = self._parse_expr()
        self.expect("then")
        then_body = self._parse_stmts(("else", "end"))
        else_body: List[Stmt] = []
        if self.accept("else"):
            else_body = self._parse_stmts(("end",))
        self.expect("end")
        self.expect("if")
        return If(cond, then_body, else_body)

    def _parse_call(self) -> CallStmt:
        self.expect("call")
        name = self.expect("name").text
        args: List[Expr] = []
        if self.accept("op", "("):
            if not self.accept("op", ")"):
                args.append(self._parse_expr())
                while self.accept("op", ","):
                    args.append(self._parse_expr())
                self.expect("op", ")")
        return CallStmt(name, args)

    def _parse_assign(self) -> Assign:
        target = self._parse_primary()
        if not isinstance(target, (ArrayRef, VarRef)):
            raise self.error("assignment target must be a variable or array reference")
        self.expect("op", "=")
        rhs = self._parse_expr()
        return Assign(target, rhs)

    def _parse_prefetch(self) -> PrefetchLine:
        self.expect("prefetch")
        # All parsed prefetches are invalidate-first: that is the only
        # coherent mode on T3D-class hardware (no in-flight masking).
        invalidate = True
        ref = self._parse_primary()
        if not isinstance(ref, ArrayRef):
            raise self.error("prefetch target must be an array reference")
        distance = 0
        if self.accept("ahead"):
            self.expect("op", "(")
            distance = self._parse_int_literal()
            self.expect("op", ")")
        return PrefetchLine(ref, invalidate, distance=distance)

    def _parse_vprefetch(self) -> PrefetchVector:
        self.expect("vprefetch")
        name = self.expect("name").text
        self.expect("op", "(")
        subs = [self._parse_expr()]
        while self.accept("op", ","):
            subs.append(self._parse_expr())
        self.expect("op", ")")
        self.expect("axis")
        self.expect("op", "=")
        axis = self._parse_int_literal()
        self.expect("len")
        self.expect("op", "=")
        length = self._parse_expr()
        stride: Expr = IntConst(1)
        if self.accept("stride"):
            self.expect("op", "=")
            stride = self._parse_expr()
        return PrefetchVector(name, subs, axis, length, stride)

    def _parse_invalidate(self) -> InvalidateLines:
        self.expect("invalidate")
        name = self.expect("name").text
        self.expect("op", "(")
        subs = [self._parse_expr()]
        while self.accept("op", ","):
            subs.append(self._parse_expr())
        self.expect("op", ")")
        self.expect("axis")
        self.expect("op", "=")
        axis = self._parse_int_literal()
        self.expect("len")
        self.expect("op", "=")
        length = self._parse_expr()
        return InvalidateLines(name, subs, axis, length)

    # -- expressions -------------------------------------------------------------
    # Precedence climbing over: or < and < comparison < add < mul < power < unary
    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept("or"):
            left = BinOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_cmp()
        while self.accept("and"):
            left = BinOp("and", left, self._parse_cmp())
        return left

    def _parse_cmp(self) -> Expr:
        left = self._parse_add()
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("<", "<=", ">", ">=", "==", "!="):
            self.next()
            return BinOp(tok.text, left, self._parse_add())
        return left

    def _parse_add(self) -> Expr:
        left = self._parse_mul()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.text in ("+", "-"):
                self.next()
                left = BinOp(tok.text, left, self._parse_mul())
            else:
                return left

    def _parse_mul(self) -> Expr:
        left = self._parse_power()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.text in ("*", "/"):
                self.next()
                left = BinOp(tok.text, left, self._parse_power())
            elif tok.kind == "mod":
                self.next()
                left = BinOp("mod", left, self._parse_power())
            else:
                return left

    def _parse_power(self) -> Expr:
        left = self._parse_unary()
        if self.accept("op", "**"):
            return BinOp("**", left, self._parse_power())
        return left

    def _parse_unary(self) -> Expr:
        if self.accept("op", "-"):
            operand = self._parse_unary()
            if isinstance(operand, IntConst):
                return IntConst(-operand.value)
            if isinstance(operand, FloatConst):
                return FloatConst(-operand.value)
            return BinOp("-", IntConst(0), operand)
        if self.accept("op", "+"):
            return self._parse_unary()
        if self.accept("not"):
            return UnaryOp("not", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "int":
            return IntConst(int(tok.text))
        if tok.kind == "float":
            return FloatConst(float(tok.text))
        if tok.kind == "sym":
            return SymConst(tok.text[1:])
        if tok.kind == "op" and tok.text == "(":
            inner = self._parse_expr()
            self.expect("op", ")")
            return inner
        if tok.kind in ("min", "max"):
            self.expect("op", "(")
            left = self._parse_expr()
            self.expect("op", ",")
            right = self._parse_expr()
            self.expect("op", ")")
            return IntrinsicCall(tok.kind, [left, right])
        if tok.kind == "name":
            name = tok.text
            if self.peek().kind == "op" and self.peek().text == "(":
                self.next()
                args = [self._parse_expr()]
                while self.accept("op", ","):
                    args.append(self._parse_expr())
                self.expect("op", ")")
                if name.lower() in INTRINSICS:
                    return IntrinsicCall(name, args)
                ref = ArrayRef(name, args)
                if self.accept("op", "@"):
                    mode_tok = self.expect("name")
                    if mode_tok.text.lower() != "bypass":
                        raise ParseError(f"line {mode_tok.line}: unknown ref mode {mode_tok.text!r}")
                    ref.mode = RefMode.BYPASS
                return ref
            return VarRef(name)
        raise ParseError(f"line {tok.line}, col {tok.col}: expected an expression, got {tok.text!r}")


def parse_program(source: str) -> Program:
    """Parse DSL source text into a validated :class:`Program`."""
    return Parser(source).parse_program()


def parse_expr(source: str) -> Expr:
    """Parse a single expression (test/REPL convenience)."""
    parser = Parser(source)
    expr = parser._parse_expr()
    parser.skip_newlines()
    parser.expect("eof")
    return expr


__all__ = ["parse_program", "parse_expr", "ParseError", "tokenize"]
