"""Structural validation of IR programs.

Run automatically by :meth:`ProgramBuilder.finish` and by the CCDP
driver after transformation, so malformed programs fail loudly at build
time instead of deep inside the simulator.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

from .expr import ArrayRef, Expr, SymConst, VarRef
from .program import Program
from .stmt import (Assign, CallStmt, If, InvalidateLines, Loop, PrefetchLine,
                   PrefetchVector, Stmt)
from .visitor import const_int_value


class ValidationError(Exception):
    """Raised when a program violates an IR well-formedness rule."""


def validate_program(program: Program) -> None:
    """Check declarations, reference arity, loop-variable scoping, loop
    bounds, and call-target existence for every procedure.  Raises
    :class:`ValidationError` on the first problem."""
    if program.entry not in program.procedures:
        raise ValidationError(f"missing entry procedure {program.entry!r}")
    for proc in program.procedures.values():
        scope: Set[str] = set(program.scalars) | set(proc.params)
        _validate_body(program, proc.name, proc.body, scope, frozenset())


def _validate_body(program: Program, proc: str, body: List[Stmt], scope: Set[str],
                   loop_vars: FrozenSet[str]) -> None:
    for stmt in body:
        _validate_stmt(program, proc, stmt, scope, loop_vars)


def _validate_loop_header(program: Program, where: str, stmt: Loop,
                          loop_vars: FrozenSet[str]) -> None:
    """Bound and naming rules that used to be accepted and then crash (or
    silently corrupt results) deep inside the runtime:

    * a constant zero step crashes ``iteration_values`` at run time;
    * constant bounds with a zero trip count denote a loop that can
      never execute — always a construction bug in this IR's workloads;
    * a loop variable named like a declared array shadows the array in
      the interpreter environment;
    * a loop variable duplicating an *enclosing* loop's variable clobbers
      the outer induction value mid-flight (the outer loop keeps
      iterating but its body sees the inner loop's final value).
    """
    step = const_int_value(stmt.step)
    if step == 0:
        raise ValidationError(f"{where}: loop {stmt.var!r} has zero step")
    lo = const_int_value(stmt.lower)
    hi = const_int_value(stmt.upper)
    if lo is not None and hi is not None and step is not None:
        trips = (hi - lo) // step + 1 if step > 0 else (lo - hi) // (-step) + 1
        if trips <= 0:
            raise ValidationError(
                f"{where}: loop {stmt.var!r} has zero trip count "
                f"({lo}..{hi} step {step})")
    if stmt.var in program.arrays:
        raise ValidationError(
            f"{where}: loop variable {stmt.var!r} collides with an array name")
    if stmt.var in loop_vars:
        raise ValidationError(
            f"{where}: loop variable {stmt.var!r} duplicates an enclosing "
            f"loop's variable")


def _validate_stmt(program: Program, proc: str, stmt: Stmt, scope: Set[str],
                   loop_vars: FrozenSet[str]) -> None:
    where = f"{proc}: {type(stmt).__name__}"
    if isinstance(stmt, Loop):
        for expr in stmt.expressions():
            _validate_expr(program, where, expr, scope)
        _validate_loop_header(program, where, stmt, loop_vars)
        if stmt.align:
            target = program.arrays.get(stmt.align)
            if target is None:
                raise ValidationError(f"{where}: align target {stmt.align!r} not declared")
            if not target.is_shared:
                raise ValidationError(f"{where}: align target {stmt.align!r} is private")
        if stmt.preamble:
            pre_scope = scope | set(stmt.chunk_vars())
            _validate_body(program, proc, stmt.preamble, pre_scope, loop_vars)
        inner_scope = scope | {stmt.var}
        _validate_body(program, proc, stmt.body, inner_scope,
                       loop_vars | {stmt.var})
        return
    if isinstance(stmt, If):
        _validate_expr(program, where, stmt.cond, scope)
        _validate_body(program, proc, stmt.then_body, scope, loop_vars)
        _validate_body(program, proc, stmt.else_body, scope, loop_vars)
        return
    if isinstance(stmt, Assign):
        if isinstance(stmt.lhs, VarRef) and stmt.lhs.name not in scope:
            # Implicit scalar definition is allowed (Fortran style) but the
            # name must not collide with an array.
            if stmt.lhs.name in program.arrays:
                raise ValidationError(f"{where}: scalar assignment to array name {stmt.lhs.name!r}")
            scope.add(stmt.lhs.name)
        for expr in stmt.expressions():
            _validate_expr(program, where, expr, scope)
        return
    if isinstance(stmt, CallStmt):
        if stmt.name not in program.procedures:
            raise ValidationError(f"{where}: call to undefined procedure {stmt.name!r}")
        callee = program.procedures[stmt.name]
        if len(stmt.args) != len(callee.params):
            raise ValidationError(
                f"{where}: call to {stmt.name} with {len(stmt.args)} args, "
                f"expected {len(callee.params)}")
        for expr in stmt.expressions():
            _validate_expr(program, where, expr, scope)
        return
    if isinstance(stmt, (PrefetchLine,)):
        _validate_expr(program, where, stmt.ref, scope)
        return
    if isinstance(stmt, (PrefetchVector, InvalidateLines)):
        decl = program.arrays.get(stmt.array)
        if decl is None:
            raise ValidationError(f"{where}: undeclared array {stmt.array!r}")
        if len(stmt.start_subscripts) != decl.rank:
            raise ValidationError(f"{where}: {stmt.array} rank mismatch")
        if not (0 <= stmt.axis < decl.rank):
            raise ValidationError(f"{where}: axis {stmt.axis} out of range for {stmt.array}")
        for expr in stmt.expressions():
            _validate_expr(program, where, expr, scope)
        return
    raise ValidationError(f"{where}: unknown statement type")


def _validate_expr(program: Program, where: str, expr: Expr, scope: Set[str]) -> None:
    for node in expr.walk():
        if isinstance(node, ArrayRef):
            decl = program.arrays.get(node.array)
            if decl is None:
                raise ValidationError(f"{where}: undeclared array {node.array!r}")
            if len(node.subscripts) != decl.rank:
                raise ValidationError(
                    f"{where}: {node.array} has rank {decl.rank}, "
                    f"referenced with {len(node.subscripts)} subscripts")
        elif isinstance(node, VarRef):
            if node.name in program.arrays:
                raise ValidationError(f"{where}: array {node.name!r} used without subscripts")
            if node.name not in scope:
                raise ValidationError(f"{where}: undefined scalar {node.name!r}")
        elif isinstance(node, SymConst):
            # Symbolic constants need not be bound at validation time; the
            # runtime checks bindings before execution.
            pass


__all__ = ["validate_program", "ValidationError"]
