"""Structural validation of IR programs.

Run automatically by :meth:`ProgramBuilder.finish` and by the CCDP
driver after transformation, so malformed programs fail loudly at build
time instead of deep inside the simulator.
"""

from __future__ import annotations

from typing import List, Set

from .expr import ArrayRef, Expr, SymConst, VarRef
from .program import Program
from .stmt import (Assign, CallStmt, If, InvalidateLines, Loop, PrefetchLine,
                   PrefetchVector, Stmt)


class ValidationError(Exception):
    """Raised when a program violates an IR well-formedness rule."""


def validate_program(program: Program) -> None:
    """Check declarations, reference arity, loop-variable scoping, and
    call-target existence for every procedure.  Raises
    :class:`ValidationError` on the first problem."""
    if program.entry not in program.procedures:
        raise ValidationError(f"missing entry procedure {program.entry!r}")
    for proc in program.procedures.values():
        scope: Set[str] = set(program.scalars) | set(proc.params)
        _validate_body(program, proc.name, proc.body, scope)


def _validate_body(program: Program, proc: str, body: List[Stmt], scope: Set[str]) -> None:
    for stmt in body:
        _validate_stmt(program, proc, stmt, scope)


def _validate_stmt(program: Program, proc: str, stmt: Stmt, scope: Set[str]) -> None:
    where = f"{proc}: {type(stmt).__name__}"
    if isinstance(stmt, Loop):
        for expr in stmt.expressions():
            _validate_expr(program, where, expr, scope)
        if stmt.align:
            target = program.arrays.get(stmt.align)
            if target is None:
                raise ValidationError(f"{where}: align target {stmt.align!r} not declared")
            if not target.is_shared:
                raise ValidationError(f"{where}: align target {stmt.align!r} is private")
        if stmt.preamble:
            pre_scope = scope | set(stmt.chunk_vars())
            _validate_body(program, proc, stmt.preamble, pre_scope)
        inner_scope = scope | {stmt.var}
        _validate_body(program, proc, stmt.body, inner_scope)
        return
    if isinstance(stmt, If):
        _validate_expr(program, where, stmt.cond, scope)
        _validate_body(program, proc, stmt.then_body, scope)
        _validate_body(program, proc, stmt.else_body, scope)
        return
    if isinstance(stmt, Assign):
        if isinstance(stmt.lhs, VarRef) and stmt.lhs.name not in scope:
            # Implicit scalar definition is allowed (Fortran style) but the
            # name must not collide with an array.
            if stmt.lhs.name in program.arrays:
                raise ValidationError(f"{where}: scalar assignment to array name {stmt.lhs.name!r}")
            scope.add(stmt.lhs.name)
        for expr in stmt.expressions():
            _validate_expr(program, where, expr, scope)
        return
    if isinstance(stmt, CallStmt):
        if stmt.name not in program.procedures:
            raise ValidationError(f"{where}: call to undefined procedure {stmt.name!r}")
        callee = program.procedures[stmt.name]
        if len(stmt.args) != len(callee.params):
            raise ValidationError(
                f"{where}: call to {stmt.name} with {len(stmt.args)} args, "
                f"expected {len(callee.params)}")
        for expr in stmt.expressions():
            _validate_expr(program, where, expr, scope)
        return
    if isinstance(stmt, (PrefetchLine,)):
        _validate_expr(program, where, stmt.ref, scope)
        return
    if isinstance(stmt, (PrefetchVector, InvalidateLines)):
        decl = program.arrays.get(stmt.array)
        if decl is None:
            raise ValidationError(f"{where}: undeclared array {stmt.array!r}")
        if len(stmt.start_subscripts) != decl.rank:
            raise ValidationError(f"{where}: {stmt.array} rank mismatch")
        if not (0 <= stmt.axis < decl.rank):
            raise ValidationError(f"{where}: axis {stmt.axis} out of range for {stmt.array}")
        for expr in stmt.expressions():
            _validate_expr(program, where, expr, scope)
        return
    raise ValidationError(f"{where}: unknown statement type")


def _validate_expr(program: Program, where: str, expr: Expr, scope: Set[str]) -> None:
    for node in expr.walk():
        if isinstance(node, ArrayRef):
            decl = program.arrays.get(node.array)
            if decl is None:
                raise ValidationError(f"{where}: undeclared array {node.array!r}")
            if len(node.subscripts) != decl.rank:
                raise ValidationError(
                    f"{where}: {node.array} has rank {decl.rank}, "
                    f"referenced with {len(node.subscripts)} subscripts")
        elif isinstance(node, VarRef):
            if node.name in program.arrays:
                raise ValidationError(f"{where}: array {node.name!r} used without subscripts")
            if node.name not in scope:
                raise ValidationError(f"{where}: undefined scalar {node.name!r}")
        elif isinstance(node, SymConst):
            # Symbolic constants need not be bound at validation time; the
            # runtime checks bindings before execution.
            pass


__all__ = ["validate_program", "ValidationError"]
