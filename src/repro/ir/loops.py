"""Loop-structure utilities shared by the CCDP analyses.

The paper's algorithms are phrased over "inner loops and serial code
segments" (LSCs).  :func:`collect_lscs` partitions a procedure body into
exactly those units, preserving the context the Fig. 2 scheduler needs:
whether an LSC lies inside an IF branch (case 6), whether a loop body
contains IF statements (case 5), the loop kind/schedule (cases 1-3), and
straight-line serial segments (case 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .expr import Expr
from .stmt import Assign, CallStmt, If, Loop, Stmt
from .visitor import const_int_value


def static_trip_count(loop: Loop, symbols: Optional[Dict[str, int]] = None) -> Optional[int]:
    """Compile-time trip count, or ``None`` when bounds are unknown."""
    lo = const_int_value(loop.lower, symbols)
    hi = const_int_value(loop.upper, symbols)
    st = const_int_value(loop.step, symbols)
    if lo is None or hi is None or st in (None, 0):
        return None
    if st > 0:
        return max(0, (hi - lo) // st + 1)
    return max(0, (lo - hi) // (-st) + 1)


def has_static_bounds(loop: Loop) -> bool:
    """True when the paper's scheduler may treat the bounds as known."""
    return static_trip_count(loop) is not None


def is_innermost(loop: Loop) -> bool:
    """A loop with no loop anywhere inside its body."""
    return not any(isinstance(s, Loop) for stmt in loop.body for s in stmt.walk())


def inner_loops(body: Sequence[Stmt]) -> List[Loop]:
    """All innermost loops in a statement list."""
    return [s for stmt in body for s in stmt.walk()
            if isinstance(s, Loop) and is_innermost(s)]


def contains_if(loop: Loop) -> bool:
    return any(isinstance(s, If) for stmt in loop.body for s in stmt.walk())


def contains_call(loop: Loop) -> bool:
    return any(isinstance(s, CallStmt) for stmt in loop.body for s in stmt.walk())


def loop_nest_of(body: Sequence[Stmt]) -> List[List[Loop]]:
    """Every root-to-innermost loop-nest path in a body."""
    paths: List[List[Loop]] = []

    def visit(stmts: Sequence[Stmt], stack: List[Loop]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Loop):
                stack.append(stmt)
                if is_innermost(stmt):
                    paths.append(list(stack))
                else:
                    for inner_body in stmt.bodies():
                        visit(inner_body, stack)
                stack.pop()
            else:
                for inner_body in stmt.bodies():
                    visit(inner_body, stack)

    visit(body, [])
    return paths


# ---------------------------------------------------------------------------
# LSC partitioning (the unit over which Fig. 1 and Fig. 2 iterate)
# ---------------------------------------------------------------------------

@dataclass
class LSC:
    """An *inner Loop or Serial Code segment*.

    Attributes
    ----------
    loop:
        The innermost loop, or ``None`` for a straight-line serial
        segment.
    stmts:
        For serial segments, the statements of the segment; for loops,
        the loop body.
    enclosing_loops:
        Loop stack around this LSC, outermost first (the innermost entry
        for a loop LSC is the loop itself's parent chain — it excludes
        ``loop``).
    in_if_branch:
        True when the LSC sits inside the body of an IF statement
        (paper Fig. 2 case 6).
    parent_body:
        The statement list that directly contains the LSC's statements —
        the insertion site for hoisted prefetches.
    """

    loop: Optional[Loop]
    stmts: List[Stmt]
    enclosing_loops: List[Loop] = field(default_factory=list)
    in_if_branch: bool = False
    parent_body: Optional[List[Stmt]] = None
    index_in_parent: int = 0

    @property
    def is_loop(self) -> bool:
        return self.loop is not None

    @property
    def has_if_inside(self) -> bool:
        return self.loop is not None and contains_if(self.loop)

    def describe(self) -> str:
        if self.loop is None:
            return f"serial segment ({len(self.stmts)} stmts)"
        kind = "doall" if self.loop.is_parallel else "do"
        label = f" [{self.loop.label}]" if self.loop.label else ""
        return f"{kind} {self.loop.var}{label}"


def collect_lscs(body: List[Stmt]) -> List[LSC]:
    """Partition a procedure body into inner loops and serial segments.

    Straight-line runs of non-loop statements become serial-segment
    LSCs; loops are recursed into until an innermost loop is found.

    ``body`` must be the *actual* statement list (not a copy): each LSC's
    ``parent_body`` aliases it so schedulers can insert statements.
    """
    out: List[LSC] = []
    _collect(body, [], False, out)
    return out


def _collect(body: List[Stmt], loop_stack: List[Loop], in_if: bool, out: List[LSC]) -> None:
    run: List[Stmt] = []
    run_start = 0

    def flush(end_index: int) -> None:
        nonlocal run
        if run:
            out.append(LSC(loop=None, stmts=list(run), enclosing_loops=list(loop_stack),
                           in_if_branch=in_if, parent_body=body, index_in_parent=run_start))
            run = []

    for idx, stmt in enumerate(body):
        if isinstance(stmt, Loop):
            flush(idx)
            if is_innermost(stmt):
                out.append(LSC(loop=stmt, stmts=stmt.body, enclosing_loops=list(loop_stack),
                               in_if_branch=in_if, parent_body=body, index_in_parent=idx))
            else:
                loop_stack.append(stmt)
                _collect(stmt.body, loop_stack, in_if, out)
                loop_stack.pop()
        elif isinstance(stmt, If):
            flush(idx)
            _collect(stmt.then_body, loop_stack, True, out)
            _collect(stmt.else_body, loop_stack, True, out)
        else:
            if not run:
                run_start = idx
            run.append(stmt)
    flush(len(body))


def enclosing_loop_vars(lsc: LSC) -> List[str]:
    """Induction variables visible inside the LSC, outermost first."""
    names = [l.var for l in lsc.enclosing_loops]
    if lsc.loop is not None:
        names.append(lsc.loop.var)
    return names


__all__ = [
    "LSC", "collect_lscs", "static_trip_count", "has_static_bounds",
    "is_innermost", "inner_loops", "contains_if", "contains_call",
    "loop_nest_of", "enclosing_loop_vars",
]
