"""Fluent builder API for constructing IR programs in Python.

The workloads package builds MXM/VPENTA/TOMCATV/SWIM through this API;
the examples show it as the primary user-facing way to feed a program to
the CCDP compiler.  Usage::

    b = ProgramBuilder("mxm")
    b.shared("a", (n, n))
    b.shared("b", (n, n))
    b.shared("c", (n, n))
    with b.proc("main"):
        with b.doall("j", 1, n):
            with b.do("i", 1, n):
                with b.do("k", 1, n):
                    b.assign(b.ref("c", "i", "j"),
                             b.ref("c", "i", "j") + b.ref("a", "i", "k") * b.ref("b", "k", "j"))
    program = b.finish()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from .arrays import ArrayDecl, DistKind, Distribution, REPLICATED
from .dtypes import DType, INT, REAL
from .expr import (ArrayRef, BinOp, Expr, IntrinsicCall, SymConst, VarRef,
                   as_expr)
from .program import Procedure, Program, ScalarDecl
from .stmt import Assign, CallStmt, If, Loop, LoopKind, ScheduleKind, Stmt


class E:
    """Operator-overloading wrapper so builder code reads like Fortran."""

    __slots__ = ("node",)

    def __init__(self, node) -> None:
        if isinstance(node, E):
            node = node.node
        self.node = as_expr(node)

    def _wrap(self, op: str, other, swap: bool = False) -> "E":
        left, right = (E(other).node, self.node) if swap else (self.node, E(other).node)
        return E(BinOp(op, left, right))

    def __add__(self, o): return self._wrap("+", o)
    def __radd__(self, o): return self._wrap("+", o, swap=True)
    def __sub__(self, o): return self._wrap("-", o)
    def __rsub__(self, o): return self._wrap("-", o, swap=True)
    def __mul__(self, o): return self._wrap("*", o)
    def __rmul__(self, o): return self._wrap("*", o, swap=True)
    def __truediv__(self, o): return self._wrap("/", o)
    def __rtruediv__(self, o): return self._wrap("/", o, swap=True)
    def __pow__(self, o): return self._wrap("**", o)
    def __neg__(self): return E(BinOp("-", as_expr(0), self.node))
    def __lt__(self, o): return self._wrap("<", o)
    def __le__(self, o): return self._wrap("<=", o)
    def __gt__(self, o): return self._wrap(">", o)
    def __ge__(self, o): return self._wrap(">=", o)
    def eq(self, o): return self._wrap("==", o)
    def ne(self, o): return self._wrap("!=", o)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"E({self.node!r})"


def unwrap(value) -> Expr:
    return value.node if isinstance(value, E) else as_expr(value)


def sqrt(x) -> E:
    return E(IntrinsicCall("sqrt", [unwrap(x)]))


def abs_(x) -> E:
    return E(IntrinsicCall("abs", [unwrap(x)]))


def fmin(a, b) -> E:
    return E(IntrinsicCall("min", [unwrap(a), unwrap(b)]))


def fmax(a, b) -> E:
    return E(IntrinsicCall("max", [unwrap(a), unwrap(b)]))


class ProgramBuilder:
    """Builds a :class:`~repro.ir.program.Program` with nested `with`
    blocks for loops/ifs/procedures."""

    def __init__(self, name: str = "main") -> None:
        self.program = Program(name)
        self._body_stack: List[List[Stmt]] = []
        self._current_proc: Optional[Procedure] = None

    # -- declarations -----------------------------------------------------
    def shared(self, name: str, shape: Sequence[int], dtype: DType = REAL,
               dist_axis: int = -1, dist_kind: str = DistKind.BLOCK) -> ArrayDecl:
        """Declare a shared (distributed) array; default BLOCK on last axis
        as in the paper's case studies."""
        decl = ArrayDecl(name, tuple(shape), dtype, Distribution(dist_kind, dist_axis))
        return self.program.declare_array(decl)

    def private(self, name: str, shape: Sequence[int], dtype: DType = REAL) -> ArrayDecl:
        decl = ArrayDecl(name, tuple(shape), dtype, REPLICATED)
        return self.program.declare_array(decl)

    def scalar(self, name: str, dtype: DType = REAL, init: Optional[float] = None) -> ScalarDecl:
        return self.program.declare_scalar(ScalarDecl(name, dtype, init))

    def sym(self, name: str, value: Optional[int] = None) -> E:
        """A symbolic constant (compile-time-unknown size); optionally bind
        its runtime value immediately."""
        if value is not None:
            self.program.bind(**{name: value})
        return E(SymConst(name))

    # -- structure ----------------------------------------------------------
    @contextmanager
    def proc(self, name: str, params: Tuple[str, ...] = ()) -> Iterator[None]:
        if self._current_proc is not None:
            raise RuntimeError("procedures cannot nest")
        proc = Procedure(name, [], params)
        self._current_proc = proc
        self._body_stack.append(proc.body)
        try:
            yield
        finally:
            self._body_stack.pop()
            self._current_proc = None
            self.program.add_procedure(proc)

    @property
    def _body(self) -> List[Stmt]:
        if not self._body_stack:
            raise RuntimeError("statement emitted outside a procedure")
        return self._body_stack[-1]

    def emit(self, stmt: Stmt) -> Stmt:
        self._body.append(stmt)
        return stmt

    @contextmanager
    def do(self, var: str, lower, upper, step=1, label: str = "") -> Iterator[Loop]:
        loop = Loop(var, unwrap(lower), unwrap(upper), unwrap(step),
                    kind=LoopKind.SERIAL, label=label)
        self.emit(loop)
        self._body_stack.append(loop.body)
        try:
            yield loop
        finally:
            self._body_stack.pop()

    @contextmanager
    def doall(self, var: str, lower, upper, step=1,
              schedule: str = ScheduleKind.STATIC_BLOCK, label: str = "",
              align: str = "") -> Iterator[Loop]:
        loop = Loop(var, unwrap(lower), unwrap(upper), unwrap(step),
                    kind=LoopKind.DOALL, schedule=schedule, label=label,
                    align=align)
        self.emit(loop)
        self._body_stack.append(loop.body)
        try:
            yield loop
        finally:
            self._body_stack.pop()

    @contextmanager
    def if_(self, cond) -> Iterator[If]:
        node = If(unwrap(cond), [])
        self.emit(node)
        self._body_stack.append(node.then_body)
        try:
            yield node
        finally:
            self._body_stack.pop()

    @contextmanager
    def else_(self, if_node: If) -> Iterator[None]:
        self._body_stack.append(if_node.else_body)
        try:
            yield
        finally:
            self._body_stack.pop()

    # -- leaf statements ------------------------------------------------------
    def ref(self, array: str, *subscripts) -> E:
        return E(ArrayRef(array, [unwrap(s) for s in subscripts]))

    def var(self, name: str) -> E:
        return E(VarRef(name))

    def assign(self, lhs, rhs) -> Assign:
        target = unwrap(lhs)
        if not isinstance(target, (ArrayRef, VarRef)):
            raise TypeError("assignment target must be an array or scalar reference")
        return self.emit(Assign(target, unwrap(rhs)))  # type: ignore[return-value]

    def call(self, name: str, *args) -> CallStmt:
        return self.emit(CallStmt(name, [unwrap(a) for a in args]))  # type: ignore[return-value]

    # -- finish -----------------------------------------------------------------
    def finish(self, entry: str = "main") -> Program:
        if entry not in self.program.procedures:
            raise ValueError(f"entry procedure {entry!r} was never defined")
        self.program.entry = entry
        from .validate import validate_program
        validate_program(self.program)
        return self.program


__all__ = ["ProgramBuilder", "E", "unwrap", "sqrt", "abs_", "fmin", "fmax"]
