"""Generic traversal, substitution and rewriting over the IR.

These utilities are deliberately structural (no per-pass visitor
classes): passes compose small functions over ``walk()`` streams, and
rewrites rebuild expression trees functionally while statement bodies
are edited in place through :func:`rewrite_body`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .expr import (ArrayRef, BinOp, Expr, FloatConst, IntConst, IntrinsicCall,
                   SymConst, UnaryOp, VarRef)
from .stmt import Stmt


# ---------------------------------------------------------------------------
# Expression rewriting
# ---------------------------------------------------------------------------

def map_expr(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Bottom-up rewrite: children are rewritten first, then ``fn`` is
    offered the rebuilt node; returning ``None`` keeps it."""
    rebuilt = _rebuild(expr, [map_expr(c, fn) for c in expr.children()])
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


def _rebuild(expr: Expr, children: Sequence[Expr]) -> Expr:
    if not children:
        return expr
    if isinstance(expr, ArrayRef):
        fresh = ArrayRef(expr.array, list(children), expr.mode)
    elif isinstance(expr, BinOp):
        fresh = BinOp(expr.op, children[0], children[1])
    elif isinstance(expr, UnaryOp):
        fresh = UnaryOp(expr.op, children[0])
    elif isinstance(expr, IntrinsicCall):
        fresh = IntrinsicCall(expr.name, list(children))
    else:  # pragma: no cover - leaf nodes have no children
        raise TypeError(f"cannot rebuild {type(expr).__name__}")
    fresh.origin = expr.origin if expr.origin is not None else expr.uid
    return fresh


def substitute(expr: Expr, bindings: Dict[str, Expr]) -> Expr:
    """Replace free scalar variables by expressions (used by loop
    transformations, e.g. software pipelining substitutes ``i -> i+d``)."""

    def repl(node: Expr) -> Optional[Expr]:
        if isinstance(node, VarRef) and node.name in bindings:
            return bindings[node.name].clone()
        return None

    return map_expr(expr, repl)


def substitute_in_stmt(stmt: Stmt, bindings: Dict[str, Expr]) -> Stmt:
    """Clone ``stmt`` with variable substitutions applied to every
    expression (bodies included)."""
    fresh = stmt.clone()
    _substitute_inplace(fresh, bindings)
    return fresh


def _substitute_inplace(stmt: Stmt, bindings: Dict[str, Expr]) -> None:
    for attr in _expr_attrs(stmt):
        value = getattr(stmt, attr)
        if isinstance(value, list):
            setattr(stmt, attr, [substitute(v, bindings) for v in value])
        else:
            setattr(stmt, attr, substitute(value, bindings))
    for body in stmt.bodies():
        for child in body:
            _substitute_inplace(child, bindings)


def _expr_attrs(stmt: Stmt) -> List[str]:
    """Names of attributes on ``stmt`` holding Expr or list-of-Expr."""
    out = []
    for attr in getattr(type(stmt), "__slots__", ()):
        value = getattr(stmt, attr, None)
        if isinstance(value, Expr):
            out.append(attr)
        elif isinstance(value, list) and value and isinstance(value[0], Expr):
            out.append(attr)
    return out


# ---------------------------------------------------------------------------
# Constant folding / evaluation
# ---------------------------------------------------------------------------

_FOLD_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
    "mod": lambda a, b: a % b,
    "min": min,
    "max": max,
}


def const_int_value(expr: Expr, symbols: Optional[Dict[str, int]] = None) -> Optional[int]:
    """Evaluate an integer expression to a Python int if possible.

    ``symbols`` optionally resolves :class:`SymConst`; without it,
    symbolic sizes make the result ``None`` (compile-time unknown), which
    is exactly the distinction the paper's scheduling algorithm needs.
    """
    if isinstance(expr, IntConst):
        return expr.value
    if isinstance(expr, SymConst):
        if symbols is not None and expr.name in symbols:
            return int(symbols[expr.name])
        return None
    if isinstance(expr, UnaryOp):
        v = const_int_value(expr.operand, symbols)
        if v is None:
            return None
        return -v if expr.op == "-" else v
    if isinstance(expr, IntrinsicCall) and expr.name in ("min", "max", "mod", "int"):
        values = [const_int_value(a, symbols) for a in expr.args]
        if any(v is None for v in values):
            return None
        if expr.name == "min":
            return min(values)  # type: ignore[type-var]
        if expr.name == "max":
            return max(values)  # type: ignore[type-var]
        if expr.name == "mod":
            return values[0] % values[1] if values[1] else None  # type: ignore[operator]
        return values[0]
    if isinstance(expr, BinOp) and expr.op in _FOLD_OPS:
        left = const_int_value(expr.left, symbols)
        right = const_int_value(expr.right, symbols)
        if left is None or right is None:
            return None
        if expr.op == "/" and right != 0 and left % right != 0:
            return left // right
        if expr.op in ("/", "mod") and right == 0:
            return None
        return int(_FOLD_OPS[expr.op](left, right))
    return None


# ---------------------------------------------------------------------------
# Statement-body rewriting
# ---------------------------------------------------------------------------

def rewrite_body(body: List[Stmt], fn: Callable[[Stmt], Optional[List[Stmt]]]) -> List[Stmt]:
    """Rewrite a statement list recursively (post-order on bodies).

    ``fn`` maps a statement to a replacement list (possibly empty, to
    delete) or ``None`` to keep it unchanged.  Nested bodies are
    rewritten in place first.
    """
    out: List[Stmt] = []
    for stmt in body:
        for nested in stmt.bodies():
            nested[:] = rewrite_body(list(nested), fn)
        replacement = fn(stmt)
        if replacement is None:
            out.append(stmt)
        else:
            out.extend(replacement)
    return out


def find_statements(body: Iterable[Stmt], predicate: Callable[[Stmt], bool]) -> List[Stmt]:
    out = []
    for stmt in body:
        for node in stmt.walk():
            if predicate(node):
                out.append(node)
    return out


def parent_map(body: Iterable[Stmt]) -> Dict[int, Stmt]:
    """Map each nested statement uid to its enclosing statement."""
    parents: Dict[int, Stmt] = {}

    def visit(stmt: Stmt) -> None:
        for nested in stmt.bodies():
            for child in nested:
                parents[child.uid] = stmt
                visit(child)

    for stmt in body:
        visit(stmt)
    return parents


__all__ = [
    "map_expr", "substitute", "substitute_in_stmt", "const_int_value",
    "rewrite_body", "find_statements", "parent_map",
]
