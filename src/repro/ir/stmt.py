"""Statement nodes of the parallel IR.

The statement language mirrors the subset of CRAFT Fortran the paper's
case studies use: assignments over distributed arrays, serial ``DO``
loops, parallel ``DOALL`` loops (static or dynamic iteration
scheduling), ``IF`` statements, and procedure calls.  CCDP code
generation extends the language with explicit cache-management
operations (:class:`PrefetchLine`, :class:`PrefetchVector`,
:class:`InvalidateLines`) that the runtime executes against the machine
model.

Statement bodies are plain Python lists; :mod:`repro.ir.visitor`
provides the traversal and rewriting machinery.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from .expr import ArrayRef, Expr, IntConst, VarRef, as_expr

_uid_counter = itertools.count(1)


class LoopKind:
    """Loop flavours distinguished by the scheduling algorithm (Fig. 2)."""

    SERIAL = "serial"    #: ordinary DO loop, executed by one task
    DOALL = "doall"      #: parallel loop; iterations have no dependences


class ScheduleKind:
    """Iteration-scheduling policy of a DOALL loop."""

    STATIC_BLOCK = "static_block"    #: contiguous chunks, PE p gets chunk p
    STATIC_CYCLIC = "static_cyclic"  #: round-robin iterations
    DYNAMIC = "dynamic"              #: self-scheduled at run time


class Stmt:
    """Base class of all statements."""

    __slots__ = ("uid", "origin")

    def __init__(self) -> None:
        self.uid: int = next(_uid_counter)
        self.origin: Optional[int] = None

    def _stamp(self, fresh: "Stmt") -> "Stmt":
        fresh.origin = self.origin if self.origin is not None else self.uid
        return fresh

    # Every subclass provides expressions() (direct child expressions) and
    # bodies() (lists of nested statements) so generic walkers work.
    def expressions(self) -> Sequence[Expr]:
        return ()

    def bodies(self) -> Sequence[List["Stmt"]]:
        return ()

    def clone(self) -> "Stmt":
        raise NotImplementedError

    def walk(self) -> Iterator["Stmt"]:
        """Yield this statement and all nested statements, pre-order."""
        yield self
        for body in self.bodies():
            for stmt in body:
                yield from stmt.walk()

    def walk_exprs(self) -> Iterator[Expr]:
        for stmt in self.walk():
            for expr in stmt.expressions():
                yield from expr.walk()

    def array_refs(self) -> Iterator[ArrayRef]:
        for expr in self.walk_exprs():
            if isinstance(expr, ArrayRef):
                yield expr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        from .printer import format_stmt

        return format_stmt(self).rstrip()


def clone_body(body: Sequence[Stmt]) -> List[Stmt]:
    return [s.clone() for s in body]


class Assign(Stmt):
    """``lhs = rhs``.  ``lhs`` is an :class:`ArrayRef` (store) or a
    :class:`VarRef` (scalar definition)."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs, rhs) -> None:
        super().__init__()
        if not isinstance(lhs, (ArrayRef, VarRef)):
            raise TypeError(f"assignment target must be ArrayRef or VarRef, got {type(lhs).__name__}")
        self.lhs = lhs
        self.rhs = as_expr(rhs)

    def expressions(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def clone(self) -> "Assign":
        return self._stamp(Assign(self.lhs.clone(), self.rhs.clone()))  # type: ignore[return-value]


class Loop(Stmt):
    """A counted loop ``do var = lower, upper [, step]``.

    ``kind`` selects serial vs DOALL; ``schedule`` applies to DOALL loops
    only.  Bounds may be constants, scalars, or :class:`SymConst`; the
    paper's scheduling algorithm branches on whether the trip count is a
    compile-time constant (:meth:`repro.ir.loop.static_trip_count`).

    DOALL loops additionally carry a ``preamble``: statements each PE
    executes once per epoch *before* its iterations, with the pseudo
    variables ``__lo_<var>``, ``__hi_<var>`` and ``__cnt_<var>`` bound to
    the PE's iteration chunk.  CCDP vector prefetch generation hoists
    per-PE block prefetches there.

    ``align`` names a shared array whose distributed axis defines the
    iteration-to-PE mapping (owner-computes, CRAFT ``doshared``-style):
    iteration ``v`` executes on the PE owning index ``v`` of that axis.
    Without it, STATIC_BLOCK chunks the loop's own range evenly.
    """

    __slots__ = ("var", "lower", "upper", "step", "body", "kind", "schedule",
                 "label", "preamble", "align")

    def __init__(self, var: str, lower, upper, step=1, body: Optional[Sequence[Stmt]] = None,
                 kind: str = LoopKind.SERIAL, schedule: str = ScheduleKind.STATIC_BLOCK,
                 label: str = "", preamble: Optional[Sequence[Stmt]] = None,
                 align: str = "") -> None:
        super().__init__()
        self.var = var
        self.lower = as_expr(lower)
        self.upper = as_expr(upper)
        self.step = as_expr(step)
        self.body: List[Stmt] = list(body or [])
        if kind not in (LoopKind.SERIAL, LoopKind.DOALL):
            raise ValueError(f"unknown loop kind {kind!r}")
        if schedule not in (ScheduleKind.STATIC_BLOCK, ScheduleKind.STATIC_CYCLIC, ScheduleKind.DYNAMIC):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.kind = kind
        self.schedule = schedule
        self.label = label
        self.preamble: List[Stmt] = list(preamble or [])
        if self.preamble and kind != LoopKind.DOALL:
            raise ValueError("only DOALL loops may carry a preamble")
        self.align = align
        if align and kind != LoopKind.DOALL:
            raise ValueError("only DOALL loops may be owner-aligned")

    @property
    def is_parallel(self) -> bool:
        return self.kind == LoopKind.DOALL

    def chunk_vars(self) -> Tuple[str, str, str]:
        """Names of the per-PE chunk pseudo-variables visible in the
        preamble: (lower, upper, count)."""
        return (f"__lo_{self.var}", f"__hi_{self.var}", f"__cnt_{self.var}")

    def expressions(self) -> Sequence[Expr]:
        return (self.lower, self.upper, self.step)

    def bodies(self) -> Sequence[List[Stmt]]:
        if self.preamble:
            return (self.preamble, self.body)
        return (self.body,)

    def clone(self) -> "Loop":
        fresh = Loop(self.var, self.lower.clone(), self.upper.clone(), self.step.clone(),
                     clone_body(self.body), self.kind, self.schedule, self.label,
                     clone_body(self.preamble), self.align)
        return self._stamp(fresh)  # type: ignore[return-value]


class If(Stmt):
    """``if cond then ... [else ...] end if``."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond, then_body: Sequence[Stmt], else_body: Optional[Sequence[Stmt]] = None) -> None:
        super().__init__()
        self.cond = as_expr(cond)
        self.then_body: List[Stmt] = list(then_body)
        self.else_body: List[Stmt] = list(else_body or [])

    def expressions(self) -> Sequence[Expr]:
        return (self.cond,)

    def bodies(self) -> Sequence[List[Stmt]]:
        return (self.then_body, self.else_body)

    def clone(self) -> "If":
        fresh = If(self.cond.clone(), clone_body(self.then_body), clone_body(self.else_body))
        return self._stamp(fresh)  # type: ignore[return-value]


class CallStmt(Stmt):
    """Call of a user procedure, by name.  Arguments are expressions;
    array arguments are passed by name (whole-array aliasing), matching
    how the paper's interprocedural analysis summarises callees."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr] = ()) -> None:
        super().__init__()
        self.name = name
        self.args = [as_expr(a) for a in args]

    def expressions(self) -> Sequence[Expr]:
        return tuple(self.args)

    def clone(self) -> "CallStmt":
        return self._stamp(CallStmt(self.name, [a.clone() for a in self.args]))  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Cache-management statements inserted by CCDP code generation.
# ---------------------------------------------------------------------------

class PrefetchLine(Stmt):
    """Prefetch the cache line containing ``ref`` into this PE's prefetch
    queue.  ``invalidate_first`` encodes the paper's correctness rule: on
    hardware without in-flight masking, the stale cached line must be
    invalidated *before* the prefetch is issued."""

    __slots__ = ("ref", "invalidate_first", "for_uid", "distance")

    def __init__(self, ref: ArrayRef, invalidate_first: bool = True,
                 for_uid: Optional[int] = None, distance: int = 0) -> None:
        super().__init__()
        self.ref = ref
        self.invalidate_first = invalidate_first
        self.for_uid = for_uid      #: uid of the reference occurrence served
        self.distance = distance    #: software-pipelining lookahead, iterations

    def expressions(self) -> Sequence[Expr]:
        return (self.ref,)

    def clone(self) -> "PrefetchLine":
        fresh = PrefetchLine(self.ref.clone(), self.invalidate_first, self.for_uid, self.distance)
        return self._stamp(fresh)  # type: ignore[return-value]


class PrefetchVector(Stmt):
    """Vector prefetch: fetch ``length`` elements of ``array`` starting at
    the element addressed by ``start_subscripts``, walking dimension
    ``axis`` with ``stride`` elements per step (the SHMEM ``shmem_get``
    analogue on the T3D).  Lines are installed in the cache when the
    transfer completes."""

    __slots__ = ("array", "start_subscripts", "axis", "stride", "length", "invalidate_first", "for_uid")

    def __init__(self, array: str, start_subscripts: Sequence[Expr], axis: int,
                 length, stride=1, invalidate_first: bool = True,
                 for_uid: Optional[int] = None) -> None:
        super().__init__()
        self.array = array
        self.start_subscripts = [as_expr(s) for s in start_subscripts]
        self.axis = axis
        self.stride = as_expr(stride)
        self.length = as_expr(length)
        self.invalidate_first = invalidate_first
        self.for_uid = for_uid

    def expressions(self) -> Sequence[Expr]:
        return tuple(self.start_subscripts) + (self.stride, self.length)

    def clone(self) -> "PrefetchVector":
        fresh = PrefetchVector(self.array, [s.clone() for s in self.start_subscripts],
                               self.axis, self.length.clone(), self.stride.clone(),
                               self.invalidate_first, self.for_uid)
        return self._stamp(fresh)  # type: ignore[return-value]


class InvalidateLines(Stmt):
    """Invalidate the cache lines covering ``length`` elements of
    ``array`` along ``axis`` from ``start_subscripts`` (used when a
    potentially-stale region will be re-read through normal loads)."""

    __slots__ = ("array", "start_subscripts", "axis", "length")

    def __init__(self, array: str, start_subscripts: Sequence[Expr], axis: int, length) -> None:
        super().__init__()
        self.array = array
        self.start_subscripts = [as_expr(s) for s in start_subscripts]
        self.axis = axis
        self.length = as_expr(length)

    def expressions(self) -> Sequence[Expr]:
        return tuple(self.start_subscripts) + (self.length,)

    def clone(self) -> "InvalidateLines":
        fresh = InvalidateLines(self.array, [s.clone() for s in self.start_subscripts],
                                self.axis, self.length.clone())
        return self._stamp(fresh)  # type: ignore[return-value]


PREFETCH_STMTS = (PrefetchLine, PrefetchVector)

__all__ = [
    "Stmt", "Assign", "Loop", "If", "CallStmt",
    "PrefetchLine", "PrefetchVector", "InvalidateLines",
    "LoopKind", "ScheduleKind", "clone_body", "PREFETCH_STMTS",
]
