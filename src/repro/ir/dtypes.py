"""Scalar data types for the parallel IR.

The CCDP compiler reasons about addresses in *bytes* and *words* (the Cray
T3D prefetch unit is one 64-bit word), so every type carries its storage
size.  The paper's kernels are Fortran floating-point codes; we also keep
integer types for subscript/induction arithmetic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Size of one machine word in bytes (T3D: 64-bit Alpha words).
WORD_BYTES = 8


class _Kind(enum.Enum):
    INT = "integer"
    REAL = "real"
    LOGICAL = "logical"


@dataclass(frozen=True)
class DType:
    """An IR scalar type with a fixed storage size.

    Attributes
    ----------
    kind:
        One of ``integer``, ``real``, ``logical`` (Fortran-flavoured).
    size:
        Storage size in bytes.
    """

    kind: _Kind
    size: int

    @property
    def name(self) -> str:
        return f"{self.kind.value}*{self.size}"

    @property
    def words(self) -> float:
        """Storage size expressed in 64-bit words (may be fractional)."""
        return self.size / WORD_BYTES

    def is_real(self) -> bool:
        return self.kind is _Kind.REAL

    def is_integer(self) -> bool:
        return self.kind is _Kind.INT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: 64-bit float — the element type of every shared matrix in the paper.
REAL = DType(_Kind.REAL, 8)
#: 32-bit float, for completeness (CRAFT supported real*4).
REAL4 = DType(_Kind.REAL, 4)
#: 64-bit integer (T3D native).
INT = DType(_Kind.INT, 8)
#: logical/boolean.
LOGICAL = DType(_Kind.LOGICAL, 8)

_BY_NAME = {t.name: t for t in (REAL, REAL4, INT, LOGICAL)}
_BY_NAME.update({"real": REAL, "integer": INT, "logical": LOGICAL})


def dtype_from_name(name: str) -> DType:
    """Look up a type by Fortran-ish name (``real``, ``integer*8`` ...)."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown dtype name: {name!r}") from exc


__all__ = ["DType", "REAL", "REAL4", "INT", "LOGICAL", "WORD_BYTES", "dtype_from_name"]
