"""Array declarations and data distributions.

The paper distributes each shared matrix across the PEs' local memories
with a BLOCK distribution (columns of the matrices, i.e. the last
dimension of a column-major Fortran array) so that a PE's portion is
contiguous.  Private (replicated) arrays and scalars live in every PE's
local memory and never participate in coherence.

Arrays use Fortran conventions: **column-major** storage and **1-based**
subscripts.  Every array is aligned to a cache-line boundary, which the
paper requires for the prefetch-target mapping calculations to be exact
("the arrays should be stored starting at the beginning of a cache
line ... enforced by specifying a compiler option").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .dtypes import DType, REAL


class DistKind:
    BLOCK = "block"            #: contiguous chunks of one axis across PEs
    CYCLIC = "cyclic"          #: round-robin elements of one axis across PEs
    REPLICATED = "replicated"  #: private copy on every PE (not shared)


@dataclass(frozen=True)
class Distribution:
    """How one array is laid out across PEs.

    ``axis`` is the distributed dimension (0-based); ignored for
    REPLICATED.  The default matches the paper: BLOCK on the last axis.
    """

    kind: str = DistKind.BLOCK
    axis: int = -1

    def __post_init__(self) -> None:
        if self.kind not in (DistKind.BLOCK, DistKind.CYCLIC, DistKind.REPLICATED):
            raise ValueError(f"unknown distribution kind {self.kind!r}")


BLOCK_LAST = Distribution(DistKind.BLOCK, -1)
REPLICATED = Distribution(DistKind.REPLICATED)


@dataclass
class ArrayDecl:
    """Declaration of an array in the program.

    Attributes
    ----------
    name:
        Unique array name.
    shape:
        Concrete extents per dimension (Fortran: first extent varies
        fastest in memory).
    dtype:
        Element type.
    dist:
        Data distribution.  ``REPLICATED`` arrays are private; anything
        else is shared and participates in coherence.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DType = REAL
    dist: Distribution = field(default_factory=lambda: BLOCK_LAST)

    def __post_init__(self) -> None:
        self.shape = tuple(int(s) for s in self.shape)
        if not self.shape or any(s <= 0 for s in self.shape):
            raise ValueError(f"array {self.name}: invalid shape {self.shape}")
        axis = self.dist.axis
        if self.dist.kind != DistKind.REPLICATED:
            if not (-len(self.shape) <= axis < len(self.shape)):
                raise ValueError(f"array {self.name}: distribution axis {axis} out of range")

    # -- geometry --------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.size

    @property
    def is_shared(self) -> bool:
        return self.dist.kind != DistKind.REPLICATED

    @property
    def dist_axis(self) -> int:
        """Distribution axis normalised to a non-negative index."""
        axis = self.dist.axis
        return axis % self.rank if self.dist.kind != DistKind.REPLICATED else -1

    def strides(self) -> Tuple[int, ...]:
        """Column-major element strides (in elements, not bytes)."""
        strides = []
        acc = 1
        for extent in self.shape:
            strides.append(acc)
            acc *= extent
        return tuple(strides)

    def linear_index(self, indices: Sequence[int]) -> int:
        """0-based linear element offset of 1-based ``indices``."""
        if len(indices) != self.rank:
            raise ValueError(f"array {self.name}: rank {self.rank} ref with {len(indices)} subscripts")
        offset = 0
        for idx, extent, stride in zip(indices, self.shape, self.strides()):
            i0 = int(idx) - 1
            if not (0 <= i0 < extent):
                raise IndexError(f"array {self.name}: subscript {idx} out of bounds 1..{extent}")
            offset += i0 * stride
        return offset

    # -- ownership --------------------------------------------------------
    def block_size(self, n_pes: int) -> int:
        """Elements of the distributed axis owned per PE (BLOCK, ceil)."""
        extent = self.shape[self.dist_axis]
        return -(-extent // n_pes)

    def owner_of_axis_index(self, axis_index_1based: int, n_pes: int) -> int:
        """PE that owns the given 1-based index of the distributed axis."""
        if self.dist.kind == DistKind.REPLICATED:
            raise ValueError(f"array {self.name} is replicated; no single owner")
        i0 = int(axis_index_1based) - 1
        if self.dist.kind == DistKind.BLOCK:
            return min(i0 // self.block_size(n_pes), n_pes - 1)
        return i0 % n_pes  # CYCLIC

    def owner(self, indices: Sequence[int], n_pes: int) -> int:
        """PE owning the element with the given 1-based subscripts."""
        return self.owner_of_axis_index(indices[self.dist_axis], n_pes)

    def owned_axis_range(self, pe: int, n_pes: int) -> Tuple[int, int]:
        """1-based inclusive (lo, hi) of the distributed-axis indices PE
        ``pe`` owns under BLOCK; empty ranges return (1, 0)."""
        if self.dist.kind != DistKind.BLOCK:
            raise ValueError("owned_axis_range is only defined for BLOCK")
        b = self.block_size(n_pes)
        extent = self.shape[self.dist_axis]
        lo = pe * b + 1
        hi = min((pe + 1) * b, extent)
        if pe == n_pes - 1:
            hi = extent
        if lo > extent:
            return (1, 0)
        return (lo, hi)


__all__ = ["ArrayDecl", "Distribution", "DistKind", "BLOCK_LAST", "REPLICATED"]
