"""Programs, procedures and the symbol table.

A :class:`Program` is the compilation unit the CCDP passes and the
runtime consume: a set of array declarations, scalar declarations, one
or more procedures, and a designated entry procedure whose body defines
the program's epoch structure (top-level DOALL loops are parallel
epochs; everything between them is serial).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .arrays import ArrayDecl
from .dtypes import DType, INT, REAL
from .expr import ArrayRef, Expr, SymConst
from .stmt import CallStmt, Loop, Stmt


@dataclass
class ScalarDecl:
    """A scalar variable.  Scalars are private per PE (register-resident
    in the cost model) and are replicated/broadcast at epoch boundaries,
    so they never participate in coherence."""

    name: str
    dtype: DType = REAL
    init: Optional[float] = None


@dataclass
class Procedure:
    """A named procedure.  ``params`` are scalar formal parameters;
    arrays are global (COMMON-style), matching the paper's Fortran
    kernels and keeping interprocedural analysis by-name."""

    name: str
    body: List[Stmt] = field(default_factory=list)
    params: Tuple[str, ...] = ()

    def walk(self) -> Iterator[Stmt]:
        for stmt in self.body:
            yield from stmt.walk()

    def array_refs(self) -> Iterator[ArrayRef]:
        for stmt in self.body:
            yield from stmt.array_refs()

    def clone(self) -> "Procedure":
        return Procedure(self.name, [s.clone() for s in self.body], self.params)


class Program:
    """A whole program: declarations + procedures + entry point.

    ``symbols`` binds :class:`SymConst` names to concrete integer values
    for execution (the compiler still treats them as unknown).
    """

    def __init__(self, name: str = "main") -> None:
        self.name = name
        self.arrays: Dict[str, ArrayDecl] = {}
        self.scalars: Dict[str, ScalarDecl] = {}
        self.procedures: Dict[str, Procedure] = {}
        self.entry: str = "main"
        self.symbols: Dict[str, int] = {}

    # -- declaration helpers ----------------------------------------------
    def declare_array(self, decl: ArrayDecl) -> ArrayDecl:
        if decl.name in self.arrays or decl.name in self.scalars:
            raise ValueError(f"duplicate declaration: {decl.name}")
        self.arrays[decl.name] = decl
        return decl

    def declare_scalar(self, decl: ScalarDecl) -> ScalarDecl:
        if decl.name in self.arrays or decl.name in self.scalars:
            raise ValueError(f"duplicate declaration: {decl.name}")
        self.scalars[decl.name] = decl
        return decl

    def add_procedure(self, proc: Procedure) -> Procedure:
        if proc.name in self.procedures:
            raise ValueError(f"duplicate procedure: {proc.name}")
        self.procedures[proc.name] = proc
        return proc

    def bind(self, **symbols: int) -> "Program":
        """Bind symbolic constants to runtime values."""
        self.symbols.update({k: int(v) for k, v in symbols.items()})
        return self

    # -- access -------------------------------------------------------------
    @property
    def entry_proc(self) -> Procedure:
        try:
            return self.procedures[self.entry]
        except KeyError:
            raise KeyError(f"program has no entry procedure {self.entry!r}") from None

    def array(self, name: str) -> ArrayDecl:
        try:
            return self.arrays[name]
        except KeyError:
            raise KeyError(f"undeclared array {name!r}") from None

    def shared_arrays(self) -> List[ArrayDecl]:
        return [a for a in self.arrays.values() if a.is_shared]

    def sym_value(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"unbound symbolic constant {name!r}") from None

    # -- whole-program traversal --------------------------------------------
    def walk(self) -> Iterator[Stmt]:
        for proc in self.procedures.values():
            yield from proc.walk()

    def walk_entry(self) -> Iterator[Stmt]:
        yield from self.entry_proc.walk()

    def all_array_refs(self) -> Iterator[ArrayRef]:
        for proc in self.procedures.values():
            yield from proc.array_refs()

    def callees(self, proc_name: str) -> List[str]:
        out = []
        for stmt in self.procedures[proc_name].walk():
            if isinstance(stmt, CallStmt):
                out.append(stmt.name)
        return out

    def clone(self) -> "Program":
        """Deep copy — CCDP transformation works on a clone so BASE and
        CCDP variants can be derived from one source program."""
        fresh = Program(self.name)
        fresh.arrays = dict(self.arrays)
        fresh.scalars = dict(self.scalars)
        fresh.procedures = {k: v.clone() for k, v in self.procedures.items()}
        fresh.entry = self.entry
        fresh.symbols = dict(self.symbols)
        return fresh

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Program {self.name}: {len(self.arrays)} arrays, "
                f"{len(self.procedures)} procedures, entry={self.entry}>")


def find_ref_owner_stmt(program: Program, uid: int) -> Optional[Stmt]:
    """Locate the statement containing the expression occurrence ``uid``."""
    for stmt in program.walk():
        for expr in stmt.expressions():
            for node in expr.walk():
                if node.uid == uid:
                    return stmt
    return None


__all__ = ["Program", "Procedure", "ScalarDecl", "find_ref_owner_stmt"]
