"""Parallel intermediate representation for the CCDP compiler.

The IR models the CRAFT-Fortran subset of the paper's case studies:
epoch-structured parallel programs over BLOCK-distributed shared arrays,
with serial ``DO`` and parallel ``DOALL`` loops, plus explicit
cache-management statements inserted by CCDP code generation.
"""

from .arrays import ArrayDecl, Distribution, DistKind, BLOCK_LAST, REPLICATED
from .builder import E, ProgramBuilder, abs_, fmax, fmin, sqrt, unwrap
from .dtypes import DType, INT, LOGICAL, REAL, REAL4, WORD_BYTES, dtype_from_name
from .dsl import ParseError, parse_expr, parse_program
from .expr import (ArrayRef, BinOp, Expr, FloatConst, IntConst, IntrinsicCall,
                   RefMode, SymConst, UnaryOp, VarRef, add, aref, as_expr, div,
                   mul, sub)
from .loops import (LSC, collect_lscs, contains_call, contains_if,
                    enclosing_loop_vars, has_static_bounds, inner_loops,
                    is_innermost, loop_nest_of, static_trip_count)
from .printer import format_expr, format_program, format_stmt
from .program import Procedure, Program, ScalarDecl
from .stmt import (Assign, CallStmt, If, InvalidateLines, Loop, LoopKind,
                   PrefetchLine, PrefetchVector, ScheduleKind, Stmt,
                   clone_body)
from .validate import ValidationError, validate_program
from .visitor import (const_int_value, find_statements, map_expr, parent_map,
                      rewrite_body, substitute, substitute_in_stmt)

__all__ = [
    # arrays / types
    "ArrayDecl", "Distribution", "DistKind", "BLOCK_LAST", "REPLICATED",
    "DType", "INT", "REAL", "REAL4", "LOGICAL", "WORD_BYTES", "dtype_from_name",
    # expressions
    "Expr", "IntConst", "FloatConst", "SymConst", "VarRef", "ArrayRef",
    "BinOp", "UnaryOp", "IntrinsicCall", "RefMode",
    "as_expr", "add", "sub", "mul", "div", "aref",
    # statements
    "Stmt", "Assign", "Loop", "If", "CallStmt",
    "PrefetchLine", "PrefetchVector", "InvalidateLines",
    "LoopKind", "ScheduleKind", "clone_body",
    # program
    "Program", "Procedure", "ScalarDecl",
    # builder / dsl / printer
    "ProgramBuilder", "E", "unwrap", "sqrt", "abs_", "fmin", "fmax",
    "parse_program", "parse_expr", "ParseError",
    "format_expr", "format_stmt", "format_program",
    # traversal / utilities
    "map_expr", "substitute", "substitute_in_stmt", "const_int_value",
    "rewrite_body", "find_statements", "parent_map",
    "LSC", "collect_lscs", "static_trip_count", "has_static_bounds",
    "is_innermost", "inner_loops", "contains_if", "contains_call",
    "loop_nest_of", "enclosing_loop_vars",
    # validation
    "validate_program", "ValidationError",
]
