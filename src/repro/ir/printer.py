"""Pretty-printer: renders IR back to the Fortran-style surface syntax.

The printed form round-trips through :mod:`repro.ir.dsl` for the
DSL-expressible subset, which the test suite exploits as a structural
regression check on transformations.
"""

from __future__ import annotations

from typing import List

from .arrays import ArrayDecl, DistKind
from .expr import (ArrayRef, BinOp, Expr, FloatConst, IntConst, IntrinsicCall,
                   RefMode, SymConst, UnaryOp, VarRef)
from .program import Procedure, Program
from .stmt import (Assign, CallStmt, If, InvalidateLines, Loop, LoopKind,
                   PrefetchLine, PrefetchVector, ScheduleKind, Stmt)

_PRECEDENCE = {
    "or": 1, "and": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "mod": 5,
    "**": 6,
}


def format_expr(expr: Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, IntConst):
        return str(expr.value)
    if isinstance(expr, FloatConst):
        text = repr(expr.value)
        return text if ("." in text or "e" in text or "inf" in text or "nan" in text) else text + ".0"
    if isinstance(expr, SymConst):
        return f"${expr.name}"
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        subs = ", ".join(format_expr(s) for s in expr.subscripts)
        suffix = "@bypass" if expr.mode == RefMode.BYPASS else ""
        return f"{expr.array}({subs}){suffix}"
    if isinstance(expr, UnaryOp):
        inner = format_expr(expr.operand, 7)
        op = "not " if expr.op == "not" else expr.op
        return f"{op}{inner}"
    if isinstance(expr, IntrinsicCall):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return f"{expr.op}({format_expr(expr.left)}, {format_expr(expr.right)})"
        prec = _PRECEDENCE.get(expr.op, 4)
        op = f" {expr.op} " if expr.op in ("and", "or") else f" {expr.op} "
        text = f"{format_expr(expr.left, prec)}{op}{format_expr(expr.right, prec + 1)}"
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"cannot format {type(expr).__name__}")


def format_stmt(stmt: Stmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(stmt, Assign):
        return f"{pad}{format_expr(stmt.lhs)} = {format_expr(stmt.rhs)}\n"
    if isinstance(stmt, Loop):
        head = "doall" if stmt.kind == LoopKind.DOALL else "do"
        sched = ""
        if stmt.kind == LoopKind.DOALL and stmt.schedule != ScheduleKind.STATIC_BLOCK:
            sched = f" schedule({stmt.schedule.replace('static_', '')})"
        label = f" label({stmt.label})" if stmt.label else ""
        align = f" align({stmt.align})" if getattr(stmt, "align", "") else ""
        step = "" if isinstance(stmt.step, IntConst) and stmt.step.value == 1 \
            else f", {format_expr(stmt.step)}"
        lines = [f"{pad}{head} {stmt.var} = {format_expr(stmt.lower)}, "
                 f"{format_expr(stmt.upper)}{step}{sched}{align}{label}\n"]
        if stmt.preamble:
            lines.append(f"{pad}  preamble\n")
            lines += [format_stmt(s, indent + 2) for s in stmt.preamble]
            lines.append(f"{pad}  end preamble\n")
        lines += [format_stmt(s, indent + 1) for s in stmt.body]
        lines.append(f"{pad}end {head}\n")
        return "".join(lines)
    if isinstance(stmt, If):
        lines = [f"{pad}if {format_expr(stmt.cond)} then\n"]
        lines += [format_stmt(s, indent + 1) for s in stmt.then_body]
        if stmt.else_body:
            lines.append(f"{pad}else\n")
            lines += [format_stmt(s, indent + 1) for s in stmt.else_body]
        lines.append(f"{pad}end if\n")
        return "".join(lines)
    if isinstance(stmt, CallStmt):
        args = ", ".join(format_expr(a) for a in stmt.args)
        return f"{pad}call {stmt.name}({args})\n"
    if isinstance(stmt, PrefetchLine):
        dist = f" ahead({stmt.distance})" if stmt.distance else ""
        return f"{pad}prefetch {format_expr(stmt.ref)}{dist}\n"
    if isinstance(stmt, PrefetchVector):
        subs = ", ".join(format_expr(s) for s in stmt.start_subscripts)
        return (f"{pad}vprefetch {stmt.array}({subs}) axis={stmt.axis} "
                f"len={format_expr(stmt.length)} stride={format_expr(stmt.stride)}\n")
    if isinstance(stmt, InvalidateLines):
        subs = ", ".join(format_expr(s) for s in stmt.start_subscripts)
        return (f"{pad}invalidate {stmt.array}({subs}) axis={stmt.axis} "
                f"len={format_expr(stmt.length)}\n")
    raise TypeError(f"cannot format {type(stmt).__name__}")


def format_array_decl(decl: ArrayDecl) -> str:
    shape = ", ".join(str(s) for s in decl.shape)
    if decl.dist.kind == DistKind.REPLICATED:
        dist = "private"
    else:
        dist = f"dist({decl.dist.kind}, axis={decl.dist.axis})"
    return f"shared {decl.dtype.kind.value} {decl.name}({shape}) {dist}" \
        if decl.is_shared else f"{decl.dtype.kind.value} {decl.name}({shape}) {dist}"


def format_procedure(proc: Procedure, indent: int = 0) -> str:
    pad = "  " * indent
    params = f"({', '.join(proc.params)})" if proc.params else ""
    lines = [f"{pad}procedure {proc.name}{params}\n"]
    lines += [format_stmt(s, indent + 1) for s in proc.body]
    lines.append(f"{pad}end procedure\n")
    return "".join(lines)


def format_program(program: Program) -> str:
    lines: List[str] = [f"program {program.name}\n"]
    for decl in program.arrays.values():
        lines.append(f"  {format_array_decl(decl)}\n")
    for scalar in program.scalars.values():
        init = f" = {scalar.init}" if scalar.init is not None else ""
        lines.append(f"  {scalar.dtype.kind.value} {scalar.name}{init}\n")
    for name, proc in program.procedures.items():
        if name == program.entry:
            continue
        lines.append("\n")
        lines.append(format_procedure(proc, 1))
    lines.append("\n")
    lines.append(format_procedure(program.entry_proc, 1))
    lines.append("end program\n")
    return "".join(lines)


__all__ = ["format_expr", "format_stmt", "format_procedure", "format_program",
           "format_array_decl"]
