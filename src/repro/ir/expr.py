"""Expression nodes of the parallel IR.

Expressions are small mutable trees.  Node *identity* matters: the CCDP
passes annotate and track individual reference **occurrences** (two
textually identical ``A(i, j)`` nodes in different statements are distinct
prefetch candidates), so ``__eq__`` is identity-based and structural
comparison goes through :meth:`Expr.key`.

Every node carries a unique ``uid`` so analyses can refer to occurrences
stably across printing/reporting; clones receive fresh uids but remember
the uid they were cloned from in ``origin``.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence

from .dtypes import DType, INT, REAL

_uid_counter = itertools.count(1)


class RefMode:
    """How the runtime must service an :class:`ArrayRef` read.

    ``NORMAL``  — ordinary cached access.
    ``BYPASS``  — read main memory directly, do not consult or fill the
                  cache (the paper's *bypass-cache fetch*, used for
                  potentially-stale references that are not worth
                  prefetching and as the fallback for dropped prefetches).
    """

    NORMAL = "normal"
    BYPASS = "bypass"


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ("uid", "origin")

    def __init__(self) -> None:
        self.uid: int = next(_uid_counter)
        self.origin: Optional[int] = None

    # -- structure -----------------------------------------------------
    def children(self) -> Sequence["Expr"]:
        return ()

    def key(self) -> tuple:
        """A hashable structural fingerprint (ignores uid/annotations)."""
        raise NotImplementedError

    def clone(self) -> "Expr":
        raise NotImplementedError

    def _stamp(self, fresh: "Expr") -> "Expr":
        fresh.origin = self.origin if self.origin is not None else self.uid
        return fresh

    # -- traversal helpers ----------------------------------------------
    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def array_refs(self) -> Iterator["ArrayRef"]:
        for node in self.walk():
            if isinstance(node, ArrayRef):
                yield node

    def free_vars(self) -> set:
        return {node.name for node in self.walk() if isinstance(node, VarRef)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        from .printer import format_expr

        return format_expr(self)


class IntConst(Expr):
    """Integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        super().__init__()
        self.value = int(value)

    def key(self) -> tuple:
        return ("int", self.value)

    def clone(self) -> "IntConst":
        return self._stamp(IntConst(self.value))  # type: ignore[return-value]


class FloatConst(Expr):
    """Floating-point literal."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        super().__init__()
        self.value = float(value)

    def key(self) -> tuple:
        return ("float", self.value)

    def clone(self) -> "FloatConst":
        return self._stamp(FloatConst(self.value))  # type: ignore[return-value]


class SymConst(Expr):
    """A compile-time-unknown but loop-invariant integer (e.g. problem size
    read at run time).  Stale/locality analyses treat it symbolically; the
    scheduler treats loops bounded by a :class:`SymConst` as *unknown
    bounds* (case distinctions in the paper's Fig. 2)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def key(self) -> tuple:
        return ("sym", self.name)

    def clone(self) -> "SymConst":
        return self._stamp(SymConst(self.name))  # type: ignore[return-value]


class VarRef(Expr):
    """Reference to a scalar variable (induction variables included)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def key(self) -> tuple:
        return ("var", self.name)

    def clone(self) -> "VarRef":
        return self._stamp(VarRef(self.name))  # type: ignore[return-value]


class ArrayRef(Expr):
    """A subscripted array reference ``A(e1, e2, ...)``.

    Used both as an rvalue (load) and, as the ``lhs`` of an assignment,
    an lvalue (store).  ``mode`` is a runtime service annotation set by
    CCDP code generation (see :class:`RefMode`).
    """

    __slots__ = ("array", "subscripts", "mode")

    def __init__(self, array: str, subscripts: Sequence[Expr], mode: str = RefMode.NORMAL) -> None:
        super().__init__()
        self.array = array
        self.subscripts = list(subscripts)
        self.mode = mode

    def children(self) -> Sequence[Expr]:
        return tuple(self.subscripts)

    def key(self) -> tuple:
        return ("aref", self.array, tuple(s.key() for s in self.subscripts))

    def clone(self) -> "ArrayRef":
        fresh = ArrayRef(self.array, [s.clone() for s in self.subscripts], self.mode)
        return self._stamp(fresh)  # type: ignore[return-value]

    @property
    def rank(self) -> int:
        return len(self.subscripts)


_BINOPS = {"+", "-", "*", "/", "**", "min", "max",
           "<", "<=", ">", ">=", "==", "!=", "and", "or", "mod"}


class BinOp(Expr):
    """Binary operation.  Comparison and logical operators produce
    logical values used in ``If`` conditions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        super().__init__()
        if op not in _BINOPS:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def key(self) -> tuple:
        return ("bin", self.op, self.left.key(), self.right.key())

    def clone(self) -> "BinOp":
        return self._stamp(BinOp(self.op, self.left.clone(), self.right.clone()))  # type: ignore[return-value]


class UnaryOp(Expr):
    """Unary negation / logical not."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr) -> None:
        super().__init__()
        if op not in {"-", "not", "+"}:
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def key(self) -> tuple:
        return ("un", self.op, self.operand.key())

    def clone(self) -> "UnaryOp":
        return self._stamp(UnaryOp(self.op, self.operand.clone()))  # type: ignore[return-value]


#: Intrinsics the interpreter understands, mapped to their arity.
INTRINSICS = {
    "sqrt": 1, "abs": 1, "exp": 1, "log": 1, "sin": 1, "cos": 1,
    "min": 2, "max": 2, "mod": 2, "int": 1, "real": 1, "sign": 2,
}


class IntrinsicCall(Expr):
    """Call of a Fortran intrinsic (``sqrt``, ``abs``, ``min`` ...)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr]) -> None:
        super().__init__()
        name = name.lower()
        if name not in INTRINSICS:
            raise ValueError(f"unknown intrinsic {name!r}")
        if len(args) != INTRINSICS[name]:
            raise ValueError(f"intrinsic {name} expects {INTRINSICS[name]} args, got {len(args)}")
        self.name = name
        self.args = list(args)

    def children(self) -> Sequence[Expr]:
        return tuple(self.args)

    def key(self) -> tuple:
        return ("call", self.name, tuple(a.key() for a in self.args))

    def clone(self) -> "IntrinsicCall":
        return self._stamp(IntrinsicCall(self.name, [a.clone() for a in self.args]))  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Convenience constructors used throughout builders, tests and workloads.
# ---------------------------------------------------------------------------

def as_expr(value) -> Expr:
    """Coerce Python ints/floats/strs into IR expression nodes.

    Strings become :class:`VarRef`; use :class:`SymConst` explicitly for
    symbolic problem sizes.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not IR literals; build a comparison")
    if isinstance(value, int):
        return IntConst(value)
    if isinstance(value, float):
        return FloatConst(value)
    if isinstance(value, str):
        return VarRef(value)
    raise TypeError(f"cannot convert {value!r} to an IR expression")


def add(a, b) -> BinOp:
    return BinOp("+", as_expr(a), as_expr(b))


def sub(a, b) -> BinOp:
    return BinOp("-", as_expr(a), as_expr(b))


def mul(a, b) -> BinOp:
    return BinOp("*", as_expr(a), as_expr(b))


def div(a, b) -> BinOp:
    return BinOp("/", as_expr(a), as_expr(b))


def aref(array: str, *subscripts) -> ArrayRef:
    return ArrayRef(array, [as_expr(s) for s in subscripts])


def expr_dtype(expr: Expr) -> DType:
    """Crude type inference: any REAL operand makes the result REAL."""
    if isinstance(expr, FloatConst):
        return REAL
    if isinstance(expr, IntConst) or isinstance(expr, SymConst):
        return INT
    for child in expr.children():
        if expr_dtype(child).is_real():
            return REAL
    if isinstance(expr, (VarRef, ArrayRef)):
        return REAL  # refined by the symbol table when available
    return INT


__all__ = [
    "Expr", "IntConst", "FloatConst", "SymConst", "VarRef", "ArrayRef",
    "BinOp", "UnaryOp", "IntrinsicCall", "RefMode", "INTRINSICS",
    "as_expr", "add", "sub", "mul", "div", "aref", "expr_dtype",
]
