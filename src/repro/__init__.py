"""repro — reproduction of Lim & Yew, *A Compiler-Directed Cache
Coherence Scheme Using Data Prefetching* (IPPS 1997).

The package implements the complete CCDP system:

* :mod:`repro.ir` — a CRAFT-Fortran-style parallel IR (epochs, DOALL
  loops, BLOCK-distributed arrays) with a builder API and a text DSL;
* :mod:`repro.analysis` — the compiler analyses (affine subscripts,
  array sections, epoch flow graph, stale reference analysis, locality);
* :mod:`repro.coherence` — the CCDP scheme itself: prefetch target
  analysis (paper Fig. 1), prefetch scheduling (paper Fig. 2: vector
  prefetch generation, software pipelining, moving back prefetches),
  and coherence code generation — entry point :func:`ccdp_transform`;
* :mod:`repro.machine` — a Cray T3D-class simulator: non-coherent
  write-through caches, 3-D torus, prefetch queue, vector transfers,
  with an exact stale-read checker;
* :mod:`repro.runtime` — interpreters executing IR programs on the
  machine as SEQ / BASE / CCDP / NAIVE versions;
* :mod:`repro.workloads` — MXM, VPENTA, TOMCATV, SWIM with NumPy
  oracles;
* :mod:`repro.harness` — Table 1 / Table 2 regeneration and reporting.

Quickstart::

    from repro.workloads import workload
    from repro.coherence import ccdp_transform, CCDPConfig
    from repro.machine import t3d
    from repro.runtime import run_program, Version

    program = workload("mxm").build_default()
    ccdp_program, report = ccdp_transform(program, CCDPConfig(machine=t3d(8)))
    result = run_program(ccdp_program, t3d(8), Version.CCDP)
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
