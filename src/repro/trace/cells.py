"""Farm cells for trace replay: content-addressed, resumable jobs.

One cell = one (trace file, scheme, backend) replay.  The cell key
hashes the trace *contents* (not its path) plus every input the result
depends on, so replays dedup across farm runs sharing a journal and a
re-run after editing the trace re-executes instead of serving a stale
result.  The worker is a module-level function of one JSON-able
payload, as :func:`repro.farm.run_farm` requires.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from .format import TraceError
from .program import TraceProgram
from .reader import (DEFAULT_CHUNK_OPS, jsonl_geometry, read_jsonl_events,
                     sniff_format)


def trace_digest(path) -> str:
    """SHA-256 of the trace file's bytes (streamed)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


def replay_key(payload: Dict) -> str:
    """Content key of one replay cell."""
    from ..farm import SCHEMA
    from ..harness.progcache import content_key

    fields = {k: payload.get(k) for k in
              ("format", "version", "pes", "backend", "oracle",
               "cache_bytes", "chunk_ops", "workload", "sizes", "ir",
               "conform")}
    return content_key("replay", SCHEMA, trace_digest(payload["trace"]),
                       fields)


def replay_decls(trace, workload_name: str, sizes: Dict[str, int],
                 ir_path: str, pes: Optional[int]):
    """(decls, n_pes) for a JSONL trace.

    Declarations come from the workload / IR file the trace was recorded
    from (distribution shapes drive home-PE ownership, so self-derived
    1-D decls would misprice remote traffic); with neither given they
    are derived from the trace's own geometry.
    """
    if workload_name and ir_path:
        raise TraceError("give --workload or --ir, not both")
    if workload_name:
        from ..harness import progcache
        from ..workloads import workload
        spec = workload(workload_name)
        resolved = {**spec.default_args,
                    **{k: v for k, v in (sizes or {}).items()
                       if k in spec.default_args}}
        program = progcache.get_program(spec, resolved)
        decls = list(program.arrays.values())
    elif ir_path:
        from ..ir.dsl import parse_program
        with open(ir_path) as fh:
            program = parse_program(fh.read())
        decls = list(program.arrays.values())
    else:
        decls = None
    if pes is None or decls is None:
        geo_pes, geo_sizes = jsonl_geometry(trace)
        if pes is None:
            pes = geo_pes
        if decls is None:
            from .ingest import decls_from_sizes
            decls = decls_from_sizes(geo_sizes)
    return decls, pes


def build_program(payload: Dict) -> TraceProgram:
    fmt = payload.get("format") or sniff_format(payload["trace"])
    chunk_ops = payload.get("chunk_ops") or DEFAULT_CHUNK_OPS
    if fmt == "text":
        return TraceProgram.from_text(payload["trace"],
                                      pes=payload.get("pes"),
                                      chunk_ops=chunk_ops)
    decls, n_pes = replay_decls(payload["trace"],
                                payload.get("workload") or "",
                                payload.get("sizes") or {},
                                payload.get("ir") or "",
                                payload.get("pes"))
    return TraceProgram.from_jsonl(payload["trace"], decls, n_pes,
                                   chunk_ops=chunk_ops)


def run_replay_cell(payload: Dict) -> Dict:
    """Execute one replay cell; returns a JSON-able result record."""
    from ..machine.params import t3d

    program = build_program(payload)
    params = t3d(program.n_pes, cache_bytes=payload["cache_bytes"])
    result = program.replay(params, payload["version"],
                            backend=payload["backend"],
                            oracle=bool(payload.get("oracle")))
    machine = result.machine
    record = {
        "trace": str(payload["trace"]),
        "version": result.version,
        "backend": result.backend,
        "pes": program.n_pes,
        "elapsed": result.elapsed,
        "stats": machine.stats.as_dict(),
        "epochs": result.epochs,
        "counters": {"ops": result.counters.ops,
                     "bulk_ops": result.counters.bulk_ops,
                     "bulk_runs": result.counters.bulk_runs,
                     "fallbacks": result.counters.fallbacks},
        "oracle": machine.oracle.summary() if machine.oracle else None,
        "conform": None,
    }
    if payload.get("conform"):
        from ..obs.fold import TIMING_DEPENDENT_FIELDS, reconcile
        record["conform"] = reconcile(
            (event for _, event in read_jsonl_events(payload["trace"])),
            machine, skip=TIMING_DEPENDENT_FIELDS)
    return record


def replay_failure(record: Dict) -> Optional[str]:
    """Farm ``failure_of`` hook: a conformance mismatch is a failure."""
    mismatches = record.get("conform")
    if mismatches:
        return "conformance mismatch: " + "; ".join(mismatches[:4])
    return None


__all__ = ["trace_digest", "replay_key", "replay_decls", "build_program",
           "run_replay_cell", "replay_failure"]
