"""Trace formats: the text grammar, the op vocabulary, and the errors.

Two input formats feed the replay frontend (DESIGN.md §9):

* **JSONL** — the normalized machine-event stream written by
  :func:`repro.obs.export.write_jsonl` (golden traces, ``ccdp trace
  --trace-out``, fuzzer exports).  Parsing lives in
  :mod:`repro.trace.ingest`.
* **text** — the hand-writable per-PE access-stream format below.
  Parsing lives here (:func:`parse_text_line`) and streaming in
  :mod:`repro.trace.reader`.

Both parse into one internal *record* stream consumed by
:class:`repro.trace.program.TraceProgram`:

``("epoch", index, label)``
    A parallel epoch opens.
``("ops", pe, [op, ...])``
    A chunk of one PE's accesses, in program order.  Chunks of the
    same PE may repeat back-to-back (bounded-memory chunking), but
    within one epoch each PE's accesses form one contiguous block.
``("barrier",)``
    All PEs synchronise.
``("end_epoch", index, label)``
    The epoch closes (always follows the barrier that ends it, except
    for a final epoch at end-of-trace).

Ops are plain tuples (cheap, comparable):

``("r", array, flat, hint)``
    A read.  ``hint`` is the source run's recorded outcome — ``"hit"``,
    ``"miss"``, ``"extract"``, ``"bypass"``, ``"uncached"``, ``"drop"``
    — or ``None`` (text traces; the replayed cache decides).
``("w", array, flat)``
    A write (replay stores a synthetic deterministic value).
``("p", array, line, outcome, dtb, inval)``
    A line prefetch with its recorded queue ``outcome`` (``"issue"`` /
    ``"coalesce"`` / ``"drop"``), DTB-setup flag and whether it killed
    a resident line.
``("v", array, flat, length, stride, inval)``
    A vector (block) prefetch instruction.
``("i", array, lo, hi)``
    An explicit invalidation of the element range [lo, hi].

Errors are :class:`TraceError` with messages that say what was wrong
*and* what would have been right, prefixed ``file:line:`` — they
surface as one line at the CLI, never as a traceback (the same
contract as :mod:`repro.faults.parse`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: the single source of truth for the text grammar — quoted by the
#: parser's tests and by DESIGN.md §9 / README so documentation and
#: implementation cannot drift apart.
TEXT_GRAMMAR = """\
trace     := line*
line      := blank | comment | directive | barrier | access
comment   := '#' ...
directive := '%pes' INT              (PE count; before the first access)
           | '%array' NAME INT      (declare NAME with INT elements)
barrier   := 'barrier'              (ends the current epoch)
access    := NAME ('read'|'write') ADDR [PE]
ADDR      := 0-based element index into NAME (< declared size, < 2^63)
PE        := issuing PE in [0, pes); defaults to 0

Epochs are the runs of accesses between barriers; within one epoch each
PE's accesses must form one contiguous block (no interleaving).  With no
'%array' directives, labels implicitly declare arrays sized by the
largest address used; '%pes' defaults to (largest PE used) + 1."""

#: read hints a trace may carry (``None`` = undetermined, cache decides)
READ_HINTS = ("hit", "miss", "extract", "bypass", "uncached", "drop")

#: recorded prefetch-queue dispositions
PF_OUTCOMES = ("issue", "coalesce", "drop")

#: largest representable word address (the machine flattens addresses
#: into int64 planes; anything at or above this cannot be simulated)
MAX_ADDR = 2 ** 63 - 1


class TraceError(ValueError):
    """Malformed trace input.  The message is a single actionable line,
    prefixed ``file:line:`` when a source position is known."""


def trace_error(path, lineno: int, message: str) -> TraceError:
    return TraceError(f"{path}:{lineno}: {message}")


def parse_text_line(line: str, path, lineno: int,
                    arrays: Optional[Dict[str, int]],
                    n_pes: Optional[int]) -> Optional[Tuple]:
    """Parse one text-trace line into ``None`` (blank/comment) or one of
    ``("pes", n)``, ``("array", name, size)``, ``("barrier",)``,
    ``("access", pe, op)`` where ``op`` is a record op tuple.

    ``arrays`` maps declared array names to sizes (``None`` while
    scanning in implicit mode — address bounds are then not checked
    here).  ``n_pes`` bounds the PE field when known.
    """
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    parts = text.split()
    head = parts[0]
    if head == "%pes":
        if len(parts) != 2:
            raise trace_error(path, lineno,
                              f"%pes takes exactly one count, got "
                              f"{len(parts) - 1} token(s): expected "
                              f"'%pes INT'")
        count = _parse_int(parts[1], path, lineno, "%pes count")
        if count <= 0:
            raise trace_error(path, lineno,
                              f"%pes count must be positive, got {count}")
        return ("pes", count)
    if head == "%array":
        if len(parts) != 3:
            raise trace_error(path, lineno,
                              f"%array takes a name and a size, got "
                              f"{len(parts) - 1} token(s): expected "
                              f"'%array NAME SIZE'")
        size = _parse_int(parts[2], path, lineno, f"%array {parts[1]} size")
        if size <= 0:
            raise trace_error(path, lineno,
                              f"%array {parts[1]} size must be positive, "
                              f"got {size}")
        return ("array", parts[1], size)
    if head.startswith("%"):
        raise trace_error(path, lineno,
                          f"unknown directive {head!r}: expected '%pes' "
                          f"or '%array'")
    if head == "barrier":
        if len(parts) != 1:
            raise trace_error(path, lineno,
                              f"'barrier' takes no operands, got "
                              f"{' '.join(parts[1:])!r}")
        return ("barrier",)
    # access: LABEL read|write ADDR [PE]
    if len(parts) < 3:
        raise trace_error(path, lineno,
                          f"truncated access line (got {len(parts)} "
                          f"token(s) {text!r}): expected "
                          f"'LABEL read|write ADDR [PE]'")
    if len(parts) > 4:
        raise trace_error(path, lineno,
                          f"too many tokens ({len(parts)}) in access line "
                          f"{text!r}: expected 'LABEL read|write ADDR [PE]'")
    name, op_word = parts[0], parts[1]
    if op_word not in ("read", "write"):
        raise trace_error(path, lineno,
                          f"unknown access keyword {op_word!r}: expected "
                          f"'read' or 'write'")
    if arrays is not None and name not in arrays:
        raise trace_error(path, lineno,
                          f"unknown array label {name!r}: declared arrays "
                          f"are {', '.join(sorted(arrays)) or '(none)'}")
    addr = _parse_int(parts[2], path, lineno, "address")
    if addr < 0:
        raise trace_error(path, lineno,
                          f"negative address {addr} for {name}: addresses "
                          f"are 0-based element indices")
    if addr > MAX_ADDR:
        raise trace_error(path, lineno,
                          f"address {addr} for {name} overflows the 64-bit "
                          f"word-address space (max {MAX_ADDR})")
    if arrays is not None and addr >= arrays[name]:
        raise trace_error(path, lineno,
                          f"address {addr} out of bounds for {name} "
                          f"(declared size {arrays[name]}; valid range "
                          f"0..{arrays[name] - 1})")
    pe = 0
    if len(parts) == 4:
        pe = _parse_int(parts[3], path, lineno, "PE")
        if pe < 0 or (n_pes is not None and pe >= n_pes):
            bound = f"[0, {n_pes})" if n_pes is not None else ">= 0"
            raise trace_error(path, lineno,
                              f"PE {pe} out of range: this trace runs on "
                              f"PEs {bound}")
    op = ("r", name, addr, None) if op_word == "read" else ("w", name, addr)
    return ("access", pe, op)


def _parse_int(token: str, path, lineno: int, what: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise trace_error(path, lineno,
                          f"{what} must be an integer, got {token!r}") \
            from None


__all__ = ["TEXT_GRAMMAR", "READ_HINTS", "PF_OUTCOMES", "MAX_ADDR",
           "TraceError", "trace_error", "parse_text_line"]
