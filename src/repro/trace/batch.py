"""Batched bulk-replay path: vectorized trace replay over the
:mod:`repro.machine.batchops` classify planes.

The reference replay path (:func:`repro.trace.program._apply_op`)
drives every op through ``Machine.read`` / ``Machine.write`` one call
at a time.  This module services maximal runs of *bulk-eligible* ops —
shared cacheable reads and writes with no prefetch-queue interaction —
in one shot per run: a single :func:`classify_events` pass against the
PE's live tags decides every hit/miss, per-owner latency LUTs price
every access, and one scalar loop accumulates the clock/busy floats in
the same order the reference path would (float addition is
order-sensitive, so the loop is the equality proof, not an
approximation).  Ops outside a run — prefetches, vectors, explicit
invalidations, private-array traffic, queue-hinted reads — still go
through the reference path, as does any run a safety gate rejects.

The gates make the bulk commit *exact*, never merely close:

* a run is skipped when any of its cacheable-read lines intersects the
  PE's outstanding prefetch queue (a miss would really be an extract),
  its dropped-line set (paper rule 2 would degrade the read), a
  resident stale line (a hit would need stale bookkeeping), or an
  in-flight vector transfer (a hit would stall);
* schemes with hardware protocols, CRAFT overheads, uncached-shared
  policy, or machines with fault injection / race checking / address
  tracing fall back wholesale — their per-access side effects are not
  worth mirroring here.

Within a committed run the PE is the only writer (replay is sequential
and other PEs are quiescent), so the commit can scatter final values
into memory, refill installed lines from *final* memory and apply
write-through word updates to final-resident lines — bit-identical to
the reference path's incremental updates.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..machine.batchops import (OUT_HIT, OUT_MISS, READ, WRITE,
                                bulk_fill_lines, bulk_update_words,
                                classify_events, read_latency_table,
                                stale_lines, uncached_read_latency_table,
                                write_latency_table)
from .program import _apply_op

#: kinds a committed bulk run can emit — used for the tracer's
#: counts-only fast path.
_BULK_KINDS = ("read_hit", "read_miss", "bypass_fetch", "write")

#: read hints a bulk run can absorb (``extract`` / ``drop`` interact
#: with the prefetch queue op-by-op and always go through the
#: reference path).
_BULK_HINTS = frozenset({None, "hit", "miss", "bypass", "uncached"})


class BulkReplayer:
    """Per-replay bulk engine bound to one machine + scheme."""

    #: shortest run worth the classify/LUT overhead
    MIN_RUN = 16

    def __init__(self, machine, spec, flags: Dict[str, tuple]) -> None:
        self.machine = machine
        self.flags = flags
        self.eligible = (spec.protocol is None and spec.cache_shared
                         and not spec.craft_overheads
                         and machine.protocol is None
                         and machine.faults is None
                         and not machine.race_check
                         and not machine.trace_enabled)
        self._luts: Dict[int, tuple] = {}
        if not self.eligible:
            return
        mem = machine.memory
        self._lw = machine.params.line_words
        self._base: Dict[str, int] = {}
        # Global word-address -> home PE, per shared array.
        self._owners = np.zeros(len(mem.values_flat), dtype=np.int16)
        for name, decl in mem.decls.items():
            if not decl.is_shared:
                continue
            base = machine.addr_map.base(name)
            self._base[name] = base
            self._owners[base:base + decl.size] = \
                machine.addr_map.owner_table(name)

    # -- public API -----------------------------------------------------
    def chunk(self, pe_id: int, ops: list, state, counters) -> None:
        """Apply one chunk of a PE's ops, bulk-servicing eligible runs."""
        machine, flags = self.machine, self.flags
        if not self.eligible:
            for op in ops:
                _apply_op(machine, flags, pe_id, op, state)
            return
        n = len(ops)
        i = 0
        while i < n:
            if not self._bulk_ok(ops[i]):
                _apply_op(machine, flags, pe_id, ops[i], state)
                i += 1
                continue
            j = i + 1
            while j < n and self._bulk_ok(ops[j]):
                j += 1
            if j - i >= self.MIN_RUN and self._bulk_run(pe_id, ops, i, j,
                                                        state):
                counters.bulk_ops += j - i
                counters.bulk_runs += 1
            else:
                if j - i >= self.MIN_RUN:
                    counters.fallbacks += 1
                for k in range(i, j):
                    _apply_op(machine, flags, pe_id, ops[k], state)
            i = j

    # -- internals ------------------------------------------------------
    def _bulk_ok(self, op: tuple) -> bool:
        kind = op[0]
        if kind == "r":
            info = self.flags.get(op[1])
            return (info is not None and info[0]
                    and op[3] in _BULK_HINTS)
        if kind == "w":
            info = self.flags.get(op[1])
            return info is not None and info[0]
        return False

    def _lut(self, pe_id: int) -> tuple:
        luts = self._luts.get(pe_id)
        if luts is None:
            params = self.machine.params
            torus = self.machine.torus
            luts = (
                np.asarray(read_latency_table(params, torus, pe_id)),
                np.asarray(write_latency_table(params, torus, pe_id)),
                np.asarray(uncached_read_latency_table(params, torus,
                                                       pe_id)),
            )
            self._luts[pe_id] = luts
        return luts

    def _bulk_run(self, pe_id: int, ops: list, i0: int, i1: int,
                  state) -> bool:
        """Service ``ops[i0:i1]`` in one shot; False = caller falls back
        (nothing was mutated)."""
        machine = self.machine
        mem = machine.memory
        pe = machine.pes[pe_id]
        run = ops[i0:i1]
        n = len(run)

        flats = np.fromiter((op[2] for op in run), dtype=np.int64,
                            count=n)
        bases = np.fromiter((self._base[op[1]] for op in run),
                            dtype=np.int64, count=n)
        # op codes: 0 cacheable read, 1 write, 2 bypass-hint read
        codes = np.fromiter(
            ((1 if op[0] == "w" else 2 if op[3] == "bypass" else 0)
             for op in run), dtype=np.int8, count=n)
        addrs = bases + flats
        lines = addrs // self._lw
        is_read = codes == 0
        read_lines = set(lines[is_read].tolist())

        # Safety gates: any interaction a classify pass cannot model
        # exactly punts the whole run to the reference path.
        if read_lines:
            if any(e.line_addr in read_lines for e in pe.queue.entries):
                return False
            if pe.dropped_lines and not pe.dropped_lines.isdisjoint(
                    read_lines):
                return False
            for t in pe.vectors.transfers:
                if t.completion > pe.clock and any(
                        t.line_lo <= ln <= t.line_hi
                        for ln in read_lines):
                    return False
            stale = stale_lines(pe.cache, mem.versions_flat)
            if stale.size and not read_lines.isdisjoint(stale.tolist()):
                return False

        kinds = np.where(is_read, np.int8(READ), np.int8(WRITE))
        cls = classify_events(lines, kinds, machine.params.n_lines,
                              initial_tags=pe.cache.tags)
        outcomes = cls.outcomes
        read_lut, write_lut, unc_lut = self._lut(pe_id)
        owners = self._owners[addrs]

        lat = np.empty(n, dtype=np.float64)
        hit_mask = is_read & (outcomes == OUT_HIT)
        miss_mask = is_read & (outcomes == OUT_MISS)
        write_mask = codes == 1
        byp_mask = codes == 2
        lat[hit_mask] = machine.params.cache_hit
        lat[miss_mask] = read_lut[owners[miss_mask]]
        lat[write_mask] = write_lut[owners[write_mask]]
        lat[byp_mask] = unc_lut[owners[byp_mask]]

        # Clock/busy accumulate per op in order — float addition is
        # order-sensitive and the reference path adds one cost at a
        # time, so this loop is what makes the paths bit-identical.
        tr = machine.tracer
        emit = tr is not None and not tr.counts_only(_BULK_KINDS)
        c = pe.clock
        b = pe.stats.busy_cycles
        if emit:
            codes_l = codes.tolist()
            out_l = outcomes.tolist()
            own_l = owners.tolist()
            for k, cost in enumerate(lat.tolist()):
                c += cost
                b += cost
                op = run[k]
                code = codes_l[k]
                if code == 0:
                    if out_l[k] == OUT_HIT:
                        tr.emit(("read_hit", pe_id, op[1], op[2], 0))
                    else:
                        tr.emit(("read_miss", pe_id, op[1], op[2],
                                 int(own_l[k] == pe_id)))
                elif code == 1:
                    tr.emit(("write", pe_id, op[1], op[2], 1,
                             int(own_l[k] != pe_id)))
                else:
                    tr.emit(("bypass_fetch", pe_id, op[1], op[2],
                             "bypass"))
        else:
            for cost in lat.tolist():
                c += cost
                b += cost

        # -- commit -----------------------------------------------------
        n_w = int(np.count_nonzero(write_mask))
        if n_w:
            vals = np.arange(state.counter + 1, state.counter + n_w + 1,
                             dtype=np.float64)
            state.counter += n_w
            w_idx = np.flatnonzero(write_mask)
            oracle = machine.oracle
            done = set()
            for k in w_idx.tolist():
                name = run[k][1]
                if name in done:
                    continue
                done.add(name)
                sel = np.fromiter((run[int(q)][1] == name
                                   for q in w_idx), dtype=bool,
                                  count=n_w)
                f = flats[w_idx[sel]]
                v = vals[sel]
                mem.values[name][f] = v        # in-order: last wins
                np.add.at(mem.versions[name], f, 1)
                if oracle is not None:
                    oracle.shadow[name][f] = v
            if oracle is not None:
                oracle.checked_writes += n_w
        if machine.oracle is not None:
            # Reads are provably coherent here (no stale residue, no
            # remote writers mid-run), so they count as checked without
            # a per-value comparison.
            machine.oracle.checked_reads += int(
                np.count_nonzero(is_read | byp_mask))

        if cls.changed_sets.size:
            pe.cache.tags[cls.changed_sets] = cls.changed_lines
        miss_lines = np.unique(lines[miss_mask])
        if miss_lines.size:
            bulk_fill_lines(pe.cache, miss_lines.tolist(),
                            mem.values_flat, mem.versions_flat)
        if n_w:
            bulk_update_words(pe.cache, addrs[write_mask],
                              mem.values_flat, mem.versions_flat)

        if tr is not None and not emit:
            n_hit = int(np.count_nonzero(hit_mask))
            n_miss = int(np.count_nonzero(miss_mask))
            n_byp = int(np.count_nonzero(byp_mask))
            if n_hit:
                tr.add_counts("read_hit", n_hit)
            if n_miss:
                tr.add_counts("read_miss", n_miss)
            if n_byp:
                tr.add_counts("bypass_fetch", n_byp)
            if n_w:
                tr.add_counts("write", n_w)

        s = pe.stats
        s.reads += int(np.count_nonzero(is_read)) + \
            int(np.count_nonzero(byp_mask))
        s.writes += n_w
        s.cache_hits += int(np.count_nonzero(hit_mask))
        s.cache_misses += int(np.count_nonzero(miss_mask))
        s.local_fills += int(np.count_nonzero(miss_mask
                                              & (owners == pe_id)))
        s.remote_fills += int(np.count_nonzero(miss_mask
                                               & (owners != pe_id)))
        s.bypass_reads += int(np.count_nonzero(byp_mask))
        s.remote_writes += int(np.count_nonzero(write_mask
                                                & (owners != pe_id)))
        pe.clock = c
        s.busy_cycles = b
        return True


__all__ = ["BulkReplayer"]
