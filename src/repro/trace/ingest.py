"""JSONL event stream -> replay records.

The normalized machine-event stream (:mod:`repro.obs.events`) records
*outcomes*; replay needs *instructions*.  The mapping is mostly 1:1 —
each read-outcome kind becomes a read op carrying its outcome as the
hint, each pf_* kind a prefetch op carrying its recorded disposition —
with one inference: ``invalidate`` events with reason ``prefetch`` /
``vector`` are emitted by the machine *only when a resident line was
actually killed*, immediately before the prefetch's own event, so the
op's ``inval`` flag is True exactly when such an event precedes it.
That is exact, not heuristic: replay reproduces cache state, and an
invalidation of a non-resident line is a complete no-op, so an op
replayed with ``inval=False`` behaves identically whether the source
instruction skipped the invalidation or merely found nothing to kill.

Protocol events (bus/directory traffic), fault activations and farm
lifecycle records are *outputs*, reproduced (or not) by the replayed
scheme itself — they are skipped on ingest.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from .format import trace_error

#: event kinds that carry no replayable instruction
_SKIPPED = frozenset({
    "bus_tx", "coh_wb", "silent_upgrade", "coh_inval", "dir_req",
    "dir_bcast", "fault_activation", "farm_lease", "farm_retry",
    "farm_quarantine", "farm_resume", "farm_done",
})

#: read-outcome event kind -> replay hint (bypass_fetch maps per-kind)
_READ_HINTS = {"read_hit": "hit", "read_miss": "miss",
               "pf_complete": "extract"}

_BYPASS_HINTS = {"bypass": "bypass", "uncached_local": "uncached",
                 "uncached_remote": "uncached", "pf_drop": "drop"}


def records_from_events(events: Iterable[Tuple[int, tuple]], *,
                        path="<events>", chunk_ops: int = 4096
                        ) -> Iterator[tuple]:
    """Map ``(lineno, event)`` pairs to replay records (lazily).

    The stream must be unsampled and uncapped — a decimated trace would
    silently replay a different program.  Ops chunk per PE (at most
    ``chunk_ops`` each); barriers and epoch boundaries pass through as
    their own records.
    """
    cur_pe: Optional[int] = None
    chunk: list = []
    # (lineno, pe, reason) of an invalidate event whose prefetch op has
    # not arrived yet — the machine emits them back-to-back.
    pending: Optional[Tuple[int, int, str]] = None

    def flush():
        nonlocal chunk
        if chunk:
            yield ("ops", cur_pe, chunk)
            chunk = []

    def push(pe: int, op: tuple):
        nonlocal cur_pe
        if pe != cur_pe:
            yield from flush()
            cur_pe = pe
        chunk.append(op)
        if len(chunk) >= chunk_ops:
            yield from flush()

    for lineno, event in events:
        kind = event[0]
        if pending is not None and kind not in ("pf_issue", "pf_coalesce",
                                                "pf_drop",
                                                "vector_transfer"):
            p_line, p_pe, p_reason = pending
            raise trace_error(
                path, p_line,
                f"invalidate(reason={p_reason!r}) on PE {p_pe} is not "
                f"followed by its {'vector_transfer' if p_reason == 'vector' else 'pf_issue/pf_coalesce/pf_drop'} "
                f"event (next is {kind!r} at line {lineno}); the stream "
                f"is out of order or filtered — replay needs an "
                f"unsampled, uncapped trace")
        if kind in _SKIPPED:
            continue
        if kind in _READ_HINTS:
            pe, name, flat = event[1], event[2], event[3]
            yield from push(pe, ("r", name, flat, _READ_HINTS[kind]))
        elif kind == "bypass_fetch":
            pe, name, flat, why = event[1], event[2], event[3], event[4]
            hint = _BYPASS_HINTS.get(why)
            if hint is None:
                raise trace_error(path, lineno,
                                  f"unknown bypass_fetch kind {why!r}")
            yield from push(pe, ("r", name, flat, hint))
        elif kind == "write":
            yield from push(event[1], ("w", event[2], event[3]))
        elif kind == "invalidate":
            pe, name, count, reason, lo, hi = event[1:]
            if reason == "fault":
                continue             # injected consequence, not program
            if reason == "explicit":
                yield from push(pe, ("i", name, lo, hi))
                continue
            if pending is not None:
                raise trace_error(path, lineno,
                                  f"two pending invalidate events "
                                  f"(reasons {pending[2]!r}, {reason!r}) "
                                  f"with no prefetch between them")
            pending = (lineno, pe, reason)
        elif kind in ("pf_issue", "pf_coalesce", "pf_drop"):
            pe, name, line, dtb = event[1:]
            inval = False
            if pending is not None:
                p_line, p_pe, p_reason = pending
                if p_pe != pe or p_reason != "prefetch":
                    raise trace_error(
                        path, p_line,
                        f"invalidate(reason={p_reason!r}) on PE {p_pe} "
                        f"dangles before a {kind} on PE {pe}")
                inval = True
                pending = None
            outcome = "drop" if kind == "pf_drop" else \
                "coalesce" if kind == "pf_coalesce" else "issue"
            yield from push(pe, ("p", name, line, outcome, dtb, inval))
        elif kind == "vector_transfer":
            pe, name, _lo, _hi, words, flat, stride = event[1:]
            inval = False
            if pending is not None:
                p_line, p_pe, p_reason = pending
                if p_pe != pe or p_reason != "vector":
                    raise trace_error(
                        path, p_line,
                        f"invalidate(reason={p_reason!r}) on PE {p_pe} "
                        f"dangles before a vector_transfer on PE {pe}")
                inval = True
                pending = None
            yield from push(pe, ("v", name, flat, words, stride, inval))
        elif kind == "barrier":
            yield from flush()
            cur_pe = None
            yield ("barrier",)
        elif kind == "epoch_begin":
            yield from flush()
            cur_pe = None
            yield ("epoch", event[1], event[2])
        elif kind == "epoch_end":
            yield from flush()
            cur_pe = None
            yield ("end_epoch", event[1], event[2])
        else:
            raise trace_error(path, lineno,
                              f"event kind {kind!r} has no replay mapping")
    yield from flush()
    if pending is not None:
        p_line, p_pe, p_reason = pending
        raise trace_error(path, p_line,
                          f"invalidate(reason={p_reason!r}) on PE {p_pe} "
                          f"dangles at end of trace with no prefetch event "
                          f"after it")


def plain_events(events: Iterable[tuple]) -> Iterator[Tuple[int, tuple]]:
    """Adapt an in-memory event list to the ``(lineno, event)`` protocol
    (ordinal positions stand in for line numbers)."""
    for index, event in enumerate(events, 1):
        yield index, event


def decls_from_sizes(sizes: Dict[str, int]):
    """Minimal shared :class:`~repro.ir.arrays.ArrayDecl` list for a
    self-describing trace: 1-D, block-distributed, one per array."""
    from ..ir.arrays import ArrayDecl
    return [ArrayDecl(name=name, shape=(size,))
            for name, size in sorted(sizes.items())]


__all__ = ["records_from_events", "plain_events", "decls_from_sizes"]
