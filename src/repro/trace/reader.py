"""Chunked, lazily-decoded trace readers (bounded memory).

Text traces are memory-mapped and decoded line by line — a multi-GB
trace costs address space, not RSS — and both formats shard into the
record stream described in :mod:`repro.trace.format`: per-PE, per-epoch
op chunks of at most ``chunk_ops`` ops, with explicit barrier and
epoch-boundary records.  The counts-only :func:`scan_text` pass derives
a text trace's implicit geometry (array sizes, PE count, op counts)
without materialising any ops at all.
"""

from __future__ import annotations

import json
import mmap
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from ..obs.events import event_from_dict
from .format import TraceError, parse_text_line, trace_error

#: default ops per ("ops", pe, [...]) chunk — small enough to bound
#: resident op tuples, large enough to amortise per-chunk dispatch.
DEFAULT_CHUNK_OPS = 4096


def _text_lines(path) -> Iterator[Tuple[int, str]]:
    """(lineno, decoded line) pairs via mmap; empty files yield nothing."""
    with open(path, "rb") as fh:
        try:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:          # cannot mmap an empty file
            return
        try:
            lineno = 0
            while True:
                raw = mm.readline()
                if not raw:
                    return
                lineno += 1
                try:
                    yield lineno, raw.decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise trace_error(path, lineno,
                                      f"line is not UTF-8 text ({exc}); "
                                      f"text traces are plain ASCII/UTF-8") \
                        from None
        finally:
            mm.close()


@dataclass
class TextTraceInfo:
    """Geometry of one text trace, from a counts-only scan."""

    path: str
    arrays: Dict[str, int] = field(default_factory=dict)
    declared: bool = False       #: True when %array directives were used
    n_pes: Optional[int] = None  #: %pes value, else None (caller decides)
    max_pe: int = 0              #: largest PE index referenced
    n_ops: int = 0
    n_barriers: int = 0

    def pes(self, default: Optional[int] = None) -> int:
        """The PE count to simulate: ``%pes`` if declared, else the
        caller's ``default``, else enough for every referenced PE."""
        if self.n_pes is not None:
            return self.n_pes
        if default is not None:
            return default
        return self.max_pe + 1


def scan_text(path) -> TextTraceInfo:
    """Counts-only validation pass over a text trace.

    Checks every line's grammar and (in declared mode) bounds, and
    derives implicit array sizes — each label's size becomes its largest
    address + 1 — without keeping any ops in memory.
    """
    info = TextTraceInfo(path=str(path))
    implicit: Dict[str, int] = {}
    saw_access = False
    for lineno, line in _text_lines(path):
        parsed = parse_text_line(line, path, lineno,
                                 info.arrays if info.declared else None,
                                 info.n_pes)
        if parsed is None:
            continue
        kind = parsed[0]
        if kind == "pes":
            if saw_access:
                raise trace_error(path, lineno,
                                  "%pes must precede the first access")
            info.n_pes = parsed[1]
        elif kind == "array":
            if saw_access:
                raise trace_error(path, lineno,
                                  "%array must precede the first access")
            if parsed[1] in info.arrays:
                raise trace_error(path, lineno,
                                  f"array {parsed[1]!r} declared twice")
            info.arrays[parsed[1]] = parsed[2]
            info.declared = True
        elif kind == "barrier":
            info.n_barriers += 1
        else:  # access
            saw_access = True
            _, pe, op = parsed
            info.n_ops += 1
            info.max_pe = max(info.max_pe, pe)
            if not info.declared:
                name, addr = op[1], op[2]
                if addr >= implicit.get(name, 0):
                    implicit[name] = addr + 1
    if not info.declared:
        info.arrays = implicit
    if info.n_pes is not None and info.max_pe >= info.n_pes:
        raise TraceError(
            f"{path}: access on PE {info.max_pe} but %pes declares only "
            f"{info.n_pes} PE(s)")
    return info


def read_text_records(path, *, chunk_ops: int = DEFAULT_CHUNK_OPS,
                      info: Optional[TextTraceInfo] = None) -> Iterator[tuple]:
    """Stream a text trace as records (see :mod:`repro.trace.format`).

    ``info`` (from :func:`scan_text`) supplies the declared/implicit
    array sizes so every access is bounds-checked; when omitted the scan
    runs first.  Epochs are the runs of accesses between ``barrier``
    lines; within one epoch each PE's accesses must form one contiguous
    block, enforced here with file:line positions.
    """
    if chunk_ops <= 0:
        raise ValueError(f"chunk_ops must be positive: {chunk_ops}")
    if info is None:
        info = scan_text(path)
    n_pes = info.pes()
    epoch = 0
    in_epoch = False
    seen_pes: set = set()
    cur_pe: Optional[int] = None
    chunk: list = []

    def flush():
        nonlocal chunk
        if chunk:
            yield ("ops", cur_pe, chunk)
            chunk = []

    for lineno, line in _text_lines(path):
        parsed = parse_text_line(line, path, lineno, info.arrays, n_pes)
        if parsed is None or parsed[0] in ("pes", "array"):
            continue
        if parsed[0] == "barrier":
            yield from flush()
            cur_pe = None
            seen_pes.clear()
            yield ("barrier",)
            if in_epoch:
                yield ("end_epoch", epoch, f"epoch {epoch}")
                epoch += 1
                in_epoch = False
            continue
        _, pe, op = parsed
        if not in_epoch:
            yield ("epoch", epoch, f"epoch {epoch}")
            in_epoch = True
        if pe != cur_pe:
            if pe in seen_pes:
                raise trace_error(
                    path, lineno,
                    f"PE {pe} accesses interleave with PE {cur_pe} in "
                    f"epoch {epoch}: each PE's accesses must form one "
                    f"contiguous block per epoch (insert a 'barrier' "
                    f"between phases)")
            yield from flush()
            seen_pes.add(pe)
            cur_pe = pe
        chunk.append(op)
        if len(chunk) >= chunk_ops:
            yield from flush()
    yield from flush()
    if in_epoch:
        # A trailing epoch closes at end-of-trace without a barrier (no
        # synchronisation cost is charged — there is nothing after it).
        yield ("end_epoch", epoch, f"epoch {epoch}")


def read_jsonl_events(path) -> Iterator[Tuple[int, tuple]]:
    """Stream ``(lineno, event)`` pairs from a normalized JSONL trace.

    Line-by-line — the whole trace is never resident.  Malformed lines
    raise :class:`TraceError` with the file:line position.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise trace_error(path, lineno,
                                  f"not a JSON object ({exc.msg}); expected "
                                  f"one event per line as written by "
                                  f"repro.obs.export.write_jsonl") from None
            try:
                yield lineno, event_from_dict(record)
            except ValueError as exc:
                raise trace_error(path, lineno, str(exc)) from None


def read_jsonl_records(path, *, chunk_ops: int = DEFAULT_CHUNK_OPS
                       ) -> Iterator[tuple]:
    """Stream a JSONL event trace as replay records."""
    from .ingest import records_from_events
    return records_from_events(read_jsonl_events(path), path=path,
                               chunk_ops=chunk_ops)


def jsonl_geometry(path) -> Tuple[int, Dict[str, int]]:
    """(n_pes, per-array max flat + 1) from one streaming pass — enough
    to sanity-check a workload's declarations against a trace."""
    n_pes = 1
    sizes: Dict[str, int] = {}
    for _, event in read_jsonl_events(path):
        fields = event[1:]
        if event[0] in ("read_hit", "read_miss", "bypass_fetch", "write",
                        "pf_complete"):
            pe, name, flat = fields[0], fields[1], fields[2]
            n_pes = max(n_pes, pe + 1)
            if flat >= sizes.get(name, 0):
                sizes[name] = flat + 1
        elif event[0] in ("pf_issue", "pf_coalesce", "pf_drop",
                          "vector_transfer", "invalidate"):
            n_pes = max(n_pes, fields[0] + 1)
    return n_pes, sizes


def sniff_format(path) -> str:
    """``"jsonl"`` or ``"text"``, from the file extension."""
    suffix = Path(path).suffix.lower()
    return "jsonl" if suffix in (".jsonl", ".json") else "text"


__all__ = ["DEFAULT_CHUNK_OPS", "TextTraceInfo", "scan_text",
           "read_text_records", "read_jsonl_events", "read_jsonl_records",
           "jsonl_geometry", "sniff_format"]
