"""TraceProgram: a recorded access stream bound to array declarations,
replayable through :class:`~repro.machine.machine.Machine` under any
scheme in the :data:`~repro.runtime.exec_config.SCHEMES` registry.

The driver mirrors the reference interpreter's per-access policy
exactly — cacheability, CRAFT overheads and prefetch liveness all
derive from the target scheme's :class:`SchemeSpec`, so a CCDP trace
replayed under ``mesi`` turns its prefetches into the same timing noops
the interpreter would have compiled, and a BASE trace replayed under
``ccdp`` caches the reads the source ran uncached.  Replaying a trace
under the scheme that recorded it reproduces the source run's
:class:`PEStats` / interconnect counters exactly (the conformance
contract: ``repro.obs.fold.reconcile`` of source events against the
replayed machine is empty) — on both the reference per-access path and
the batched bulk path (:mod:`repro.trace.batch`).

Out of the conformance contract, by design: cycle-class numbers.
Replayed clocks carry memory-system costs only (the trace records no
compute, no ``epoch_start`` / ``loop_overhead`` charges), so elapsed
cycles are *comparable between replays*, not equal to the source run's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..ir.arrays import ArrayDecl
from ..machine.machine import Machine
from ..machine.params import MachineParams
from ..runtime.exec_config import Backend, SCHEMES, scheme_names
from .format import TraceError
from .reader import (DEFAULT_CHUNK_OPS, read_jsonl_records,
                     read_text_records, scan_text)


@dataclass
class ReplayCounters:
    """Bulk-path bookkeeping for one replay."""

    ops: int = 0            #: ops applied in total
    bulk_ops: int = 0       #: ops serviced by the batched bulk path
    bulk_runs: int = 0      #: bulk runs committed
    fallbacks: int = 0      #: eligible runs that fell back to per-op


@dataclass
class TraceReplayResult:
    """One finished replay: the machine plus per-epoch stream rows."""

    machine: Machine
    version: str
    backend: str
    epochs: List[dict] = field(default_factory=list)
    counters: ReplayCounters = field(default_factory=ReplayCounters)

    @property
    def elapsed(self) -> float:
        return self.machine.elapsed()

    def stats_dict(self) -> dict:
        return self.machine.stats.as_dict()


class TraceProgram:
    """A trace bound to declarations — the replay analogue of an IR
    program.  Construction is cheap; every :meth:`replay` call streams
    the records afresh from the factory (so multi-GB traces are never
    resident and one program can replay under many schemes)."""

    def __init__(self, records_factory: Callable[[], Iterable[tuple]],
                 decls: Iterable[ArrayDecl], n_pes: int,
                 name: str = "trace") -> None:
        self.records_factory = records_factory
        self.decls = list(decls)
        self.n_pes = int(n_pes)
        self.name = name
        names = [d.name for d in self.decls]
        if len(set(names)) != len(names):
            raise TraceError(f"{name}: duplicate array declarations")

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_text(cls, path, *, pes: Optional[int] = None,
                  chunk_ops: int = DEFAULT_CHUNK_OPS) -> "TraceProgram":
        """Bind a text trace; geometry comes from the trace itself
        (directives or the implicit counts-only scan)."""
        from .ingest import decls_from_sizes
        info = scan_text(path)
        if not info.arrays:
            raise TraceError(f"{path}: trace contains no accesses")
        n_pes = info.pes(pes)
        if info.max_pe >= n_pes:
            raise TraceError(
                f"{path}: access on PE {info.max_pe} but the replay "
                f"machine has {n_pes} PE(s); raise --pes or add '%pes'")
        return cls(lambda: read_text_records(path, chunk_ops=chunk_ops,
                                             info=info),
                   decls_from_sizes(info.arrays), n_pes, name=str(path))

    @classmethod
    def from_jsonl(cls, path, decls: Iterable[ArrayDecl], n_pes: int, *,
                   chunk_ops: int = DEFAULT_CHUNK_OPS) -> "TraceProgram":
        """Bind a normalized JSONL event trace to a workload's array
        declarations (events name arrays but not their geometry)."""
        return cls(lambda: read_jsonl_records(path, chunk_ops=chunk_ops),
                   decls, n_pes, name=str(path))

    @classmethod
    def from_events(cls, events: Iterable[tuple], decls: Iterable[ArrayDecl],
                    n_pes: int, name: str = "<events>") -> "TraceProgram":
        """Bind an in-memory event list (tests, round-trips)."""
        from .ingest import plain_events, records_from_events
        events = list(events)
        return cls(lambda: records_from_events(plain_events(events),
                                               path=name),
                   decls, n_pes, name=name)

    # -- replay ---------------------------------------------------------
    def replay(self, params: MachineParams, version: str, *,
               backend: str = Backend.REFERENCE, oracle: bool = False,
               on_stale: str = "record", tracer=None,
               epoch_cb: Optional[Callable[[dict], None]] = None
               ) -> TraceReplayResult:
        """Drive every recorded access through a fresh machine.

        ``epoch_cb`` (if given) receives one dict per closed epoch as
        the stream is consumed — counter *deltas* over the epoch plus
        the machine clock — which is what the CLI streams live.
        """
        spec = SCHEMES.get(version)
        if spec is None:
            raise TraceError(f"unknown version {version!r}; expected one "
                             f"of {scheme_names()}")
        if backend not in Backend.ALL:
            raise TraceError(f"unknown backend {backend!r}; expected one "
                             f"of {', '.join(Backend.ALL)}")
        if params.n_pes < self.n_pes:
            raise TraceError(
                f"{self.name}: trace needs {self.n_pes} PE(s) but the "
                f"machine has {params.n_pes}")
        machine = Machine(self.decls, params, on_stale=on_stale,
                          oracle=oracle, tracer=tracer,
                          protocol=spec.protocol)
        counters = ReplayCounters()
        epochs: List[dict] = []
        # Per-array policy, mirroring the interpreter's flag derivation.
        flags: Dict[str, tuple] = {}
        for decl in self.decls:
            shared = decl.is_shared
            flags[decl.name] = (
                shared,
                spec.cache_shared if shared else True,        # cacheable
                spec.craft_overheads and shared,              # craft
                # prefetch liveness: the interpreter compiles prefetch /
                # vector statements on shared arrays to timing noops
                # when shared data is uncached or a hardware protocol
                # owns coherence.
                (not shared) or (spec.cache_shared
                                 and spec.protocol is None),
            )
        bulk = None
        if backend == Backend.BATCHED:
            from .batch import BulkReplayer
            bulk = BulkReplayer(machine, spec, flags)
        state = _ReplayState()
        snap = _totals(machine)
        open_epoch: Optional[tuple] = None
        for record in self.records_factory():
            kind = record[0]
            if kind == "ops":
                _, pe, ops = record
                if pe >= params.n_pes:
                    raise TraceError(
                        f"{self.name}: access on PE {pe} but the replay "
                        f"machine has {params.n_pes} PE(s); raise --pes")
                counters.ops += len(ops)
                if bulk is not None:
                    bulk.chunk(pe, ops, state, counters)
                else:
                    for op in ops:
                        _apply_op(machine, flags, pe, op, state)
            elif kind == "barrier":
                machine.barrier()
            elif kind == "epoch":
                open_epoch = (record[1], record[2])
                if tracer is not None:
                    tracer.epoch_begin(record[2], machine)
            elif kind == "end_epoch":
                machine.stats.epochs += 1
                if tracer is not None:
                    tracer.epoch_end(record[2], machine)
                now = _totals(machine)
                row = {"index": record[1], "label": record[2],
                       "reads": now[0] - snap[0],
                       "writes": now[1] - snap[1],
                       "hits": now[2] - snap[2],
                       "misses": now[3] - snap[3],
                       "stale": now[4] - snap[4],
                       "clock": machine.elapsed()}
                snap = now
                epochs.append(row)
                open_epoch = None
                if epoch_cb is not None:
                    epoch_cb(row)
            else:
                raise TraceError(f"{self.name}: unknown trace record "
                                 f"{kind!r}")
        if open_epoch is not None:
            raise TraceError(
                f"{self.name}: epoch {open_epoch[0]} ({open_epoch[1]!r}) "
                f"never closed — the trace ends inside it")
        if oracle and machine.oracle is not None:
            machine.oracle.verify_final(machine.memory)
        return TraceReplayResult(machine=machine, version=version,
                                 backend=backend, epochs=epochs,
                                 counters=counters)


class _ReplayState:
    """Mutable cross-op replay state: the synthetic write-value counter.

    Written values are ``float(counter)`` in stream order — trace events
    carry no data values, and any deterministic sequence reproduces the
    machine's coherence behaviour exactly (versions, not values, drive
    staleness).  Both replay paths consume the same counter, which is
    what makes reference and bulk replays bit-identical."""

    __slots__ = ("counter",)

    def __init__(self) -> None:
        self.counter = 0

    def next_value(self) -> float:
        self.counter += 1
        return float(self.counter)


def _totals(machine: Machine) -> tuple:
    total = machine.stats.total()
    return (total.reads, total.writes, total.cache_hits,
            total.cache_misses, machine.stats.stale_reads)


def _apply_op(machine: Machine, flags: Dict[str, tuple], pe: int,
              op: tuple, state: _ReplayState) -> None:
    """Apply one replay op through the reference per-access path."""
    kind = op[0]
    try:
        info = flags[op[1]]
    except KeyError:
        raise TraceError(
            f"trace references array {op[1]!r} absent from the replay "
            f"declarations ({', '.join(sorted(flags)) or 'none'}); pass "
            f"the workload the trace was recorded from") from None
    shared, cacheable, craft, pf_live = info
    if kind == "r":
        hint = op[3]
        if hint == "bypass" and shared:
            machine.replay_read(pe, op[1], op[2], cacheable=cacheable,
                                bypass=True, craft=craft)
        else:
            # "uncached" describes the *source* scheme's policy; here
            # cacheability is this scheme's call.  Queue hints only mean
            # anything while the prefetch machinery is live.
            use = hint if (pf_live and shared
                           and hint in ("hit", "miss", "extract", "drop")) \
                else None
            machine.replay_read(pe, op[1], op[2], use, cacheable=cacheable,
                                craft=craft)
    elif kind == "w":
        machine.write(pe, op[1], op[2], state.next_value(),
                      cacheable=cacheable, craft=craft)
    elif kind == "p":
        if pf_live:
            machine.replay_prefetch_line(pe, op[1], op[2], op[3], op[4],
                                         invalidate=op[5])
        else:
            machine.pes[pe].advance(machine.params.prefetch_issue)
    elif kind == "v":
        if pf_live:
            machine.prefetch_vector(pe, op[1], op[2], op[3], op[4],
                                    invalidate=op[5])
        else:
            machine.pes[pe].advance(machine.params.vector_startup)
    elif kind == "i":
        machine.invalidate(pe, op[1], op[2], op[3])
    else:
        raise TraceError(f"unknown replay op {kind!r}")


__all__ = ["TraceProgram", "TraceReplayResult", "ReplayCounters"]
