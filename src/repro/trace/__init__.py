"""Trace-driven frontend: replay arbitrary per-PE address streams
through every coherence scheme (DESIGN.md §9).

Two input formats — the normalized JSONL machine-event stream written
by :mod:`repro.obs.export` and a hand-writable text format
(:data:`~repro.trace.format.TEXT_GRAMMAR`) — feed one chunked,
bounded-memory record stream that :class:`TraceProgram` drives through
:class:`~repro.machine.machine.Machine` under any registered scheme,
on the reference per-access path or the batched bulk path.  The
``ccdp replay`` CLI subcommand wraps it with per-epoch streaming,
conformance checking against the source events and farm integration.
"""

from .format import (MAX_ADDR, PF_OUTCOMES, READ_HINTS, TEXT_GRAMMAR,
                     TraceError)
from .program import ReplayCounters, TraceProgram, TraceReplayResult
from .reader import (DEFAULT_CHUNK_OPS, TextTraceInfo, jsonl_geometry,
                     read_jsonl_events, read_jsonl_records,
                     read_text_records, scan_text, sniff_format)

__all__ = ["TEXT_GRAMMAR", "READ_HINTS", "PF_OUTCOMES", "MAX_ADDR",
           "TraceError", "TraceProgram", "TraceReplayResult",
           "ReplayCounters", "DEFAULT_CHUNK_OPS", "TextTraceInfo",
           "scan_text", "read_text_records", "read_jsonl_events",
           "read_jsonl_records", "jsonl_geometry", "sniff_format"]
