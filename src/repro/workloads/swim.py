"""SWIM — shallow water equations by finite differences (SPEC CFP95).

Fourteen shared matrices, columns BLOCK-distributed.  Three major
subroutines (CALC1/CALC2/CALC3) are real IR *procedures* called from the
time loop — exercising the CCDP compiler's interprocedural path (the
calls carry DOALL loops and are inlined before analysis).  Each contains
a doubly-nested loop whose **outer loop is parallel**; the ±1 stencil
offsets make only the block-boundary accesses remote, which is why the
paper's BASE SWIM already performs well and CCDP adds a small,
consistent 2.5-13%.

Periodic-boundary fix-ups run as serial epochs (one PE), so the next
parallel epoch's reads of the boundary rows/columns are potentially
stale — and under NAIVE caching genuinely read stale lines.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import E, ProgramBuilder
from ..ir.program import Program
from .base import WorkloadSpec, register

FSDX = 4.0 / 1.0e2
FSDY = 4.0 / 1.0e2
TDTS8 = 0.012
TDTSDX = 0.009
TDTSDY = 0.009
TDTDX = 0.008
TDTDY = 0.008
ALPHA = 0.001

ARRAYS = ("u", "v", "p", "unew", "vnew", "pnew", "uold", "vold", "pold",
          "cu", "cv", "z", "h")


def build_swim(n: int = 33, steps: int = 3) -> Program:
    if n < 8:
        raise ValueError("SWIM needs n >= 8")
    b = ProgramBuilder("swim")
    for name in ARRAYS:
        b.shared(name, (n, n))
    b.shared("psi", (n, n))
    with b.proc("calc1"):
        with b.doall("j", 1, n - 1, label="calc1", align="p"):
            with b.do("i", 1, n - 1):
                b.assign(b.ref("cu", E("i") + 1, "j"),
                         0.5 * (b.ref("p", E("i") + 1, "j") + b.ref("p", "i", "j"))
                         * b.ref("u", E("i") + 1, "j"))
                b.assign(b.ref("cv", "i", E("j") + 1),
                         0.5 * (b.ref("p", "i", E("j") + 1) + b.ref("p", "i", "j"))
                         * b.ref("v", "i", E("j") + 1))
                b.assign(b.ref("z", E("i") + 1, E("j") + 1),
                         (FSDX * (b.ref("v", E("i") + 1, E("j") + 1) - b.ref("v", "i", E("j") + 1))
                          - FSDY * (b.ref("u", E("i") + 1, E("j") + 1) - b.ref("u", E("i") + 1, "j")))
                         / (b.ref("p", "i", "j") + b.ref("p", E("i") + 1, "j")
                            + b.ref("p", E("i") + 1, E("j") + 1) + b.ref("p", "i", E("j") + 1)))
                b.assign(b.ref("h", "i", "j"),
                         b.ref("p", "i", "j")
                         + 0.25 * (b.ref("u", E("i") + 1, "j") * b.ref("u", E("i") + 1, "j")
                                   + b.ref("u", "i", "j") * b.ref("u", "i", "j")
                                   + b.ref("v", "i", E("j") + 1) * b.ref("v", "i", E("j") + 1)
                                   + b.ref("v", "i", "j") * b.ref("v", "i", "j")))
    with b.proc("calc2"):
        with b.doall("j", 1, n - 1, label="calc2", align="p"):
            with b.do("i", 1, n - 1):
                b.assign(b.ref("unew", E("i") + 1, "j"),
                         b.ref("uold", E("i") + 1, "j")
                         + TDTS8 * (b.ref("z", E("i") + 1, E("j") + 1) + b.ref("z", E("i") + 1, "j"))
                         * (b.ref("cv", E("i") + 1, E("j") + 1) + b.ref("cv", "i", E("j") + 1)
                            + b.ref("cv", "i", "j") + b.ref("cv", E("i") + 1, "j"))
                         - TDTSDX * (b.ref("h", E("i") + 1, "j") - b.ref("h", "i", "j")))
                b.assign(b.ref("vnew", "i", E("j") + 1),
                         b.ref("vold", "i", E("j") + 1)
                         - TDTS8 * (b.ref("z", E("i") + 1, E("j") + 1) + b.ref("z", "i", E("j") + 1))
                         * (b.ref("cu", E("i") + 1, E("j") + 1) + b.ref("cu", "i", E("j") + 1)
                            + b.ref("cu", "i", "j") + b.ref("cu", E("i") + 1, "j"))
                         - TDTSDY * (b.ref("h", "i", E("j") + 1) - b.ref("h", "i", "j")))
                b.assign(b.ref("pnew", "i", "j"),
                         b.ref("pold", "i", "j")
                         - TDTDX * (b.ref("cu", E("i") + 1, "j") - b.ref("cu", "i", "j"))
                         - TDTDY * (b.ref("cv", "i", E("j") + 1) - b.ref("cv", "i", "j")))
    with b.proc("calc3"):
        with b.doall("j", 1, n, label="calc3", align="p"):
            with b.do("i", 1, n):
                b.assign(b.ref("uold", "i", "j"),
                         b.ref("u", "i", "j")
                         + ALPHA * (b.ref("unew", "i", "j") - 2.0 * b.ref("u", "i", "j")
                                    + b.ref("uold", "i", "j")))
                b.assign(b.ref("vold", "i", "j"),
                         b.ref("v", "i", "j")
                         + ALPHA * (b.ref("vnew", "i", "j") - 2.0 * b.ref("v", "i", "j")
                                    + b.ref("vold", "i", "j")))
                b.assign(b.ref("pold", "i", "j"),
                         b.ref("p", "i", "j")
                         + ALPHA * (b.ref("pnew", "i", "j") - 2.0 * b.ref("p", "i", "j")
                                    + b.ref("pold", "i", "j")))
                b.assign(b.ref("u", "i", "j"), b.ref("unew", "i", "j"))
                b.assign(b.ref("v", "i", "j"), b.ref("vnew", "i", "j"))
                b.assign(b.ref("p", "i", "j"), b.ref("pnew", "i", "j"))
    with b.proc("main"):
        # Initial fields (parallel, aligned).
        with b.doall("j", 1, n, label="init", align="p"):
            with b.do("i", 1, n):
                b.assign(b.ref("psi", "i", "j"), E("i") * 0.3 - E("j") * 0.2)
                b.assign(b.ref("u", "i", "j"), 0.05 * E("i") - 0.025 * E("j"))
                b.assign(b.ref("v", "i", "j"), 0.04 * E("j") + 0.01 * E("i"))
                b.assign(b.ref("p", "i", "j"), 50.0 + 0.2 * E("i") + 0.1 * E("j"))
                b.assign(b.ref("uold", "i", "j"), 0.05 * E("i") - 0.025 * E("j"))
                b.assign(b.ref("vold", "i", "j"), 0.04 * E("j") + 0.01 * E("i"))
                b.assign(b.ref("pold", "i", "j"), 50.0 + 0.2 * E("i") + 0.1 * E("j"))
                b.assign(b.ref("cu", "i", "j"), 0.0)
                b.assign(b.ref("cv", "i", "j"), 0.0)
                b.assign(b.ref("z", "i", "j"), 0.0)
                b.assign(b.ref("h", "i", "j"), 0.0)
                b.assign(b.ref("unew", "i", "j"), 0.0)
                b.assign(b.ref("vnew", "i", "j"), 0.0)
                b.assign(b.ref("pnew", "i", "j"), 0.0)
        with b.do("step", 1, steps, label="time"):
            b.call("calc1")
            # Periodic boundary for cu/cv/z/h (serial epoch on PE 0).
            with b.do("j", 1, n - 1, label="bc1"):
                b.assign(b.ref("cu", 1, "j"), b.ref("cu", n, "j"))
                b.assign(b.ref("h", n, "j"), b.ref("h", 1, "j"))
            with b.do("i", 1, n - 1, label="bc1b"):
                b.assign(b.ref("cv", "i", 1), b.ref("cv", "i", n))
                b.assign(b.ref("h", "i", n), b.ref("h", "i", 1))
            b.call("calc2")
            # Periodic boundary for the new fields.
            with b.do("j", 1, n - 1, label="bc2"):
                b.assign(b.ref("unew", 1, "j"), b.ref("unew", n, "j"))
                b.assign(b.ref("pnew", n, "j"), b.ref("pnew", 1, "j"))
            with b.do("i", 1, n - 1, label="bc2b"):
                b.assign(b.ref("vnew", "i", 1), b.ref("vnew", "i", n))
                b.assign(b.ref("pnew", "i", n), b.ref("pnew", "i", 1))
            b.call("calc3")
    return b.finish()


def oracle_swim(n: int = 33, steps: int = 3) -> Dict[str, np.ndarray]:
    i = np.arange(1, n + 1, dtype=np.float64)[:, None]
    j = np.arange(1, n + 1, dtype=np.float64)[None, :]
    psi = np.broadcast_to(i * 0.3 - j * 0.2, (n, n)).copy()
    u = np.broadcast_to(0.05 * i - 0.025 * j, (n, n)).copy()
    v = np.broadcast_to(0.04 * j + 0.01 * i, (n, n)).copy()
    p = np.broadcast_to(50.0 + 0.2 * i + 0.1 * j, (n, n)).copy()
    uold, vold, pold = u.copy(), v.copy(), p.copy()
    cu = np.zeros((n, n)); cv = np.zeros((n, n))
    z = np.zeros((n, n)); h = np.zeros((n, n))
    unew = np.zeros((n, n)); vnew = np.zeros((n, n)); pnew = np.zeros((n, n))

    s = slice(0, n - 1)       # 1..n-1 (1-based)
    s1 = slice(1, n)          # 2..n (1-based)
    for _ in range(steps):
        # calc1
        cu[s1, s] = 0.5 * (p[s1, s] + p[s, s]) * u[s1, s]
        cv[s, s1] = 0.5 * (p[s, s1] + p[s, s]) * v[s, s1]
        z[s1, s1] = ((FSDX * (v[s1, s1] - v[s, s1]) - FSDY * (u[s1, s1] - u[s1, s]))
                     / (p[s, s] + p[s1, s] + p[s1, s1] + p[s, s1]))
        h[s, s] = p[s, s] + 0.25 * (u[s1, s] ** 2 + u[s, s] ** 2
                                    + v[s, s1] ** 2 + v[s, s] ** 2)
        # bc1
        cu[0, s] = cu[n - 1, s]
        h[n - 1, s] = h[0, s]
        cv[s, 0] = cv[s, n - 1]
        h[s, n - 1] = h[s, 0]
        # calc2
        unew[s1, s] = (uold[s1, s]
                       + TDTS8 * (z[s1, s1] + z[s1, s])
                       * (cv[s1, s1] + cv[s, s1] + cv[s, s] + cv[s1, s])
                       - TDTSDX * (h[s1, s] - h[s, s]))
        vnew[s, s1] = (vold[s, s1]
                       - TDTS8 * (z[s1, s1] + z[s, s1])
                       * (cu[s1, s1] + cu[s, s1] + cu[s, s] + cu[s1, s])
                       - TDTSDY * (h[s, s1] - h[s, s]))
        pnew[s, s] = (pold[s, s]
                      - TDTDX * (cu[s1, s] - cu[s, s])
                      - TDTDY * (cv[s, s1] - cv[s, s]))
        # bc2
        unew[0, s] = unew[n - 1, s]
        pnew[n - 1, s] = pnew[0, s]
        vnew[s, 0] = vnew[s, n - 1]
        pnew[s, n - 1] = pnew[s, 0]
        # calc3
        uold = u + ALPHA * (unew - 2.0 * u + uold)
        vold = v + ALPHA * (vnew - 2.0 * v + vold)
        pold = p + ALPHA * (pnew - 2.0 * p + pold)
        u = unew.copy()
        v = vnew.copy()
        p = pnew.copy()
    return {"u": u, "v": v, "p": p, "uold": uold, "vold": vold, "pold": pold,
            "cu": cu, "cv": cv, "z": z, "h": h,
            "unew": unew, "vnew": vnew, "pnew": pnew, "psi": psi}


SWIM = register(WorkloadSpec(
    name="swim",
    description="shallow water stencil; outer-parallel loops, mostly local",
    build=build_swim,
    oracle=oracle_swim,
    check_arrays=("u", "v", "p"),
    default_args={"n": 33, "steps": 3},
    paper_args={"n": 513, "steps": 100},
    suite="SPEC CFP95",
))

__all__ = ["build_swim", "oracle_swim", "SWIM", "ARRAYS"]
