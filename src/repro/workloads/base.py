"""Workload infrastructure: a registry of the paper's four application
case studies, each with an IR builder and a NumPy oracle.

A :class:`WorkloadSpec` builds the *source* program (the parallelised
code, before any version-specific handling); the harness derives the
SEQ / BASE / NAIVE versions by execution configuration and the CCDP
version through :func:`repro.coherence.ccdp_transform`.

The oracle mirrors the IR computation exactly (same recurrences, same
initialisation formulas) in NumPy, so every run — any version, any PE
count — can be checked for numerical correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.program import Program


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark program from the paper's evaluation."""

    name: str
    description: str
    build: Callable[..., Program]
    oracle: Callable[..., Dict[str, np.ndarray]]
    check_arrays: Tuple[str, ...]
    default_args: Dict[str, int]
    paper_args: Dict[str, int]
    suite: str = ""   #: "SPEC CFP92" or "SPEC CFP95"

    def build_default(self, **overrides) -> Program:
        args = {**self.default_args, **overrides}
        return self.build(**args)

    def oracle_default(self, **overrides) -> Dict[str, np.ndarray]:
        args = {**self.default_args, **overrides}
        return self.oracle(**args)


_REGISTRY: Dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate workload {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def workload(name: str) -> WorkloadSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; have {sorted(_REGISTRY)}") from None


def all_workloads() -> List[WorkloadSpec]:
    return list(_REGISTRY.values())


def check_result(result_arrays: Dict[str, np.ndarray],
                 oracle_arrays: Dict[str, np.ndarray],
                 check: Sequence[str], rtol: float = 1e-9,
                 atol: float = 1e-9) -> Optional[str]:
    """Compare run output against the oracle; returns an error message or
    ``None`` when everything matches."""
    for name in check:
        got = result_arrays[name]
        want = oracle_arrays[name]
        if got.shape != want.shape:
            return f"{name}: shape {got.shape} != {want.shape}"
        if not np.allclose(got, want, rtol=rtol, atol=atol):
            bad = np.argwhere(~np.isclose(got, want, rtol=rtol, atol=atol))
            i = tuple(bad[0])
            return (f"{name}: mismatch at {i}: got {got[i]!r}, "
                    f"want {want[i]!r} ({len(bad)} elements differ)")
    return None


__all__ = ["WorkloadSpec", "register", "workload", "all_workloads",
           "check_result"]
