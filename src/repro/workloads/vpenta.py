"""VPENTA — simultaneous pentadiagonal inversion (SPEC CFP92 / NASA7).

Seven shared matrices (the five bands ``a..e``, right-hand side ``f``
and solution ``x``), columns BLOCK-distributed.  Every column holds an
independent pentadiagonal system, so the column loop is the parallel
loop and — as the paper observes — "during the execution of the program,
each PE will only access the portion of shared data which is stored in
its local memory".  The BASE version therefore performs well and the
CCDP gains are modest, coming from caching plus avoiding the CRAFT
shared-access primitives.

A small serial boundary-conditioning epoch (performed by one PE, as
reading input would be) makes the first rows *potentially stale* for the
solver — the paper notes that VPENTA's potentially-stale references
"also access data locally", which is exactly what these become.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import E, ProgramBuilder
from ..ir.program import Program
from .base import WorkloadSpec, register


def build_vpenta(n: int = 33) -> Program:
    if n < 6:
        raise ValueError("VPENTA needs n >= 6")
    b = ProgramBuilder("vpenta")
    for name in ("a", "b", "c", "d", "e", "f", "x"):
        b.shared(name, (n, n))
    b.scalar("m1")
    b.scalar("m2")
    with b.proc("main"):
        # Parallel initialisation: diagonally-dominant bands per column.
        with b.doall("j", 1, n, label="init", align="c"):
            with b.do("i", 1, n):
                b.assign(b.ref("a", "i", "j"), E("i") * 0.001 + 0.05)
                b.assign(b.ref("b", "i", "j"), E("j") * 0.002 - 0.8)
                b.assign(b.ref("c", "i", "j"), E("i") * 0.01 + E("j") * 0.005 + 4.0)
                b.assign(b.ref("d", "i", "j"), E("i") * 0.003 - 0.9)
                b.assign(b.ref("e", "i", "j"), E("j") * 0.001 + 0.04)
                b.assign(b.ref("f", "i", "j"), E("i") * 0.01 + E("j") * 0.02 + 1.0)
                b.assign(b.ref("x", "i", "j"), 0.0)
        # Serial boundary conditioning on PE 0: the stale-reference source.
        with b.do("j", 1, n, label="bc"):
            b.assign(b.ref("c", 1, "j"), b.ref("c", 1, "j") + 0.5)
            b.assign(b.ref("f", 1, "j"), b.ref("f", 1, "j") * 1.25)
        # Per-column pentadiagonal solve.
        with b.doall("j", 1, n, label="solve", align="c"):
            with b.do("i", 2, n - 1, label="fwd"):
                # Eliminate the first sub-diagonal of row i.
                b.assign(b.var("m1"), b.ref("b", "i", "j") / b.ref("c", E("i") - 1, "j"))
                b.assign(b.ref("c", "i", "j"),
                         b.ref("c", "i", "j") - E("m1") * b.ref("d", E("i") - 1, "j"))
                b.assign(b.ref("d", "i", "j"),
                         b.ref("d", "i", "j") - E("m1") * b.ref("e", E("i") - 1, "j"))
                b.assign(b.ref("f", "i", "j"),
                         b.ref("f", "i", "j") - E("m1") * b.ref("f", E("i") - 1, "j"))
                # Eliminate the second sub-diagonal of row i+1 against row i-1.
                b.assign(b.var("m2"), b.ref("a", E("i") + 1, "j") / b.ref("c", E("i") - 1, "j"))
                b.assign(b.ref("b", E("i") + 1, "j"),
                         b.ref("b", E("i") + 1, "j") - E("m2") * b.ref("d", E("i") - 1, "j"))
                b.assign(b.ref("c", E("i") + 1, "j"),
                         b.ref("c", E("i") + 1, "j") - E("m2") * b.ref("e", E("i") - 1, "j"))
                b.assign(b.ref("f", E("i") + 1, "j"),
                         b.ref("f", E("i") + 1, "j") - E("m2") * b.ref("f", E("i") - 1, "j"))
            # Final row elimination (no i+1 row to touch).
            b.assign(b.var("m1"), b.ref("b", n, "j") / b.ref("c", n - 1, "j"))
            b.assign(b.ref("c", n, "j"),
                     b.ref("c", n, "j") - E("m1") * b.ref("d", n - 1, "j"))
            b.assign(b.ref("f", n, "j"),
                     b.ref("f", n, "j") - E("m1") * b.ref("f", n - 1, "j"))
            # Back substitution.
            b.assign(b.ref("x", n, "j"), b.ref("f", n, "j") / b.ref("c", n, "j"))
            b.assign(b.ref("x", n - 1, "j"),
                     (b.ref("f", n - 1, "j")
                      - b.ref("d", n - 1, "j") * b.ref("x", n, "j"))
                     / b.ref("c", n - 1, "j"))
            with b.do("i", n - 2, 1, -1, label="bwd"):
                b.assign(b.ref("x", "i", "j"),
                         (b.ref("f", "i", "j")
                          - b.ref("d", "i", "j") * b.ref("x", E("i") + 1, "j")
                          - b.ref("e", "i", "j") * b.ref("x", E("i") + 2, "j"))
                         / b.ref("c", "i", "j"))
    return b.finish()


def oracle_vpenta(n: int = 33) -> Dict[str, np.ndarray]:
    i = np.arange(1, n + 1, dtype=np.float64)[:, None]
    j = np.arange(1, n + 1, dtype=np.float64)[None, :]
    a = np.broadcast_to(i * 0.001 + 0.05, (n, n)).copy()
    bb = np.broadcast_to(j * 0.002 - 0.8, (n, n)).copy()
    c = i * 0.01 + j * 0.005 + 4.0
    d = np.broadcast_to(i * 0.003 - 0.9, (n, n)).copy()
    e = np.broadcast_to(j * 0.001 + 0.04, (n, n)).copy()
    f = i * 0.01 + j * 0.02 + 1.0
    x = np.zeros((n, n))
    # boundary conditioning
    c[0, :] += 0.5
    f[0, :] *= 1.25
    # forward elimination (vectorised over columns, serial over rows)
    for row in range(1, n - 1):  # i = 2 .. n-1 (1-based)
        m1 = bb[row] / c[row - 1]
        c[row] -= m1 * d[row - 1]
        d[row] -= m1 * e[row - 1]
        f[row] -= m1 * f[row - 1]
        m2 = a[row + 1] / c[row - 1]
        bb[row + 1] -= m2 * d[row - 1]
        c[row + 1] -= m2 * e[row - 1]
        f[row + 1] -= m2 * f[row - 1]
    m1 = bb[n - 1] / c[n - 2]
    c[n - 1] -= m1 * d[n - 2]
    f[n - 1] -= m1 * f[n - 2]
    # back substitution
    x[n - 1] = f[n - 1] / c[n - 1]
    x[n - 2] = (f[n - 2] - d[n - 2] * x[n - 1]) / c[n - 2]
    for row in range(n - 3, -1, -1):
        x[row] = (f[row] - d[row] * x[row + 1] - e[row] * x[row + 2]) / c[row]
    return {"a": a, "b": bb, "c": c, "d": d, "e": e, "f": f, "x": x}


VPENTA = register(WorkloadSpec(
    name="vpenta",
    description="pentadiagonal inversion per column; fully local access",
    build=build_vpenta,
    oracle=oracle_vpenta,
    check_arrays=("x", "c", "f"),
    default_args={"n": 33},
    paper_args={"n": 128},
    suite="SPEC CFP92 (NASA7)",
))

__all__ = ["build_vpenta", "oracle_vpenta", "VPENTA"]
