"""TOMCATV — vectorised mesh generation (SPEC CFP95).

Seven shared matrices (mesh coordinates ``x, y``, residuals ``rx, ry``,
and the tridiagonal workspace ``aa, dd`` plus smoothing field ``d``),
columns BLOCK-distributed.  The time loop alternates:

* **loop 60** — residual/stencil computation: doubly-nested with a
  *parallel outer* (column) loop; neighbour-column references make the
  boundary accesses possibly-remote;
* **loops 100/120** — forward elimination and back substitution along
  the columns: *serial outer* (column) loop with a *parallel inner*
  (row) loop — every PE reads the previous column, owned by a single
  PE, which is why the paper's BASE version "does not perform very
  well" and CCDP gains 44-69%;
* the mesh update (parallel, aligned).

Because ``x`` and ``y`` are rewritten every time step and re-read with
±1 column offsets on the next, the uncorrected NAIVE-cached version
really does read stale lines — this workload is the repo's coherence
torture test.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import E, ProgramBuilder
from ..ir.program import Program
from .base import WorkloadSpec, register

REL = 0.18  #: SOR-style relaxation factor


def build_tomcatv(n: int = 33, steps: int = 3) -> Program:
    if n < 8:
        raise ValueError("TOMCATV needs n >= 8")
    b = ProgramBuilder("tomcatv")
    for name in ("x", "y", "rx", "ry", "aa", "dd", "d"):
        b.shared(name, (n, n))
    for name in ("xx", "yx", "xy", "yy", "wa", "wb", "wc", "r"):
        b.scalar(name)
    with b.proc("main"):
        # Mesh initialisation (parallel, aligned).
        with b.doall("j", 1, n, label="init", align="x"):
            with b.do("i", 1, n):
                b.assign(b.ref("x", "i", "j"), E("i") + E("j") * 0.05)
                b.assign(b.ref("y", "i", "j"), E("j") - E("i") * 0.03)
                b.assign(b.ref("rx", "i", "j"), 0.0)
                b.assign(b.ref("ry", "i", "j"), 0.0)
                b.assign(b.ref("aa", "i", "j"), 0.0)
                b.assign(b.ref("dd", "i", "j"), 1.0)
                b.assign(b.ref("d", "i", "j"), 0.0)
        with b.do("it", 1, steps, label="time"):
            # Loop 60: residuals, parallel outer loop over columns.
            with b.doall("j", 2, n - 1, label="loop60", align="x"):
                with b.do("i", 2, n - 1):
                    b.assign(b.var("xx"), b.ref("x", "i", E("j") + 1) - b.ref("x", "i", E("j") - 1))
                    b.assign(b.var("yx"), b.ref("y", "i", E("j") + 1) - b.ref("y", "i", E("j") - 1))
                    b.assign(b.var("xy"), b.ref("x", E("i") + 1, "j") - b.ref("x", E("i") - 1, "j"))
                    b.assign(b.var("yy"), b.ref("y", E("i") + 1, "j") - b.ref("y", E("i") - 1, "j"))
                    b.assign(b.var("wa"), (E("xx") * E("xx") + E("yx") * E("yx")) * 0.25)
                    b.assign(b.var("wb"), (E("xy") * E("xy") + E("yy") * E("yy")) * 0.25)
                    b.assign(b.var("wc"), (E("xx") * E("xy") + E("yx") * E("yy")) * 0.125)
                    b.assign(b.ref("aa", "i", "j"), -E("wb"))
                    b.assign(b.ref("dd", "i", "j"), E("wb") + E("wb") + E("wa") * REL + 1.0)
                    b.assign(b.ref("rx", "i", "j"),
                             E("wa") * (b.ref("x", E("i") + 1, "j") - 2.0 * b.ref("x", "i", "j")
                                        + b.ref("x", E("i") - 1, "j"))
                             - E("wc") * (b.ref("x", "i", E("j") + 1) - b.ref("x", "i", E("j") - 1)))
                    b.assign(b.ref("ry", "i", "j"),
                             E("wb") * (b.ref("y", "i", E("j") + 1) - 2.0 * b.ref("y", "i", "j")
                                        + b.ref("y", "i", E("j") - 1))
                             + E("wc") * (b.ref("y", E("i") + 1, "j") - b.ref("y", E("i") - 1, "j")))
            # Loop 100: forward elimination — serial over columns,
            # parallel over rows (the remote-heavy phase).
            with b.do("j", 3, n - 1, label="loop100"):
                with b.doall("i", 2, n - 1, label="elim"):
                    b.assign(b.var("r"), b.ref("aa", "i", "j") / b.ref("dd", "i", E("j") - 1))
                    b.assign(b.ref("dd", "i", "j"),
                             b.ref("dd", "i", "j") - E("r") * b.ref("aa", "i", E("j") - 1))
                    b.assign(b.ref("rx", "i", "j"),
                             b.ref("rx", "i", "j") - E("r") * b.ref("rx", "i", E("j") - 1))
                    b.assign(b.ref("ry", "i", "j"),
                             b.ref("ry", "i", "j") - E("r") * b.ref("ry", "i", E("j") - 1))
            # Loop 120: back substitution — same shape, reversed.
            with b.doall("i", 2, n - 1, label="norm"):
                b.assign(b.ref("rx", "i", n - 1),
                         b.ref("rx", "i", n - 1) / b.ref("dd", "i", n - 1))
                b.assign(b.ref("ry", "i", n - 1),
                         b.ref("ry", "i", n - 1) / b.ref("dd", "i", n - 1))
            with b.do("j", n - 2, 2, -1, label="loop120"):
                with b.doall("i", 2, n - 1, label="bsub"):
                    b.assign(b.ref("rx", "i", "j"),
                             (b.ref("rx", "i", "j")
                              - b.ref("aa", "i", "j") * b.ref("rx", "i", E("j") + 1))
                             / b.ref("dd", "i", "j"))
                    b.assign(b.ref("ry", "i", "j"),
                             (b.ref("ry", "i", "j")
                              - b.ref("aa", "i", "j") * b.ref("ry", "i", E("j") + 1))
                             / b.ref("dd", "i", "j"))
            # Mesh update (parallel, aligned).
            with b.doall("j", 2, n - 1, label="update", align="x"):
                with b.do("i", 2, n - 1):
                    b.assign(b.ref("x", "i", "j"), b.ref("x", "i", "j") + b.ref("rx", "i", "j"))
                    b.assign(b.ref("y", "i", "j"), b.ref("y", "i", "j") + b.ref("ry", "i", "j"))
    return b.finish()


def oracle_tomcatv(n: int = 33, steps: int = 3) -> Dict[str, np.ndarray]:
    idx = np.arange(1, n + 1, dtype=np.float64)
    x = idx[:, None] + idx[None, :] * 0.05
    y = idx[None, :] - idx[:, None] * 0.03
    x = np.broadcast_to(x, (n, n)).copy()
    y = np.broadcast_to(y, (n, n)).copy()
    rx = np.zeros((n, n))
    ry = np.zeros((n, n))
    aa = np.zeros((n, n))
    dd = np.ones((n, n))
    d = np.zeros((n, n))

    interior = slice(1, n - 1)  # rows/cols 2..n-1 (1-based)
    for _ in range(steps):
        i = interior
        xx = x[1:n - 1, 2:n] - x[1:n - 1, 0:n - 2]
        yx = y[1:n - 1, 2:n] - y[1:n - 1, 0:n - 2]
        xy = x[2:n, 1:n - 1] - x[0:n - 2, 1:n - 1]
        yy = y[2:n, 1:n - 1] - y[0:n - 2, 1:n - 1]
        wa = (xx * xx + yx * yx) * 0.25
        wb = (xy * xy + yy * yy) * 0.25
        wc = (xx * xy + yx * yy) * 0.125
        aa[i, i] = -wb
        dd[i, i] = wb + wb + wa * REL + 1.0
        rx[i, i] = (wa * (x[2:n, 1:n - 1] - 2.0 * x[1:n - 1, 1:n - 1]
                          + x[0:n - 2, 1:n - 1])
                    - wc * (x[1:n - 1, 2:n] - x[1:n - 1, 0:n - 2]))
        ry[i, i] = (wb * (y[1:n - 1, 2:n] - 2.0 * y[1:n - 1, 1:n - 1]
                          + y[1:n - 1, 0:n - 2])
                    + wc * (y[2:n, 1:n - 1] - y[0:n - 2, 1:n - 1]))
        # loop 100 (columns 3..n-1, 1-based)
        for col in range(2, n - 1):
            r = aa[1:n - 1, col] / dd[1:n - 1, col - 1]
            dd[1:n - 1, col] -= r * aa[1:n - 1, col - 1]
            rx[1:n - 1, col] -= r * rx[1:n - 1, col - 1]
            ry[1:n - 1, col] -= r * ry[1:n - 1, col - 1]
        # normalisation at column n-1
        rx[1:n - 1, n - 2] /= dd[1:n - 1, n - 2]
        ry[1:n - 1, n - 2] /= dd[1:n - 1, n - 2]
        # loop 120 (columns n-2 .. 2, 1-based)
        for col in range(n - 3, 0, -1):
            rx[1:n - 1, col] = (rx[1:n - 1, col]
                                - aa[1:n - 1, col] * rx[1:n - 1, col + 1]) / dd[1:n - 1, col]
            ry[1:n - 1, col] = (ry[1:n - 1, col]
                                - aa[1:n - 1, col] * ry[1:n - 1, col + 1]) / dd[1:n - 1, col]
        x[1:n - 1, 1:n - 1] += rx[1:n - 1, 1:n - 1]
        y[1:n - 1, 1:n - 1] += ry[1:n - 1, 1:n - 1]
    return {"x": x, "y": y, "rx": rx, "ry": ry, "aa": aa, "dd": dd, "d": d}


TOMCATV = register(WorkloadSpec(
    name="tomcatv",
    description="mesh generation; parallel-inner solver loops are remote-heavy",
    build=build_tomcatv,
    oracle=oracle_tomcatv,
    check_arrays=("x", "y"),
    default_args={"n": 33, "steps": 3},
    paper_args={"n": 513, "steps": 100},
    suite="SPEC CFP95",
))

__all__ = ["build_tomcatv", "oracle_tomcatv", "TOMCATV", "REL"]
