"""MXM — matrix multiply (SPEC CFP92 / NASA7 kernel).

Structure follows the paper's description: the matrices' columns are
BLOCK-distributed, the **middle loop is parallel** and block-distributed
to match, and the outer loop is unrolled so that "in each iteration of
the outermost loop, each PE accesses 4 columns of the input matrix A" —
columns usually owned by a remote PE, which is why the BASE version
shows almost no speedup and the CCDP version wins big (the compiler
vector-prefetches the four A columns into each PE's cache).

Loop structure (the paper's transformed triple nest)::

    do k = 1, n, 4                 ! outer, serial, 4-way unrolled
      doall j = 1, n               ! middle, parallel, block-scheduled
        do i = 1, n                ! inner, serial
          c(i,j) += a(i,k+0)*b(k+0,j) + ... + a(i,k+3)*b(k+3,j)
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import E, ProgramBuilder
from ..ir.program import Program
from .base import WorkloadSpec, register

UNROLL = 4


def build_mxm(n: int = 32) -> Program:
    """Build the MXM source program for ``n`` x ``n`` matrices."""
    if n % UNROLL != 0:
        raise ValueError(f"MXM size must be a multiple of {UNROLL}, got {n}")
    b = ProgramBuilder("mxm")
    b.shared("a", (n, n))
    b.shared("b", (n, n))
    b.shared("c", (n, n))
    with b.proc("main"):
        with b.doall("j", 1, n, label="init"):
            with b.do("i", 1, n):
                b.assign(b.ref("a", "i", "j"), E("i") * 0.5 + E("j") * 0.25)
                b.assign(b.ref("b", "i", "j"), E("i") * 0.125 - E("j") * 0.5)
                b.assign(b.ref("c", "i", "j"), 0.0)
        with b.do("k", 1, n, UNROLL, label="outer"):
            with b.doall("j", 1, n, label="compute"):
                with b.do("i", 1, n):
                    for u in range(UNROLL):
                        ku = E("k") + u if u else E("k")
                        b.assign(b.ref("c", "i", "j"),
                                 b.ref("c", "i", "j")
                                 + b.ref("a", "i", ku) * b.ref("b", ku, "j"))
    return b.finish()


def oracle_mxm(n: int = 32) -> Dict[str, np.ndarray]:
    i = np.arange(1, n + 1, dtype=np.float64)[:, None]
    j = np.arange(1, n + 1, dtype=np.float64)[None, :]
    a = i * 0.5 + j * 0.25
    b = i * 0.125 - j * 0.5
    return {"a": a, "b": b, "c": a @ b}


MXM = register(WorkloadSpec(
    name="mxm",
    description="matrix multiply, middle loop parallel, 4-way outer unroll",
    build=build_mxm,
    oracle=oracle_mxm,
    check_arrays=("c",),
    default_args={"n": 32},
    paper_args={"n": 256},
    suite="SPEC CFP92 (NASA7)",
))

__all__ = ["build_mxm", "oracle_mxm", "MXM", "UNROLL"]
