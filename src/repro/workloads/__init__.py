"""The paper's four application case studies as IR programs with NumPy
oracles: MXM and VPENTA (SPEC CFP92 / NASA7), TOMCATV and SWIM
(SPEC CFP95)."""

from .base import WorkloadSpec, all_workloads, check_result, register, workload
from .mxm import MXM, build_mxm, oracle_mxm
from .swim import SWIM, build_swim, oracle_swim
from .tomcatv import TOMCATV, build_tomcatv, oracle_tomcatv
from .vpenta import VPENTA, build_vpenta, oracle_vpenta

__all__ = [
    "WorkloadSpec", "all_workloads", "check_result", "register", "workload",
    "MXM", "build_mxm", "oracle_mxm",
    "VPENTA", "build_vpenta", "oracle_vpenta",
    "TOMCATV", "build_tomcatv", "oracle_tomcatv",
    "SWIM", "build_swim", "oracle_swim",
]
