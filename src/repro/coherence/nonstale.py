"""Non-stale prefetching — the paper's §6 extension.

    "The present CCDP scheme only prefetches the potentially-stale
    references.  Intuitively, we should be able to obtain further
    performance improvement by prefetching the non-stale references as
    well."

This optional pass widens the prefetch target set with *fresh* shared
reads located in innermost loops.  Those prefetches are purely for
latency hiding, so they are issued **without** the invalidate-first step
(the cached copy, if any, is known coherent) — dropping one is harmless.

Only references that plausibly miss are added: possibly-remote accesses
(non-ALIGNED alignment class) or self-spatial streams; everything else
would waste queue slots on guaranteed hits.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.alignment import AccessClass
from ..analysis.epochs import EpochGraph, RefInfo
from ..analysis.locality import group_spatial_groups
from ..analysis.stale import StaleAnalysisResult
from ..analysis.volume import reuse_stays_resident
from ..ir.loops import LSC, collect_lscs
from ..ir.program import Program
from .config import CCDPConfig
from .target_analysis import (PrefetchTarget, TargetAnalysisResult,
                              _statement_lsc_map)


def add_nonstale_targets(program: Program, graph: EpochGraph,
                         stale: StaleAnalysisResult,
                         targets: TargetAnalysisResult,
                         config: CCDPConfig) -> int:
    """Extend ``targets`` in place with worthwhile non-stale reads.
    Returns the number of targets added."""
    stmt_to_lsc = _statement_lsc_map(targets.lscs)
    lsc_by_id = {id(l): l for l in targets.lscs}
    already = {t.uid for t in targets.targets}
    already |= {info.uid for info in targets.demoted_group}
    already |= {info.uid for info in targets.demoted_bypass}

    candidates: Dict[int, List[RefInfo]] = {}
    for info in stale.fresh_reads.values():
        if info.uid in already or info.summarised_call is not None:
            continue
        if not info.decl.is_shared:
            continue
        if info.alignment.klass == AccessClass.ALIGNED and not _streams(info):
            continue  # local and reused: prefetching buys nothing
        lsc_id = stmt_to_lsc.get(info.stmt.uid)
        if lsc_id is None:
            continue
        lsc = lsc_by_id[lsc_id]
        if not lsc.is_loop:
            continue  # latency-only prefetching targets loops
        candidates.setdefault(lsc_id, []).append(info)

    added = 0
    line_words = config.machine.line_words
    for lsc_id, infos in candidates.items():
        lsc = lsc_by_id[lsc_id]
        if lsc.loop is not None and reuse_stays_resident(
                lsc.loop, program.arrays, config.machine):
            # Loop volume analysis (paper §4.2's deferred optimisation):
            # the loop's whole footprint stays cache-resident, so its
            # temporal reuse hits without help — latency-only prefetches
            # here would be pure overhead.
            continue
        inner_var = lsc.loop.var if lsc.loop is not None else None
        groups, nonaffine = group_spatial_groups(infos, inner_var, line_words)
        for group in groups:
            targets.targets.append(PrefetchTarget(info=group.leading, lsc=lsc,
                                                  group=group))
            # Trailing members stay plain reads; no demotion bookkeeping is
            # needed because they were never stale.
            added += 1
        # Non-affine fresh reads are left alone: unlike stale ones there
        # is no correctness reason to prefetch them.
    return added


def _streams(info: RefInfo) -> bool:
    """True when the reference walks memory (self-spatial candidate)."""
    if info.aref is None or not info.loop_stack:
        return False
    inner = info.loop_stack[-1]
    return info.aref.address.coeff(inner.var) != 0


__all__ = ["add_nonstale_targets"]
