"""The CCDP scheme: compiler-directed cache coherence via data
prefetching (the paper's core contribution).

Entry point: :func:`ccdp_transform` — stale reference analysis,
prefetch target analysis (Fig. 1), prefetch scheduling (Fig. 2) and
coherence code generation, in one call.
"""

from .config import CCDPConfig
from .driver import CCDPReport, ccdp_transform
from .inline import inline_parallel_calls
from .moveback import MBPOutcome, apply_move_back
from .nonstale import add_nonstale_targets
from .scheduling import LSCSchedule, ScheduleReport, schedule_prefetches
from .software_pipeline import SPOutcome, try_software_pipeline
from .target_analysis import (PrefetchTarget, TargetAnalysisResult,
                              prefetch_target_analysis)
from .vector_prefetch import VPGOutcome, try_vector_prefetch

__all__ = [
    "CCDPConfig", "CCDPReport", "ccdp_transform", "inline_parallel_calls",
    "MBPOutcome", "apply_move_back", "add_nonstale_targets",
    "LSCSchedule", "ScheduleReport", "schedule_prefetches",
    "SPOutcome", "try_software_pipeline",
    "PrefetchTarget", "TargetAnalysisResult", "prefetch_target_analysis",
    "VPGOutcome", "try_vector_prefetch",
]
