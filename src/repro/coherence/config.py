"""CCDP compiler configuration.

Bundles the machine description the compiler is allowed to see (cache
size, prefetch queue depth, latencies — the paper's "important hardware
constraints and architectural parameters") with the empirically-tuned
scheduling parameters the paper describes: the software-pipelining
look-ahead range and the minimum profitable move-back distance.

The ``enable_*`` switches exist for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..machine.params import MachineParams, t3d


@dataclass(frozen=True)
class CCDPConfig:
    """Tunable knobs of the CCDP transformation."""

    machine: MachineParams = field(default_factory=t3d)

    # -- software pipelining -----------------------------------------------
    #: clamp range for the number of iterations to prefetch ahead
    #: ("a compiler parameter which specifies the range of the number of
    #: loop iterations which should be prefetched ahead of time")
    ahead_min: int = 1
    ahead_max: int = 8

    # -- moving back prefetches ----------------------------------------------
    #: minimum cycles between prefetch and use for a move-back to be
    #: worthwhile; closer prefetches degrade to bypass-cache fetches
    mbp_min_cycles: float = 50.0

    # -- vector prefetch generation ---------------------------------------------
    #: fraction of the cache a single vector prefetch may occupy
    vector_cache_fraction: float = 0.5
    #: below this many words a vector degenerates to line prefetches
    vector_min_words: int = 4

    # -- scheme extensions / ablations ---------------------------------------------
    #: paper §6 future work: prefetch non-stale shared reads too
    prefetch_nonstale: bool = False
    enable_vpg: bool = True
    enable_sp: bool = True
    enable_mbp: bool = True

    def with_(self, **overrides) -> "CCDPConfig":
        return replace(self, **overrides)

    @property
    def max_vector_words(self) -> int:
        cache_cap = int(self.machine.cache_words * self.vector_cache_fraction)
        return max(self.machine.line_words, cache_cap)

    def clamp_ahead(self, distance: float) -> int:
        return int(min(self.ahead_max, max(self.ahead_min, round(distance))))


__all__ = ["CCDPConfig"]
